#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, regenerate
# every figure, and leave the outputs next to the sources.
#
#   scripts/check.sh [build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
scripts/run_all_bench.sh "$BUILD"
