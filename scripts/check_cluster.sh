#!/usr/bin/env bash
# Cluster determinism smoke: a 3-node deterministic TPC-C cluster run
# must be bit-identical across two same-seed invocations — equal
# fingerprints AND an imoltp_diff-clean report pair (the diff holds all
# deterministic sections exact and only tolerates the cycle-model
# sections, which inherit ASLR jitter from address-hashed caches). The
# sweep document must also self-compare clean, so the cluster_sweep
# schema stays inside imoltp_diff's rule set.
#
# MODE=tracing exercises the distributed-tracing layer instead
# (docs/distributed.md, "Distributed tracing"):
#   - zero observer effect: same-seed fingerprints are bit-identical
#     with tracing off (--trace-sample=0), full (1), and sampled (4)
#   - the traced report self-diffs clean, and a perturbed
#     cluster.tracing.p99_net_order_share makes imoltp_diff exit 1
#   - --timeline-out emits a whole-cluster Perfetto timeline that
#     imoltp_timeline validate/info/render accept
#   - the network+ordering share of the p99 critical path rises
#     monotonically with --net-latency and with %-multi-home
#
# usage: check_cluster.sh IMOLTP_CLUSTER IMOLTP_DIFF [OUT_DIR] \
#                         [MODE] [IMOLTP_TIMELINE]
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 IMOLTP_CLUSTER IMOLTP_DIFF [OUT_DIR]" \
       "[smoke|tracing] [IMOLTP_TIMELINE]" >&2
  exit 2
fi

imoltp_cluster=$1
imoltp_diff=$2
outdir=${3:-$(mktemp -d)}
mode=${4:-smoke}
imoltp_timeline=${5:-}
mkdir -p "$outdir"

flags=(--nodes=3 --warehouses-per-node=2 --workers-per-node=2
       --orders-per-district=50 --warmup=100 --txns=500
       --multi-home-pct=20 --seed=7)

# Prints the first "p99_net_order_share" value of a JSON file (the run
# report has exactly one, under cluster.tracing).
share_of() {
  grep -o '"p99_net_order_share": *[0-9.eE+-]*' "$1" |
    head -1 | sed 's/.*: *//'
}

# Asserts a whitespace-separated series is nondecreasing and strictly
# grew overall; $1 = label, rest = values.
assert_monotonic() {
  local label=$1
  shift
  echo "$label: $*"
  echo "$*" | awk '{
    for (i = 2; i <= NF; ++i) if ($i + 1e-9 < $(i-1)) exit 1
    if (!($NF > $1)) exit 1
  }' || { echo "FAIL: $label not monotonically increasing" >&2; exit 1; }
}

if [ "$mode" = "tracing" ]; then
  if [ -z "$imoltp_timeline" ]; then
    echo "usage: MODE=tracing needs IMOLTP_TIMELINE" >&2
    exit 2
  fi

  # 1. Zero observer effect: off / full / 1-in-4 sampled tracing must
  # leave the fingerprint untouched.
  for sample in 0 1 4; do
    "$imoltp_cluster" run "${flags[@]}" --trace-sample=$sample \
        --fingerprint --json="$outdir/traced_$sample.json" \
        2> "$outdir/traced_$sample.err"
  done
  fp_off=$(grep '^fingerprint:' "$outdir/traced_0.err")
  fp_full=$(grep '^fingerprint:' "$outdir/traced_1.err")
  fp_samp=$(grep '^fingerprint:' "$outdir/traced_4.err")
  if [ -z "$fp_off" ] || [ "$fp_off" != "$fp_full" ] ||
     [ "$fp_off" != "$fp_samp" ]; then
    echo "FAIL: tracing perturbed the fingerprint:" >&2
    echo "  off:     ${fp_off:-<missing>}" >&2
    echo "  full:    ${fp_full:-<missing>}" >&2
    echo "  sampled: ${fp_samp:-<missing>}" >&2
    exit 1
  fi
  echo "tracing observer-free: ${fp_off} (off/full/sampled)"

  # 2. The traced report self-diffs clean...
  "$imoltp_diff" "$outdir/traced_1.json" "$outdir/traced_1.json"

  # ...and a drifted p99 net+ordering share trips the tracing rules.
  share=$(share_of "$outdir/traced_1.json")
  perturbed=$(echo "$share" | awk '{ printf "%.12f", $1 + 0.2 }')
  sed "s/\"p99_net_order_share\": *$share/\"p99_net_order_share\": $perturbed/" \
      "$outdir/traced_1.json" > "$outdir/traced_perturbed.json"
  if "$imoltp_diff" "$outdir/traced_1.json" \
      "$outdir/traced_perturbed.json" > /dev/null 2>&1; then
    echo "FAIL: perturbed p99_net_order_share diffed clean" >&2
    exit 1
  fi
  echo "perturbed p99_net_order_share trips imoltp_diff (expected)"

  # 3. The whole-cluster timeline validates and renders.
  timeline="$outdir/cluster.timeline.json"
  "$imoltp_cluster" run "${flags[@]}" --trace-sample=1 \
      --timeline-out="$timeline" --json=/dev/null
  "$imoltp_timeline" validate "$timeline"
  "$imoltp_timeline" info "$timeline" > "$outdir/timeline_info.txt"
  "$imoltp_timeline" render "$timeline" > "$outdir/timeline_render.txt"
  grep -q '^kind=cluster' "$outdir/timeline_info.txt"
  grep -q 'cross-node messages' "$outdir/timeline_info.txt"

  # 4. Critical-path attribution responds to the network: the p99
  # net+ordering share must rise monotonically with message latency...
  shares=()
  for lat in 2000 26000 200000; do
    "$imoltp_cluster" run "${flags[@]}" --net-latency=$lat \
        --trace-sample=1 --json="$outdir/lat_$lat.json" 2> /dev/null
    shares+=("$(share_of "$outdir/lat_$lat.json")")
  done
  assert_monotonic "p99 net+order share vs net latency" "${shares[@]}"

  # ...and with the multi-home percentage (the sweep's perf column,
  # emitted in --sweep-pcts order).
  sweep="$outdir/traced_sweep.json"
  "$imoltp_cluster" sweep "${flags[@]}" --trace-sample=1 \
      --sweep-pcts=10,50,100 --json="$sweep" 2> /dev/null
  mapfile -t sweep_shares < <(
    grep -o '"p99_net_order_share": *[0-9.eE+-]*' "$sweep" |
      sed 's/.*: *//')
  assert_monotonic "p99 net+order share vs multi-home pct" \
      "${sweep_shares[@]}"
  exec "$imoltp_diff" "$sweep" "$sweep"
fi

run_a="$outdir/cluster_a.json"
run_b="$outdir/cluster_b.json"

"$imoltp_cluster" run "${flags[@]}" --fingerprint --json="$run_a" \
    2> "$outdir/cluster_a.err"
"$imoltp_cluster" run "${flags[@]}" --fingerprint --json="$run_b" \
    2> "$outdir/cluster_b.err"

fp_a=$(grep '^fingerprint:' "$outdir/cluster_a.err")
fp_b=$(grep '^fingerprint:' "$outdir/cluster_b.err")
if [ -z "$fp_a" ] || [ "$fp_a" != "$fp_b" ]; then
  echo "FAIL: same-seed cluster fingerprints differ:" >&2
  echo "  run a: ${fp_a:-<missing>}" >&2
  echo "  run b: ${fp_b:-<missing>}" >&2
  exit 1
fi
echo "cluster ${fp_a} (both runs)"

"$imoltp_diff" "$run_a" "$run_b"

sweep="$outdir/cluster_sweep.json"
"$imoltp_cluster" sweep "${flags[@]}" --sweep-pcts=0,50 --json="$sweep"
exec "$imoltp_diff" "$sweep" "$sweep"
