#!/usr/bin/env bash
# Cluster determinism smoke: a 3-node deterministic TPC-C cluster run
# must be bit-identical across two same-seed invocations — equal
# fingerprints AND an imoltp_diff-clean report pair (the diff holds all
# deterministic sections exact and only tolerates the cycle-model
# sections, which inherit ASLR jitter from address-hashed caches). The
# sweep document must also self-compare clean, so the cluster_sweep
# schema stays inside imoltp_diff's rule set.
#
# usage: check_cluster.sh IMOLTP_CLUSTER IMOLTP_DIFF [OUT_DIR]
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 IMOLTP_CLUSTER IMOLTP_DIFF [OUT_DIR]" >&2
  exit 2
fi

imoltp_cluster=$1
imoltp_diff=$2
outdir=${3:-$(mktemp -d)}

flags=(--nodes=3 --warehouses-per-node=2 --workers-per-node=2
       --orders-per-district=50 --warmup=100 --txns=500
       --multi-home-pct=20 --seed=7)

run_a="$outdir/cluster_a.json"
run_b="$outdir/cluster_b.json"

"$imoltp_cluster" run "${flags[@]}" --fingerprint --json="$run_a" \
    2> "$outdir/cluster_a.err"
"$imoltp_cluster" run "${flags[@]}" --fingerprint --json="$run_b" \
    2> "$outdir/cluster_b.err"

fp_a=$(grep '^fingerprint:' "$outdir/cluster_a.err")
fp_b=$(grep '^fingerprint:' "$outdir/cluster_b.err")
if [ -z "$fp_a" ] || [ "$fp_a" != "$fp_b" ]; then
  echo "FAIL: same-seed cluster fingerprints differ:" >&2
  echo "  run a: ${fp_a:-<missing>}" >&2
  echo "  run b: ${fp_b:-<missing>}" >&2
  exit 1
fi
echo "cluster ${fp_a} (both runs)"

"$imoltp_diff" "$run_a" "$run_b"

sweep="$outdir/cluster_sweep.json"
"$imoltp_cluster" sweep "${flags[@]}" --sweep-pcts=0,50 --json="$sweep"
exec "$imoltp_diff" "$sweep" "$sweep"
