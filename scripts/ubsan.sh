#!/usr/bin/env bash
# UndefinedBehaviorSanitizer build and test run, split out of asan.sh so
# the two sanitizers run (and fail) independently in CI. Trap-on-error
# turns every UB report into a hard test failure.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build-ubsan -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=undefined -fno-omit-frame-pointer -O1"
cmake --build build-ubsan
ctest --test-dir build-ubsan --output-on-failure
