#!/usr/bin/env bash
# Address-sanitized build and test run (slow; use for changes to the
# index/storage/engine internals). UBSan runs separately in
# scripts/ubsan.sh so the two sanitizers fail independently.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build-asan -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -O1"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure
