#!/usr/bin/env bash
# Address/UB-sanitized build and test run (slow; use for changes to the
# index/storage/engine internals).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build-asan -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -O1"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure
