#!/usr/bin/env bash
# Golden-report regression check: runs one fixed-seed experiment and
# diffs its JSON report against the checked-in baseline with
# imoltp_diff. The simulator is deterministic, so any drift means the
# machine model, an engine, or the report schema changed — regenerate
# the golden deliberately when that is intended:
#
#   imoltp_run --engine=voltdb --workload=micro --db=1MB --workers=2 \
#              --warmup=200 --txns=800 --seed=7 \
#              --json=tests/golden/regression_baseline.json
#
# usage: check_regression.sh IMOLTP_RUN IMOLTP_DIFF GOLDEN_JSON [OUT_DIR]
set -euo pipefail

if [ "$#" -lt 3 ]; then
  echo "usage: $0 IMOLTP_RUN IMOLTP_DIFF GOLDEN_JSON [OUT_DIR]" >&2
  exit 2
fi

imoltp_run=$1
imoltp_diff=$2
golden=$3
outdir=${4:-$(mktemp -d)}

candidate="$outdir/regression_candidate.json"

"$imoltp_run" --engine=voltdb --workload=micro --db=1MB --workers=2 \
              --warmup=200 --txns=800 --seed=7 --json="$candidate"

exec "$imoltp_diff" "$golden" "$candidate"
