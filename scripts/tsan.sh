#!/usr/bin/env bash
# Thread-sanitized build and test run for the parallel execution paths
# (docs/parallel_execution.md). Runs the engine/txn suites plus the
# free-running stress tests in parallel_test.cc; a data race anywhere on
# the one-thread-per-core path fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build-tsan -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan --target \
  parallel_test engine_test txn_test experiment_test stress_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'ParallelMode|FreeModeStress|Engine|Txn|Experiment|Stress'
