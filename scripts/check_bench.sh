#!/usr/bin/env bash
# Bench-pipeline smoke check: runs a tiny imoltp_bench sweep, asserts
# that the matrix self-compares clean through imoltp_compare (exit 0),
# and that an injected refs/sec collapse trips the regression gate
# (exit non-zero). Exercises the full trajectory loop — run, serialize,
# parse, tolerance rules — in a few seconds; CI and ctest both run it
# (docs/OBSERVABILITY.md, "Benchmark trajectories").
#
# usage: check_bench.sh IMOLTP_BENCH IMOLTP_COMPARE [OUT_DIR]
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 IMOLTP_BENCH IMOLTP_COMPARE [OUT_DIR]" >&2
  exit 2
fi

imoltp_bench=$1
imoltp_compare=$2
outdir=${3:-$(mktemp -d)}
mkdir -p "$outdir"

base="$outdir/BENCH_smoke.json"
"$imoltp_bench" --label=smoke --out="$base" \
                --engines=voltdb,hyper --workloads=tpcb \
                --modes=deterministic --workers=2 \
                --txns=300 --warmup=50 --seed=11 >/dev/null

# 1. A matrix must always be within tolerance of itself.
"$imoltp_compare" "$base" "$base" >/dev/null
echo "self-compare: OK"

# 2. A collapsed host throughput must fail the gate. The matrix is
# single-line JSON, so a textual substitution is exact.
regressed="$outdir/BENCH_smoke_regressed.json"
sed -E 's/"refs_per_sec":[0-9.eE+-]+/"refs_per_sec":1.0/g' \
    "$base" > "$regressed"
if "$imoltp_compare" "$base" "$regressed" >/dev/null; then
  echo "error: injected refs/sec regression was not detected" >&2
  exit 1
fi
echo "injected regression: detected (as it must be)"
