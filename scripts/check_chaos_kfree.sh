#!/usr/bin/env bash
# kFree chaos campaign: free-running (non-deterministic) crash→recover→
# verify cycles with fuzzy checkpointing, WAL truncation, and torn-page
# injection armed, in --invariant-only mode (free interleavings are not
# bit-reproducible, so the fingerprint gate is dropped; the conservation
# invariants are still audited on every recovered database). For each
# engine the campaign must exit 0, and at least one cycle must have
# truncated log records and replayed strictly fewer records than the
# lifetime log — proof the checkpoint actually short-circuited replay.
#
# usage: check_chaos_kfree.sh IMOLTP_CHAOS [OUT_DIR] [WORKLOAD] [ENGINES...]
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: $0 IMOLTP_CHAOS [OUT_DIR] [WORKLOAD] [ENGINES...]" >&2
  exit 2
fi

imoltp_chaos=$1
outdir=${2:-$(mktemp -d)}
mkdir -p "$outdir"
workload=${3:-tpcb}
shift $(( $# > 3 ? 3 : $# ))
engines=("${@:-}")
if [ "${#engines[@]}" -eq 0 ] || [ -z "${engines[0]}" ]; then
  engines=(shore-mt dbms-d voltdb hyper dbms-m)
fi

for engine in "${engines[@]}"; do
  report="$outdir/chaos_kfree_${engine}_${workload}.json"
  "$imoltp_chaos" --engine="$engine" --workload="$workload" \
      --mode=free --invariant-only --cycles=3 --workers=2 \
      --txns=200 --warmup=20 --seed=17 --retry=3 \
      --checkpoint-every=16 --checkpoint-pages=8 \
      --chaos-points=crash.post_commit=0.002,ckpt.torn_page=0.5,lock.conflict=0.02 \
      --json="$report"

  python3 - "$report" "$engine" <<'EOF'
import json, sys
report, engine = sys.argv[1], sys.argv[2]
doc = json.load(open(report))
assert doc["schema"] == "imoltp.chaos.v2", doc["schema"]
assert doc["ok"], f"{engine}: campaign reported violations"
truncated_cycles = [
    c for c in doc["cycles"]
    if c["truncated_records"] > 0
    and c["recovery"]["replayed_records"] < c["appended_records"]
]
assert truncated_cycles, (
    f"{engine}: no cycle replayed fewer records than the lifetime log "
    "(checkpoint truncation never kicked in)")
print(f"{engine}/{doc['options']['workload']}: "
      f"{len(doc['cycles'])} cycle(s) consistent, "
      f"{len(truncated_cycles)} with truncated replay")
EOF
done
