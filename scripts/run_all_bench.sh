#!/usr/bin/env bash
# Runs every figure/ablation binary in bench/, teeing the combined
# output to bench_output.txt (the numbers EXPERIMENTS.md quotes). When
# a JSON directory is given, each figure also exports a
# schema-versioned JSON report there for archival and imoltp_diff
# regression comparison (docs/OBSERVABILITY.md).
#
#   scripts/run_all_bench.sh [build-dir] [json-dir]
#
#   scripts/run_all_bench.sh                # build/, no JSON export
#   scripts/run_all_bench.sh build reports/ # archive JSON per figure

set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JSON_DIR="${2:-}"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: $BUILD/bench not found — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 2
fi

if [ -n "$JSON_DIR" ]; then
  mkdir -p "$JSON_DIR"
  export IMOLTP_JSON_DIR="$JSON_DIR"
fi

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done 2>&1 | tee bench_output.txt
