#!/usr/bin/env bash
# Runs every figure/ablation binary in bench/, teeing the combined
# output to bench_output.txt (the numbers EXPERIMENTS.md quotes). When
# a JSON directory is given, each figure also exports a
# schema-versioned JSON report there for archival and imoltp_diff
# regression comparison (docs/OBSERVABILITY.md).
#
#   scripts/run_all_bench.sh [-jN] [build-dir] [json-dir]
#
#   scripts/run_all_bench.sh                    # build/, no JSON export
#   scripts/run_all_bench.sh build reports/     # archive JSON per figure
#   scripts/run_all_bench.sh -j4 build reports/ # 4 figures at a time
#
# With -jN, up to N figure binaries run concurrently on spare host
# cores. Each binary's output goes to a temp file and is concatenated
# in name order afterwards, so bench_output.txt is byte-stable
# regardless of N (each binary is internally deterministic — the
# default ParallelMode is kDeterministic; see
# docs/parallel_execution.md). A per-binary wall-clock table (slowest
# first) goes to stderr at the end — stderr, not the output file,
# because timings are non-deterministic.
#
# The same wall-clock table is also written as a timing-only bench
# matrix (bench_times.json, bench_schema_version 1: one cell per
# binary, id "bench/<name>", wall_seconds) so two runs — or a run and
# a committed baseline — diff through imoltp_compare:
#
#   imoltp_compare --max-regress=0.5 old/bench_times.json bench_times.json

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=1
if [[ "${1:-}" =~ ^-j([0-9]+)$ ]]; then
  JOBS="${BASH_REMATCH[1]}"
  shift
fi
BUILD="${1:-build}"
JSON_DIR="${2:-}"

if [ ! -d "$BUILD/bench" ]; then
  echo "error: $BUILD/bench not found — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 2
fi

if [ -n "$JSON_DIR" ]; then
  mkdir -p "$JSON_DIR"
  export IMOLTP_JSON_DIR="$JSON_DIR"
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Per-binary wall-clock bookkeeping. Timings are inherently
# non-deterministic, so the summary table goes to stderr only —
# bench_output.txt stays byte-stable run over run.
note_time() {  # note_time NAME START_NS END_NS
  printf '%s %s\n' "$1" "$(( ($3 - $2) / 1000000 ))" >> "$TMP/times"
}

print_times() {
  [ -f "$TMP/times" ] || return 0
  {
    echo
    echo "wall-clock per benchmark (ms):"
    sort -k2 -n -r "$TMP/times" | awk '{printf "  %-28s %8d\n", $1, $2}'
    awk '{s += $2} END {printf "  %-28s %8d\n", "TOTAL", s}' "$TMP/times"
  } >&2
  emit_times_json
}

# Timing-only bench matrix for imoltp_compare: the wall-clock table as
# bench_schema_version-1 JSON. Goes next to the archived reports when a
# JSON directory was given, else into the working directory.
emit_times_json() {
  local out="bench_times.json"
  [ -n "$JSON_DIR" ] && out="$JSON_DIR/bench_times.json"
  sort "$TMP/times" | awk -v label="run_all_bench" '
    BEGIN {
      printf "{\"bench_schema_version\":1,\"label\":\"%s\",\"cells\":[", label
    }
    {
      if (NR > 1) printf ","
      printf "{\"id\":\"bench/%s\",\"wall_seconds\":%.3f}", $1, $2 / 1000.0
    }
    END { print "]}" }
  ' > "$out"
  echo "wrote $out" >&2
}

if [ "$JOBS" -le 1 ]; then
  for b in "$BUILD"/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "===== $(basename "$b") ====="
    t0="$(date +%s%N)"
    "$b"
    note_time "$(basename "$b")" "$t0" "$(date +%s%N)"
    echo
  done 2>&1 | tee bench_output.txt
  print_times
  exit 0
fi

bins=()
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  bins+=("$b")
done

running=0
fail=0
for b in "${bins[@]}"; do
  if [ "$running" -ge "$JOBS" ]; then
    wait -n || fail=1
    running=$((running - 1))
  fi
  {
    echo "===== $(basename "$b") ====="
    t0="$(date +%s%N)"
    "$b"
    note_time "$(basename "$b")" "$t0" "$(date +%s%N)"
    echo
  } > "$TMP/$(basename "$b").out" 2>&1 &
  running=$((running + 1))
done
while [ "$running" -gt 0 ]; do
  wait -n || fail=1
  running=$((running - 1))
done

cat "$TMP"/*.out | tee bench_output.txt
print_times
exit "$fail"
