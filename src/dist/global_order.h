#ifndef IMOLTP_DIST_GLOBAL_ORDER_H_
#define IMOLTP_DIST_GLOBAL_ORDER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dist/dist_txn.h"

namespace imoltp::dist {

/// The global orderer: the cluster's single multi-home serialization
/// point (SLOG's "global log", Calvin's sequencer layer). It receives
/// the multi-home transactions of one round — already stamped with
/// their origin's local sequence number — and merges them into one
/// deterministic total order: ascending (seq, origin), i.e. a
/// round-robin interleave across origins that depends only on what the
/// clients generated, never on arrival timing. Same seed ⇒ same batch
/// ⇒ same global order, which is what makes whole-cluster runs
/// bit-identical.
class GlobalOrderer {
 public:
  /// Orders `batch` in place and stamps monotonic global sequence
  /// numbers across calls.
  void OrderBatch(std::vector<DistTxn>* batch) {
    std::stable_sort(batch->begin(), batch->end(),
                     [](const DistTxn& a, const DistTxn& b) {
                       if (a.seq != b.seq) return a.seq < b.seq;
                       return a.origin < b.origin;
                     });
    for (DistTxn& t : *batch) t.global_seq = next_global_seq_++;
    if (!batch->empty()) ++batches_;
    last_batch_size_ = batch->size();
    max_batch_size_ = std::max(max_batch_size_, batch->size());
  }

  uint64_t next_global_seq() const { return next_global_seq_; }

  /// Batch accounting for the tracing layer: how many non-empty
  /// multi-home batches were merged and how large they ran. The batch
  /// size is what the `order_wait` trace stage grows with — each
  /// dispatched transaction waits behind its batch predecessors.
  uint64_t batches() const { return batches_; }
  size_t last_batch_size() const { return last_batch_size_; }
  size_t max_batch_size() const { return max_batch_size_; }

 private:
  uint64_t next_global_seq_ = 0;
  uint64_t batches_ = 0;
  size_t last_batch_size_ = 0;
  size_t max_batch_size_ = 0;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_GLOBAL_ORDER_H_
