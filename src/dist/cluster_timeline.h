#ifndef IMOLTP_DIST_CLUSTER_TIMELINE_H_
#define IMOLTP_DIST_CLUSTER_TIMELINE_H_

#include <string>

#include "dist/cluster.h"

namespace imoltp::dist {

/// Renders a finished cluster run's distributed traces as Chrome
/// trace-event JSON (Perfetto / chrome://tracing), one "process" lane
/// per node and one thread row per worker core. Each ring-resident
/// trace (src/dist/txn_trace.h) becomes its stage spans — queue/exec
/// for single-home transactions; forward/order_wait on the home lane,
/// deliver/exec on every participant lane and a closing ack for
/// multi-home ones — and every remote participant of a multi-home
/// transaction gets a flow arrow ("s" at the home node's dispatch, "f"
/// at the participant's delivery), so cross-shard fan-out reads as
/// arrows crossing node lanes. A per-node `critical_kcycles` counter
/// track samples each closing trace's critical path. Timestamps are
/// normalized to the earliest assign so the window starts near t=0.
///
/// The document passes obs::ValidateTimelineJson and is consumed by
/// `imoltp_timeline validate|info|render` like the single-machine
/// export (metadata kind="cluster" tells the tool which it is).
std::string ClusterTimelineToJson(const Cluster& cluster,
                                  double clock_ghz = 2.0);

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_CLUSTER_TIMELINE_H_
