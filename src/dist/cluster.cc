#include "dist/cluster.h"

#include <algorithm>

#include "common/seed.h"
#include "dist/cluster_invariants.h"
#include "fault/fingerprint.h"
#include "mcsim/counters.h"

namespace imoltp::dist {

namespace {

/// Wire size of a participant's commit ack back to the home node (a
/// bare header). Modeled by the tracing layer only — the driver never
/// charges this hop, so the constant must not feed NetworkStats.
constexpr uint32_t kAckWireBytes = 32;

/// Nominal wire size of one routed transaction (request header plus
/// parameters). Fixed constants, not sizeof(): byte accounting must not
/// depend on struct padding.
uint32_t WireBytes(const DistTxn& t) {
  if (t.type == core::TpccBenchmark::kTxnNewOrder) {
    return 96 + 16u * static_cast<uint32_t>(t.no.ol_cnt);
  }
  return 96;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      ownership_(config.nodes,
                 static_cast<uint64_t>(config.warehouses_per_node)),
      forwarder_(&ownership_),
      network_(config.net),
      injector_(DeriveSeed(config.seed, 0, SeedStream::kClusterFault)),
      tracer_(config.trace, config.seed) {
  for (int n = 0; n < config_.nodes; ++n) {
    NodeConfig nc;
    nc.node_id = n;
    nc.warehouses = config_.warehouses_per_node;
    nc.workers = config_.workers_per_node;
    nc.orders_per_district = config_.orders_per_district;
    nc.engine_kind = config_.engine_kind;
    nc.engine_options = config_.engine_options;
    nc.machine_config = config_.machine_config;
    nodes_.push_back(std::make_unique<Node>(nc));
    sequencers_.emplace_back(n);
    client_rngs_.emplace_back(DeriveSeed(config_.seed,
                                         static_cast<uint64_t>(n),
                                         SeedStream::kNodeClient));
  }
  if (config_.chaos.enabled) {
    fault::FaultPointConfig fc;
    fc.probability = config_.chaos.probability;
    fc.nth_hit = config_.chaos.nth_hit;
    injector_.Arm(fault::kNodeDeath, fc);
  }
}

Cluster::~Cluster() = default;

double Cluster::CoreClock(Node* node, int worker) const {
  return mcsim::SimulatedCycles(node->machine()->core(worker).counters(),
                                config_.machine_config.cycle);
}

void Cluster::OrphanTrace(const DistTxn& t, bool forwarded) {
  if (!t.trace.sampled) return;
  TxnTrace tr;
  tr.trace_id = t.trace.trace_id;
  tr.origin = t.origin;
  tr.seq = t.seq;
  tr.global_seq = t.global_seq;
  tr.multi_home = t.multi_home;
  tr.terminal = TxnTraceTerminal::kOrphaned;
  tr.assign_cycles = t.trace.assign_cycles;
  // The stages the transaction reached before the death cut it off: a
  // multi-home txn that made it to the orderer already paid the
  // forward hop. Its node may be gone, so no clocks are read here.
  if (forwarded) tr.forward_cycles =
      static_cast<double>(network_.CostOf(WireBytes(t)));
  tracer_.Finish(std::move(tr));
}

Status Cluster::Create() {
  for (auto& node : nodes_) {
    const Status s = node->Create();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

DistTxn Cluster::GenerateTxn(int origin, Rng* rng) {
  using B = core::TpccBenchmark;
  Node* nd = nodes_[static_cast<size_t>(origin)].get();
  DistTxn t;
  const uint64_t local_w =
      rng->Uniform(static_cast<uint64_t>(config_.warehouses_per_node));
  t.home_w = ownership_.GlobalUnit(origin, local_w);
  const int worker = nd->WorkerFor(local_w);

  // Standard TPC-C mix (same thresholds as the single-node dispatch),
  // then the per-type parameter draws in the same order the local Run*
  // bodies use, then — last — the multi-home coin and remote draws, so
  // the shared prefix of the stream is identical at every
  // multi_home_pct setting.
  const uint64_t roll = rng->Uniform(100);
  if (roll < 45) {
    t.type = B::kTxnNewOrder;
    t.no.d = rng->Uniform(B::kDistrictsPerWarehouse);
    t.no.c = rng->NonUniform(1023, 259, 0, B::kCustomersPerDistrict - 1);
    t.no.ol_cnt = static_cast<int>(rng->Range(5, 15));
    for (int i = 0; i < t.no.ol_cnt; ++i) {
      t.no.items[i] = rng->NonUniform(8191, 7911, 0, B::kItems - 1);
      t.no.quantities[i] = rng->Range(1, 10);
    }
    if (config_.nodes > 1 && config_.multi_home_pct > 0 &&
        rng->Uniform(100) <
            static_cast<uint64_t>(config_.multi_home_pct)) {
      const int remote_node =
          (origin + 1 +
           static_cast<int>(rng->Uniform(
               static_cast<uint64_t>(config_.nodes - 1)))) %
          config_.nodes;
      t.remote_w = ownership_.GlobalUnit(
          remote_node,
          rng->Uniform(static_cast<uint64_t>(config_.warehouses_per_node)));
      // Each order line is remotely supplied with probability 1/2; at
      // least one line must be (otherwise the txn is single-home after
      // all and the classification coin was wasted).
      for (int i = 0; i < t.no.ol_cnt; ++i) {
        if (rng->Uniform(2) == 0) {
          t.no.remote_mask |= static_cast<uint16_t>(1u << i);
        }
      }
      if (t.no.remote_mask == 0) t.no.remote_mask = 1;
    }
  } else if (roll < 88) {
    t.type = B::kTxnPayment;
    t.pay.d = rng->Uniform(B::kDistrictsPerWarehouse);
    t.pay.by_name = rng->Uniform(100) < 60;
    t.pay.c = rng->NonUniform(1023, 259, 0, B::kCustomersPerDistrict - 1);
    t.pay.name_bucket = rng->NonUniform(255, 223, 0, 999);
    t.pay.amount = static_cast<int64_t>(rng->Range(100, 500000));
    t.pay.history_id = nd->bench()->NextHistoryId(worker);
    if (config_.nodes > 1 && config_.multi_home_pct > 0 &&
        rng->Uniform(100) <
            static_cast<uint64_t>(config_.multi_home_pct)) {
      const int remote_node =
          (origin + 1 +
           static_cast<int>(rng->Uniform(
               static_cast<uint64_t>(config_.nodes - 1)))) %
          config_.nodes;
      t.remote_w = ownership_.GlobalUnit(
          remote_node,
          rng->Uniform(static_cast<uint64_t>(config_.warehouses_per_node)));
      t.pay.customer_remote = true;
    }
  } else if (roll < 92) {
    t.type = B::kTxnOrderStatus;
    t.d = rng->Uniform(B::kDistrictsPerWarehouse);
    t.by_name = rng->Uniform(100) < 60;
    t.c = rng->NonUniform(1023, 259, 0, B::kCustomersPerDistrict - 1);
    t.name_bucket = rng->NonUniform(255, 223, 0, 999);
  } else if (roll < 96) {
    t.type = B::kTxnDelivery;
    t.carrier = static_cast<int64_t>(rng->Range(1, 10));
  } else {
    t.type = B::kTxnStockLevel;
    t.d = rng->Uniform(B::kDistrictsPerWarehouse);
    t.threshold = static_cast<int64_t>(rng->Range(10, 20));
  }
  return t;
}

void Cluster::ExecuteSingleHome(const DistTxn& t, bool measure) {
  using B = core::TpccBenchmark;
  const int home = t.involved[0];
  Node* nd = nodes_[static_cast<size_t>(home)].get();
  const uint64_t lw = ownership_.LocalUnit(t.home_w);
  const int worker = nd->WorkerFor(lw);
  engine::Engine* eng = nd->engine();
  core::TpccBenchmark* bench = nd->bench();

  const bool tracing = measure && t.trace.sampled;
  TxnTrace tr;
  if (tracing) {
    tr.trace_id = t.trace.trace_id;
    tr.origin = t.origin;
    tr.seq = t.seq;
    tr.multi_home = false;
    tr.assign_cycles = t.trace.assign_cycles;
    // Everything between the sequencer stamp and this point — the
    // round's multi-home dispatch plus earlier entries of the local
    // queue draining on this core — is queueing delay.
    tr.queue_cycles =
        std::max(0.0, CoreClock(nd, worker) - t.trace.assign_cycles);
  }
  // Runs one fragment with clock reads around the engine call.
  auto fragment = [&](int w, auto&& body) {
    TxnTraceParticipant p;
    if (tracing) {
      p.node = home;
      p.core = w;
      p.exec_start = CoreClock(nd, w);
    }
    const Status fs = body();
    if (tracing) {
      p.exec_end = CoreClock(nd, w);
      p.exec_cycles = p.exec_end - p.exec_start;
      tr.participants.push_back(p);
    }
    return fs;
  };

  Status s = Status::Ok();
  int fragments = 1;
  switch (t.type) {
    case B::kTxnNewOrder:
      s = fragment(worker, [&] {
        return bench->ExecuteNewOrderHome(eng, worker, lw, t.no);
      });
      // A "remote" warehouse that lives on the home node: still
      // single-home (the forwarder's point); run the stock fragment
      // locally as a second engine call.
      if (s.ok() && t.no.remote_mask != 0) {
        const uint64_t rlw = ownership_.LocalUnit(t.remote_w);
        const int rw = nd->WorkerFor(rlw);
        s = fragment(rw, [&] {
          return bench->ExecuteNewOrderRemoteStock(eng, rw, rlw, t.no);
        });
        ++fragments;
      }
      break;
    case B::kTxnPayment:
      s = fragment(worker, [&] {
        return bench->ExecutePaymentHome(eng, worker, lw, t.pay);
      });
      if (s.ok() && t.pay.customer_remote) {
        const uint64_t rlw = ownership_.LocalUnit(t.remote_w);
        const int rw = nd->WorkerFor(rlw);
        s = fragment(rw, [&] {
          return bench->ExecutePaymentCustomer(eng, rw, rlw, t.pay);
        });
        ++fragments;
      }
      break;
    case B::kTxnOrderStatus:
      s = fragment(worker, [&] {
        return bench->ExecuteOrderStatus(eng, worker, lw, t.d, t.c,
                                         t.name_bucket, t.by_name);
      });
      break;
    case B::kTxnDelivery:
      s = fragment(worker, [&] {
        return bench->ExecuteDelivery(eng, worker, lw, t.carrier);
      });
      break;
    default:
      s = fragment(worker, [&] {
        return bench->ExecuteStockLevel(eng, worker, lw, t.d,
                                        t.threshold);
      });
      break;
  }

  if (tracing) {
    tr.terminal = s.ok() ? TxnTraceTerminal::kCommitted
                         : TxnTraceTerminal::kAborted;
    tracer_.Finish(std::move(tr));
  }

  if (!measure) return;
  NodeStats& st = nd->stats();
  st.fragments += static_cast<uint64_t>(fragments);
  if (s.ok()) {
    ++st.committed;
    ++st.single_home;
  } else {
    ++st.aborted;
  }
}

void Cluster::ExecuteMultiHome(
    const DistTxn& t, const std::vector<Envelope<DistTxn>>& envelopes,
    bool measure) {
  using B = core::TpccBenchmark;
  for (int n : t.involved) {
    if (!nodes_[static_cast<size_t>(n)]->alive()) {
      if (measure) {
        ++result_.rejected_dead;
        // Close the span instead of letting it vanish: the trace ends
        // in the `aborted-by-node-death` terminal stage.
        OrphanTrace(t, /*forwarded=*/true);
      }
      return;
    }
  }

  const bool tracing = measure && t.trace.sampled;
  TxnTrace tr;

  // Home fragment first: it carries the transaction's commit decision
  // (district advance / W_YTD / history), so a home abort voids the
  // remote fragments.
  const int home = t.involved[0];
  Node* hn = nodes_[static_cast<size_t>(home)].get();
  const uint64_t lw = ownership_.LocalUnit(t.home_w);
  const int hworker = hn->WorkerFor(lw);
  if (tracing) {
    tr.trace_id = t.trace.trace_id;
    tr.origin = t.origin;
    tr.seq = t.seq;
    tr.global_seq = t.global_seq;
    tr.multi_home = true;
    tr.assign_cycles = t.trace.assign_cycles;
    // The forwarder→orderer hop: modeled at the same wire cost the
    // ordered copies pay, but never charged by the driver — CostOf
    // computes without accounting.
    tr.forward_cycles = static_cast<double>(network_.CostOf(WireBytes(t)));
    // Batch wait in the global orderer: the home core's clock has
    // advanced past assign + forward by exactly the time this round's
    // ordered predecessors spent executing ahead of us.
    tr.dispatch_cycles = CoreClock(hn, hworker);
    tr.order_wait_cycles = std::max(
        0.0, tr.dispatch_cycles - (tr.assign_cycles + tr.forward_cycles));
  }
  // Runs one ordered-copy delivery + fragment at a participant,
  // recording the deliver/exec chain when traced.
  auto fragment = [&](Node* node, int w, const Envelope<DistTxn>& env,
                      auto&& body) {
    const uint64_t cost = network_.ChargeReceive(env);
    node->machine()->core(w).Stall(static_cast<double>(cost));
    if (measure) node->stats().stall_cycles += cost;
    TxnTraceParticipant p;
    if (tracing) {
      p.node = node->node_id();
      p.core = w;
      p.deliver_cycles = static_cast<double>(cost);
      p.exec_start = CoreClock(node, w);
    }
    const Status fs = body();
    if (tracing) {
      p.exec_end = CoreClock(node, w);
      p.exec_cycles = p.exec_end - p.exec_start;
      tr.participants.push_back(p);
    }
    return fs;
  };

  const Status s = fragment(hn, hworker, envelopes[0], [&] {
    if (t.type == B::kTxnNewOrder) {
      return hn->bench()->ExecuteNewOrderHome(hn->engine(), hworker, lw,
                                              t.no);
    }
    return hn->bench()->ExecutePaymentHome(hn->engine(), hworker, lw,
                                           t.pay);
  });
  if (measure) ++hn->stats().fragments;
  if (!s.ok()) {
    if (measure) ++hn->stats().aborted;
    if (tracing) {
      tr.terminal = TxnTraceTerminal::kAborted;
      tracer_.Finish(std::move(tr));
    }
    return;
  }

  for (size_t i = 1; i < t.involved.size(); ++i) {
    const int rn = t.involved[i];
    Node* node = nodes_[static_cast<size_t>(rn)].get();
    const uint64_t rlw = ownership_.LocalUnit(t.remote_w);
    const int rworker = node->WorkerFor(rlw);
    const Status rs = fragment(node, rworker, envelopes[i], [&] {
      if (t.type == B::kTxnNewOrder) {
        return node->bench()->ExecuteNewOrderRemoteStock(
            node->engine(), rworker, rlw, t.no);
      }
      return node->bench()->ExecutePaymentCustomer(node->engine(),
                                                   rworker, rlw, t.pay);
    });
    if (measure) {
      ++node->stats().fragments;
      if (!rs.ok()) ++node->stats().aborted;
    }
  }

  if (tracing) {
    // Commit ack from the slowest participant back to the home node —
    // the last hop of the critical path. Modeled only, like forward.
    tr.ack_cycles = static_cast<double>(network_.CostOf(kAckWireBytes));
    tr.terminal = TxnTraceTerminal::kCommitted;
    tracer_.Finish(std::move(tr));
  }

  if (measure) {
    ++hn->stats().committed;
    ++hn->stats().multi_home;
  }
}

Status Cluster::RunPhase(uint64_t per_node, bool measure) {
  std::vector<uint64_t> remaining(nodes_.size(), per_node);
  auto pending = [&remaining]() {
    uint64_t sum = 0;
    for (uint64_t r : remaining) sum += r;
    return sum;
  };

  while (pending() > 0) {
    ++round_;

    // Fail-stop chaos: one death check per alive node per round, in
    // node-id order (so an nth_hit trigger picks a deterministic
    // (round, node) pair).
    if (measure && config_.chaos.enabled) {
      for (size_t n = 0; n < nodes_.size(); ++n) {
        Node* node = nodes_[n].get();
        if (!node->alive()) continue;
        if (injector_.Fires(fault::kNodeDeath)) {
          node->Kill(round_);
          if (result_.died_node < 0) {
            result_.died_node = static_cast<int>(n);
            result_.death_round = round_;
          }
        }
      }
    }

    // Client + sequencer + forwarder: each alive node stamps and
    // routes a batch. A dead node generates nothing and abandons its
    // unfinished quota (its client died with it).
    for (size_t n = 0; n < nodes_.size(); ++n) {
      Node* node = nodes_[n].get();
      if (!node->alive()) {
        if (measure) {
          // Unexecuted stamped work dies with the node; their traces
          // close as orphans so chaos runs still reconcile.
          DistTxn dropped;
          while (sequencers_[n].PopLocal(&dropped)) {
            ++result_.rejected_dead;
            OrphanTrace(dropped, /*forwarded=*/false);
          }
        }
        remaining[n] = 0;
        continue;
      }
      const bool tracing = measure && tracer_.enabled();
      const uint64_t batch = std::min(
          remaining[n], static_cast<uint64_t>(config_.batch_per_round));
      for (uint64_t i = 0; i < batch; ++i) {
        DistTxn t = GenerateTxn(static_cast<int>(n), &client_rngs_[n]);
        // The trace context is born at the sequencer, stamped with the
        // home worker core's clock (home node == origin: clients only
        // generate transactions homed at their own node).
        double now = 0.0;
        if (tracing) {
          const uint64_t lw = ownership_.LocalUnit(t.home_w);
          now = CoreClock(node, node->WorkerFor(lw));
        }
        sequencers_[n].Assign(&t, tracing ? &tracer_ : nullptr, now);
        forwarder_.Classify(&t);
        if (measure) ++result_.generated;
        if (t.multi_home) {
          network_.Send(&orderer_inbox_, static_cast<int>(n), kOrdererId,
                        WireBytes(t), std::move(t));
        } else {
          sequencers_[n].EnqueueLocal(std::move(t));
        }
      }
      remaining[n] -= batch;
    }

    // Global orderer: merge this round's multi-home batch into the
    // deterministic total order, then dispatch one ordered copy to
    // every participant.
    std::vector<DistTxn> multi;
    Envelope<DistTxn> env;
    while (orderer_inbox_.Pop(&env)) multi.push_back(std::move(env.payload));
    orderer_.OrderBatch(&multi);
    for (const DistTxn& t : multi) {
      Mailbox<DistTxn> scratch;
      for (int n : t.involved) {
        network_.Send(&scratch, kOrdererId, n, WireBytes(t), t);
      }
      std::vector<Envelope<DistTxn>> envs;
      while (scratch.Pop(&env)) envs.push_back(std::move(env));
      ExecuteMultiHome(t, envs, measure);
    }

    // Single-home queues drain in local sequence order.
    for (size_t n = 0; n < nodes_.size(); ++n) {
      if (!nodes_[n]->alive()) continue;
      DistTxn t;
      while (sequencers_[n].PopLocal(&t)) {
        ExecuteSingleHome(t, measure);
      }
    }
  }
  return Status::Ok();
}

Status Cluster::Run() {
  Status s = RunPhase(config_.warmup_per_node, /*measure=*/false);
  if (!s.ok()) return s;

  for (auto& node : nodes_) node->BeginWindow();
  s = RunPhase(config_.txns_per_node, /*measure=*/true);
  if (!s.ok()) return s;
  for (auto& node : nodes_) node->EndWindow();

  // Recover fail-stopped nodes from their durable logs before the
  // audit: the cluster is only consistent again once the dead node's
  // committed state is back.
  for (auto& node : nodes_) {
    if (node->alive()) continue;
    if (!config_.chaos.recover) continue;
    s = node->Recover();
    if (!s.ok()) return s;
    result_.recovered = true;
  }

  for (const auto& node : nodes_) {
    const NodeStats& st = node->stats();
    result_.committed += st.committed;
    result_.aborted += st.aborted;
    result_.single_home += st.single_home;
    result_.multi_home += st.multi_home;
    if (node->has_window()) {
      result_.max_window_cycles =
          std::max(result_.max_window_cycles, node->window().cycles);
    }
  }
  if (result_.max_window_cycles > 0) {
    result_.throughput_per_mcycle =
        static_cast<double>(result_.committed) /
        (result_.max_window_cycles / 1e6);
  }

  result_.invariants = CheckClusterInvariants(this);
  result_.net = network_.stats();
  result_.fault_points = injector_.Stats();
  ComputeFingerprint();
  return Status::Ok();
}

void Cluster::ComputeFingerprint() {
  using fault::FnvInvariants;
  using fault::FnvLog;
  using fault::FnvMix;
  uint64_t fp = fault::kFnvOffset;
  fp = FnvMix(fp, result_.generated);
  fp = FnvMix(fp, result_.committed);
  fp = FnvMix(fp, result_.aborted);
  fp = FnvMix(fp, result_.single_home);
  fp = FnvMix(fp, result_.multi_home);
  fp = FnvMix(fp, result_.rejected_dead);
  fp = FnvMix(fp, result_.net.messages);
  fp = FnvMix(fp, result_.net.bytes);
  fp = FnvMix(fp, static_cast<uint64_t>(result_.died_node + 1));
  fp = FnvMix(fp, result_.death_round);
  for (const auto& node : nodes_) {
    const NodeStats& st = node->stats();
    fp = FnvMix(fp, st.committed);
    fp = FnvMix(fp, st.aborted);
    fp = FnvMix(fp, st.single_home);
    fp = FnvMix(fp, st.multi_home);
    fp = FnvMix(fp, st.fragments);
    fp = FnvLog(fp, node->DurableLog());
  }
  fp = FnvInvariants(fp, result_.invariants);
  result_.fingerprint = fp;
}

}  // namespace imoltp::dist
