#ifndef IMOLTP_DIST_SEQUENCER_H_
#define IMOLTP_DIST_SEQUENCER_H_

#include <cstdint>
#include <deque>

#include "dist/dist_txn.h"
#include "dist/txn_trace.h"

namespace imoltp::dist {

/// Per-node sequencer: the single local ordering point (turnstile) of a
/// node. Every transaction the node's clients generate passes through
/// here and receives the node's monotonic sequence number — the
/// per-origin total order that (a) fixes the execution order of the
/// node's single-home queue and (b) is the tie-free input the global
/// orderer merges for multi-home transactions. Like the intra-node
/// turnstile in kDeterministic mode, it imposes order, not mutual
/// exclusion: batches drain in seq order regardless of how they were
/// produced.
class Sequencer {
 public:
  explicit Sequencer(int node_id) : node_id_(node_id) {}

  /// Stamps `t` with the node's next sequence number. When a tracer is
  /// supplied and samples this (origin, seq), the distributed-trace
  /// context is born here — the sequencer is the first ordering point
  /// every transaction passes — with `now_cycles` (the home core's
  /// model clock) as the trace's start-of-life timestamp.
  void Assign(DistTxn* t, const TxnTracer* tracer = nullptr,
              double now_cycles = 0.0) {
    t->origin = node_id_;
    t->seq = next_seq_++;
    if (tracer != nullptr && tracer->enabled()) {
      t->trace.trace_id = tracer->MakeTraceId(t->origin, t->seq);
      t->trace.sampled = tracer->Sampled(t->trace.trace_id);
      t->trace.assign_cycles = now_cycles;
    }
  }

  /// Enqueues a single-home transaction for local in-order execution.
  void EnqueueLocal(DistTxn t) { local_.push_back(std::move(t)); }

  /// Drains one transaction from the local queue (seq order).
  bool PopLocal(DistTxn* out) {
    if (local_.empty()) return false;
    *out = std::move(local_.front());
    local_.pop_front();
    return true;
  }

  size_t local_pending() const { return local_.size(); }
  uint64_t next_seq() const { return next_seq_; }
  int node_id() const { return node_id_; }

 private:
  int node_id_;
  uint64_t next_seq_ = 0;
  std::deque<DistTxn> local_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_SEQUENCER_H_
