#include "dist/txn_trace.h"

#include <algorithm>

namespace imoltp::dist {

const char* TxnTraceStageName(TxnTraceStage stage) {
  switch (stage) {
    case TxnTraceStage::kQueue: return "queue";
    case TxnTraceStage::kForward: return "forward";
    case TxnTraceStage::kOrderWait: return "order_wait";
    case TxnTraceStage::kDeliver: return "deliver";
    case TxnTraceStage::kExec: return "exec";
    case TxnTraceStage::kAck: return "ack";
  }
  return "?";
}

double TxnTrace::SlowestChain() const {
  double slowest = 0.0;
  for (const TxnTraceParticipant& p : participants) {
    slowest = std::max(slowest, p.deliver_cycles + p.exec_cycles);
  }
  return slowest;
}

void TxnTracer::Finish(TxnTrace trace) {
  if (trace.multi_home) {
    trace.critical_cycles = trace.forward_cycles +
                            trace.order_wait_cycles + trace.SlowestChain() +
                            trace.ack_cycles;
  } else {
    trace.critical_cycles = trace.queue_cycles;
    for (const TxnTraceParticipant& p : trace.participants) {
      trace.critical_cycles += p.exec_cycles;
    }
  }

  ++traced_;
  switch (trace.terminal) {
    case TxnTraceTerminal::kCommitted: ++committed_; break;
    case TxnTraceTerminal::kAborted: ++aborted_; break;
    case TxnTraceTerminal::kOrphaned: ++orphaned_; break;
  }
  if (trace.multi_home) ++multi_home_; else ++single_home_;

  // Orphaned traces closed by node death carry whatever stages they
  // reached; keep them out of the completed-stage histograms so the
  // percentiles describe transactions that actually ran end to end.
  if (trace.terminal == TxnTraceTerminal::kOrphaned) {
    if (ring_.size() < config_.ring_capacity) {
      ring_.push_back(std::move(trace));
    } else {
      ++dropped_ring_;
    }
    return;
  }

  if (trace.multi_home) {
    stage_hist_[static_cast<int>(TxnTraceStage::kForward)].Add(
        trace.forward_cycles);
    stage_hist_[static_cast<int>(TxnTraceStage::kOrderWait)].Add(
        trace.order_wait_cycles);
    if (!trace.participants.empty()) {
      stage_hist_[static_cast<int>(TxnTraceStage::kAck)].Add(
          trace.ack_cycles);
    }
    critical_multi_.Add(trace.critical_cycles);
  } else {
    stage_hist_[static_cast<int>(TxnTraceStage::kQueue)].Add(
        trace.queue_cycles);
    critical_single_.Add(trace.critical_cycles);
  }
  for (const TxnTraceParticipant& p : trace.participants) {
    if (trace.multi_home) {
      stage_hist_[static_cast<int>(TxnTraceStage::kDeliver)].Add(
          p.deliver_cycles);
    }
    stage_hist_[static_cast<int>(TxnTraceStage::kExec)].Add(
        p.exec_cycles);
  }

  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(trace));
  } else {
    ++dropped_ring_;
  }
}

TraceTailComposition TxnTracer::TailComposition() const {
  TraceTailComposition comp;
  if (critical_multi_.count() == 0) return comp;
  const double p99 = critical_multi_.p99();
  double total = 0.0;
  for (const TxnTrace& t : ring_) {
    if (!t.multi_home || t.critical_cycles < p99) continue;
    ++comp.tail_traces;
    comp.forward += t.forward_cycles;
    comp.order_wait += t.order_wait_cycles;
    comp.ack += t.ack_cycles;
    // Of the slowest chain, split delivery from execution: both sit on
    // the critical path.
    double slowest = -1.0;
    double deliver = 0.0, exec = 0.0;
    for (const TxnTraceParticipant& p : t.participants) {
      const double chain = p.deliver_cycles + p.exec_cycles;
      if (chain > slowest) {
        slowest = chain;
        deliver = p.deliver_cycles;
        exec = p.exec_cycles;
      }
    }
    comp.deliver += deliver;
    comp.exec += exec;
    total += t.critical_cycles;
  }
  if (total <= 0.0) return comp;
  comp.forward /= total;
  comp.order_wait /= total;
  comp.deliver /= total;
  comp.exec /= total;
  comp.ack /= total;
  comp.net_order_share =
      comp.forward + comp.order_wait + comp.deliver + comp.ack;
  return comp;
}

}  // namespace imoltp::dist
