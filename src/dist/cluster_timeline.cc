#include "dist/cluster_timeline.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dist/txn_trace.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace imoltp::dist {
namespace {

using obs::JsonWriter;

/// Absolute model-cycle close time of one trace: the end of its last
/// stage on the critical path (ack for multi-home, last fragment end
/// otherwise).
double TraceCloseCycles(const TxnTrace& t) {
  double last_end = t.assign_cycles;
  for (const TxnTraceParticipant& p : t.participants) {
    last_end = std::max(last_end, p.exec_end);
  }
  if (t.multi_home) last_end += t.ack_cycles;
  return last_end;
}

/// Per-arrow flow id: unique within one trace's fan-out and extremely
/// unlikely to collide across traces (trace ids are DeriveSeed2 hashes).
uint64_t FlowId(const TxnTrace& t, size_t participant_index) {
  return t.trace_id ^ (0x9e3779b97f4a7c15ULL * (participant_index + 1));
}

}  // namespace

std::string ClusterTimelineToJson(const Cluster& cluster,
                                  double clock_ghz) {
  const TxnTracer& tracer = cluster.tracer();

  // Normalize absolute clocks to the earliest sequencer assign so the
  // rendered window starts near t=0, mirroring TimelineToJson.
  double origin = 0.0;
  bool have_origin = false;
  for (const TxnTrace& t : tracer.ring()) {
    if (t.participants.empty()) continue;  // orphaned before execution
    if (!have_origin || t.assign_cycles < origin) {
      origin = t.assign_cycles;
      have_origin = true;
    }
  }
  const auto us = [&](double abs_cycles) {
    return obs::TraceEventMicros(abs_cycles - origin, clock_ghz);
  };
  const auto dur_us = [&](double cycles) {
    return obs::TraceEventMicros(cycles, clock_ghz);
  };

  // Lanes that actually carry spans: (node, worker core) pairs.
  std::set<std::pair<int, int>> lanes;
  for (const TxnTrace& t : tracer.ring()) {
    for (const TxnTraceParticipant& p : t.participants) {
      lanes.emplace(p.node, p.core);
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.KeyValue("displayTimeUnit", "ms");
  w.Key("metadata");
  w.BeginObject();
  w.KeyValue("tool", "imoltp_timeline");
  w.KeyValue("kind", "cluster");
  w.KeyValue("nodes", cluster.num_nodes());
  w.KeyValue("clock_ghz", clock_ghz);
  w.KeyValue("trace_sample", tracer.config().sample);
  w.KeyValue("traced", tracer.traced());
  w.KeyValue("orphaned", tracer.orphaned());
  w.KeyValue("dropped_ring", tracer.dropped_ring());
  w.EndObject();

  w.Key("traceEvents");
  w.BeginArray();
  std::set<int> named_nodes;
  for (const auto& [node, core] : lanes) {
    if (named_nodes.insert(node).second) {
      const std::string label = "node " + std::to_string(node);
      obs::WriteTraceMetadataEvent(w, "process_name", node, 0,
                                   label.c_str());
    }
    const std::string thread = "worker " + std::to_string(core);
    obs::WriteTraceMetadataEvent(w, "thread_name", node, core,
                                 thread.c_str());
  }

  for (const TxnTrace& t : tracer.ring()) {
    if (t.participants.empty()) continue;  // nothing ran; no spans
    // The home fragment always executes first, so participants[0] is
    // the home lane (== origin node) for both txn classes.
    const TxnTraceParticipant& home = t.participants[0];

    if (t.multi_home) {
      // Home-lane stage spans: forward hop, then the multi-home batch
      // wait up to the global-order dispatch, then the closing ack.
      obs::WriteTraceSpanEvent(w, "forward", "trace", home.node,
                               home.core, us(t.assign_cycles),
                               dur_us(t.forward_cycles));
      obs::WriteTraceSpanEvent(
          w, "order_wait", "trace", home.node, home.core,
          us(t.assign_cycles + t.forward_cycles),
          dur_us(t.order_wait_cycles));
      double slowest_end = home.exec_end;
      for (const TxnTraceParticipant& p : t.participants) {
        slowest_end = std::max(slowest_end, p.exec_end);
      }
      obs::WriteTraceSpanEvent(w, "ack", "trace", home.node, home.core,
                               us(slowest_end), dur_us(t.ack_cycles));
    } else {
      obs::WriteTraceSpanEvent(w, "queue", "trace", home.node, home.core,
                               us(t.assign_cycles),
                               dur_us(t.queue_cycles));
    }

    for (size_t i = 0; i < t.participants.size(); ++i) {
      const TxnTraceParticipant& p = t.participants[i];
      if (t.multi_home) {
        obs::WriteTraceSpanEvent(w, "deliver", "trace", p.node, p.core,
                                 us(p.exec_start - p.deliver_cycles),
                                 dur_us(p.deliver_cycles));
      }
      obs::WriteTraceSpanEvent(w, "exec", "trace", p.node, p.core,
                               us(p.exec_start),
                               dur_us(p.exec_cycles));

      // Cross-node fan-out: one flow arrow per remote participant,
      // from the home node's dispatch into the participant's delivery.
      if (t.multi_home && p.node != home.node) {
        const uint64_t flow = FlowId(t, i);
        w.BeginObject();
        w.KeyValue("name", "msg");
        w.KeyValue("cat", "net");
        w.KeyValue("ph", "s");
        w.KeyValue("id", flow);
        w.KeyValue("pid", home.node);
        w.KeyValue("tid", home.core);
        w.KeyValue("ts", us(t.dispatch_cycles));
        w.EndObject();
        w.BeginObject();
        w.KeyValue("name", "msg");
        w.KeyValue("cat", "net");
        w.KeyValue("ph", "f");
        w.KeyValue("id", flow);
        w.KeyValue("pid", p.node);
        w.KeyValue("tid", p.core);
        w.KeyValue("ts", us(p.exec_start));
        w.KeyValue("bp", "e");
        w.EndObject();
      }
    }

    // Per-node critical-path pulse: a counter sample at each trace's
    // close, in kilo-cycles (keeps the track readable next to spans).
    obs::WriteTraceCounterEvent(
        w, "critical_kcycles", home.node, 0, us(TraceCloseCycles(t)),
        {{"kcycles", t.critical_cycles / 1000.0}});
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace imoltp::dist
