#ifndef IMOLTP_DIST_CLUSTER_JSON_H_
#define IMOLTP_DIST_CLUSTER_JSON_H_

#include <string>
#include <vector>

#include "dist/cluster.h"

namespace imoltp::dist {

/// One point of a throughput-vs-%-multi-home sweep.
struct SweepPoint {
  int multi_home_pct = 0;
  ClusterResult result;
};

/// Serializes one finished cluster run as the schema-versioned cluster
/// JSON document. Layout is diff-aware: everything under `cluster` is
/// deterministic (imoltp_diff compares it exactly) EXCEPT the subtrees
/// named `windows` and the throughput fields, which carry cycle-model
/// values and get ASLR-jitter tolerances (see the cluster rules in
/// tools/imoltp_diff.cc).
std::string ClusterReportToJson(Cluster* cluster);

/// Serializes a multi-home sweep (one cluster run per percentage).
/// Deterministic outcome counts live under `sweep.series`, cycle-model
/// throughput under `sweep.perf` — separate prefixes so the diff rules
/// can hold the first exact while tolerating jitter in the second.
std::string ClusterSweepToJson(const ClusterConfig& base,
                               const std::vector<SweepPoint>& points);

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_CLUSTER_JSON_H_
