#ifndef IMOLTP_DIST_CLUSTER_JSON_H_
#define IMOLTP_DIST_CLUSTER_JSON_H_

#include <string>
#include <vector>

#include "dist/cluster.h"

namespace imoltp::dist {

/// One point of a throughput-vs-%-multi-home sweep. The tracing
/// columns are zero unless the sweep ran with tracing enabled.
struct SweepPoint {
  int multi_home_pct = 0;
  ClusterResult result;
  uint64_t traced = 0;
  uint64_t orphaned = 0;
  double p99_critical_cycles = 0.0;   // multi-home critical-path p99
  double p99_net_order_share = 0.0;   // network+ordering share of it
};

/// Serializes one finished cluster run as the schema-versioned cluster
/// JSON document. Layout is diff-aware: everything under `cluster` is
/// deterministic (imoltp_diff compares it exactly) EXCEPT the subtrees
/// named `windows`, the throughput fields, and the cycle-valued parts
/// of `tracing` (`stages.cycles`, `critical_path.cycles`,
/// `p99_composition`, `p99_net_order_share`) — those carry cycle-model
/// values and get jitter tolerances (see the cluster rules in
/// tools/imoltp_diff.cc). Trace *counts* stay under the exact rule:
/// they are part of the determinism contract.
std::string ClusterReportToJson(Cluster* cluster);

/// Serializes a multi-home sweep (one cluster run per percentage).
/// Deterministic outcome counts live under `sweep.series`, cycle-model
/// throughput under `sweep.perf` — separate prefixes so the diff rules
/// can hold the first exact while tolerating jitter in the second.
std::string ClusterSweepToJson(const ClusterConfig& base,
                               const std::vector<SweepPoint>& points);

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_CLUSTER_JSON_H_
