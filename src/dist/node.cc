#include "dist/node.h"

namespace imoltp::dist {

Node::Node(const NodeConfig& config) : config_(config) {
  core::TpccConfig tc;
  tc.warehouses = config_.warehouses;
  tc.orders_per_district = config_.orders_per_district;
  tc.num_partitions = config_.workers;
  bench_ = std::make_unique<core::TpccBenchmark>(tc);
}

Node::~Node() = default;

Status Node::Create() {
  mcsim::MachineConfig mc = config_.machine_config;
  mc.num_cores = config_.workers;
  machine_ = std::make_unique<mcsim::MachineSim>(mc);

  engine::EngineOptions opts = config_.engine_options;
  opts.num_partitions = config_.workers;
  engine_ = engine::CreateEngine(config_.engine_kind, machine_.get(), opts);

  const Status s = engine_->CreateDatabase(bench_->Tables());
  if (!s.ok()) return s;
  alive_ = true;
  return Status::Ok();
}

void Node::BeginWindow() {
  if (!alive_) return;
  profiler_ = std::make_unique<mcsim::Profiler>(machine_.get());
  std::vector<int> cores(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) cores[static_cast<size_t>(i)] = i;
  profiler_->BeginWindow(cores);
  window_open_ = true;
  has_window_ = false;
}

void Node::EndWindow() {
  if (!window_open_) return;
  window_ = profiler_->EndWindow();
  profiler_.reset();
  window_open_ = false;
  has_window_ = true;
}

void Node::Kill(uint64_t round) {
  if (!alive_) return;
  // Close an open measurement window first: the partial profile of a
  // node that died mid-window is still a valid (and interesting)
  // report, and the profiler must not outlive the machine.
  EndWindow();
  saved_log_ = engine_->StableLog();
  engine_.reset();
  machine_.reset();
  alive_ = false;
  ever_died_ = true;
  death_round_ = round;
}

Status Node::Recover() {
  if (alive_) return Status::Ok();
  const Status s = Create();
  if (!s.ok()) return s;
  return engine_->Replay(saved_log_);
}

std::vector<txn::LogRecord> Node::DurableLog() const {
  if (engine_ != nullptr) return engine_->StableLog();
  return saved_log_;
}

}  // namespace imoltp::dist
