#ifndef IMOLTP_DIST_DIST_TXN_H_
#define IMOLTP_DIST_DIST_TXN_H_

#include <cstdint>
#include <vector>

#include "core/tpcc.h"
#include "dist/txn_trace.h"

namespace imoltp::dist {

/// One cluster transaction, fully parameterized at generation time (the
/// determinism contract: every RNG draw happens in the client, before
/// routing, so ordering decisions can never perturb parameter streams).
/// `home_w` / `remote_w` are GLOBAL warehouse ids; the executing node
/// translates through the OwnershipMap.
struct DistTxn {
  int type = 0;           // core::TpccBenchmark::kTxn*
  int origin = 0;         // node whose client generated it
  uint64_t seq = 0;       // per-origin generation sequence number
  uint64_t global_seq = 0;  // assigned by the global orderer (multi-home)
  bool multi_home = false;

  uint64_t home_w = 0;    // home warehouse (global id)
  uint64_t remote_w = 0;  // remote warehouse of a multi-home txn

  // Procedure parameters (union-by-type; unused fields stay zeroed).
  core::TpccBenchmark::NewOrderParams no;
  core::TpccBenchmark::PaymentParams pay;
  uint64_t d = 0;
  uint64_t c = 0;
  uint64_t name_bucket = 0;
  bool by_name = false;
  int64_t carrier = 0;
  int64_t threshold = 0;

  /// Participating nodes, home node first (filled by the forwarder).
  std::vector<int> involved;

  /// Distributed-trace context (src/dist/txn_trace.h). Stamped at the
  /// sequencer, piggybacked on every Envelope copy the Network routes —
  /// how span records follow the transaction across nodes. Pure
  /// observer payload: nothing branches on it, nothing fingerprints it.
  TxnTraceContext trace;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_DIST_TXN_H_
