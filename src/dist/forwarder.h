#ifndef IMOLTP_DIST_FORWARDER_H_
#define IMOLTP_DIST_FORWARDER_H_

#include <cstdint>

#include "dist/dist_txn.h"
#include "txn/partition.h"

namespace imoltp::dist {

/// SLOG-style forwarder: classifies each client transaction as
/// single-home (every touched warehouse owned by one node — executes
/// entirely inside that node's local order, no cross-node messages) or
/// multi-home (touches warehouses of several nodes — must go through
/// the global orderer). Classification is a pure function of the
/// transaction's parameters and the cluster's OwnershipMap; the
/// forwarder also fills `involved` (home node first, then remote
/// participants in node-id order) so the router downstream never
/// re-derives ownership.
class Forwarder {
 public:
  explicit Forwarder(const txn::OwnershipMap* ownership)
      : ownership_(ownership) {}

  /// Classifies `t` in place: sets `multi_home` and `involved`.
  void Classify(DistTxn* t) const {
    t->involved.clear();
    const int home = ownership_->OwnerOf(t->home_w);
    t->involved.push_back(home);
    // Only New-Order (remote order lines) and Payment (remote
    // customer) can leave the home node; the read-only procedures and
    // Delivery are warehouse-local by construction.
    if ((t->type == core::TpccBenchmark::kTxnNewOrder &&
         t->no.remote_mask != 0) ||
        (t->type == core::TpccBenchmark::kTxnPayment &&
         t->pay.customer_remote)) {
      const int remote = ownership_->OwnerOf(t->remote_w);
      if (remote != home) {
        t->involved.push_back(remote);
        t->multi_home = true;
        return;
      }
      // Remote warehouse happens to live on the home node: execute it
      // as a local two-warehouse transaction — still single-home
      // (exactly SLOG's point: homing, not warehouse count, decides).
    }
    t->multi_home = false;
  }

  const txn::OwnershipMap* ownership() const { return ownership_; }

 private:
  const txn::OwnershipMap* ownership_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_FORWARDER_H_
