#ifndef IMOLTP_DIST_MESSAGE_H_
#define IMOLTP_DIST_MESSAGE_H_

// In-process message-passing layer of the dist cluster. Nodes never
// touch each other's engines or machines directly: everything that
// crosses a node boundary travels through a typed Mailbox, and every
// such hop is accounted by the Network — message and byte counts
// (deterministic, fingerprinted) plus a simulated one-way latency that
// the receiving worker core pays as stall cycles when it picks the
// message up (mcsim CoreSim::Stall). The cluster driver itself is
// single-threaded, so mailboxes need no locks; what they buy is the
// explicit topology: the only inter-node edges are the ones a Send
// creates.

#include <cstdint>
#include <deque>

namespace imoltp::dist {

/// Sender/receiver ids: nodes are 0..N-1, the global orderer is
/// kOrdererId. A message from a node to itself is a local enqueue —
/// no wire, no latency, not counted.
inline constexpr int kOrdererId = -1;

struct NetworkConfig {
  /// One-way message latency in simulated cycles, charged to the
  /// receiving worker core. Default ~10us at the paper's 2.6GHz.
  uint64_t latency_cycles = 26000;
  /// Serialization/copy cost per payload byte, also charged to the
  /// receiver (0 = latency only).
  double cycles_per_byte = 0.5;
};

struct NetworkStats {
  uint64_t messages = 0;       // inter-node sends (local enqueues excluded)
  uint64_t bytes = 0;          // payload bytes across the wire
  uint64_t latency_charged = 0;  // total stall cycles charged on receive
};

template <typename T>
struct Envelope {
  int from = 0;
  int to = 0;
  uint32_t wire_bytes = 0;  // 0 = local, nothing to pay on receive
  T payload;
};

template <typename T>
class Mailbox {
 public:
  void Push(Envelope<T> e) { q_.push_back(std::move(e)); }
  bool Pop(Envelope<T>* out) {
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    return true;
  }
  size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }

 private:
  std::deque<Envelope<T>> q_;
};

/// Accounting front of the message layer. Send() stamps the envelope
/// and counts it; ChargeReceive() returns the stall cycles the
/// receiving core owes for one envelope (and accumulates the total).
class Network {
 public:
  explicit Network(const NetworkConfig& config) : config_(config) {}

  template <typename T>
  void Send(Mailbox<T>* box, int from, int to, uint32_t bytes,
            T payload) {
    Envelope<T> e;
    e.from = from;
    e.to = to;
    e.payload = std::move(payload);
    if (from != to) {
      e.wire_bytes = bytes;
      ++stats_.messages;
      stats_.bytes += bytes;
    }
    box->Push(std::move(e));
  }

  /// Modeled receive cost of a `bytes`-sized inter-node message,
  /// WITHOUT accounting it. The tracing layer uses this to attribute
  /// hops the driver never charges (forwarder→orderer, commit acks):
  /// charging them through ChargeReceive would mutate
  /// `latency_charged`, which imoltp_diff compares exactly — the
  /// observer effect the tracing contract forbids.
  uint64_t CostOf(uint32_t bytes) const {
    return config_.latency_cycles +
           static_cast<uint64_t>(config_.cycles_per_byte *
                                 static_cast<double>(bytes));
  }

  /// Stall cycles the receiver pays for `e`; 0 for local enqueues.
  template <typename T>
  uint64_t ChargeReceive(const Envelope<T>& e) {
    if (e.wire_bytes == 0 && e.from == e.to) return 0;
    const uint64_t cost = CostOf(e.wire_bytes);
    stats_.latency_charged += cost;
    return cost;
  }

  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  NetworkConfig config_;
  NetworkStats stats_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_MESSAGE_H_
