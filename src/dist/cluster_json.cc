#include "dist/cluster_json.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/report_json.h"

namespace imoltp::dist {

namespace {

using obs::JsonWriter;

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string NodeKey(int n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", n);
  return buf;
}

void MetaToJson(JsonWriter& w, const char* kind,
                const ClusterConfig& c) {
  w.Key("meta");
  w.BeginObject();
  w.KeyValue("kind", kind);
  w.KeyValue("engine", engine::EngineKindName(c.engine_kind));
  w.KeyValue("nodes", c.nodes);
  w.KeyValue("warehouses_per_node", c.warehouses_per_node);
  w.KeyValue("workers_per_node", c.workers_per_node);
  w.KeyValue("orders_per_district", c.orders_per_district);
  w.KeyValue("warmup_per_node", c.warmup_per_node);
  w.KeyValue("txns_per_node", c.txns_per_node);
  w.KeyValue("multi_home_pct", c.multi_home_pct);
  w.KeyValue("batch_per_round", c.batch_per_round);
  w.KeyValue("seed", c.seed);
  w.Key("net");
  w.BeginObject();
  w.KeyValue("latency_cycles", c.net.latency_cycles);
  w.KeyValue("cycles_per_byte", c.net.cycles_per_byte);
  w.EndObject();
  w.Key("chaos");
  w.BeginObject();
  w.KeyValue("enabled", c.chaos.enabled);
  w.KeyValue("probability", c.chaos.probability);
  w.KeyValue("nth_hit", c.chaos.nth_hit);
  w.KeyValue("recover", c.chaos.recover);
  w.EndObject();
  w.EndObject();
}

void CountsToJson(JsonWriter& w, const ClusterResult& r) {
  w.Key("counts");
  w.BeginObject();
  w.KeyValue("generated", r.generated);
  w.KeyValue("committed", r.committed);
  w.KeyValue("aborted", r.aborted);
  w.KeyValue("single_home", r.single_home);
  w.KeyValue("multi_home", r.multi_home);
  w.KeyValue("rejected_dead", r.rejected_dead);
  w.EndObject();
}

void NetToJson(JsonWriter& w, const NetworkStats& n) {
  w.Key("net");
  w.BeginObject();
  w.KeyValue("messages", n.messages);
  w.KeyValue("bytes", n.bytes);
  w.KeyValue("latency_charged", n.latency_charged);
  w.EndObject();
}

void InvariantsToJson(JsonWriter& w, const fault::InvariantReport& rep) {
  w.Key("invariants");
  w.BeginObject();
  w.KeyValue("ok", rep.ok);
  w.Key("violations");
  w.BeginArray();
  for (const std::string& v : rep.violations) w.Value(v);
  w.EndArray();
  w.Key("checksums");
  w.BeginArray();
  for (int64_t c : rep.checksums) w.Value(c);
  w.EndArray();
  w.EndObject();
}

void ChaosToJson(JsonWriter& w, const ClusterResult& r) {
  w.Key("chaos");
  w.BeginObject();
  w.KeyValue("died_node", r.died_node);
  w.KeyValue("death_round", r.death_round);
  w.KeyValue("recovered", r.recovered);
  w.Key("fault_points");
  w.BeginArray();
  for (const fault::FaultPointStats& p : r.fault_points) {
    w.BeginObject();
    w.KeyValue("point", p.point);
    w.KeyValue("hits", p.hits);
    w.KeyValue("fires", p.fires);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void HistCyclesToJson(JsonWriter& w, const char* key,
                      const obs::LatencyHistogram& h) {
  w.Key(key);
  w.BeginObject();
  w.KeyValue("p50", h.p50());
  w.KeyValue("p99", h.p99());
  w.KeyValue("mean", h.mean());
  w.EndObject();
}

// The `cluster.tracing` section (schema v8). Counts first — exact
// under the `cluster` diff rule, they ARE the determinism contract —
// then the cycle-valued subtrees (`stages.cycles`,
// `critical_path.cycles`, `p99_composition`, `p99_net_order_share`)
// that get jitter-tolerant rules of their own.
void TracingToJson(JsonWriter& w, const Cluster& cluster) {
  const TxnTracer& tr = cluster.tracer();
  w.Key("tracing");
  w.BeginObject();
  w.KeyValue("enabled", tr.enabled());
  w.KeyValue("sample", tr.config().sample);
  w.KeyValue("ring_capacity",
             static_cast<uint64_t>(tr.config().ring_capacity));
  w.KeyValue("traced", tr.traced());
  w.KeyValue("committed", tr.committed());
  w.KeyValue("aborted", tr.aborted());
  w.KeyValue("orphaned", tr.orphaned());
  w.KeyValue("single_home", tr.single_home());
  w.KeyValue("multi_home", tr.multi_home());
  w.KeyValue("dropped_ring", tr.dropped_ring());
  w.KeyValue("order_batches", cluster.orderer().batches());
  w.KeyValue("max_order_batch",
             static_cast<uint64_t>(cluster.orderer().max_batch_size()));

  w.Key("stages");
  w.BeginObject();
  w.Key("counts");
  w.BeginObject();
  for (int s = 0; s < kNumTraceStages; ++s) {
    const auto stage = static_cast<TxnTraceStage>(s);
    w.KeyValue(TxnTraceStageName(stage), tr.stage_count(stage));
  }
  w.EndObject();
  w.Key("cycles");
  w.BeginObject();
  for (int s = 0; s < kNumTraceStages; ++s) {
    const auto stage = static_cast<TxnTraceStage>(s);
    HistCyclesToJson(w, TxnTraceStageName(stage), tr.stage_hist(stage));
  }
  w.EndObject();
  w.EndObject();

  w.Key("critical_path");
  w.BeginObject();
  w.Key("counts");
  w.BeginObject();
  w.KeyValue("single_home", tr.critical_single_home().count());
  w.KeyValue("multi_home", tr.critical_multi_home().count());
  w.EndObject();
  w.Key("cycles");
  w.BeginObject();
  HistCyclesToJson(w, "single_home", tr.critical_single_home());
  HistCyclesToJson(w, "multi_home", tr.critical_multi_home());
  w.EndObject();
  w.EndObject();

  const TraceTailComposition comp = tr.TailComposition();
  w.KeyValue("p99_tail_traces", comp.tail_traces);
  w.Key("p99_composition");
  w.BeginObject();
  w.KeyValue("forward", comp.forward);
  w.KeyValue("order_wait", comp.order_wait);
  w.KeyValue("deliver", comp.deliver);
  w.KeyValue("exec", comp.exec);
  w.KeyValue("ack", comp.ack);
  w.EndObject();
  w.KeyValue("p99_net_order_share", comp.net_order_share);
  w.EndObject();
}

}  // namespace

std::string ClusterReportToJson(Cluster* cluster) {
  const ClusterConfig& cfg = cluster->config();
  const ClusterResult& r = cluster->result();
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version",
             static_cast<int64_t>(obs::kReportSchemaVersion));
  MetaToJson(w, "cluster", cfg);

  w.Key("cluster");
  w.BeginObject();
  CountsToJson(w, r);
  NetToJson(w, r.net);
  ChaosToJson(w, r);
  TracingToJson(w, *cluster);
  w.KeyValue("fingerprint", HexFingerprint(r.fingerprint));
  InvariantsToJson(w, r.invariants);

  w.Key("per_node");
  w.BeginObject();
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    const Node* node = cluster->node(n);
    const NodeStats& st = node->stats();
    w.Key(NodeKey(n));
    w.BeginObject();
    w.KeyValue("committed", st.committed);
    w.KeyValue("aborted", st.aborted);
    w.KeyValue("single_home", st.single_home);
    w.KeyValue("multi_home", st.multi_home);
    w.KeyValue("fragments", st.fragments);
    w.KeyValue("stall_cycles", st.stall_cycles);
    w.KeyValue("alive", node->alive());
    w.KeyValue("ever_died", node->ever_died());
    w.KeyValue("death_round", node->death_round());
    w.EndObject();
  }
  w.EndObject();

  // Cycle-model values: jitter-tolerant diff rules apply from here on.
  w.KeyValue("max_window_cycles", r.max_window_cycles);
  w.KeyValue("throughput_per_mcycle", r.throughput_per_mcycle);

  w.Key("windows");
  w.BeginObject();
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    Node* node = cluster->node(n);
    if (!node->has_window()) continue;
    w.Key(NodeKey(n));
    obs::WindowReportToJson(w, node->window(),
                            cfg.machine_config.cycle);
  }
  w.EndObject();

  w.EndObject();  // cluster
  w.EndObject();
  return w.TakeString();
}

std::string ClusterSweepToJson(const ClusterConfig& base,
                               const std::vector<SweepPoint>& points) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version",
             static_cast<int64_t>(obs::kReportSchemaVersion));
  MetaToJson(w, "cluster_sweep", base);

  w.Key("sweep");
  w.BeginObject();

  w.Key("series");
  w.BeginObject();
  for (const SweepPoint& p : points) {
    w.Key(NodeKey(p.multi_home_pct));
    w.BeginObject();
    w.KeyValue("multi_home_pct", p.multi_home_pct);
    w.KeyValue("generated", p.result.generated);
    w.KeyValue("committed", p.result.committed);
    w.KeyValue("aborted", p.result.aborted);
    w.KeyValue("single_home", p.result.single_home);
    w.KeyValue("multi_home", p.result.multi_home);
    w.KeyValue("messages", p.result.net.messages);
    w.KeyValue("bytes", p.result.net.bytes);
    w.KeyValue("fingerprint", HexFingerprint(p.result.fingerprint));
    w.KeyValue("invariants_ok", p.result.invariants.ok);
    w.KeyValue("traced", p.traced);
    w.KeyValue("orphaned", p.orphaned);
    w.EndObject();
  }
  w.EndObject();

  w.Key("perf");
  w.BeginObject();
  for (const SweepPoint& p : points) {
    w.Key(NodeKey(p.multi_home_pct));
    w.BeginObject();
    w.KeyValue("max_window_cycles", p.result.max_window_cycles);
    w.KeyValue("throughput_per_mcycle", p.result.throughput_per_mcycle);
    w.KeyValue("p99_critical_cycles", p.p99_critical_cycles);
    w.KeyValue("p99_net_order_share", p.p99_net_order_share);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();  // sweep
  w.EndObject();
  return w.TakeString();
}

}  // namespace imoltp::dist
