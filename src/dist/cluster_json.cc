#include "dist/cluster_json.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/report_json.h"

namespace imoltp::dist {

namespace {

using obs::JsonWriter;

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string NodeKey(int n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", n);
  return buf;
}

void MetaToJson(JsonWriter& w, const char* kind,
                const ClusterConfig& c) {
  w.Key("meta");
  w.BeginObject();
  w.KeyValue("kind", kind);
  w.KeyValue("engine", engine::EngineKindName(c.engine_kind));
  w.KeyValue("nodes", c.nodes);
  w.KeyValue("warehouses_per_node", c.warehouses_per_node);
  w.KeyValue("workers_per_node", c.workers_per_node);
  w.KeyValue("orders_per_district", c.orders_per_district);
  w.KeyValue("warmup_per_node", c.warmup_per_node);
  w.KeyValue("txns_per_node", c.txns_per_node);
  w.KeyValue("multi_home_pct", c.multi_home_pct);
  w.KeyValue("batch_per_round", c.batch_per_round);
  w.KeyValue("seed", c.seed);
  w.Key("net");
  w.BeginObject();
  w.KeyValue("latency_cycles", c.net.latency_cycles);
  w.KeyValue("cycles_per_byte", c.net.cycles_per_byte);
  w.EndObject();
  w.Key("chaos");
  w.BeginObject();
  w.KeyValue("enabled", c.chaos.enabled);
  w.KeyValue("probability", c.chaos.probability);
  w.KeyValue("nth_hit", c.chaos.nth_hit);
  w.KeyValue("recover", c.chaos.recover);
  w.EndObject();
  w.EndObject();
}

void CountsToJson(JsonWriter& w, const ClusterResult& r) {
  w.Key("counts");
  w.BeginObject();
  w.KeyValue("generated", r.generated);
  w.KeyValue("committed", r.committed);
  w.KeyValue("aborted", r.aborted);
  w.KeyValue("single_home", r.single_home);
  w.KeyValue("multi_home", r.multi_home);
  w.KeyValue("rejected_dead", r.rejected_dead);
  w.EndObject();
}

void NetToJson(JsonWriter& w, const NetworkStats& n) {
  w.Key("net");
  w.BeginObject();
  w.KeyValue("messages", n.messages);
  w.KeyValue("bytes", n.bytes);
  w.KeyValue("latency_charged", n.latency_charged);
  w.EndObject();
}

void InvariantsToJson(JsonWriter& w, const fault::InvariantReport& rep) {
  w.Key("invariants");
  w.BeginObject();
  w.KeyValue("ok", rep.ok);
  w.Key("violations");
  w.BeginArray();
  for (const std::string& v : rep.violations) w.Value(v);
  w.EndArray();
  w.Key("checksums");
  w.BeginArray();
  for (int64_t c : rep.checksums) w.Value(c);
  w.EndArray();
  w.EndObject();
}

void ChaosToJson(JsonWriter& w, const ClusterResult& r) {
  w.Key("chaos");
  w.BeginObject();
  w.KeyValue("died_node", r.died_node);
  w.KeyValue("death_round", r.death_round);
  w.KeyValue("recovered", r.recovered);
  w.Key("fault_points");
  w.BeginArray();
  for (const fault::FaultPointStats& p : r.fault_points) {
    w.BeginObject();
    w.KeyValue("point", p.point);
    w.KeyValue("hits", p.hits);
    w.KeyValue("fires", p.fires);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

std::string ClusterReportToJson(Cluster* cluster) {
  const ClusterConfig& cfg = cluster->config();
  const ClusterResult& r = cluster->result();
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version",
             static_cast<int64_t>(obs::kReportSchemaVersion));
  MetaToJson(w, "cluster", cfg);

  w.Key("cluster");
  w.BeginObject();
  CountsToJson(w, r);
  NetToJson(w, r.net);
  ChaosToJson(w, r);
  w.KeyValue("fingerprint", HexFingerprint(r.fingerprint));
  InvariantsToJson(w, r.invariants);

  w.Key("per_node");
  w.BeginObject();
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    const Node* node = cluster->node(n);
    const NodeStats& st = node->stats();
    w.Key(NodeKey(n));
    w.BeginObject();
    w.KeyValue("committed", st.committed);
    w.KeyValue("aborted", st.aborted);
    w.KeyValue("single_home", st.single_home);
    w.KeyValue("multi_home", st.multi_home);
    w.KeyValue("fragments", st.fragments);
    w.KeyValue("stall_cycles", st.stall_cycles);
    w.KeyValue("alive", node->alive());
    w.KeyValue("ever_died", node->ever_died());
    w.KeyValue("death_round", node->death_round());
    w.EndObject();
  }
  w.EndObject();

  // Cycle-model values: jitter-tolerant diff rules apply from here on.
  w.KeyValue("max_window_cycles", r.max_window_cycles);
  w.KeyValue("throughput_per_mcycle", r.throughput_per_mcycle);

  w.Key("windows");
  w.BeginObject();
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    Node* node = cluster->node(n);
    if (!node->has_window()) continue;
    w.Key(NodeKey(n));
    obs::WindowReportToJson(w, node->window(),
                            cfg.machine_config.cycle);
  }
  w.EndObject();

  w.EndObject();  // cluster
  w.EndObject();
  return w.TakeString();
}

std::string ClusterSweepToJson(const ClusterConfig& base,
                               const std::vector<SweepPoint>& points) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version",
             static_cast<int64_t>(obs::kReportSchemaVersion));
  MetaToJson(w, "cluster_sweep", base);

  w.Key("sweep");
  w.BeginObject();

  w.Key("series");
  w.BeginObject();
  for (const SweepPoint& p : points) {
    w.Key(NodeKey(p.multi_home_pct));
    w.BeginObject();
    w.KeyValue("multi_home_pct", p.multi_home_pct);
    w.KeyValue("generated", p.result.generated);
    w.KeyValue("committed", p.result.committed);
    w.KeyValue("aborted", p.result.aborted);
    w.KeyValue("single_home", p.result.single_home);
    w.KeyValue("multi_home", p.result.multi_home);
    w.KeyValue("messages", p.result.net.messages);
    w.KeyValue("bytes", p.result.net.bytes);
    w.KeyValue("fingerprint", HexFingerprint(p.result.fingerprint));
    w.KeyValue("invariants_ok", p.result.invariants.ok);
    w.EndObject();
  }
  w.EndObject();

  w.Key("perf");
  w.BeginObject();
  for (const SweepPoint& p : points) {
    w.Key(NodeKey(p.multi_home_pct));
    w.BeginObject();
    w.KeyValue("max_window_cycles", p.result.max_window_cycles);
    w.KeyValue("throughput_per_mcycle", p.result.throughput_per_mcycle);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();  // sweep
  w.EndObject();
  return w.TakeString();
}

}  // namespace imoltp::dist
