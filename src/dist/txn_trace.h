#ifndef IMOLTP_DIST_TXN_TRACE_H_
#define IMOLTP_DIST_TXN_TRACE_H_

// Distributed tracing for the dist cluster (docs/distributed.md,
// "Distributed tracing"). Every transaction that enters a Sequencer can
// carry a TxnTraceContext — a deterministic trace id derived from
// (origin, seq) via DeriveSeed — which piggybacks on the DistTxn copies
// the Network routes, so span records follow the transaction across
// node boundaries for free. The cluster driver stamps simulated-cycle
// timestamps at every hop (sequencer assign, forwarder routing, global
// order dispatch, per-fragment delivery and execution) and closes each
// trace into a TxnTrace record; the TxnTracer aggregates them into
// per-stage histograms and critical-path composition.
//
// The contract that makes this safe to leave on: ZERO observer effect.
// The tracer only reads core clocks and computes modeled costs — it
// never draws RNG, never charges stalls, never mutates NetworkStats —
// so same-seed runs stay bit-identical (FNV fingerprints and all
// simulated counters) with tracing off, on, or sampled.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/seed.h"
#include "obs/histogram.h"

namespace imoltp::dist {

/// In-flight trace state carried by a DistTxn (and therefore by every
/// Envelope copy of it — the piggyback that propagates the context
/// across Network hops). Created when the transaction enters its
/// origin's Sequencer.
struct TxnTraceContext {
  uint64_t trace_id = 0;      // DeriveSeed2(seed, origin, seq, kTxnTrace)
  bool sampled = false;       // false = hops skip all recording
  double assign_cycles = 0.0; // home-core model clock at sequencer entry
};

/// Life stages of a traced transaction. Single-home txns pass through
/// {queue, exec}; multi-home ones through {forward, order_wait,
/// deliver, exec, ack}. All values are simulated cycles.
enum class TxnTraceStage {
  kQueue = 0,      // sequencer local-queue wait (single-home)
  kForward,        // forwarder → global orderer wire hop (multi-home)
  kOrderWait,      // multi-home batch wait in the GlobalOrderer
  kDeliver,        // ordered-copy network delivery to one participant
  kExec,           // one fragment's engine execution
  kAck,            // participant → home commit ack (multi-home)
};
inline constexpr int kNumTraceStages = 6;
const char* TxnTraceStageName(TxnTraceStage stage);

/// How a traced transaction left the system. Orphaned = abandoned by
/// node-death chaos (`aborted-by-node-death` terminal stage): a dead
/// participant rejected the ordered copy, or the dead node's stamped
/// local queue was drained unexecuted.
enum class TxnTraceTerminal { kCommitted = 0, kAborted, kOrphaned };

/// One fragment's share of a trace: where it ran and what it cost.
/// exec_start/exec_end are absolute model-cycle clocks of that core
/// (for the Perfetto export); deliver/exec are durations.
struct TxnTraceParticipant {
  int node = 0;
  int core = 0;
  double deliver_cycles = 0.0;  // network receive stall (0 single-home)
  double exec_cycles = 0.0;
  double exec_start = 0.0;
  double exec_end = 0.0;
};

/// One closed per-transaction trace. `critical_cycles` is the critical
/// path: queue + Σexec for single-home (fragments run sequentially on
/// the home node); forward + order_wait + max over participants of
/// (deliver + exec) + ack for multi-home (participants execute their
/// fragments independently — SLOG has no 2PC — so the slowest chain
/// gates the end-to-end span).
struct TxnTrace {
  uint64_t trace_id = 0;
  int origin = 0;
  uint64_t seq = 0;
  uint64_t global_seq = 0;
  bool multi_home = false;
  TxnTraceTerminal terminal = TxnTraceTerminal::kCommitted;

  double assign_cycles = 0.0;    // absolute, home core clock
  double dispatch_cycles = 0.0;  // absolute, home core clock (multi-home)
  double queue_cycles = 0.0;
  double forward_cycles = 0.0;
  double order_wait_cycles = 0.0;
  double ack_cycles = 0.0;
  std::vector<TxnTraceParticipant> participants;

  double critical_cycles = 0.0;

  /// The slowest participant chain (max deliver + exec); 0 when there
  /// are no participants (orphaned before execution).
  double SlowestChain() const;
};

struct TxnTraceConfig {
  bool enabled = false;
  /// Trace 1 in `sample` transactions (1 = every txn). The decision is
  /// trace_id % sample == 0 — derived, not drawn, so sampling can never
  /// perturb the client RNG streams.
  uint64_t sample = 1;
  /// Full TxnTrace records retained for the Perfetto export and the
  /// p99 composition. Beyond the cap, records still aggregate into the
  /// histograms but are dropped from the ring (counted) — a huge run
  /// degrades to a truncated timeline, never to unbounded memory.
  size_t ring_capacity = 1 << 16;
};

/// Aggregate composition of the p99 tail: per-stage share of the
/// critical path over the multi-home traces at or above the p99
/// critical-path latency. Shares sum to ~1 when any tail trace exists.
struct TraceTailComposition {
  double forward = 0.0;
  double order_wait = 0.0;
  double deliver = 0.0;
  double exec = 0.0;
  double ack = 0.0;
  /// Communication share: everything except exec — the
  /// network+ordering fraction the Hardware-Islands sweep pivots on.
  double net_order_share = 0.0;
  uint64_t tail_traces = 0;
};

/// Collects closed traces: bounded ring of full records plus unbounded
/// (fixed-size) aggregate histograms. Single-threaded, like the cluster
/// driver that feeds it.
class TxnTracer {
 public:
  TxnTracer(const TxnTraceConfig& config, uint64_t cluster_seed)
      : config_(config), cluster_seed_(cluster_seed) {}

  const TxnTraceConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Deterministic trace id for (origin, seq) under this cluster seed.
  uint64_t MakeTraceId(int origin, uint64_t seq) const {
    return DeriveSeed2(cluster_seed_, static_cast<uint64_t>(origin), seq,
                       SeedStream::kTxnTrace);
  }

  /// Whether a trace id falls inside the 1-in-N sample.
  bool Sampled(uint64_t trace_id) const {
    return config_.enabled && config_.sample > 0 &&
           trace_id % config_.sample == 0;
  }

  /// Computes the critical path, aggregates, and retains the record
  /// (ring permitting).
  void Finish(TxnTrace trace);

  uint64_t traced() const { return traced_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t orphaned() const { return orphaned_; }
  uint64_t single_home() const { return single_home_; }
  uint64_t multi_home() const { return multi_home_; }
  uint64_t dropped_ring() const { return dropped_ring_; }

  const obs::LatencyHistogram& stage_hist(TxnTraceStage stage) const {
    return stage_hist_[static_cast<int>(stage)];
  }
  uint64_t stage_count(TxnTraceStage stage) const {
    return stage_hist_[static_cast<int>(stage)].count();
  }
  const obs::LatencyHistogram& critical_single_home() const {
    return critical_single_;
  }
  const obs::LatencyHistogram& critical_multi_home() const {
    return critical_multi_;
  }

  const std::vector<TxnTrace>& ring() const { return ring_; }

  /// Stage composition of the multi-home p99 tail (ring-resident
  /// traces with critical ≥ the histogram's p99).
  TraceTailComposition TailComposition() const;

 private:
  TxnTraceConfig config_;
  uint64_t cluster_seed_ = 0;

  uint64_t traced_ = 0;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t orphaned_ = 0;
  uint64_t single_home_ = 0;
  uint64_t multi_home_ = 0;
  uint64_t dropped_ring_ = 0;

  obs::LatencyHistogram stage_hist_[kNumTraceStages];
  obs::LatencyHistogram critical_single_;
  obs::LatencyHistogram critical_multi_;
  std::vector<TxnTrace> ring_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_TXN_TRACE_H_
