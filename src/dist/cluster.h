#ifndef IMOLTP_DIST_CLUSTER_H_
#define IMOLTP_DIST_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dist/dist_txn.h"
#include "dist/forwarder.h"
#include "dist/global_order.h"
#include "dist/message.h"
#include "dist/node.h"
#include "dist/sequencer.h"
#include "dist/txn_trace.h"
#include "fault/fault_injector.h"
#include "fault/invariants.h"
#include "txn/partition.h"

namespace imoltp::dist {

/// `node.death` arming for a cluster run: fail-stop one node while the
/// cluster keeps running (transactions involving the dead node are
/// rejected, everything else proceeds), then recover it from its
/// durable log before the final invariant audit.
struct ClusterChaosConfig {
  bool enabled = false;
  double probability = 0.0;  // per (node, round) death probability
  uint64_t nth_hit = 0;      // deterministic: dies on the nth check
  bool recover = true;       // rebuild dead nodes after the run
};

/// Whole-cluster configuration. Nodes are symmetric; global warehouse
/// ids are node_id * warehouses_per_node + local id.
struct ClusterConfig {
  int nodes = 3;
  int warehouses_per_node = 2;
  int workers_per_node = 2;  // must divide warehouses_per_node
  int orders_per_district = 200;
  engine::EngineKind engine_kind = engine::EngineKind::kHyPer;
  engine::EngineOptions engine_options;
  mcsim::MachineConfig machine_config;

  uint64_t warmup_per_node = 400;  // generated before the window opens
  uint64_t txns_per_node = 2000;   // generated inside the window

  /// Percentage of New-Order and Payment transactions that touch a
  /// remote node (TPC-C's remote order lines / remote payments, made a
  /// dial — the Hardware-Islands-style sweep axis).
  int multi_home_pct = 10;

  /// Transactions each node's client generates per scheduling round
  /// (the batch the sequencer stamps and the global orderer merges).
  int batch_per_round = 32;

  uint64_t seed = 1;
  NetworkConfig net;
  ClusterChaosConfig chaos;

  /// Distributed tracing (src/dist/txn_trace.h). Safe to enable on any
  /// run: the tracer only reads core clocks and computes modeled costs,
  /// so fingerprints and every simulated counter stay bit-identical
  /// with tracing off, on, or sampled.
  TxnTraceConfig trace;
};

/// Cluster-level outcome summary. Everything except the cycle-valued
/// fields is deterministic for a given seed and feeds `fingerprint`.
struct ClusterResult {
  uint64_t generated = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t single_home = 0;
  uint64_t multi_home = 0;
  uint64_t rejected_dead = 0;  // skipped: a participant node was dead
  NetworkStats net;
  fault::InvariantReport invariants;
  std::vector<fault::FaultPointStats> fault_points;
  int died_node = -1;      // -1 = no node died
  uint64_t death_round = 0;
  bool recovered = false;
  uint64_t fingerprint = 0;

  /// Cluster makespan proxy: max over nodes of the window's modeled
  /// per-worker cycles (nodes run concurrently; the slowest gates).
  double max_window_cycles = 0.0;
  /// Committed transactions per simulated megacycle of makespan.
  double throughput_per_mcycle = 0.0;
};

/// The simulated shared-nothing cluster: N nodes (each a full
/// engine + machine + local TPC-C shard) joined only by the in-process
/// message layer, with SLOG-style deterministic ordering — per-node
/// sequencers for single-home transactions, a global orderer merging
/// the multi-home ones. The driver is single-threaded and round-based;
/// all parallelism is simulated (per-node machines advance their own
/// cycle clocks), so same-seed runs are bit-identical end to end —
/// ordering, commits, aborts, message counts, durable logs, and the
/// final audit all fingerprint equal.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Builds and populates every node.
  Status Create();

  /// Runs warm-up and the measured window, applies node-death chaos if
  /// armed, recovers dead nodes, audits invariants, and fills result().
  Status Run();

  const ClusterConfig& config() const { return config_; }
  const ClusterResult& result() const { return result_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  const Node* node(int i) const {
    return nodes_[static_cast<size_t>(i)].get();
  }
  const txn::OwnershipMap& ownership() const { return ownership_; }
  const TxnTracer& tracer() const { return tracer_; }
  const GlobalOrderer& orderer() const { return orderer_; }

 private:
  /// Draws one client transaction at `origin` (all RNG consumed here).
  DistTxn GenerateTxn(int origin, Rng* rng);
  /// Runs `per_node` transactions per node in rounds; `measure` turns
  /// on chaos checks and result accounting.
  Status RunPhase(uint64_t per_node, bool measure);
  /// Executes one single-home transaction entirely at its home node.
  void ExecuteSingleHome(const DistTxn& t, bool measure);
  /// Executes one ordered multi-home transaction fragment by fragment.
  void ExecuteMultiHome(const DistTxn& t,
                        const std::vector<Envelope<DistTxn>>& envelopes,
                        bool measure);
  void ComputeFingerprint();

  /// Current model-cycle clock of one node's worker core — the
  /// timestamp source of the tracing layer (the same clock ScopedSpan
  /// and the sampler read). Pure: no simulated state changes.
  double CoreClock(Node* node, int worker) const;
  /// Closes an in-flight trace as `aborted-by-node-death`.
  void OrphanTrace(const DistTxn& t, bool forwarded);

  ClusterConfig config_;
  txn::OwnershipMap ownership_;
  Forwarder forwarder_;
  GlobalOrderer orderer_;
  Network network_;
  fault::FaultInjector injector_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Sequencer> sequencers_;
  std::vector<Rng> client_rngs_;
  Mailbox<DistTxn> orderer_inbox_;
  TxnTracer tracer_;
  uint64_t round_ = 0;
  ClusterResult result_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_CLUSTER_H_
