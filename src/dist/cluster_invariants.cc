#include "dist/cluster_invariants.h"

#include <cstdarg>
#include <cstdio>

#include "dist/cluster.h"
#include "storage/table.h"

namespace imoltp::dist {

namespace {

using core::TpccBenchmark;
using storage::Schema;

/// Same audit transaction type the single-node invariants use: the
/// audit flows through the engine's own Execute path (partition
/// routing, concurrency control) but measures state, not cycles.
constexpr int kTxnAudit = 90;

std::string Sprintf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

/// Cluster-wide sums one node contributes (all node-local reads).
struct NodeSums {
  bool ok = false;
  int64_t w_ytd = 0;           // Σ W_YTD (initial 0)
  int64_t customer_paid = 0;   // Σ (ytd_paid − 10): payments received
  int64_t stock_ytd = 0;       // Σ S_YTD (initial 0)
  int64_t order_line_qty = 0;  // Σ quantities of committed orders
};

NodeSums AuditNode(Node* node, fault::InvariantReport* rep) {
  NodeSums sums;
  engine::Engine* engine = node->engine();
  const core::TpccConfig& cfg = [&] {
    core::TpccConfig c;
    c.warehouses = node->config().warehouses;
    c.orders_per_district = node->config().orders_per_district;
    c.num_partitions = node->config().workers;
    return c;
  }();
  core::TpccBenchmark bench(cfg);
  const std::vector<engine::TableDef> defs = bench.Tables();
  const Schema wsch = defs[TpccBenchmark::kWarehouse].schema;
  const Schema dsch = defs[TpccBenchmark::kDistrict].schema;
  const Schema csch = defs[TpccBenchmark::kCustomer].schema;
  const Schema osch = defs[TpccBenchmark::kOrder].schema;
  const Schema olsch = defs[TpccBenchmark::kOrderLine].schema;
  const Schema ssch = defs[TpccBenchmark::kStock].schema;
  const int64_t orders0 = cfg.orders_per_district;

  mcsim::MachineSim* machine = engine->machine();
  machine->SetEnabled(false);

  bool all_ok = true;
  for (uint64_t w = 0; w < static_cast<uint64_t>(cfg.warehouses); ++w) {
    const int worker = node->WorkerFor(w);
    engine::TxnRequest req;
    req.type = kTxnAudit;
    req.partition_key = w;
    req.key_space = static_cast<uint64_t>(cfg.warehouses);
    req.statements = 1;

    const Status s = engine->Execute(
        worker, req, [&](engine::TxnContext& ctx) -> Status {
          uint8_t row[256];
          storage::RowId rid;
          Status st = ctx.Probe(TpccBenchmark::kWarehouse,
                                index::Key::FromUint64(w), &rid);
          if (!st.ok()) return st;
          st = ctx.Read(TpccBenchmark::kWarehouse, rid, row);
          if (!st.ok()) return st;
          sums.w_ytd += wsch.GetLong(row, 1);

          for (uint64_t d = 0;
               d < TpccBenchmark::kDistrictsPerWarehouse; ++d) {
            st = ctx.Probe(TpccBenchmark::kDistrict,
                           index::Key::FromUint64(
                               TpccBenchmark::DistrictKey(w, d)),
                           &rid);
            if (!st.ok()) return st;
            st = ctx.Read(TpccBenchmark::kDistrict, rid, row);
            if (!st.ok()) return st;
            const int64_t next_o = dsch.GetLong(row, 2);

            for (uint64_t c = 0;
                 c < TpccBenchmark::kCustomersPerDistrict; ++c) {
              st = ctx.Probe(TpccBenchmark::kCustomer,
                             index::Key::FromUint64(
                                 TpccBenchmark::CustomerKey(w, d, c)),
                             &rid);
              if (!st.ok()) return st;
              st = ctx.Read(TpccBenchmark::kCustomer, rid, row);
              if (!st.ok()) return st;
              sums.customer_paid += csch.GetLong(row, 2) - 10;
            }

            for (int64_t o = orders0; o < next_o; ++o) {
              const uint64_t okey = TpccBenchmark::OrderKey(
                  w, d, static_cast<uint64_t>(o));
              st = ctx.Probe(TpccBenchmark::kOrder,
                             index::Key::FromUint64(okey), &rid);
              if (!st.ok()) continue;  // missing order: the per-node
                                       // audit already reports it
              st = ctx.Read(TpccBenchmark::kOrder, rid, row);
              if (!st.ok()) return st;
              const int64_t ol_cnt = osch.GetLong(row, 2);
              std::vector<storage::RowId> rows;
              st = ctx.Scan(
                  TpccBenchmark::kOrderLine,
                  index::Key::FromUint64(TpccBenchmark::OrderLineKey(
                      w, d, static_cast<uint64_t>(o), 0)),
                  static_cast<uint64_t>(ol_cnt) + 1, &rows);
              if (!st.ok()) return st;
              for (storage::RowId lr : rows) {
                st = ctx.Read(TpccBenchmark::kOrderLine, lr, row);
                if (!st.ok()) return st;
                const uint64_t lkey =
                    static_cast<uint64_t>(olsch.GetLong(row, 0));
                if ((lkey >> 8) == okey) {
                  sums.order_line_qty += olsch.GetLong(row, 2);
                }
              }
            }
          }

          for (uint64_t i = 0; i < TpccBenchmark::kStockPerWarehouse;
               ++i) {
            st = ctx.Probe(TpccBenchmark::kStock,
                           index::Key::FromUint64(
                               TpccBenchmark::StockKey(w, i)),
                           &rid);
            if (!st.ok()) return st;
            st = ctx.Read(TpccBenchmark::kStock, rid, row);
            if (!st.ok()) return st;
            sums.stock_ytd += ssch.GetLong(row, 2);
          }
          return Status::Ok();
        });
    if (!s.ok()) {
      all_ok = false;
      rep->Violate(Sprintf("cluster audit node %d warehouse %llu "
                           "aborted: %s",
                           node->node_id(),
                           static_cast<unsigned long long>(w),
                           s.message().c_str()));
    }
  }

  machine->SetEnabled(true);
  sums.ok = all_ok;
  return sums;
}

}  // namespace

fault::InvariantReport CheckClusterInvariants(Cluster* cluster) {
  fault::InvariantReport rep;

  bool all_alive = true;
  int audited = 0;
  NodeSums total;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    Node* node = cluster->node(n);
    if (!node->alive()) {
      all_alive = false;
      continue;
    }

    // Layer 1: the node's own local TPC-C consistency.
    core::TpccConfig cfg;
    cfg.warehouses = node->config().warehouses;
    cfg.orders_per_district = node->config().orders_per_district;
    cfg.num_partitions = node->config().workers;
    fault::InvariantReport local = fault::CheckTpccInvariants(
        node->engine(), cfg, node->config().workers);
    for (const std::string& v : local.violations) {
      rep.Violate(Sprintf("node %d: %s", n, v.c_str()));
    }
    for (int64_t c : local.checksums) rep.checksums.push_back(c);

    // Cross-node sums.
    const NodeSums sums = AuditNode(node, &rep);
    total.w_ytd += sums.w_ytd;
    total.customer_paid += sums.customer_paid;
    total.stock_ytd += sums.stock_ytd;
    total.order_line_qty += sums.order_line_qty;
    if (sums.ok) ++audited;
  }

  if (all_alive && audited == cluster->num_nodes()) {
    // Layer 2: every Payment adds `amount` to one warehouse's W_YTD
    // (home node) and the same amount to one customer's ytd_paid
    // (possibly another node). Initial W_YTD is 0 and initial
    // ytd_paid is 10 per customer, so the deltas must match globally
    // even though no single node's books balance on their own.
    if (total.w_ytd != total.customer_paid) {
      rep.Violate(Sprintf(
          "cluster money conservation: sum W_YTD %lld != sum customer "
          "ytd_paid delta %lld",
          static_cast<long long>(total.w_ytd),
          static_cast<long long>(total.customer_paid)));
    }
    // Layer 3: every committed order line adds its quantity to exactly
    // one stock row's S_YTD — at the supplying node, which for remote
    // lines is not the node holding the order line.
    if (total.stock_ytd != total.order_line_qty) {
      rep.Violate(Sprintf(
          "cluster order-line conservation: sum stock S_YTD %lld != "
          "sum order-line quantities %lld",
          static_cast<long long>(total.stock_ytd),
          static_cast<long long>(total.order_line_qty)));
    }
  }

  rep.checksums.push_back(total.w_ytd);
  rep.checksums.push_back(total.customer_paid);
  rep.checksums.push_back(total.stock_ytd);
  rep.checksums.push_back(total.order_line_qty);
  rep.checksums.push_back(audited);
  rep.checksums.push_back(all_alive ? 1 : 0);
  return rep;
}

}  // namespace imoltp::dist
