#ifndef IMOLTP_DIST_NODE_H_
#define IMOLTP_DIST_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tpcc.h"
#include "engine/engine.h"
#include "mcsim/machine.h"
#include "mcsim/profiler.h"
#include "txn/log_manager.h"

namespace imoltp::dist {

/// Configuration of one cluster node. Nodes are symmetric: each owns a
/// contiguous block of `warehouses` warehouses (node-local ids
/// 0..warehouses-1; the cluster's OwnershipMap translates global ids)
/// and runs its own engine instance on its own simulated machine with
/// one worker core per intra-node partition.
struct NodeConfig {
  int node_id = 0;
  int warehouses = 2;          // local warehouses (divisible by workers)
  int workers = 2;             // worker cores == intra-node partitions
  int orders_per_district = 200;
  engine::EngineKind engine_kind = engine::EngineKind::kHyPer;
  engine::EngineOptions engine_options;   // num_partitions overridden
  mcsim::MachineConfig machine_config;    // num_cores overridden
};

/// Per-node transaction accounting, mutated by the cluster driver.
/// Everything here is outcome-derived and deterministic — it feeds the
/// cluster fingerprint; cycle-valued metrics live in the WindowReport
/// instead.
struct NodeStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t single_home = 0;      // committed single-home txns homed here
  uint64_t multi_home = 0;       // committed multi-home txns homed here
  uint64_t fragments = 0;        // fragments executed here (any origin)
  uint64_t stall_cycles = 0;     // network wait charged to this node
};

/// One node of the simulated cluster: a full engine + machine + local
/// TPC-C instance, plus the crash/recovery lifecycle the `node.death`
/// fault point exercises. Killing a node destroys its machine and
/// engine (volatile state is gone) but keeps the durable log it had
/// written; Recover() rebuilds the node from that log, exactly the
/// chaos-harness recovery contract (src/fault/chaos.cc) lifted to node
/// granularity.
class Node {
 public:
  explicit Node(const NodeConfig& config);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Builds machine + engine and bulk-populates the local warehouses.
  Status Create();

  /// Opens / closes the measurement window on all worker cores. The
  /// window survives Kill(): killing a measuring node closes its
  /// window first so the partial report is kept.
  void BeginWindow();
  void EndWindow();

  /// Simulated fail-stop: snapshots the durable log, then drops engine
  /// and machine. The node stops generating and executing.
  void Kill(uint64_t round);

  /// Rebuilds a killed node: fresh machine + engine, re-populated
  /// initial database, REDO of the saved durable log.
  Status Recover();

  bool alive() const { return alive_; }
  bool ever_died() const { return ever_died_; }
  uint64_t death_round() const { return death_round_; }

  int node_id() const { return config_.node_id; }
  const NodeConfig& config() const { return config_; }

  engine::Engine* engine() { return engine_.get(); }
  mcsim::MachineSim* machine() { return machine_.get(); }
  core::TpccBenchmark* bench() { return bench_.get(); }

  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }

  /// The measurement window's report: the profiler's if the node is
  /// alive and measured normally, the stashed partial one if the node
  /// was killed mid-window. Valid after EndWindow().
  const mcsim::WindowReport& window() const { return window_; }
  bool has_window() const { return has_window_; }

  /// Home worker core of node-local warehouse `local_w` (same formula
  /// the single-node TPC-C harness uses to route warehouses to
  /// partitions).
  int WorkerFor(uint64_t local_w) const {
    return static_cast<int>(local_w *
                            static_cast<uint64_t>(config_.workers) /
                            static_cast<uint64_t>(config_.warehouses));
  }

  /// Durable log for fingerprints / recovery checks: the engine's live
  /// stable log while alive, the death-time snapshot after Kill().
  std::vector<txn::LogRecord> DurableLog() const;

 private:
  NodeConfig config_;
  std::unique_ptr<mcsim::MachineSim> machine_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<core::TpccBenchmark> bench_;  // survives recovery:
  // its history-id counter must stay monotonic across the crash or
  // post-recovery Payments would collide with replayed history rows.
  std::unique_ptr<mcsim::Profiler> profiler_;
  NodeStats stats_;
  mcsim::WindowReport window_;
  bool window_open_ = false;
  bool has_window_ = false;
  bool alive_ = false;
  bool ever_died_ = false;
  uint64_t death_round_ = 0;
  std::vector<txn::LogRecord> saved_log_;
};

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_NODE_H_
