#ifndef IMOLTP_DIST_CLUSTER_INVARIANTS_H_
#define IMOLTP_DIST_CLUSTER_INVARIANTS_H_

#include "fault/invariants.h"

namespace imoltp::dist {

class Cluster;

/// Whole-cluster consistency audit, run after a cluster run (and after
/// any node recovery). Three layers:
///
///   1. Per node: the single-node TPC-C invariants (W_YTD == Σ D_YTD,
///      order/order-line presence) — remote fragments must not have
///      broken any node's local books.
///   2. Cross-node money conservation: Σ W_YTD over the cluster ==
///      Σ (customer ytd_paid − initial) over the cluster. A remote
///      payment splits these across two nodes; the identity only holds
///      if every home fragment's paired customer fragment committed
///      (and survived recovery).
///   3. Cross-node order-line conservation: Σ stock S_YTD over the
///      cluster == Σ order-line quantities of committed orders. A
///      remote order line's quantity sits in the home node's order
///      line but the supplying node's S_YTD.
///
/// Cross-node checks (2) and (3) need every node alive; if one is
/// still dead (chaos with recover=false) they are skipped and only the
/// per-node audits of the survivors run.
fault::InvariantReport CheckClusterInvariants(Cluster* cluster);

}  // namespace imoltp::dist

#endif  // IMOLTP_DIST_CLUSTER_INVARIANTS_H_
