#include "core/microbench.h"

#include <cstdio>
#include <cstring>

namespace imoltp::core {

namespace {

// A populated OLTP row costs more than its payload: slot headers, index
// entry, alignment. The paper's 1MB/10MB sizes must stay LLC-resident
// and the 10GB/100GB sizes must exceed it; this footprint estimate maps
// nominal bytes to row counts accordingly.
constexpr uint64_t kLongRowFootprint = 40;    // 16B payload + overhead
constexpr uint64_t kStringRowFootprint = 140;  // 100B payload + overhead

}  // namespace

MicroBenchmark::MicroBenchmark(const MicroConfig& config)
    : config_(config) {
  const uint64_t footprint = config.string_columns ? kStringRowFootprint
                                                   : kLongRowFootprint;
  num_rows_ = config.nominal_bytes / footprint;
  // The resident cap is expressed in Long-row units; scale it by the
  // row footprint so a "100GB" database has the same resident BYTE
  // budget under either data type (the paper compares at fixed nominal
  // size: bigger rows mean proportionally fewer of them).
  const uint64_t cap =
      config.max_resident_rows * kLongRowFootprint / footprint;
  if (num_rows_ > cap) num_rows_ = cap;
  if (num_rows_ < 64) num_rows_ = 64;
}

std::vector<engine::TableDef> MicroBenchmark::Tables() const {
  engine::TableDef t;
  t.name = "micro";
  t.schema = config_.string_columns ? storage::TwoStringColumns()
                                    : storage::TwoLongColumns();
  t.initial_rows = num_rows_;
  t.nominal_bytes = config_.nominal_bytes;
  t.seed = 7;
  t.key_bytes = config_.string_columns ? storage::kStringBytes : 8;
  return {t};
}

index::Key MicroBenchmark::MakeKey(uint64_t id) const {
  if (!config_.string_columns) return index::Key::FromUint64(id);
  // Must match DefaultRowGenerator's column-0 encoding: digits first,
  // 'a' filler to the fixed String width.
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(id));
  for (uint32_t i = static_cast<uint32_t>(n); i < storage::kStringBytes;
       ++i) {
    buf[i] = 'a';
  }
  return index::Key::FromBytes(buf, storage::kStringBytes);
}

Status MicroBenchmark::RunTransaction(engine::Engine* engine, int worker,
                                      Rng* rng) {
  // Each worker draws from its partition's key range.
  const int parts = config_.num_partitions;
  const uint64_t lo = num_rows_ * worker / parts;
  const uint64_t hi = num_rows_ * (worker + 1) / parts;

  engine::TxnRequest req;
  req.type = config_.read_write ? kTxnUpdate : kTxnRead;
  req.partition_key = lo;
  req.key_space = num_rows_;
  req.statements = config_.read_write ? 2 : 1;

  // Draw the row ids up front so the body is a pure stored procedure.
  uint64_t ids[128];
  const int n = config_.rows_per_txn;
  for (int i = 0; i < n; ++i) ids[i] = rng->Range(lo, hi - 1);
  const int64_t new_value = static_cast<int64_t>(rng->Next());

  return engine->Execute(worker, req, [&](engine::TxnContext& ctx) {
    uint8_t row[128];
    for (int i = 0; i < n; ++i) {
      storage::RowId rid;
      Status s = ctx.Probe(0, MakeKey(ids[i]), &rid);
      if (!s.ok()) return s;
      s = ctx.Read(0, rid, row);
      if (!s.ok()) return s;
      if (config_.read_write) {
        if (config_.string_columns) {
          char value[storage::kStringBytes];
          std::snprintf(value, sizeof(value), "%048llx",
                        static_cast<unsigned long long>(new_value + i));
          s = ctx.Update(0, rid, 1, value);
        } else {
          const int64_t v = new_value + i;
          s = ctx.Update(0, rid, 1, &v);
        }
        if (!s.ok()) return s;
      }
    }
    return Status::Ok();
  });
}

}  // namespace imoltp::core
