#ifndef IMOLTP_CORE_REPORT_H_
#define IMOLTP_CORE_REPORT_H_

#include <string>
#include <vector>

#include "mcsim/profiler.h"

namespace imoltp::core {

/// One figure cell: a label ("Shore-MT 1MB") plus its window report.
struct ReportRow {
  std::string label;
  mcsim::WindowReport report;
};

/// Plain-text renderers matching the paper's figure formats: IPC bars,
/// stall cycles per 1000 instructions, stall cycles per transaction
/// (each broken down L1I / L2I / LLC I / L1D / L2D / LLC D), and the
/// Figure 7 module breakdown.
void PrintIpc(const std::string& title, const std::vector<ReportRow>& rows);
void PrintStallsPerKInstr(const std::string& title,
                          const std::vector<ReportRow>& rows);
void PrintStallsPerTxn(const std::string& title,
                       const std::vector<ReportRow>& rows);
void PrintEngineShare(const std::string& title,
                      const std::vector<ReportRow>& rows);
void PrintModuleBreakdown(const std::string& title,
                          const ReportRow& row);

/// Top-Down-style accounting of the modeled cycles: retiring (inherent
/// CPI work), frontend (instruction-miss refill), memory (data misses +
/// TLB walks), and bad speculation (branch mispredictions) — the same
/// lens the paper's VTune methodology ultimately rests on.
void PrintCycleAccounting(const std::string& title,
                          const std::vector<ReportRow>& rows,
                          const mcsim::CycleModelParams& params = {});

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_REPORT_H_
