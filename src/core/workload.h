#ifndef IMOLTP_CORE_WORKLOAD_H_
#define IMOLTP_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/engine.h"

namespace imoltp::core {

/// The shipped benchmark vocabulary. Every tool that takes a
/// --workload flag parses it through ParseWorkload so unknown names
/// are rejected in one place, with one canonical choices list.
enum class WorkloadKind {
  kMicro,
  kMicroRw,
  kMicroString,
  kTpcb,
  kTpcc,
};

inline const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMicro:
      return "micro";
    case WorkloadKind::kMicroRw:
      return "micro-rw";
    case WorkloadKind::kMicroString:
      return "micro-string";
    case WorkloadKind::kTpcb:
      return "tpcb";
    case WorkloadKind::kTpcc:
      return "tpcc";
  }
  return "?";
}

/// Canonical choices list for CLI error messages.
inline const char* WorkloadChoices() {
  return "micro micro-rw micro-string tpcb tpcc";
}

inline bool ParseWorkload(const std::string& name, WorkloadKind* out) {
  if (name == "micro") return *out = WorkloadKind::kMicro, true;
  if (name == "micro-rw") return *out = WorkloadKind::kMicroRw, true;
  if (name == "micro-string") {
    return *out = WorkloadKind::kMicroString, true;
  }
  if (name == "tpcb") return *out = WorkloadKind::kTpcb, true;
  if (name == "tpcc") return *out = WorkloadKind::kTpcc, true;
  return false;
}

/// A benchmark: table definitions plus a transaction generator. Bodies
/// are written once against engine::TxnContext and run unchanged on all
/// five engine archetypes (the paper implements each benchmark in every
/// system's frontend; the archetypes share one stored-procedure API).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  /// Table definitions for Engine::CreateDatabase.
  virtual std::vector<engine::TableDef> Tables() const = 0;

  /// Generates and executes one transaction on `worker`. Workers draw
  /// their keys from their own partition's range so that partitioned
  /// engines run single-site transactions (paper Section 7 ensures all
  /// VoltDB transactions access a single partition).
  virtual Status RunTransaction(engine::Engine* engine, int worker,
                                Rng* rng) = 0;

  /// Transaction-type vocabulary for the module×type attribution matrix
  /// (WindowReport::txn_module_matrix). Single-procedure benchmarks
  /// keep the defaults; mixes (TPC-C) override all three. Per-worker
  /// last-type state must be thread-confined to `worker` — workers run
  /// concurrently in ParallelMode::kFree.
  virtual int NumTransactionTypes() const { return 1; }
  virtual const char* TransactionTypeName(int type) const {
    (void)type;
    return name();
  }
  /// Type of the transaction the most recent RunTransaction on `worker`
  /// executed (stable across the retry loop's re-executions: the RNG is
  /// rewound, so the same type re-runs).
  virtual int LastTransactionType(int worker) const {
    (void)worker;
    return 0;
  }
};

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_WORKLOAD_H_
