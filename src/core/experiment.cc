#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/seed.h"
#include "fault/fault_injector.h"
#include "obs/timeline.h"

namespace imoltp::core {

namespace {

/// Buckets one abort Status by cause, using the engines' stable abort
/// message vocabulary (see docs/robustness.md).
void ClassifyAbort(const Status& s, mcsim::AbortBreakdown* b) {
  ++b->total;
  const std::string& m = s.message();
  if (m.find("injected") != std::string::npos) {
    ++b->injected_fault;
  } else if (m.find("lock conflict") != std::string::npos ||
             m.find("upgrade") != std::string::npos) {
    ++b->lock_conflict;
  } else if (m.find("validation") != std::string::npos ||
             m.find("write-write") != std::string::npos) {
    ++b->validation;
  } else if (m.find("partition") != std::string::npos) {
    ++b->partition;
  } else {
    ++b->other;
  }
}

/// Token-passing barrier for ParallelMode::kDeterministic: worker w may
/// run its next transaction only while holding the token, which cycles
/// 0, 1, ..., W-1, 0, ... — so the global execution order is exactly
/// the serial nested loop's (transaction t on worker 0, then 1, ...).
/// The mutex hand-off also sequences every access to shared runner
/// state (histogram, abort counter) between workers.
class Turnstile {
 public:
  explicit Turnstile(int workers) : workers_(workers) {}

  void Await(int worker) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return turn_ == worker; });
  }

  void Advance() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      turn_ = (turn_ + 1) % workers_;
    }
    cv_.notify_all();
  }

 private:
  const int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  int turn_ = 0;
};

}  // namespace

/// Aggregates instructions and model cycles over the first- and
/// second-half buckets of every worker core's sampled series, then
/// compares the two halves' IPC. A window that was still warming up
/// (caches ramping, a contention storm draining) shows a first half
/// measurably slower or faster than its second.
mcsim::ConvergenceCheck CheckConvergence(const mcsim::WindowReport& r,
                                         double rtol) {
  mcsim::ConvergenceCheck check;
  check.tolerance = rtol;
  double instr[2] = {0.0, 0.0};
  double cycles[2] = {0.0, 0.0};
  for (const mcsim::CoreSeries& series : r.timeseries) {
    const size_t n = series.buckets.size();
    if (n < 2) continue;
    check.checked = true;
    for (size_t i = 0; i < n; ++i) {
      const int half = i < n / 2 ? 0 : 1;
      instr[half] += static_cast<double>(series.buckets[i].instructions);
      cycles[half] += series.buckets[i].model_cycles;
    }
  }
  if (!check.checked) return check;
  if (cycles[0] > 0) check.first_half_ipc = instr[0] / cycles[0];
  if (cycles[1] > 0) check.second_half_ipc = instr[1] / cycles[1];
  if (check.second_half_ipc > 0) {
    check.divergence =
        std::abs(check.first_half_ipc - check.second_half_ipc) /
        check.second_half_ipc;
  }
  check.converged = check.divergence <= rtol;
  return check;
}

const char* ParallelModeName(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::kSerial:
      return "serial";
    case ParallelMode::kDeterministic:
      return "deterministic";
    case ParallelMode::kFree:
      return "free";
  }
  return "?";
}

bool ParseParallelMode(const std::string& name, ParallelMode* out) {
  if (name == "serial") return *out = ParallelMode::kSerial, true;
  if (name == "deterministic") {
    return *out = ParallelMode::kDeterministic, true;
  }
  if (name == "free") return *out = ParallelMode::kFree, true;
  return false;
}

const char* ParallelModeChoices() { return "serial deterministic free"; }

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config) {}

StatusOr<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const ExperimentConfig& config, Workload* schema_source) {
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner(config));
  const Status s = runner->Init(schema_source);
  if (!s.ok()) return s;
  return runner;
}

Status ExperimentRunner::Init(Workload* schema_source) {
  obs::PhaseTimer populate_timer(&host_perf_.populate_seconds);
  mcsim::MachineConfig mc = config_.machine_config;
  mc.num_cores = config_.num_workers;
  machine_ = std::make_unique<mcsim::MachineSim>(mc);

  engine::EngineOptions opts = config_.engine_options;
  opts.num_partitions = config_.num_workers;
  engine_ = engine::CreateEngine(config_.engine, machine_.get(), opts);

  if (config_.hooks.pre_populate) {
    const Status s = config_.hooks.pre_populate(machine_.get());
    if (!s.ok()) return s;
  }
  return engine_->CreateDatabase(schema_source->Tables());
}

void ExperimentRunner::RunPhase(Workload* workload, ParallelMode mode,
                                uint64_t txns, std::vector<Rng>* rngs,
                                bool measure) {
  const int workers = config_.num_workers;
  const mcsim::CycleModelParams& params = machine_->config().cycle;
  fault::FaultInjector* inj = config_.engine_options.fault_injector;
  const int max_attempts = std::max(1, config_.retry.max_attempts);
  const int retry_cap = std::max(0, config_.retry.max_inflight_retries);

  // A latched injected crash halts the phase: once any worker's engine
  // call crashed, no worker starts another transaction (a crashed
  // process executes nothing). Initialized from the injector so a crash
  // in the warm-up phase also empties the measurement window.
  std::atomic<bool> halt{inj != nullptr && inj->crash_pending()};

  // Retry attempts are sliced onto the timeline (with a shared flow id
  // per logical transaction) only while a recorder is attached to the
  // measured window — warm-up and recorder-less runs pay nothing.
  obs::TimelineRecorder* recorder =
      measure ? engine_->span_collector()->recorder() : nullptr;

  // One worker-transaction, including its retry loop. Latency/abort
  // accounting goes to the given sinks: the shared members for the
  // serialized modes (every access is ordered by program order or the
  // turnstile mutex), per-worker locals for kFree. The latency sample
  // covers every attempt plus backoff — the retry tail is exactly what
  // the per-attempt averages would hide.
  auto body = [&](int w, const PhaseSinks& sinks) {
    Rng* rng = &(*rngs)[w];
    mcsim::CoreSim* core = &machine_->core(w);
    // Full snapshot (per-module array included) so the final-outcome
    // delta can feed both the latency histogram and the module×txn-type
    // matrix. Warm-up skips the copy.
    const mcsim::CoreCounters before =
        measure ? core->counters() : mcsim::CoreCounters{};
    bool committed_txn = false;
    bool holds_retry_token = false;
    std::vector<obs::AttemptEvent> attempt_log;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      const double attempt_t0 =
          recorder != nullptr
              ? mcsim::SimulatedCycles(core->counters(), params)
              : 0.0;
      // Snapshot the RNG so a retry re-executes the same logical
      // transaction (same keys, same values) rather than a fresh draw.
      const Rng snapshot = *rng;
      const Status s = workload->RunTransaction(engine_.get(), w, rng);
      if (recorder != nullptr) {
        obs::AttemptEvent ev;
        ev.attempt = attempt;
        ev.committed = s.ok();
        ev.t0 = attempt_t0;
        ev.t1 = mcsim::SimulatedCycles(core->counters(), params);
        attempt_log.push_back(ev);
      }
      if (s.ok()) {
        committed_txn = true;
        if (measure) {
          ++*sinks.committed;
          if (attempt > 1) ++sinks.retry->retry_successes;
        }
        break;
      }
      if (measure) {
        ++*sinks.aborts;
        ClassifyAbort(s, sinks.breakdown);
      }
      // A crashed process retries nothing.
      if (inj != nullptr && inj->crash_pending()) break;
      if (attempt >= max_attempts) break;
      if (!holds_retry_token) {
        // Admission cap: bounded concurrent retriers, or load-shed.
        int cur = inflight_retries_.load(std::memory_order_relaxed);
        bool admitted = false;
        while (cur < retry_cap) {
          if (inflight_retries_.compare_exchange_weak(cur, cur + 1)) {
            admitted = true;
            break;
          }
        }
        if (!admitted) {
          if (measure) ++sinks.retry->retry_rejections;
          break;
        }
        holds_retry_token = true;
      }
      // Bounded exponential backoff, charged to the worker's core.
      if (config_.retry.backoff_cycles > 0) {
        core->Retire(config_.retry.backoff_cycles
                     << std::min(attempt - 1, 16));
      }
      if (mode == ParallelMode::kFree) std::this_thread::yield();
      *rng = snapshot;
      if (measure) ++sinks.retry->retries;
    }
    if (holds_retry_token) {
      inflight_retries_.fetch_sub(1, std::memory_order_relaxed);
    }
    // Single-attempt transactions draw no flow id: flow arrows only
    // mean something when there is a second slice to point at.
    if (recorder != nullptr && attempt_log.size() > 1) {
      const uint64_t flow =
          next_flow_id_.fetch_add(1, std::memory_order_relaxed);
      for (obs::AttemptEvent& ev : attempt_log) {
        ev.flow_id = flow;
        recorder->RecordAttempt(w, ev);
      }
    }
    if (inj != nullptr && inj->crash_pending()) {
      halt.store(true, std::memory_order_release);
    }
    // Mark the final outcome on the core so the sampled time-series can
    // report abort rate per bucket (cycle-model neutral: aborted_txns
    // feeds no cycle math).
    if (!committed_txn) core->CountAbort();
    if (measure) {
      const mcsim::CoreCounters delta = core->counters() - before;
      sinks.lat->Add(mcsim::SimulatedCycles(delta, params));
      // Module×txn-type attribution: the whole final-outcome delta
      // (every attempt plus backoff) lands on this transaction's type.
      const int type = workload->LastTransactionType(w);
      if (sinks.matrix != nullptr && type >= 0 &&
          static_cast<size_t>(type) < sinks.matrix->counts.size()) {
        ++sinks.matrix->counts[type];
        for (int m = 0; m < mcsim::kMaxModules; ++m) {
          sinks.matrix->cycles[type][m] +=
              mcsim::SimulatedCycles(delta.per_module[m], params);
        }
      }
    }
    // Checkpoint cadence: one tick per worker-transaction boundary (a
    // no-op unless the engine was built with checkpointing enabled).
    // A crashed process captures and truncates nothing further.
    if (inj == nullptr || !inj->crash_pending()) {
      engine_->CheckpointTick(w);
    }
  };

  const PhaseSinks shared{&latency_, &aborts_, &breakdown_, &retry_stats_,
                          &committed_, &matrix_};

  switch (mode) {
    case ParallelMode::kSerial: {
      for (uint64_t t = 0; t < txns; ++t) {
        for (int w = 0; w < workers; ++w) {
          if (halt.load(std::memory_order_acquire)) return;
          body(w, shared);
        }
      }
      return;
    }
    case ParallelMode::kDeterministic: {
      Turnstile turnstile(workers);
      // Per-worker host CPU: each thread exists for exactly this phase,
      // so its thread-CPU clock at exit is the phase's consumption.
      std::vector<double> cpu_seconds(workers, 0.0);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          for (uint64_t t = 0; t < txns; ++t) {
            turnstile.Await(w);
            // After a crash every worker keeps cycling the turnstile
            // (so no one blocks) but runs nothing further.
            if (!halt.load(std::memory_order_acquire)) body(w, shared);
            turnstile.Advance();
          }
          cpu_seconds[w] = obs::ThreadCpuSeconds();
        });
      }
      for (auto& th : threads) th.join();
      if (measure) {
        for (int w = 0; w < workers; ++w) {
          host_perf_.workers.push_back({w, cpu_seconds[w], 0.0});
        }
      }
      return;
    }
    case ParallelMode::kFree: {
      std::vector<obs::LatencyHistogram> local_lat(workers);
      std::vector<uint64_t> local_aborts(workers, 0);
      std::vector<mcsim::AbortBreakdown> local_breakdown(workers);
      std::vector<RetryStats> local_retry(workers);
      std::vector<uint64_t> local_committed(workers, 0);
      std::vector<TxnMatrixAcc> local_matrix(workers);
      for (auto& m : local_matrix) {
        m.Resize(static_cast<int>(matrix_.counts.size()));
      }
      machine_->SetFreeRunning(true);
      std::vector<double> cpu_seconds(workers, 0.0);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          const PhaseSinks local{&local_lat[w], &local_aborts[w],
                                 &local_breakdown[w], &local_retry[w],
                                 &local_committed[w], &local_matrix[w]};
          for (uint64_t t = 0; t < txns; ++t) {
            if (halt.load(std::memory_order_acquire)) break;
            // Simulated worker-core death: the thread stops issuing
            // transactions; the rest of the fleet keeps running.
            if (inj != nullptr && inj->Fires(fault::kCoreDeath)) break;
            body(w, local);
          }
          cpu_seconds[w] = obs::ThreadCpuSeconds();
        });
      }
      for (auto& th : threads) th.join();
      machine_->SetFreeRunning(false);
      if (measure) {
        for (int w = 0; w < workers; ++w) {
          host_perf_.workers.push_back({w, cpu_seconds[w], 0.0});
        }
      }
      // Merge in worker order so repeated runs at least merge
      // identically-shaped state the same way.
      for (int w = 0; w < workers; ++w) {
        latency_.Merge(local_lat[w]);
        aborts_ += local_aborts[w];
        committed_ += local_committed[w];
        matrix_.Merge(local_matrix[w]);
        retry_stats_.retries += local_retry[w].retries;
        retry_stats_.retry_successes += local_retry[w].retry_successes;
        retry_stats_.retry_rejections += local_retry[w].retry_rejections;
        const mcsim::AbortBreakdown& lb = local_breakdown[w];
        breakdown_.total += lb.total;
        breakdown_.lock_conflict += lb.lock_conflict;
        breakdown_.validation += lb.validation;
        breakdown_.partition += lb.partition;
        breakdown_.injected_fault += lb.injected_fault;
        breakdown_.other += lb.other;
      }
      return;
    }
  }
}

StatusOr<mcsim::WindowReport> ExperimentRunner::Run(Workload* workload) {
  const int workers = config_.num_workers;
  std::vector<Rng> rngs;
  rngs.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    rngs.emplace_back(DeriveSeed2(config_.seed, runs_,
                                  static_cast<uint64_t>(i),
                                  SeedStream::kWorker));
  }
  ++runs_;

  // A single worker needs no host threads, and an attached trace sink
  // requires the one totally-ordered event stream only serial
  // execution produces.
  ParallelMode mode = config_.parallel_mode;
  if (workers <= 1 || trace_sink_ != nullptr) {
    mode = ParallelMode::kSerial;
  }

  // Host self-observability for this Run: warm-up accumulates across
  // calls, the measurement fields cover the newest window only.
  host_perf_.parallel_mode = ParallelModeName(mode);
  host_perf_.workers.clear();

  // Warm-up: simulation on (caches fill), profiler not yet attached.
  {
    obs::PhaseTimer warmup_timer(&host_perf_.warmup_seconds);
    RunPhase(workload, mode, config_.warmup_txns, &rngs,
             /*measure=*/false);
  }

  if (config_.hooks.post_warmup) {
    const Status s = config_.hooks.post_warmup(machine_.get());
    if (!s.ok()) return s;
  }

  // Measurement window, filtered to the worker cores. Lifecycle spans
  // and the latency histogram cover exactly the same window.
  mcsim::Profiler profiler(machine_.get());
  std::vector<int> cores;
  for (int w = 0; w < workers; ++w) cores.push_back(w);
  engine_->span_collector()->Reset();
  latency_.Reset();
  breakdown_ = mcsim::AbortBreakdown{};
  retry_stats_ = RetryStats{};
  committed_ = 0;
  matrix_.Resize(workload->NumTransactionTypes());
  // Periodic sampling covers exactly the measurement window: armed
  // here (warm-up never pays the per-retire check) and disarmed after
  // EndWindow has drained the rings.
  machine_->ArmSampler(config_.sampler);
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/true);
  profiler.BeginWindow(cores);
  const mcsim::CoreCounters window_start = machine_->TotalCounters();
  const double wall_start = obs::MonotonicSeconds();
  RunPhase(workload, mode, config_.measure_txns, &rngs, /*measure=*/true);
  const double wall = obs::MonotonicSeconds() - wall_start;
  const mcsim::CoreCounters work =
      machine_->TotalCounters() - window_start;
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/false);
  mcsim::WindowReport report = profiler.EndWindow();
  machine_->ArmSampler(mcsim::SamplerConfig{});
  report.aborts = breakdown_;

  // Host-side throughput of the window: simulated references (code-line
  // fetches + data accesses — the unit the raw-speed ROADMAP item
  // tracks) and retired instructions per host second.
  host_perf_.measure_seconds = wall;
  host_perf_.simulated_refs =
      work.code_line_fetches + work.data_accesses;
  host_perf_.simulated_instructions = work.instructions;
  if (wall > 0) {
    host_perf_.refs_per_second =
        static_cast<double>(host_perf_.simulated_refs) / wall;
    host_perf_.instructions_per_second =
        static_cast<double>(work.instructions) / wall;
    host_perf_.txns_per_second = static_cast<double>(committed_) / wall;
    for (obs::WorkerHostUtilization& u : host_perf_.workers) {
      u.utilization = u.cpu_seconds / wall;
    }
  }
  host_perf_.peak_rss_bytes = obs::PeakRssBytes();
  report.convergence = CheckConvergence(report, config_.convergence_rtol);
  AttachTxnMatrix(workload, &report);
  return report;
}

void ExperimentRunner::AttachTxnMatrix(Workload* workload,
                                       mcsim::WindowReport* report) const {
  const mcsim::ModuleRegistry& modules = machine_->modules();
  double matrix_total = 0.0;
  for (const auto& row : matrix_.cycles) {
    for (double c : row) matrix_total += c;
  }
  for (size_t t = 0; t < matrix_.counts.size(); ++t) {
    if (matrix_.counts[t] == 0) continue;
    mcsim::TxnTypeShare row;
    row.txn_type = workload->TransactionTypeName(static_cast<int>(t));
    row.count = matrix_.counts[t];
    for (int m = 0; m < modules.size() && m < mcsim::kMaxModules; ++m) {
      if (matrix_.cycles[t][m] <= 0) continue;
      mcsim::ModuleShare share;
      share.name = modules.info(m).name;
      share.inside_engine = modules.info(m).inside_engine;
      share.cycles = matrix_.cycles[t][m];
      row.cycles += share.cycles;
      row.modules.push_back(std::move(share));
    }
    for (auto& share : row.modules) {
      share.fraction = row.cycles > 0 ? share.cycles / row.cycles : 0.0;
    }
    row.fraction = matrix_total > 0 ? row.cycles / matrix_total : 0.0;
    report->txn_module_matrix.push_back(std::move(row));
  }
}

StatusOr<mcsim::WindowReport> RunExperiment(const ExperimentConfig& config,
                                            Workload* workload) {
  auto runner = ExperimentRunner::Create(config, workload);
  if (!runner.ok()) return runner.status();
  return (*runner)->Run(workload);
}

}  // namespace imoltp::core
