#include "core/experiment.h"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace imoltp::core {

namespace {

/// Token-passing barrier for ParallelMode::kDeterministic: worker w may
/// run its next transaction only while holding the token, which cycles
/// 0, 1, ..., W-1, 0, ... — so the global execution order is exactly
/// the serial nested loop's (transaction t on worker 0, then 1, ...).
/// The mutex hand-off also sequences every access to shared runner
/// state (histogram, abort counter) between workers.
class Turnstile {
 public:
  explicit Turnstile(int workers) : workers_(workers) {}

  void Await(int worker) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return turn_ == worker; });
  }

  void Advance() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      turn_ = (turn_ + 1) % workers_;
    }
    cv_.notify_all();
  }

 private:
  const int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  int turn_ = 0;
};

}  // namespace

const char* ParallelModeName(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::kSerial:
      return "serial";
    case ParallelMode::kDeterministic:
      return "deterministic";
    case ParallelMode::kFree:
      return "free";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config) {}

StatusOr<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const ExperimentConfig& config, Workload* schema_source) {
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner(config));
  const Status s = runner->Init(schema_source);
  if (!s.ok()) return s;
  return runner;
}

Status ExperimentRunner::Init(Workload* schema_source) {
  mcsim::MachineConfig mc = config_.machine_config;
  mc.num_cores = config_.num_workers;
  machine_ = std::make_unique<mcsim::MachineSim>(mc);

  engine::EngineOptions opts = config_.engine_options;
  opts.num_partitions = config_.num_workers;
  engine_ = engine::CreateEngine(config_.engine, machine_.get(), opts);

  if (config_.hooks.pre_populate) {
    const Status s = config_.hooks.pre_populate(machine_.get());
    if (!s.ok()) return s;
  }
  return engine_->CreateDatabase(schema_source->Tables());
}

void ExperimentRunner::RunPhase(Workload* workload, ParallelMode mode,
                                uint64_t txns, std::vector<Rng>* rngs,
                                bool measure) {
  const int workers = config_.num_workers;
  const mcsim::CycleModelParams& params = machine_->config().cycle;

  // One worker-transaction. Latency/abort accounting goes to the given
  // sinks: the shared members for the serialized modes (every access is
  // ordered by program order or the turnstile mutex), per-worker locals
  // for kFree.
  auto body = [&](int w, obs::LatencyHistogram* lat, uint64_t* aborts) {
    Rng* rng = &(*rngs)[w];
    if (!measure) {
      (void)workload->RunTransaction(engine_.get(), w, rng);
      return;
    }
    const mcsim::ModuleCounters before =
        mcsim::AggregateCounters(machine_->core(w).counters());
    const Status s = workload->RunTransaction(engine_.get(), w, rng);
    if (!s.ok()) ++*aborts;
    const mcsim::ModuleCounters delta =
        mcsim::AggregateCounters(machine_->core(w).counters()) - before;
    lat->Add(mcsim::SimulatedCycles(delta, params));
  };

  switch (mode) {
    case ParallelMode::kSerial: {
      for (uint64_t t = 0; t < txns; ++t) {
        for (int w = 0; w < workers; ++w) {
          body(w, &latency_, &aborts_);
        }
      }
      return;
    }
    case ParallelMode::kDeterministic: {
      Turnstile turnstile(workers);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          for (uint64_t t = 0; t < txns; ++t) {
            turnstile.Await(w);
            body(w, &latency_, &aborts_);
            turnstile.Advance();
          }
        });
      }
      for (auto& th : threads) th.join();
      return;
    }
    case ParallelMode::kFree: {
      std::vector<obs::LatencyHistogram> local_lat(workers);
      std::vector<uint64_t> local_aborts(workers, 0);
      machine_->SetFreeRunning(true);
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          for (uint64_t t = 0; t < txns; ++t) {
            body(w, &local_lat[w], &local_aborts[w]);
          }
        });
      }
      for (auto& th : threads) th.join();
      machine_->SetFreeRunning(false);
      // Merge in worker order so repeated runs at least merge
      // identically-shaped state the same way.
      for (int w = 0; w < workers; ++w) {
        latency_.Merge(local_lat[w]);
        aborts_ += local_aborts[w];
      }
      return;
    }
  }
}

StatusOr<mcsim::WindowReport> ExperimentRunner::Run(Workload* workload) {
  const int workers = config_.num_workers;
  std::vector<Rng> rngs;
  rngs.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    rngs.emplace_back(config_.seed * 7919 + runs_ * 104729 + i);
  }
  ++runs_;

  // A single worker needs no host threads, and an attached trace sink
  // requires the one totally-ordered event stream only serial
  // execution produces.
  ParallelMode mode = config_.parallel_mode;
  if (workers <= 1 || trace_sink_ != nullptr) {
    mode = ParallelMode::kSerial;
  }

  // Warm-up: simulation on (caches fill), profiler not yet attached.
  RunPhase(workload, mode, config_.warmup_txns, &rngs, /*measure=*/false);

  if (config_.hooks.post_warmup) {
    const Status s = config_.hooks.post_warmup(machine_.get());
    if (!s.ok()) return s;
  }

  // Measurement window, filtered to the worker cores. Lifecycle spans
  // and the latency histogram cover exactly the same window.
  mcsim::Profiler profiler(machine_.get());
  std::vector<int> cores;
  for (int w = 0; w < workers; ++w) cores.push_back(w);
  engine_->span_collector()->Reset();
  latency_.Reset();
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/true);
  profiler.BeginWindow(cores);
  RunPhase(workload, mode, config_.measure_txns, &rngs, /*measure=*/true);
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/false);
  return profiler.EndWindow();
}

StatusOr<mcsim::WindowReport> RunExperiment(const ExperimentConfig& config,
                                            Workload* workload) {
  auto runner = ExperimentRunner::Create(config, workload);
  if (!runner.ok()) return runner.status();
  return (*runner)->Run(workload);
}

}  // namespace imoltp::core
