#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>

namespace imoltp::core {

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config,
                                   Workload* schema_source)
    : ExperimentRunner(config, schema_source, nullptr) {}

ExperimentRunner::ExperimentRunner(
    const ExperimentConfig& config, Workload* schema_source,
    const std::function<Status(mcsim::MachineSim*)>& pre_populate)
    : config_(config) {
  mcsim::MachineConfig mc = config.machine_config;
  mc.num_cores = config.num_workers;
  machine_ = std::make_unique<mcsim::MachineSim>(mc);

  engine::EngineOptions opts = config.engine_options;
  opts.num_partitions = config.num_workers;
  engine_ = engine::CreateEngine(config.engine, machine_.get(), opts);

  if (pre_populate != nullptr) {
    init_status_ = pre_populate(machine_.get());
    if (!init_status_.ok()) return;
  }

  const Status s = engine_->CreateDatabase(schema_source->Tables());
  if (!s.ok()) {
    std::fprintf(stderr, "CreateDatabase(%s) failed: %s\n",
                 engine_->name(), s.ToString().c_str());
    std::abort();
  }
}

mcsim::WindowReport ExperimentRunner::Run(Workload* workload) {
  const int workers = config_.num_workers;
  std::vector<Rng> rngs;
  rngs.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    rngs.emplace_back(config_.seed * 7919 + runs_ * 104729 + i);
  }
  ++runs_;

  // Warm-up: simulation on (caches fill), profiler not yet attached.
  for (uint64_t t = 0; t < config_.warmup_txns; ++t) {
    for (int w = 0; w < workers; ++w) {
      (void)workload->RunTransaction(engine_.get(), w, &rngs[w]);
    }
  }

  // Measurement window, filtered to the worker cores. Lifecycle spans
  // and the latency histogram cover exactly the same window.
  mcsim::Profiler profiler(machine_.get());
  std::vector<int> cores;
  for (int w = 0; w < workers; ++w) cores.push_back(w);
  engine_->span_collector()->Reset();
  latency_.Reset();
  const mcsim::CycleModelParams& params = machine_->config().cycle;
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/true);
  profiler.BeginWindow(cores);
  for (uint64_t t = 0; t < config_.measure_txns; ++t) {
    for (int w = 0; w < workers; ++w) {
      const mcsim::ModuleCounters before =
          mcsim::AggregateCounters(machine_->core(w).counters());
      const Status s =
          workload->RunTransaction(engine_.get(), w, &rngs[w]);
      if (!s.ok()) ++aborts_;
      const mcsim::ModuleCounters delta =
          mcsim::AggregateCounters(machine_->core(w).counters()) -
          before;
      latency_.Add(mcsim::SimulatedCycles(delta, params));
    }
  }
  if (trace_sink_ != nullptr) trace_sink_->OnWindowMark(/*begin=*/false);
  return profiler.EndWindow();
}

mcsim::WindowReport RunExperiment(const ExperimentConfig& config,
                                  Workload* workload) {
  ExperimentRunner runner(config, workload);
  return runner.Run(workload);
}

}  // namespace imoltp::core
