#include "core/tpcc.h"

#include <algorithm>
#include <cstring>

namespace imoltp::core {

namespace {

using storage::ColumnType;
using storage::RowId;
using storage::Schema;

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

// Initial-row generators are plain function pointers (they also run
// lazily when sparse tables materialize rows), so the scale parameters
// travel inside the table seed: bits [0,24) = orders per district,
// bits [24,40) = warehouses.
uint64_t PackLayout(uint64_t warehouses, uint64_t orders) {
  return (warehouses << 24) | orders;
}
uint64_t LayoutOrders(uint64_t seed) { return seed & 0xffffff; }

void FillString(const Schema& schema, uint8_t* row, uint32_t col,
                uint64_t h) {
  char* dst = reinterpret_cast<char*>(schema.ColumnPtr(row, col));
  for (uint32_t i = 0; i < storage::kStringBytes; ++i) {
    dst[i] = static_cast<char>('a' + ((h >> (i % 56)) + i) % 26);
  }
}

Schema WarehouseSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kString});
}
Schema DistrictSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kString});
}
Schema CustomerSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kLong, ColumnType::kString});
}
Schema HistorySchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kString});
}
Schema OrderSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kLong});
}
Schema NewOrderSchema() { return Schema({ColumnType::kLong}); }
Schema OrderLineSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kLong, ColumnType::kString});
}
Schema ItemSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kString});
}
Schema StockSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kLong, ColumnType::kString});
}

void GenWarehouse(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  s.SetLong(out, 0, static_cast<int64_t>(r));
  s.SetLong(out, 1, 0);  // ytd
  FillString(s, out, 2, Mix64(seed ^ r));
}

void GenDistrict(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  const uint64_t w = r / TpccBenchmark::kDistrictsPerWarehouse;
  const uint64_t d = r % TpccBenchmark::kDistrictsPerWarehouse;
  s.SetLong(out, 0,
            static_cast<int64_t>(TpccBenchmark::DistrictKey(w, d)));
  s.SetLong(out, 1, 0);  // ytd
  s.SetLong(out, 2, static_cast<int64_t>(LayoutOrders(seed)));  // next o
  FillString(s, out, 3, Mix64(seed ^ r));
}

void GenCustomer(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  const uint64_t per_w = TpccBenchmark::kDistrictsPerWarehouse *
                         TpccBenchmark::kCustomersPerDistrict;
  const uint64_t w = r / per_w;
  const uint64_t d =
      (r % per_w) / TpccBenchmark::kCustomersPerDistrict;
  const uint64_t c = r % TpccBenchmark::kCustomersPerDistrict;
  s.SetLong(out, 0,
            static_cast<int64_t>(TpccBenchmark::CustomerKey(w, d, c)));
  s.SetLong(out, 1, -10);  // balance
  s.SetLong(out, 2, 10);   // ytd payment
  s.SetLong(out, 3, 1);    // payment count
  FillString(s, out, 4, Mix64(seed ^ r));
}

void GenOrder(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  const uint64_t orders = LayoutOrders(seed);
  const uint64_t per_w = TpccBenchmark::kDistrictsPerWarehouse * orders;
  const uint64_t w = r / per_w;
  const uint64_t d = (r % per_w) / orders;
  const uint64_t o = r % orders;
  s.SetLong(out, 0,
            static_cast<int64_t>(TpccBenchmark::OrderKey(w, d, o)));
  s.SetLong(out, 1,
            static_cast<int64_t>(Mix64(seed ^ r) %
                                 TpccBenchmark::kCustomersPerDistrict));
  s.SetLong(out, 2, 10);  // ol_cnt: initial orders have 10 lines
  s.SetLong(out, 3, static_cast<int64_t>(1 + Mix64(r) % 10));  // carrier
}

void GenNewOrder(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  // The newest third of each district's initial orders are undelivered.
  const uint64_t orders = LayoutOrders(seed);
  const uint64_t pending = orders / 3;
  const uint64_t per_w = TpccBenchmark::kDistrictsPerWarehouse * pending;
  const uint64_t w = r / per_w;
  const uint64_t d = (r % per_w) / pending;
  const uint64_t o = orders - pending + (r % pending);
  s.SetLong(out, 0,
            static_cast<int64_t>(TpccBenchmark::OrderKey(w, d, o)));
}

void GenOrderLine(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  const uint64_t orders = LayoutOrders(seed);
  const uint64_t lines_per_order = 10;
  const uint64_t order_r = r / lines_per_order;
  const uint64_t l = r % lines_per_order;
  const uint64_t per_w = TpccBenchmark::kDistrictsPerWarehouse * orders;
  const uint64_t w = order_r / per_w;
  const uint64_t d = (order_r % per_w) / orders;
  const uint64_t o = order_r % orders;
  s.SetLong(out, 0,
            static_cast<int64_t>(
                TpccBenchmark::OrderLineKey(w, d, o, l)));
  s.SetLong(out, 1,
            static_cast<int64_t>(Mix64(seed ^ r) % TpccBenchmark::kItems));
  s.SetLong(out, 2, 5);                                    // quantity
  s.SetLong(out, 3, static_cast<int64_t>(Mix64(r) % 9999));  // amount
  FillString(s, out, 4, Mix64(seed ^ (r * 3)));
}

void GenItem(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  s.SetLong(out, 0, static_cast<int64_t>(r));
  s.SetLong(out, 1, static_cast<int64_t>(100 + Mix64(seed ^ r) % 9900));
  FillString(s, out, 2, Mix64(seed ^ r));
}

void GenStock(const Schema& s, RowId r, uint64_t seed, uint8_t* out) {
  const uint64_t w = r / TpccBenchmark::kStockPerWarehouse;
  const uint64_t i = r % TpccBenchmark::kStockPerWarehouse;
  s.SetLong(out, 0,
            static_cast<int64_t>(TpccBenchmark::StockKey(w, i)));
  s.SetLong(out, 1, static_cast<int64_t>(10 + Mix64(seed ^ r) % 91));
  s.SetLong(out, 2, 0);  // ytd
  s.SetLong(out, 3, 0);  // order count
  FillString(s, out, 4, Mix64(seed ^ (r * 5)));
}

index::Key KeyFromCol0(const Schema& schema, RowId r, uint64_t seed,
                       void (*gen)(const Schema&, RowId, uint64_t,
                                   uint8_t*)) {
  uint8_t buf[256];
  gen(schema, r, seed, buf);
  return index::Key::FromUint64(
      static_cast<uint64_t>(schema.GetLong(buf, 0)));
}

index::Key KeyWarehouse(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenWarehouse);
}
index::Key KeyDistrict(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenDistrict);
}
index::Key KeyCustomer(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenCustomer);
}
index::Key KeyOrder(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenOrder);
}
index::Key KeyNewOrder(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenNewOrder);
}
index::Key KeyOrderLine(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenOrderLine);
}
index::Key KeyItem(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenItem);
}
index::Key KeyStock(const Schema& s, RowId r, uint64_t seed) {
  return KeyFromCol0(s, r, seed, GenStock);
}

// Secondary keys derived from row images (maintained on insert/delete).
index::Key CustomerNameSecondary(const Schema& s, const uint8_t* row) {
  const uint64_t ckey = static_cast<uint64_t>(s.GetLong(row, 0));
  const uint64_t w = ckey >> 20;
  const uint64_t d = (ckey >> 16) & 0xf;
  const uint64_t c = ckey & 0xffff;
  return index::Key::FromUint64(TpccBenchmark::CustomerNameKey(
      w, d, TpccBenchmark::LastNameBucket(c), c));
}

index::Key OrderCustomerSecondary(const Schema& s, const uint8_t* row) {
  const uint64_t okey = static_cast<uint64_t>(s.GetLong(row, 0));
  const uint64_t w = okey >> 28;
  const uint64_t d = (okey >> 24) & 0xf;
  const uint64_t o = okey & 0xffffff;
  const uint64_t c = static_cast<uint64_t>(s.GetLong(row, 1));
  return index::Key::FromUint64(
      TpccBenchmark::OrderCustomerKey(w, d, c, o));
}

// Full-scale per-row footprints (TPC-C clause 1.2 row sizes): the
// sparse-address spread preserves the true working-set : LLC ratio.
constexpr uint64_t kCustomerNominal = 655;
constexpr uint64_t kStockNominal = 306;
constexpr uint64_t kOrderLineNominal = 54;

}  // namespace

TpccBenchmark::TpccBenchmark(const TpccConfig& config)
    : config_(config),
      last_type_(static_cast<size_t>(std::max(1, config.num_partitions))) {}

const char* TpccBenchmark::TransactionTypeName(int type) const {
  switch (type) {
    case 0: return "new_order";
    case 1: return "payment";
    case 2: return "order_status";
    case 3: return "delivery";
    case 4: return "stock_level";
    default: return "?";
  }
}

int TpccBenchmark::LastTransactionType(int worker) const {
  if (worker < 0 || static_cast<size_t>(worker) >= last_type_.size()) {
    return 0;
  }
  return last_type_[worker].type;
}

std::vector<engine::TableDef> TpccBenchmark::Tables() const {
  const uint64_t w = static_cast<uint64_t>(config_.warehouses);
  const uint64_t orders =
      static_cast<uint64_t>(config_.orders_per_district);
  const uint64_t layout = PackLayout(w, orders);
  std::vector<engine::TableDef> defs(9);

  defs[kWarehouse] = {.name = "warehouse",
                      .schema = WarehouseSchema(),
                      .initial_rows = w,
                      .generator = GenWarehouse,
                      .seed = layout,
                      .key_of = KeyWarehouse};
  defs[kDistrict] = {.name = "district",
                     .schema = DistrictSchema(),
                     .initial_rows = w * kDistrictsPerWarehouse,
                     .generator = GenDistrict,
                     .seed = layout,
                     .key_of = KeyDistrict};
  defs[kCustomer] = {.name = "customer",
                     .schema = CustomerSchema(),
                     .initial_rows =
                         w * kDistrictsPerWarehouse * kCustomersPerDistrict,
                     .generator = GenCustomer,
                     .seed = layout,
                     .key_of = KeyCustomer};
  defs[kCustomer].nominal_bytes =
      defs[kCustomer].initial_rows * kCustomerNominal;
  defs[kCustomer].secondaries.push_back(
      {"customer-by-name", CustomerNameSecondary});
  defs[kHistory] = {.name = "history",
                    .schema = HistorySchema(),
                    .initial_rows = 0,
                    .seed = layout,
                    .no_primary_index = true};
  defs[kOrder] = {.name = "order",
                  .schema = OrderSchema(),
                  .initial_rows = w * kDistrictsPerWarehouse * orders,
                  .generator = GenOrder,
                  .seed = layout,
                  .key_of = KeyOrder};
  defs[kOrder].secondaries.push_back(
      {"order-by-customer", OrderCustomerSecondary});
  defs[kNewOrder] = {.name = "new_order",
                     .schema = NewOrderSchema(),
                     .initial_rows =
                         w * kDistrictsPerWarehouse * (orders / 3),
                     .generator = GenNewOrder,
                     .seed = layout,
                     .key_of = KeyNewOrder,
                     .needs_ordered_index = true};
  defs[kOrderLine] = {.name = "order_line",
                      .schema = OrderLineSchema(),
                      .initial_rows =
                          w * kDistrictsPerWarehouse * orders * 10,
                      .generator = GenOrderLine,
                      .seed = layout,
                      .key_of = KeyOrderLine,
                      .needs_ordered_index = true};
  defs[kOrderLine].nominal_bytes =
      defs[kOrderLine].initial_rows * kOrderLineNominal;
  defs[kItem] = {.name = "item",
                 .schema = ItemSchema(),
                 .initial_rows = kItems,
                 .generator = GenItem,
                 .seed = layout,
                 .key_of = KeyItem,
                 .replicated = true};
  defs[kStock] = {.name = "stock",
                  .schema = StockSchema(),
                  .initial_rows = w * kStockPerWarehouse,
                  .generator = GenStock,
                  .seed = layout,
                  .key_of = KeyStock};
  defs[kStock].nominal_bytes = defs[kStock].initial_rows * kStockNominal;
  return defs;
}

engine::TxnRequest TpccBenchmark::Request(int type, uint64_t w) const {
  engine::TxnRequest req;
  req.type = type;
  req.partition_key = w;
  req.key_space = static_cast<uint64_t>(config_.warehouses);
  switch (type) {  // SQL statements per procedure (loop bodies excluded)
    case kTxnNewOrder: req.statements = 10; break;
    case kTxnPayment: req.statements = 6; break;
    case kTxnOrderStatus: req.statements = 4; break;
    case kTxnDelivery: req.statements = 8; break;
    default: req.statements = 4; break;
  }
  return req;
}

engine::TxnRequest TpccBenchmark::FragmentRequest(int type, uint64_t w,
                                                  int statements) const {
  engine::TxnRequest req = Request(type, w);
  req.statements = statements;
  return req;
}

Status TpccBenchmark::RunTransaction(engine::Engine* engine, int worker,
                                     Rng* rng) {
  const int parts = config_.num_partitions;
  const uint64_t w_lo =
      static_cast<uint64_t>(config_.warehouses) * worker / parts;
  const uint64_t w_hi =
      static_cast<uint64_t>(config_.warehouses) * (worker + 1) / parts;
  const uint64_t w = rng->Range(w_lo, w_hi - 1);

  // Standard TPC-C mix. The dispatched type is recorded per worker so
  // the harness can attribute the transaction's cycles to it; a retry
  // rewinds the RNG, so re-execution re-records the same type.
  auto record = [&](int type) {
    if (static_cast<size_t>(worker) < last_type_.size()) {
      last_type_[worker].type = type;
    }
  };
  const uint64_t roll = rng->Uniform(100);
  if (roll < 45) {
    ++mix_.new_order;
    record(0);
    return RunNewOrder(engine, worker, rng, w);
  }
  if (roll < 88) {
    ++mix_.payment;
    record(1);
    return RunPayment(engine, worker, rng, w);
  }
  if (roll < 92) {
    ++mix_.order_status;
    record(2);
    return RunOrderStatus(engine, worker, rng, w);
  }
  if (roll < 96) {
    ++mix_.delivery;
    record(3);
    return RunDelivery(engine, worker, rng, w);
  }
  ++mix_.stock_level;
  record(4);
  return RunStockLevel(engine, worker, rng, w);
}

Status TpccBenchmark::RunNewOrder(engine::Engine* engine, int worker,
                                  Rng* rng, uint64_t w) {
  NewOrderParams p;
  p.d = rng->Uniform(kDistrictsPerWarehouse);
  p.c = rng->NonUniform(1023, 259, 0, kCustomersPerDistrict - 1);
  p.ol_cnt = static_cast<int>(rng->Range(5, 15));
  for (int i = 0; i < p.ol_cnt; ++i) {
    p.items[i] = rng->NonUniform(8191, 7911, 0, kItems - 1);
    p.quantities[i] = rng->Range(1, 10);
  }
  return ExecuteNewOrderHome(engine, worker, w, p);
}

Status TpccBenchmark::ExecuteNewOrderHome(engine::Engine* engine,
                                          int worker, uint64_t w,
                                          const NewOrderParams& p) {
  const uint64_t d = p.d;
  const uint64_t c = p.c;
  const int ol_cnt = p.ol_cnt;
  const uint64_t* items = p.items;
  const uint64_t* quantities = p.quantities;

  return engine->Execute(
      worker, Request(kTxnNewOrder, w), [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;

        // Warehouse: read tax rate.
        Status s = ctx.Probe(kWarehouse, index::Key::FromUint64(w), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kWarehouse, rid, row);
        if (!s.ok()) return s;

        // District: read and advance the next order number.
        const Schema dsch = DistrictSchema();
        s = ctx.Probe(kDistrict,
                      index::Key::FromUint64(DistrictKey(w, d)), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kDistrict, rid, row);
        if (!s.ok()) return s;
        const uint64_t o_id =
            static_cast<uint64_t>(dsch.GetLong(row, 2));
        const int64_t next = static_cast<int64_t>(o_id + 1);
        s = ctx.Update(kDistrict, rid, 2, &next);
        if (!s.ok()) return s;

        // Customer: read discount/credit.
        s = ctx.Probe(kCustomer,
                      index::Key::FromUint64(CustomerKey(w, d, c)), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kCustomer, rid, row);
        if (!s.ok()) return s;

        // Insert the order and its new-order entry.
        const Schema osch = OrderSchema();
        uint8_t orow[64];
        osch.SetLong(orow, 0, static_cast<int64_t>(OrderKey(w, d, o_id)));
        osch.SetLong(orow, 1, static_cast<int64_t>(c));
        osch.SetLong(orow, 2, ol_cnt);
        osch.SetLong(orow, 3, 0);  // no carrier yet
        s = ctx.Insert(kOrder, orow,
                       index::Key::FromUint64(OrderKey(w, d, o_id)));
        if (!s.ok()) return s;
        uint8_t norow[16];
        NewOrderSchema().SetLong(norow, 0,
                                 static_cast<int64_t>(OrderKey(w, d, o_id)));
        s = ctx.Insert(kNewOrder, norow,
                       index::Key::FromUint64(OrderKey(w, d, o_id)));
        if (!s.ok()) return s;

        // Order lines: item read, stock update, order-line insert.
        const Schema ssch = StockSchema();
        const Schema olsch = OrderLineSchema();
        const Schema isch = ItemSchema();
        for (int i = 0; i < ol_cnt; ++i) {
          s = ctx.Probe(kItem, index::Key::FromUint64(items[i]), &rid);
          if (!s.ok()) return s;
          s = ctx.Read(kItem, rid, row);
          if (!s.ok()) return s;
          const int64_t price = isch.GetLong(row, 1);

          // Remote-supplied lines: the stock leg belongs to the
          // supplying node's fragment, not this one.
          if ((p.remote_mask >> i & 1) == 0) {
            s = ctx.Probe(kStock,
                          index::Key::FromUint64(StockKey(w, items[i])),
                          &rid);
            if (!s.ok()) return s;
            s = ctx.Read(kStock, rid, row);
            if (!s.ok()) return s;
            int64_t qty = ssch.GetLong(row, 1);
            qty = qty > static_cast<int64_t>(quantities[i]) + 10
                      ? qty - static_cast<int64_t>(quantities[i])
                      : qty - static_cast<int64_t>(quantities[i]) + 91;
            s = ctx.Update(kStock, rid, 1, &qty);
            if (!s.ok()) return s;
            const int64_t ytd = ssch.GetLong(row, 2) +
                                static_cast<int64_t>(quantities[i]);
            s = ctx.Update(kStock, rid, 2, &ytd);
            if (!s.ok()) return s;
          }

          uint8_t olrow[160];
          olsch.SetLong(
              olrow, 0,
              static_cast<int64_t>(OrderLineKey(
                  w, d, o_id, static_cast<uint64_t>(i))));
          olsch.SetLong(olrow, 1, static_cast<int64_t>(items[i]));
          olsch.SetLong(olrow, 2, static_cast<int64_t>(quantities[i]));
          olsch.SetLong(olrow, 3,
                        price * static_cast<int64_t>(quantities[i]));
          std::memset(olsch.ColumnPtr(olrow, 4), 'd',
                      storage::kStringBytes);
          s = ctx.Insert(
              kOrderLine, olrow,
              index::Key::FromUint64(OrderLineKey(
                  w, d, o_id, static_cast<uint64_t>(i))));
          if (!s.ok()) return s;
        }
        return Status::Ok();
      });
}

Status TpccBenchmark::ExecuteNewOrderRemoteStock(engine::Engine* engine,
                                                 int worker, uint64_t w,
                                                 const NewOrderParams& p) {
  return engine->Execute(
      worker, FragmentRequest(kTxnNewOrder, w, /*statements=*/2),
      [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;
        const Schema ssch = StockSchema();
        for (int i = 0; i < p.ol_cnt; ++i) {
          if ((p.remote_mask >> i & 1) == 0) continue;
          Status s = ctx.Probe(
              kStock, index::Key::FromUint64(StockKey(w, p.items[i])),
              &rid);
          if (!s.ok()) return s;
          s = ctx.Read(kStock, rid, row);
          if (!s.ok()) return s;
          int64_t qty = ssch.GetLong(row, 1);
          qty = qty > static_cast<int64_t>(p.quantities[i]) + 10
                    ? qty - static_cast<int64_t>(p.quantities[i])
                    : qty - static_cast<int64_t>(p.quantities[i]) + 91;
          s = ctx.Update(kStock, rid, 1, &qty);
          if (!s.ok()) return s;
          const int64_t ytd = ssch.GetLong(row, 2) +
                              static_cast<int64_t>(p.quantities[i]);
          s = ctx.Update(kStock, rid, 2, &ytd);
          if (!s.ok()) return s;
        }
        return Status::Ok();
      });
}

Status TpccBenchmark::RunPayment(engine::Engine* engine, int worker,
                                 Rng* rng, uint64_t w) {
  PaymentParams p;
  p.d = rng->Uniform(kDistrictsPerWarehouse);
  // Clause 2.5.1.2: 60% of payments select the customer by last name,
  // 40% by id.
  p.by_name = rng->Uniform(100) < 60;
  p.c = rng->NonUniform(1023, 259, 0, kCustomersPerDistrict - 1);
  p.name_bucket = rng->NonUniform(255, 223, 0, 999);
  p.amount = static_cast<int64_t>(rng->Range(100, 500000));
  p.history_id = NextHistoryId(worker);
  return ExecutePaymentHome(engine, worker, w, p);
}

Status TpccBenchmark::ExecutePaymentHome(engine::Engine* engine,
                                         int worker, uint64_t w,
                                         const PaymentParams& p) {
  return engine->Execute(
      worker, Request(kTxnPayment, w), [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;

        const Schema wsch = WarehouseSchema();
        Status s = ctx.Probe(kWarehouse, index::Key::FromUint64(w), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kWarehouse, rid, row);
        if (!s.ok()) return s;
        int64_t ytd = wsch.GetLong(row, 1) + p.amount;
        s = ctx.Update(kWarehouse, rid, 1, &ytd);
        if (!s.ok()) return s;

        const Schema dsch = DistrictSchema();
        s = ctx.Probe(kDistrict,
                      index::Key::FromUint64(DistrictKey(w, p.d)), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kDistrict, rid, row);
        if (!s.ok()) return s;
        ytd = dsch.GetLong(row, 1) + p.amount;
        s = ctx.Update(kDistrict, rid, 1, &ytd);
        if (!s.ok()) return s;

        // A remote payment's customer leg runs at the customer's node
        // (ExecutePaymentCustomer); only W_YTD/D_YTD/history are home.
        if (!p.customer_remote) {
          const Schema csch = CustomerSchema();
          if (p.by_name) {
            s = SelectCustomerByName(ctx, w, p.d, p.name_bucket, &rid);
          } else {
            s = ctx.Probe(
                kCustomer,
                index::Key::FromUint64(CustomerKey(w, p.d, p.c)), &rid);
          }
          if (!s.ok()) return s;
          s = ctx.Read(kCustomer, rid, row);
          if (!s.ok()) return s;
          const int64_t balance = csch.GetLong(row, 1) - p.amount;
          s = ctx.Update(kCustomer, rid, 1, &balance);
          if (!s.ok()) return s;
          const int64_t paid = csch.GetLong(row, 2) + p.amount;
          s = ctx.Update(kCustomer, rid, 2, &paid);
          if (!s.ok()) return s;
        }

        uint8_t hrow[160];
        const Schema hsch = HistorySchema();
        hsch.SetLong(hrow, 0, static_cast<int64_t>(p.history_id));
        hsch.SetLong(hrow, 1, p.amount);
        std::memset(hsch.ColumnPtr(hrow, 2), 'p', storage::kStringBytes);
        return ctx.Insert(kHistory, hrow,
                          index::Key::FromUint64(p.history_id));
      });
}

Status TpccBenchmark::ExecutePaymentCustomer(engine::Engine* engine,
                                             int worker, uint64_t w,
                                             const PaymentParams& p) {
  return engine->Execute(
      worker, FragmentRequest(kTxnPayment, w, /*statements=*/3),
      [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;
        const Schema csch = CustomerSchema();
        Status s;
        if (p.by_name) {
          s = SelectCustomerByName(ctx, w, p.d, p.name_bucket, &rid);
        } else {
          s = ctx.Probe(kCustomer,
                        index::Key::FromUint64(CustomerKey(w, p.d, p.c)),
                        &rid);
        }
        if (!s.ok()) return s;
        s = ctx.Read(kCustomer, rid, row);
        if (!s.ok()) return s;
        const int64_t balance = csch.GetLong(row, 1) - p.amount;
        s = ctx.Update(kCustomer, rid, 1, &balance);
        if (!s.ok()) return s;
        const int64_t paid = csch.GetLong(row, 2) + p.amount;
        return ctx.Update(kCustomer, rid, 2, &paid);
      });
}

Status TpccBenchmark::RunOrderStatus(engine::Engine* engine, int worker,
                                     Rng* rng, uint64_t w) {
  const uint64_t d = rng->Uniform(kDistrictsPerWarehouse);
  // Clause 2.6.1.2: 60% by last name, 40% by id.
  const bool by_name = rng->Uniform(100) < 60;
  const uint64_t c_in = rng->NonUniform(1023, 259, 0,
                                        kCustomersPerDistrict - 1);
  const uint64_t name_bucket = rng->NonUniform(255, 223, 0, 999);
  return ExecuteOrderStatus(engine, worker, w, d, c_in, name_bucket,
                            by_name);
}

Status TpccBenchmark::ExecuteOrderStatus(engine::Engine* engine,
                                         int worker, uint64_t w,
                                         uint64_t d, uint64_t c_in,
                                         uint64_t name_bucket,
                                         bool by_name) {
  return engine->Execute(
      worker, Request(kTxnOrderStatus, w), [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;

        Status s;
        if (by_name) {
          s = SelectCustomerByName(ctx, w, d, name_bucket, &rid);
        } else {
          s = ctx.Probe(kCustomer,
                        index::Key::FromUint64(CustomerKey(w, d, c_in)),
                        &rid);
        }
        if (!s.ok()) return s;
        s = ctx.Read(kCustomer, rid, row);
        if (!s.ok()) return s;
        const Schema csch = CustomerSchema();
        const uint64_t ckey =
            static_cast<uint64_t>(csch.GetLong(row, 0));
        const uint64_t c = ckey & 0xffff;

        // The customer's most recent order, via the order-by-customer
        // secondary index (ascending order id: the last hit wins).
        std::vector<RowId> orders;
        s = ctx.ScanSecondary(
            kOrder, kOrderByCustomer,
            index::Key::FromUint64(OrderCustomerKey(w, d, c, 0)), 6,
            &orders);
        if (!s.ok()) return s;
        const Schema osch = OrderSchema();
        RowId order_rid = storage::kInvalidRow;
        uint64_t o = 0;
        uint64_t ol_cnt = 0;
        for (RowId candidate : orders) {
          s = ctx.Read(kOrder, candidate, row);
          if (!s.ok()) return s;
          const uint64_t okey =
              static_cast<uint64_t>(osch.GetLong(row, 0));
          if (okey >> 24 != OrderKey(w, d, 0) >> 24) break;
          if (static_cast<uint64_t>(osch.GetLong(row, 1)) != c) break;
          order_rid = candidate;
          o = okey & 0xffffff;
          ol_cnt = static_cast<uint64_t>(osch.GetLong(row, 2));
        }
        if (order_rid == storage::kInvalidRow) {
          return Status::Ok();  // the customer has no orders yet
        }

        std::vector<RowId> lines;
        s = ctx.Scan(kOrderLine,
                     index::Key::FromUint64(OrderLineKey(w, d, o, 0)),
                     ol_cnt, &lines);
        if (!s.ok()) return s;
        for (RowId lr : lines) {
          s = ctx.Read(kOrderLine, lr, row);
          if (!s.ok()) return s;
        }
        return Status::Ok();
      });
}

Status TpccBenchmark::SelectCustomerByName(engine::TxnContext& ctx,
                                           uint64_t w, uint64_t d,
                                           uint64_t bucket, RowId* rid) {
  // Clause 2.5.2.2: fetch all customers with the last name, sorted by
  // first name, and take the one at position ceil(n/2). The bucketed
  // encoding yields exactly ceil(customers-per-district / 1000) matches.
  std::vector<RowId> matches;
  Status s = ctx.ScanSecondary(
      kCustomer, kCustomerByName,
      index::Key::FromUint64(CustomerNameKey(w, d, bucket, 0)), 8,
      &matches);
  if (!s.ok()) return s;
  const Schema csch = CustomerSchema();
  uint8_t row[160];
  std::vector<RowId> same_name;
  for (RowId candidate : matches) {
    s = ctx.Read(kCustomer, candidate, row);
    if (!s.ok()) return s;
    const uint64_t ckey = static_cast<uint64_t>(csch.GetLong(row, 0));
    const uint64_t c = ckey & 0xffff;
    if (ckey >> 16 != CustomerKey(w, d, 0) >> 16) break;
    if (LastNameBucket(c) != bucket) break;
    same_name.push_back(candidate);
  }
  if (same_name.empty()) return Status::NotFound("no such last name");
  *rid = same_name[same_name.size() / 2];
  return Status::Ok();
}

Status TpccBenchmark::RunDelivery(engine::Engine* engine, int worker,
                                  Rng* rng, uint64_t w) {
  const int64_t carrier = static_cast<int64_t>(rng->Range(1, 10));
  return ExecuteDelivery(engine, worker, w, carrier);
}

Status TpccBenchmark::ExecuteDelivery(engine::Engine* engine, int worker,
                                      uint64_t w, int64_t carrier) {
  return engine->Execute(
      worker, Request(kTxnDelivery, w), [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        const Schema nosch = NewOrderSchema();
        const Schema osch = OrderSchema();
        const Schema olsch = OrderLineSchema();
        const Schema csch = CustomerSchema();

        for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
          // Oldest undelivered order of the district.
          std::vector<RowId> pending;
          Status s = ctx.Scan(kNewOrder,
                              index::Key::FromUint64(OrderKey(w, d, 0)),
                              1, &pending);
          if (!s.ok()) return s;
          if (pending.empty()) continue;
          s = ctx.Read(kNewOrder, pending[0], row);
          if (!s.ok()) continue;
          const uint64_t okey =
              static_cast<uint64_t>(nosch.GetLong(row, 0));
          // A scan from OrderKey(w, d, 0) can run past the district into
          // the next one; verify the key still belongs to (w, d).
          if (okey >> 24 != OrderKey(w, d, 0) >> 24) continue;
          const uint64_t o = okey & 0xffffff;

          s = ctx.Delete(kNewOrder, pending[0],
                         index::Key::FromUint64(okey));
          if (!s.ok()) return s;

          RowId rid;
          s = ctx.Probe(kOrder, index::Key::FromUint64(okey), &rid);
          if (!s.ok()) return s;
          s = ctx.Read(kOrder, rid, row);
          if (!s.ok()) return s;
          const uint64_t c = static_cast<uint64_t>(osch.GetLong(row, 1));
          const uint64_t ol_cnt =
              static_cast<uint64_t>(osch.GetLong(row, 2));
          s = ctx.Update(kOrder, rid, 3, &carrier);
          if (!s.ok()) return s;

          std::vector<RowId> lines;
          s = ctx.Scan(kOrderLine,
                       index::Key::FromUint64(OrderLineKey(w, d, o, 0)),
                       ol_cnt, &lines);
          if (!s.ok()) return s;
          int64_t total = 0;
          for (RowId lr : lines) {
            s = ctx.Read(kOrderLine, lr, row);
            if (!s.ok()) return s;
            total += olsch.GetLong(row, 3);
          }

          s = ctx.Probe(kCustomer,
                        index::Key::FromUint64(CustomerKey(w, d, c)),
                        &rid);
          if (!s.ok()) return s;
          s = ctx.Read(kCustomer, rid, row);
          if (!s.ok()) return s;
          const int64_t balance = csch.GetLong(row, 1) + total;
          s = ctx.Update(kCustomer, rid, 1, &balance);
          if (!s.ok()) return s;
        }
        return Status::Ok();
      });
}

Status TpccBenchmark::RunStockLevel(engine::Engine* engine, int worker,
                                    Rng* rng, uint64_t w) {
  const uint64_t d = rng->Uniform(kDistrictsPerWarehouse);
  const int64_t threshold = static_cast<int64_t>(rng->Range(10, 20));
  return ExecuteStockLevel(engine, worker, w, d, threshold);
}

Status TpccBenchmark::ExecuteStockLevel(engine::Engine* engine,
                                        int worker, uint64_t w,
                                        uint64_t d, int64_t threshold) {
  return engine->Execute(
      worker, Request(kTxnStockLevel, w), [&](engine::TxnContext& ctx) {
        uint8_t row[160];
        RowId rid;

        const Schema dsch = DistrictSchema();
        Status s = ctx.Probe(kDistrict,
                             index::Key::FromUint64(DistrictKey(w, d)),
                             &rid);
        if (!s.ok()) return s;
        s = ctx.Read(kDistrict, rid, row);
        if (!s.ok()) return s;
        const uint64_t next_o =
            static_cast<uint64_t>(dsch.GetLong(row, 2));
        const uint64_t o_low = next_o > 20 ? next_o - 20 : 0;

        // Join the last 20 orders' lines with Stock.
        std::vector<RowId> lines;
        s = ctx.Scan(kOrderLine,
                     index::Key::FromUint64(OrderLineKey(w, d, o_low, 0)),
                     200, &lines);
        if (!s.ok()) return s;

        const Schema olsch = OrderLineSchema();
        const Schema ssch = StockSchema();
        int64_t low_stock = 0;
        for (RowId lr : lines) {
          s = ctx.Read(kOrderLine, lr, row);
          if (!s.ok()) return s;
          const uint64_t item =
              static_cast<uint64_t>(olsch.GetLong(row, 1));
          s = ctx.Probe(kStock,
                        index::Key::FromUint64(StockKey(w, item)), &rid);
          if (!s.ok()) return s;
          s = ctx.Read(kStock, rid, row);
          if (!s.ok()) return s;
          if (ssch.GetLong(row, 1) < threshold) ++low_stock;
        }
        (void)low_stock;
        return Status::Ok();
      });
}

}  // namespace imoltp::core
