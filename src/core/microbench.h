#ifndef IMOLTP_CORE_MICROBENCH_H_
#define IMOLTP_CORE_MICROBENCH_H_

#include "core/workload.h"

namespace imoltp::core {

/// The paper's micro-benchmark (Section 3, "Benchmarks"): one randomly
/// generated two-column table (key, value), both Long — or both 50-byte
/// String for the data-type experiment. The read-only variant reads N
/// random rows per transaction after an index probe; the read-write
/// variant updates them.
struct MicroConfig {
  /// Nominal database size ("1MB" … "100GB"). Row count and address
  /// spreading are derived; see DESIGN.md, Substitutions.
  uint64_t nominal_bytes = 1 << 20;

  /// Resident-row cap for the sparse configurations.
  uint64_t max_resident_rows = 2'000'000;

  int rows_per_txn = 1;
  bool read_write = false;
  bool string_columns = false;
  int num_partitions = 1;
};

class MicroBenchmark final : public Workload {
 public:
  explicit MicroBenchmark(const MicroConfig& config);

  const char* name() const override {
    return config_.read_write ? "micro-rw" : "micro-ro";
  }
  std::vector<engine::TableDef> Tables() const override;
  Status RunTransaction(engine::Engine* engine, int worker,
                        Rng* rng) override;

  uint64_t num_rows() const { return num_rows_; }

  /// Transaction-type ids (for compiled engines).
  static constexpr int kTxnRead = 1;
  static constexpr int kTxnUpdate = 2;

 private:
  index::Key MakeKey(uint64_t id) const;

  MicroConfig config_;
  uint64_t num_rows_;
};

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_MICROBENCH_H_
