#include "core/report.h"

#include <cstdio>

#include "obs/report_json.h"

namespace imoltp::core {

namespace {

void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void PrintStallTable(const std::string& title,
                     const std::vector<ReportRow>& rows, bool per_txn) {
  PrintTitle(title);
  std::printf("%-28s %9s %9s %9s %9s %9s %9s %10s\n", "config", "L1I",
              "L2I", "LLC-I", "L1D", "L2D", "LLC-D", "total");
  for (const ReportRow& r : rows) {
    const mcsim::StallBreakdown& b =
        per_txn ? r.report.stalls_per_txn : r.report.stalls_per_kinstr;
    std::printf("%-28s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %10.1f\n",
                r.label.c_str(), b.stalls[0], b.stalls[1], b.stalls[2],
                b.stalls[3], b.stalls[4], b.stalls[5], b.total());
  }
}

}  // namespace

void PrintIpc(const std::string& title,
              const std::vector<ReportRow>& rows) {
  PrintTitle(title);
  std::printf("%-28s %6s %14s %14s\n", "config", "IPC", "instr/txn",
              "cycles/txn");
  for (const ReportRow& r : rows) {
    std::printf("%-28s %6.2f %14.0f %14.0f\n", r.label.c_str(),
                r.report.ipc, r.report.instructions_per_txn,
                r.report.cycles_per_txn);
  }
}

void PrintStallsPerKInstr(const std::string& title,
                          const std::vector<ReportRow>& rows) {
  PrintStallTable(title + " [stall cycles per 1000 instructions]", rows,
                  /*per_txn=*/false);
}

void PrintStallsPerTxn(const std::string& title,
                       const std::vector<ReportRow>& rows) {
  PrintStallTable(title + " [stall cycles per transaction]", rows,
                  /*per_txn=*/true);
}

void PrintEngineShare(const std::string& title,
                      const std::vector<ReportRow>& rows) {
  PrintTitle(title);
  std::printf("%-28s %22s\n", "config", "%% inside OLTP engine");
  for (const ReportRow& r : rows) {
    std::printf("%-28s %21.1f%%\n", r.label.c_str(),
                r.report.engine_cycle_fraction * 100.0);
  }
}

void PrintModuleBreakdown(const std::string& title, const ReportRow& row) {
  PrintTitle(title + " — " + row.label);
  std::printf("%-20s %8s %12s %8s\n", "module", "side", "cycles", "share");
  for (const mcsim::ModuleShare& m : row.report.module_breakdown) {
    std::printf("%-20s %8s %12.0f %7.1f%%\n", m.name.c_str(),
                m.inside_engine ? "engine" : "outside", m.cycles,
                m.fraction * 100.0);
  }
}

void PrintCycleAccounting(const std::string& title,
                          const std::vector<ReportRow>& rows,
                          const mcsim::CycleModelParams& params) {
  PrintTitle(title + " [share of modeled cycles]");
  std::printf("%-28s %9s %9s %9s %9s %9s\n", "config", "retiring",
              "frontend", "memory", "badspec", "cyc/txn");
  for (const ReportRow& r : rows) {
    const auto& rep = r.report;
    const obs::CycleAccounting acc =
        obs::ComputeCycleAccounting(rep, params);
    const double total = acc.total();
    if (total <= 0) continue;
    std::printf("%-28s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9.0f\n",
                r.label.c_str(), 100 * acc.retiring / total,
                100 * acc.frontend / total, 100 * acc.memory / total,
                100 * acc.bad_speculation / total,
                rep.transactions > 0 ? total / rep.transactions : 0.0);
  }
}

}  // namespace imoltp::core
