#ifndef IMOLTP_CORE_EXPERIMENT_H_
#define IMOLTP_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/workload.h"
#include "engine/engine.h"
#include "mcsim/machine.h"
#include "mcsim/profiler.h"
#include "obs/histogram.h"
#include "obs/span.h"

namespace imoltp::core {

/// Everything that parameterizes one measured run: the engine archetype,
/// worker count (== simulated cores == partitions for the partitioned
/// engines), warm-up and measurement windows (per worker), and the
/// engine/machine options.
struct ExperimentConfig {
  engine::EngineKind engine = engine::EngineKind::kShoreMt;
  int num_workers = 1;
  uint64_t warmup_txns = 2000;   // per worker, profiler detached
  uint64_t measure_txns = 6000;  // per worker, profiler attached
  uint64_t seed = 42;
  engine::EngineOptions engine_options;
  mcsim::MachineConfig machine_config;
};

/// Builds a machine + engine + populated database once and runs measured
/// windows against it — the paper's populate → warm up → attach VTune →
/// measure methodology (Section 3). Multiple windows may run on one
/// runner (e.g., the read-only and read-write micro-benchmark variants
/// share a populated database).
class ExperimentRunner {
 public:
  /// Creates the engine and populates the database from `schema_source`'s
  /// table definitions.
  ExperimentRunner(const ExperimentConfig& config, Workload* schema_source);

  /// Trace-capture variant: `pre_populate` runs after the machine and
  /// engine exist (module table registered, zero counters, cold caches)
  /// but before the database is populated and the caches warmed — the
  /// only point where a TraceWriter can open and attach so that every
  /// simulated event reaches the trace. A failure lands in
  /// init_status() and skips population.
  ExperimentRunner(
      const ExperimentConfig& config, Workload* schema_source,
      const std::function<Status(mcsim::MachineSim*)>& pre_populate);

  /// Ok unless a pre_populate hook failed during construction.
  const Status& init_status() const { return init_status_; }

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Warm-up (profiler detached) then measurement window (attached).
  /// Returns the paper's per-worker-averaged metrics.
  mcsim::WindowReport Run(Workload* workload);

  engine::Engine* engine() { return engine_.get(); }
  mcsim::MachineSim* machine() { return machine_.get(); }
  uint64_t aborts() const { return aborts_; }

  /// Attaches a trace sink to the machine (nullptr detaches) and makes
  /// Run() bracket each measurement window with window markers, so a
  /// replay can reproduce the WindowReport. Attach before the first
  /// Run(): capture determinism assumes cold caches and zero counters.
  void set_trace_sink(mcsim::TraceSink* sink) {
    trace_sink_ = sink;
    machine_->SetTraceSink(sink);
  }

  /// Per-transaction simulated-cycle latencies of the most recent
  /// measurement window (aborted transactions included — their retry
  /// cost is exactly the tail the averages hide).
  const obs::LatencyHistogram& latency_histogram() const {
    return latency_;
  }

  /// Lifecycle-span cycles of the most recent measurement window,
  /// summed over workers.
  const obs::SpanCollector& spans() const {
    return *engine_->span_collector();
  }

 private:
  ExperimentConfig config_;
  std::unique_ptr<mcsim::MachineSim> machine_;
  std::unique_ptr<engine::Engine> engine_;
  obs::LatencyHistogram latency_;
  Status init_status_;
  mcsim::TraceSink* trace_sink_ = nullptr;
  uint64_t aborts_ = 0;
  uint64_t runs_ = 0;
};

/// One-shot convenience: build, populate, run.
mcsim::WindowReport RunExperiment(const ExperimentConfig& config,
                                  Workload* workload);

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_EXPERIMENT_H_
