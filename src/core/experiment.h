#ifndef IMOLTP_CORE_EXPERIMENT_H_
#define IMOLTP_CORE_EXPERIMENT_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/workload.h"
#include "engine/engine.h"
#include "mcsim/machine.h"
#include "mcsim/profiler.h"
#include "obs/histogram.h"
#include "obs/host_metrics.h"
#include "obs/span.h"

namespace imoltp::core {

/// How the per-worker transaction loops execute on the host. See
/// docs/parallel_execution.md for the full threading model and
/// determinism contract.
enum class ParallelMode {
  /// Legacy nested loop on the calling thread: transaction t runs on
  /// worker 0, then 1, ... then W-1 before t+1 starts. The historical
  /// reference interleaving.
  kSerial,
  /// One host thread per simulated core, turnstile-stepped so the
  /// global transaction order is exactly kSerial's. Counters, spans,
  /// latencies and trace replays are bit-identical to kSerial.
  kDeterministic,
  /// One free-running host thread per simulated core: full wall-clock
  /// speed, data-race-free, but the interleaving (and therefore exact
  /// counter values) varies run to run.
  kFree,
};

const char* ParallelModeName(ParallelMode mode);

/// Parses a CLI mode name ("serial", "deterministic", "free") — the
/// single spelling authority for every tool with a --mode flag.
/// Returns false on an unknown name.
bool ParseParallelMode(const std::string& name, ParallelMode* out);

/// The valid ParseParallelMode spellings, space-separated, for error
/// messages.
const char* ParallelModeChoices();

/// Auto-warmup convergence verdict over a window's sampled time-series:
/// compares first- and second-half IPC across every worker core's
/// buckets. `checked` stays false (and `converged` true) when sampling
/// was off or no core produced at least two buckets — an empty or
/// single-bucket series can't show a trend, so it never flags.
mcsim::ConvergenceCheck CheckConvergence(const mcsim::WindowReport& report,
                                         double rtol);

/// Retry policy for aborted transactions (no-wait 2PL conflicts, MVCC
/// validation failures). Each retry re-executes the *same* logical
/// transaction — the worker's RNG is rewound to its pre-attempt state —
/// after a bounded exponential backoff, CCBench-style. Crashed
/// transactions (injected faults) are never retried: a dead process
/// retries nothing.
struct RetryPolicy {
  /// Total executions allowed per transaction (1 = no retry).
  int max_attempts = 1;
  /// Backoff before retry k (1-based) is backoff_cycles << (k-1)
  /// simulated instructions on the worker's core.
  uint64_t backoff_cycles = 0;
  /// Admission cap: at most this many workers may be in retry mode at
  /// once; excess retries are rejected (the transaction stays aborted)
  /// so a contention storm degrades to load-shedding, not livelock.
  int max_inflight_retries = 4;
};

/// Retry-path counters for the most recent measurement window.
struct RetryStats {
  uint64_t retries = 0;           // re-executions performed
  uint64_t retry_successes = 0;   // txns committed after >= 1 retry
  uint64_t retry_rejections = 0;  // retries denied by the admission cap
};

/// Optional callouts into the runner's build/run lifecycle.
struct ExperimentHooks {
  /// Runs after the machine and engine exist (module table registered,
  /// zero counters, cold caches) but before the database is populated
  /// and the caches warmed — the only point where a TraceWriter can
  /// open and attach so that every simulated event reaches the trace.
  /// A failure aborts Create().
  std::function<Status(mcsim::MachineSim*)> pre_populate;
  /// Runs after the warm-up loop, before the profiler attaches. A
  /// failure aborts that Run() call.
  std::function<Status(mcsim::MachineSim*)> post_warmup;
};

/// Everything that parameterizes one measured run: the engine archetype,
/// worker count (== simulated cores == partitions for the partitioned
/// engines), warm-up and measurement windows (per worker), the
/// engine/machine options, and the host-parallelism mode.
struct ExperimentConfig {
  engine::EngineKind engine = engine::EngineKind::kShoreMt;
  int num_workers = 1;
  uint64_t warmup_txns = 2000;   // per worker, profiler detached
  uint64_t measure_txns = 6000;  // per worker, profiler attached
  uint64_t seed = 42;
  ParallelMode parallel_mode = ParallelMode::kDeterministic;
  RetryPolicy retry;
  engine::EngineOptions engine_options;
  mcsim::MachineConfig machine_config;
  ExperimentHooks hooks;

  /// Periodic counter sampling for the measurement window
  /// (every_cycles == 0 keeps it off; see mcsim/sampler.h). Armed just
  /// before each window and disarmed after it, so warm-up never pays
  /// the sampling check.
  mcsim::SamplerConfig sampler;
  /// Tolerance of the auto-warmup convergence check over the sampled
  /// series: the window is flagged unconverged when first- and
  /// second-half IPC diverge by more than this relative amount.
  double convergence_rtol = 0.10;
};

/// Builds a machine + engine + populated database once and runs measured
/// windows against it — the paper's populate → warm up → attach VTune →
/// measure methodology (Section 3). Multiple windows may run on one
/// runner (e.g., the read-only and read-write micro-benchmark variants
/// share a populated database).
class ExperimentRunner {
 public:
  /// Creates the engine, runs the pre_populate hook (if any), and
  /// populates the database from `schema_source`'s table definitions.
  /// Returns the first failure instead of a runner.
  static StatusOr<std::unique_ptr<ExperimentRunner>> Create(
      const ExperimentConfig& config, Workload* schema_source);

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Warm-up (profiler detached) then measurement window (attached).
  /// Returns the paper's per-worker-averaged metrics, or the first
  /// post_warmup hook failure. With num_workers > 1 the windows run
  /// one host thread per simulated core, scheduled per
  /// config.parallel_mode; a single worker or an attached trace sink
  /// always runs serially on the calling thread.
  StatusOr<mcsim::WindowReport> Run(Workload* workload);

  engine::Engine* engine() { return engine_.get(); }
  mcsim::MachineSim* machine() { return machine_.get(); }
  uint64_t aborts() const { return aborts_; }

  /// Aborted attempts of the most recent measurement window, by cause
  /// (also embedded in the returned WindowReport).
  const mcsim::AbortBreakdown& abort_breakdown() const {
    return breakdown_;
  }
  /// Retry-path counters of the most recent measurement window.
  const RetryStats& retry_stats() const { return retry_stats_; }
  /// Transactions that committed in the most recent measurement window
  /// (summed over workers; counts final successes, not attempts).
  uint64_t committed() const { return committed_; }

  /// Attaches a trace sink to the machine (nullptr detaches) and makes
  /// Run() bracket each measurement window with window markers, so a
  /// replay can reproduce the WindowReport. Attach before the first
  /// Run(): capture determinism assumes cold caches and zero counters.
  /// While a sink is attached Run() executes serially — the trace
  /// stream is a single totally-ordered event sequence.
  void set_trace_sink(mcsim::TraceSink* sink) {
    trace_sink_ = sink;
    machine_->SetTraceSink(sink);
  }

  /// Per-transaction simulated-cycle latencies of the most recent
  /// measurement window (aborted transactions included — their retry
  /// cost is exactly the tail the averages hide).
  const obs::LatencyHistogram& latency_histogram() const {
    return latency_;
  }

  /// Lifecycle-span cycles of the most recent measurement window,
  /// summed over workers.
  const obs::SpanCollector& spans() const {
    return *engine_->span_collector();
  }

  /// Host-side self-observability of the most recent Run(): wall-clock
  /// per phase (populate is Create()'s share), simulated references and
  /// instructions retired per host second across the measurement
  /// window, peak RSS, and per-worker host-thread CPU utilization
  /// (threaded modes only). Never deterministic — excluded from every
  /// replay/fingerprint comparison (see docs/OBSERVABILITY.md).
  const obs::HostPerf& host_perf() const { return host_perf_; }

 private:
  explicit ExperimentRunner(const ExperimentConfig& config);

  /// Builds machine + engine, runs hooks.pre_populate, populates.
  Status Init(Workload* schema_source);

  /// Raw module×transaction-type cycle accumulator behind
  /// WindowReport::txn_module_matrix. Indexed [type][module]; per-worker
  /// locals are merged in worker order for kFree.
  struct TxnMatrixAcc {
    std::vector<uint64_t> counts;  // transactions per type, any outcome
    std::vector<std::array<double, mcsim::kMaxModules>> cycles;

    void Resize(int types) {
      counts.assign(types, 0);
      cycles.assign(types, {});
    }
    void Merge(const TxnMatrixAcc& o) {
      for (size_t t = 0; t < o.counts.size() && t < counts.size(); ++t) {
        counts[t] += o.counts[t];
        for (int m = 0; m < mcsim::kMaxModules; ++m) {
          cycles[t][m] += o.cycles[t][m];
        }
      }
    }
  };

  /// Per-phase accounting sinks: the shared members for the serialized
  /// modes, per-worker locals (merged post-join) for kFree.
  struct PhaseSinks {
    obs::LatencyHistogram* lat = nullptr;
    uint64_t* aborts = nullptr;
    mcsim::AbortBreakdown* breakdown = nullptr;
    RetryStats* retry = nullptr;
    uint64_t* committed = nullptr;
    TxnMatrixAcc* matrix = nullptr;
  };

  /// Runs `txns` transactions per worker under `mode`. When `measure`
  /// is set, per-transaction latencies land in latency_ and failures
  /// in aborts_ (merged in worker order for kFree). An injected crash
  /// halts the phase: no worker starts another transaction. Measured
  /// threaded phases additionally record each worker host thread's CPU
  /// seconds into host_perf_.
  void RunPhase(Workload* workload, ParallelMode mode, uint64_t txns,
                std::vector<Rng>* rngs, bool measure);

  /// Converts the raw matrix_ accumulator into the report's
  /// txn_module_matrix rows (names from the workload, module identities
  /// from the machine's registry).
  void AttachTxnMatrix(Workload* workload,
                       mcsim::WindowReport* report) const;

  ExperimentConfig config_;
  std::unique_ptr<mcsim::MachineSim> machine_;
  std::unique_ptr<engine::Engine> engine_;
  obs::LatencyHistogram latency_;
  mcsim::TraceSink* trace_sink_ = nullptr;
  uint64_t aborts_ = 0;
  uint64_t runs_ = 0;
  mcsim::AbortBreakdown breakdown_;
  RetryStats retry_stats_;
  uint64_t committed_ = 0;
  TxnMatrixAcc matrix_;
  std::atomic<int> inflight_retries_{0};
  obs::HostPerf host_perf_;
  /// Flow ids linking retry attempts of one logical transaction in the
  /// timeline export. Only drawn while a TimelineRecorder is attached.
  std::atomic<uint64_t> next_flow_id_{1};
};

/// One-shot convenience: build, populate, run.
StatusOr<mcsim::WindowReport> RunExperiment(const ExperimentConfig& config,
                                            Workload* workload);

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_EXPERIMENT_H_
