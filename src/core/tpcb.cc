#include "core/tpcb.h"

#include <cstring>

namespace imoltp::core {

namespace {

using storage::ColumnType;
using storage::Schema;

// Branch/Teller/Account: [id, balance, filler]; History: [id, amount,
// filler]. The 50-byte String filler approximates TPC-B's ~100-byte rows.
Schema RowSchema() {
  return Schema({ColumnType::kLong, ColumnType::kLong,
                 ColumnType::kString});
}

constexpr uint64_t kAccountFootprint = 110;  // bytes per populated account

}  // namespace

TpcbBenchmark::TpcbBenchmark(const TpcbConfig& config) : config_(config) {
  accounts_ = config.nominal_bytes / kAccountFootprint;
  if (accounts_ > config.max_resident_accounts) {
    accounts_ = config.max_resident_accounts;
  }
  // Keep the TPC-B shape: small Branch/Teller cardinalities relative to
  // Account (1 : 10 : 100000 in the spec; the account scale-down keeps
  // Branch/Teller LLC-resident exactly as at full scale).
  branches_ = accounts_ / 100000;
  const uint64_t parts = static_cast<uint64_t>(config.num_partitions);
  if (branches_ < parts) branches_ = parts;
  if (branches_ < 4) branches_ = 4;
  branches_ = (branches_ + parts - 1) / parts * parts;  // divisible
  tellers_ = branches_ * kTellersPerBranch;
  accounts_per_branch_ = accounts_ / branches_;
  accounts_ = accounts_per_branch_ * branches_;
}

std::vector<engine::TableDef> TpcbBenchmark::Tables() const {
  std::vector<engine::TableDef> defs(4);
  defs[kTableBranch].name = "branch";
  defs[kTableBranch].schema = RowSchema();
  defs[kTableBranch].initial_rows = branches_;
  defs[kTableBranch].seed = 11;

  defs[kTableTeller].name = "teller";
  defs[kTableTeller].schema = RowSchema();
  defs[kTableTeller].initial_rows = tellers_;
  defs[kTableTeller].seed = 12;

  defs[kTableAccount].name = "account";
  defs[kTableAccount].schema = RowSchema();
  defs[kTableAccount].initial_rows = accounts_;
  defs[kTableAccount].nominal_bytes = config_.nominal_bytes;
  defs[kTableAccount].seed = 13;

  defs[kTableHistory].name = "history";
  defs[kTableHistory].schema = RowSchema();
  defs[kTableHistory].initial_rows = 0;
  defs[kTableHistory].seed = 14;
  defs[kTableHistory].no_primary_index = true;
  return defs;
}

Status TpcbBenchmark::RunTransaction(engine::Engine* engine, int worker,
                                     Rng* rng) {
  const int parts = config_.num_partitions;
  const uint64_t branch_lo = branches_ * worker / parts;
  const uint64_t branch_hi = branches_ * (worker + 1) / parts;

  const uint64_t branch = rng->Range(branch_lo, branch_hi - 1);
  const uint64_t teller =
      branch * kTellersPerBranch + rng->Uniform(kTellersPerBranch);
  const uint64_t account = branch * accounts_per_branch_ +
                           rng->Uniform(accounts_per_branch_);
  const int64_t delta =
      static_cast<int64_t>(rng->Uniform(1999999)) - 999999;
  const uint64_t history_id =
      (static_cast<uint64_t>(worker) << 40) | history_counter_++;

  engine::TxnRequest req;
  req.type = kTxnAccountUpdate;
  req.partition_key = branch;
  req.key_space = branches_;
  req.statements = 4;  // three updates + one insert

  return engine->Execute(worker, req, [&](engine::TxnContext& ctx) {
    uint8_t row[128];
    const Schema schema = RowSchema();

    // Update the account balance.
    storage::RowId rid;
    Status s = ctx.Probe(kTableAccount, index::Key::FromUint64(account),
                         &rid);
    if (!s.ok()) return s;
    s = ctx.Read(kTableAccount, rid, row);
    if (!s.ok()) return s;
    int64_t balance = schema.GetLong(row, 1) + delta;
    s = ctx.Update(kTableAccount, rid, 1, &balance);
    if (!s.ok()) return s;

    // Update the teller balance.
    s = ctx.Probe(kTableTeller, index::Key::FromUint64(teller), &rid);
    if (!s.ok()) return s;
    s = ctx.Read(kTableTeller, rid, row);
    if (!s.ok()) return s;
    balance = schema.GetLong(row, 1) + delta;
    s = ctx.Update(kTableTeller, rid, 1, &balance);
    if (!s.ok()) return s;

    // Update the branch balance.
    s = ctx.Probe(kTableBranch, index::Key::FromUint64(branch), &rid);
    if (!s.ok()) return s;
    s = ctx.Read(kTableBranch, rid, row);
    if (!s.ok()) return s;
    balance = schema.GetLong(row, 1) + delta;
    s = ctx.Update(kTableBranch, rid, 1, &balance);
    if (!s.ok()) return s;

    // Append to History.
    uint8_t hist[128];
    schema.SetLong(hist, 0, static_cast<int64_t>(history_id));
    schema.SetLong(hist, 1, delta);
    std::memset(schema.ColumnPtr(hist, 2), 'h', storage::kStringBytes);
    return ctx.Insert(kTableHistory, hist,
                      index::Key::FromUint64(history_id));
  });
}

}  // namespace imoltp::core
