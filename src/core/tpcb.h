#ifndef IMOLTP_CORE_TPCB_H_
#define IMOLTP_CORE_TPCB_H_

#include <atomic>

#include "core/workload.h"

namespace imoltp::core {

/// TPC-B (paper Section 5.1): a banking system with Branch, Teller,
/// Account, and History tables and a single AccountUpdate transaction
/// that updates one row in each of the first three tables and appends to
/// History. Branch and Teller are small (high data locality); Account is
/// the large, low-locality table.
struct TpcbConfig {
  /// Nominal database size; Account dominates it.
  uint64_t nominal_bytes = 100ULL << 30;
  uint64_t max_resident_accounts = 2'000'000;
  int num_partitions = 1;
};

class TpcbBenchmark final : public Workload {
 public:
  explicit TpcbBenchmark(const TpcbConfig& config);

  const char* name() const override { return "tpcb"; }
  std::vector<engine::TableDef> Tables() const override;
  Status RunTransaction(engine::Engine* engine, int worker,
                        Rng* rng) override;

  uint64_t num_branches() const { return branches_; }
  uint64_t num_accounts() const { return accounts_; }

  static constexpr int kTableBranch = 0;
  static constexpr int kTableTeller = 1;
  static constexpr int kTableAccount = 2;
  static constexpr int kTableHistory = 3;
  static constexpr int kTxnAccountUpdate = 10;

  /// TPC-B ratios: 10 tellers and 100K accounts per branch (scaled).
  static constexpr uint64_t kTellersPerBranch = 10;

 private:
  TpcbConfig config_;
  uint64_t branches_;
  uint64_t tellers_;
  uint64_t accounts_;
  uint64_t accounts_per_branch_;
  std::atomic<uint64_t> history_counter_{0};
};

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_TPCB_H_
