#ifndef IMOLTP_CORE_TPCC_H_
#define IMOLTP_CORE_TPCC_H_

#include <atomic>

#include "core/workload.h"

namespace imoltp::core {

/// TPC-C (paper Section 5.2): a wholesale supplier with nine tables and
/// five transaction types, two of them read-only. Compared to TPC-B it
/// has longer transactions, index scans (instruction/data locality), and
/// richer operations: probes, inserts, updates, deletes, joins.
///
/// Standard mix: New-Order 45%, Payment 43%, Order-Status 4%,
/// Delivery 4%, Stock-Level 4% (the read-only pair is 8%, as the paper
/// notes).
struct TpccConfig {
  int warehouses = 8;
  int orders_per_district = 1000;  // initial orders (spec: 3000)
  int num_partitions = 1;          // must divide warehouses
};

class TpccBenchmark final : public Workload {
 public:
  explicit TpccBenchmark(const TpccConfig& config);

  const char* name() const override { return "tpcc"; }
  std::vector<engine::TableDef> Tables() const override;
  Status RunTransaction(engine::Engine* engine, int worker,
                        Rng* rng) override;

  // Txn-type vocabulary for the module×type attribution matrix: the
  // five procedures of the mix, in mix order.
  int NumTransactionTypes() const override { return 5; }
  const char* TransactionTypeName(int type) const override;
  int LastTransactionType(int worker) const override;

  // Table ids.
  static constexpr int kWarehouse = 0;
  static constexpr int kDistrict = 1;
  static constexpr int kCustomer = 2;
  static constexpr int kHistory = 3;
  static constexpr int kOrder = 4;
  static constexpr int kNewOrder = 5;
  static constexpr int kOrderLine = 6;
  static constexpr int kItem = 7;
  static constexpr int kStock = 8;

  // Transaction-type ids.
  static constexpr int kTxnNewOrder = 20;
  static constexpr int kTxnPayment = 21;
  static constexpr int kTxnOrderStatus = 22;
  static constexpr int kTxnDelivery = 23;
  static constexpr int kTxnStockLevel = 24;

  // Cardinality constants (TPC-C clause 1.2, scaled).
  static constexpr uint64_t kDistrictsPerWarehouse = 10;
  static constexpr uint64_t kCustomersPerDistrict = 3000;
  static constexpr uint64_t kItems = 100000;
  static constexpr uint64_t kStockPerWarehouse = 100000;

  // Composite-key packing (ordered: warehouse in the most significant
  // bits so range partitioning by key range == partitioning by
  // warehouse).
  static uint64_t DistrictKey(uint64_t w, uint64_t d) {
    return (w << 4) | d;
  }
  static uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) {
    return (w << 20) | (d << 16) | c;
  }
  static uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) {
    return (w << 28) | (d << 24) | o;
  }
  static uint64_t OrderLineKey(uint64_t w, uint64_t d, uint64_t o,
                               uint64_t l) {
    return (w << 36) | (d << 32) | (o << 8) | l;
  }
  static uint64_t StockKey(uint64_t w, uint64_t i) {
    return (w << 20) | i;
  }

  // Secondary-index keys (unique: the discriminator rides the low bits).
  // Customer-by-last-name (secondary 0 of Customer): last names are the
  // spec's 1000 syllable combinations; here bucket = c mod 1000, giving
  // exactly three customers per (district, name) as at scale factor 1.
  static uint64_t LastNameBucket(uint64_t c) { return c % 1000; }
  static uint64_t CustomerNameKey(uint64_t w, uint64_t d, uint64_t bucket,
                                  uint64_t c) {
    return (((((w << 4) | d) << 10) | bucket) << 16) | c;
  }
  // Order-by-customer (secondary 0 of Order): ascending order id in the
  // low bits, so a prefix scan's last hit is the customer's most recent
  // order.
  static uint64_t OrderCustomerKey(uint64_t w, uint64_t d, uint64_t c,
                                   uint64_t o) {
    return (((((w << 4) | d) << 12) | c) << 24) | o;
  }

  static constexpr int kCustomerByName = 0;  // secondary id on Customer
  static constexpr int kOrderByCustomer = 0;  // secondary id on Order

  /// Cross-shard fragment interface (src/dist). A distributed TPC-C
  /// transaction decomposes into parameter-explicit fragments with no
  /// cross-fragment dataflow — the home fragment never reads what a
  /// remote fragment wrote and vice versa — which is what lets a
  /// deterministic cluster run them on different nodes without 2PC
  /// (docs/distributed.md). The local Run* bodies delegate to these
  /// with everything marked local, so single-node behavior is the
  /// plain TPC-C the paper profiles.
  struct NewOrderParams {
    uint64_t d = 0;
    uint64_t c = 0;
    int ol_cnt = 0;
    uint64_t items[16] = {};
    uint64_t quantities[16] = {};
    /// Bit i set = line i is supplied by a remote warehouse: the home
    /// fragment skips its stock leg; ExecuteNewOrderRemoteStock runs
    /// it at the supplying node.
    uint16_t remote_mask = 0;
  };
  struct PaymentParams {
    uint64_t d = 0;
    uint64_t c = 0;
    uint64_t name_bucket = 0;
    bool by_name = false;
    /// Customer leg runs at another node (TPC-C's remote payment):
    /// the home fragment keeps W_YTD/D_YTD/history only.
    bool customer_remote = false;
    int64_t amount = 0;
    uint64_t history_id = 0;
  };

  /// Home fragment of New-Order at warehouse `w`: district advance,
  /// order + new-order + order-line inserts, and the stock legs of the
  /// locally supplied lines.
  Status ExecuteNewOrderHome(engine::Engine* engine, int worker,
                             uint64_t w, const NewOrderParams& p);
  /// Remote fragment of New-Order at supplying warehouse `w`: the
  /// stock legs of the lines `p.remote_mask` marks.
  Status ExecuteNewOrderRemoteStock(engine::Engine* engine, int worker,
                                    uint64_t w, const NewOrderParams& p);
  /// Home fragment of Payment at warehouse `w`: W_YTD, D_YTD, the
  /// history append, and — unless `p.customer_remote` — the customer
  /// leg.
  Status ExecutePaymentHome(engine::Engine* engine, int worker,
                            uint64_t w, const PaymentParams& p);
  /// Customer fragment of a remote Payment at the customer's
  /// warehouse `w`: balance and ytd-paid update only.
  Status ExecutePaymentCustomer(engine::Engine* engine, int worker,
                                uint64_t w, const PaymentParams& p);
  /// The read-only / single-warehouse procedures, parameter-explicit.
  Status ExecuteOrderStatus(engine::Engine* engine, int worker,
                            uint64_t w, uint64_t d, uint64_t c,
                            uint64_t name_bucket, bool by_name);
  Status ExecuteDelivery(engine::Engine* engine, int worker, uint64_t w,
                         int64_t carrier);
  Status ExecuteStockLevel(engine::Engine* engine, int worker,
                           uint64_t w, uint64_t d, int64_t threshold);

  /// Draws the next history primary key for `worker` (same encoding the
  /// local Payment path uses); cluster drivers call this at generation
  /// time so the key travels with the transaction's parameters.
  uint64_t NextHistoryId(int worker) {
    return (static_cast<uint64_t>(worker) << 40) | history_counter_++;
  }

  /// Counters for mix accounting (testing/reporting hook). Returned as
  /// a plain snapshot; the live counters are atomics so concurrent
  /// workers can bump them.
  struct MixCounts {
    uint64_t new_order = 0;
    uint64_t payment = 0;
    uint64_t order_status = 0;
    uint64_t delivery = 0;
    uint64_t stock_level = 0;
  };
  MixCounts mix_counts() const {
    MixCounts c;
    c.new_order = mix_.new_order.load(std::memory_order_relaxed);
    c.payment = mix_.payment.load(std::memory_order_relaxed);
    c.order_status = mix_.order_status.load(std::memory_order_relaxed);
    c.delivery = mix_.delivery.load(std::memory_order_relaxed);
    c.stock_level = mix_.stock_level.load(std::memory_order_relaxed);
    return c;
  }

 private:
  Status RunNewOrder(engine::Engine* engine, int worker, Rng* rng,
                     uint64_t w);
  Status RunPayment(engine::Engine* engine, int worker, Rng* rng,
                    uint64_t w);
  Status RunOrderStatus(engine::Engine* engine, int worker, Rng* rng,
                        uint64_t w);
  Status RunDelivery(engine::Engine* engine, int worker, Rng* rng,
                     uint64_t w);
  Status RunStockLevel(engine::Engine* engine, int worker, Rng* rng,
                       uint64_t w);
  Status SelectCustomerByName(engine::TxnContext& ctx, uint64_t w,
                              uint64_t d, uint64_t bucket,
                              storage::RowId* rid);

  engine::TxnRequest Request(int type, uint64_t w) const;
  engine::TxnRequest FragmentRequest(int type, uint64_t w,
                                     int statements) const;

  struct AtomicMixCounts {
    std::atomic<uint64_t> new_order{0};
    std::atomic<uint64_t> payment{0};
    std::atomic<uint64_t> order_status{0};
    std::atomic<uint64_t> delivery{0};
    std::atomic<uint64_t> stock_level{0};
  };

  /// One cache line per worker: each free-running worker writes only
  /// its own slot, so the mix dispatch stays data-race-free.
  struct alignas(64) LastTypeSlot {
    int type = 0;
  };

  TpccConfig config_;
  std::atomic<uint64_t> history_counter_{0};
  AtomicMixCounts mix_;
  std::vector<LastTypeSlot> last_type_;
};

}  // namespace imoltp::core

#endif  // IMOLTP_CORE_TPCC_H_
