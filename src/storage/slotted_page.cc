#include "storage/slotted_page.h"

namespace imoltp::storage {

// Slot encoding: `offset` is the record's byte offset within the page
// (0 only for a never-used directory entry — offset 0 is inside the
// header, so no record can live there). The high bit of `length` marks a
// freed slot; the low 15 bits keep the record size so the space can be
// reused by a record of at most that size.
namespace {
constexpr uint16_t kFreedBit = 0x8000;
}  // namespace

uint16_t SlottedPage::Insert(uint8_t* page, const uint8_t* record,
                             uint16_t length) {
  Header* h = HeaderOf(page);
  Slot* slots = Slots(page);

  if (h->free_slots > 0) {
    for (uint16_t s = 0; s < h->num_slots; ++s) {
      if ((slots[s].length & kFreedBit) != 0 &&
          (slots[s].length & ~kFreedBit) >= length) {
        slots[s].length = length;
        std::memcpy(page + slots[s].offset, record, length);
        --h->free_slots;
        return s;
      }
    }
  }

  const uint32_t dir_end =
      sizeof(Header) + (h->num_slots + 1u) * sizeof(Slot);
  if (dir_end + length > h->data_start) return kInvalidSlot;

  const uint16_t slot = h->num_slots++;
  h->data_start -= length;
  slots[slot].offset = h->data_start;
  slots[slot].length = length;
  std::memcpy(page + h->data_start, record, length);
  return slot;
}

bool SlottedPage::InsertAt(uint8_t* page, uint16_t slot,
                           const uint8_t* record, uint16_t length) {
  Header* h = HeaderOf(page);
  Slot* slots = Slots(page);

  // Grow the directory through `slot`; intermediate entries stay
  // never-used (offset 0) and read as absent until restored themselves.
  while (h->num_slots <= slot) {
    const uint32_t dir_end =
        sizeof(Header) + (h->num_slots + 1u) * sizeof(Slot);
    if (dir_end > h->data_start) return false;
    slots[h->num_slots].offset = 0;
    slots[h->num_slots].length = 0;
    ++h->num_slots;
  }

  Slot& s = slots[slot];
  if (s.offset != 0 && (s.length & kFreedBit) == 0) {
    if (s.length != length) return false;
    std::memcpy(page + s.offset, record, length);
    return true;
  }
  if (s.offset != 0 && (s.length & ~kFreedBit) >= length) {
    // Freed slot with enough space: reuse its record area.
    s.length = length;
    --h->free_slots;
    std::memcpy(page + s.offset, record, length);
    return true;
  }
  const uint32_t dir_end = sizeof(Header) + h->num_slots * sizeof(Slot);
  if (dir_end + length > h->data_start) return false;
  if (s.offset != 0) --h->free_slots;  // freed but too small; abandon it
  h->data_start -= length;
  s.offset = h->data_start;
  s.length = length;
  std::memcpy(page + h->data_start, record, length);
  return true;
}

const uint8_t* SlottedPage::Get(const uint8_t* page, uint16_t slot,
                                uint16_t* length) {
  const Header* h = HeaderOf(page);
  if (slot >= h->num_slots) return nullptr;
  const Slot& s = Slots(page)[slot];
  if (s.offset == 0 || (s.length & kFreedBit) != 0) return nullptr;
  if (length != nullptr) *length = s.length;
  return page + s.offset;
}

uint8_t* SlottedPage::GetMutable(uint8_t* page, uint16_t slot,
                                 uint16_t* length) {
  return const_cast<uint8_t*>(
      Get(const_cast<const uint8_t*>(page), slot, length));
}

bool SlottedPage::Delete(uint8_t* page, uint16_t slot) {
  Header* h = HeaderOf(page);
  if (slot >= h->num_slots) return false;
  Slot& s = Slots(page)[slot];
  if (s.offset == 0 || (s.length & kFreedBit) != 0) return false;
  s.length |= kFreedBit;
  ++h->free_slots;
  return true;
}

uint16_t SlottedPage::FreeBytes(const uint8_t* page) {
  const Header* h = HeaderOf(page);
  const uint32_t dir_end =
      sizeof(Header) + h->num_slots * sizeof(Slot);
  if (dir_end >= h->data_start) return 0;
  return static_cast<uint16_t>(h->data_start - dir_end);
}

}  // namespace imoltp::storage
