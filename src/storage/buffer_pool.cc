#include "storage/buffer_pool.h"

#include <bit>
#include <cstring>

namespace imoltp::storage {

namespace {

uint64_t HashPage(PageId p) {
  uint64_t x = p;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BufferPool::BufferPool(uint32_t num_frames, uint32_t page_bytes)
    : num_frames_(num_frames), page_bytes_(page_bytes) {
  const uint64_t table_size = std::bit_ceil<uint64_t>(num_frames * 2ULL);
  table_mask_ = table_size - 1;
  table_.assign(table_size, TableSlot());
  frames_.assign(num_frames, FrameMeta());
  frame_data_ =
      std::make_unique<uint8_t[]>(static_cast<uint64_t>(num_frames) *
                                  page_bytes);
}

uint32_t BufferPool::FindFrame(PageId page_id) const {
  uint64_t slot = HashPage(page_id) & table_mask_;
  while (table_[slot].frame != kNoFrame) {
    if (table_[slot].page_id == page_id) return table_[slot].frame;
    slot = (slot + 1) & table_mask_;
  }
  return kNoFrame;
}

void BufferPool::TableInsert(PageId page_id, uint32_t frame) {
  uint64_t slot = HashPage(page_id) & table_mask_;
  while (table_[slot].frame != kNoFrame) slot = (slot + 1) & table_mask_;
  table_[slot].page_id = page_id;
  table_[slot].frame = frame;
}

void BufferPool::TableErase(PageId page_id) {
  // Backward-shift deletion for linear probing.
  uint64_t slot = HashPage(page_id) & table_mask_;
  while (table_[slot].frame != kNoFrame &&
         table_[slot].page_id != page_id) {
    slot = (slot + 1) & table_mask_;
  }
  if (table_[slot].frame == kNoFrame) return;
  uint64_t hole = slot;
  uint64_t probe = (hole + 1) & table_mask_;
  while (table_[probe].frame != kNoFrame) {
    const uint64_t home = HashPage(table_[probe].page_id) & table_mask_;
    // Can `probe`'s entry legally move into `hole`? Standard Robin-Hood
    // style reachability test for wrap-around ranges.
    const bool movable =
        (hole < probe)
            ? (home <= hole || home > probe)
            : (home <= hole && home > probe);
    if (movable) {
      table_[hole] = table_[probe];
      hole = probe;
    }
    probe = (probe + 1) & table_mask_;
  }
  table_[hole] = TableSlot();
}

uint32_t BufferPool::Evict() {
  // CLOCK: sweep frames, clearing reference bits; pinned frames skipped.
  for (uint32_t sweep = 0; sweep < num_frames_ * 2 + 1; ++sweep) {
    FrameMeta& f = frames_[clock_hand_];
    const uint32_t victim = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_frames_;
    if (f.pin_count > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    if (f.initialized && f.page_id != kInvalidPage) {
      if (f.dirty) {
        auto& copy = backing_store_[f.page_id];
        copy.assign(frame_data_.get() +
                        static_cast<uint64_t>(victim) * page_bytes_,
                    frame_data_.get() +
                        static_cast<uint64_t>(victim + 1) * page_bytes_);
        ++stats_.dirty_writebacks;
      }
      TableErase(f.page_id);
      ++stats_.evictions;
    }
    f = FrameMeta();
    return victim;
  }
  return kNoFrame;  // everything pinned
}

uint8_t* BufferPool::FixPage(mcsim::CoreSim* core, PageId page_id) {
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.fixes;

  // Page-table probe: the traced walk over the open-addressing slots.
  uint64_t slot = HashPage(page_id) & table_mask_;
  uint32_t frame = kNoFrame;
  while (table_[slot].frame != kNoFrame) {
    core->Read(TableSlotAddr(slot), sizeof(TableSlot));
    if (table_[slot].page_id == page_id) {
      frame = table_[slot].frame;
      break;
    }
    slot = (slot + 1) & table_mask_;
  }
  if (frame == kNoFrame) {
    core->Read(TableSlotAddr(slot), sizeof(TableSlot));  // miss probe
  }

  if (frame != kNoFrame) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    frame = Evict();
    if (frame == kNoFrame) return nullptr;
    FrameMeta& f = frames_[frame];
    f.page_id = page_id;
    f.initialized = true;
    uint8_t* data =
        frame_data_.get() + static_cast<uint64_t>(frame) * page_bytes_;
    auto it = backing_store_.find(page_id);
    if (it != backing_store_.end()) {
      std::memcpy(data, it->second.data(), page_bytes_);
    } else {
      std::memset(data, 0, page_bytes_);
      ++known_pages_;
    }
    TableInsert(page_id, frame);
  }

  // Latch + pin: a write to the frame header.
  FrameMeta& f = frames_[frame];
  ++f.pin_count;
  f.ref = true;
  core->Write(reinterpret_cast<uint64_t>(&f), sizeof(uint32_t) * 2);
  return frame_data_.get() + static_cast<uint64_t>(frame) * page_bytes_;
}

void BufferPool::UnfixPage(mcsim::CoreSim* core, PageId page_id,
                           bool dirty) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint32_t frame = FindFrame(page_id);
  if (frame == kNoFrame) return;
  FrameMeta& f = frames_[frame];
  if (f.pin_count > 0) --f.pin_count;
  if (dirty) f.dirty = true;
  core->Write(reinterpret_cast<uint64_t>(&f), sizeof(uint32_t) * 2);
}

}  // namespace imoltp::storage
