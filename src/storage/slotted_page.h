#ifndef IMOLTP_STORAGE_SLOTTED_PAGE_H_
#define IMOLTP_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>

namespace imoltp::storage {

/// Classic slotted page layout for the disk-based engine archetypes
/// (8KB pages, the paper's DBMS D / Shore-MT configuration):
///
///   [ header | slot directory → ...free... ← record data ]
///
/// The slot directory grows forward from the header; record payloads grow
/// backward from the end of the page. Deleting a record frees its slot
/// (records are not compacted; freed slots are reused for same-size
/// records, which is all the fixed-row heap files here need).
///
/// All functions are static and operate on an externally owned page
/// buffer, so pages can live in buffer-pool frames.
class SlottedPage {
 public:
  static constexpr uint16_t kInvalidSlot = UINT16_MAX;

  struct Header {
    uint16_t num_slots;      // size of the slot directory
    uint16_t free_slots;     // directory entries marked free
    uint16_t data_start;     // lowest byte offset used by record data
    uint16_t page_bytes;
  };

  /// Initializes an empty page of `page_bytes` bytes.
  static void Format(uint8_t* page, uint16_t page_bytes) {
    Header* h = HeaderOf(page);
    h->num_slots = 0;
    h->free_slots = 0;
    h->data_start = page_bytes;
    h->page_bytes = page_bytes;
  }

  /// Inserts a record; returns its slot number or kInvalidSlot if the
  /// page cannot hold it.
  static uint16_t Insert(uint8_t* page, const uint8_t* record,
                         uint16_t length);

  /// Places a record at exactly `slot`, growing the directory through it
  /// if needed (recovery placement: RowIds encode the slot, so restored
  /// and replayed rows must land where the live run put them). An
  /// occupied slot of the same length is overwritten in place, making
  /// re-restore idempotent. Returns false if the page cannot hold it.
  static bool InsertAt(uint8_t* page, uint16_t slot,
                       const uint8_t* record, uint16_t length);

  /// Returns a pointer to the record in `slot`, or nullptr if the slot is
  /// invalid or free. `length` (optional) receives the record length.
  static const uint8_t* Get(const uint8_t* page, uint16_t slot,
                            uint16_t* length = nullptr);
  static uint8_t* GetMutable(uint8_t* page, uint16_t slot,
                             uint16_t* length = nullptr);

  /// Frees a slot. Returns false if it was not occupied.
  static bool Delete(uint8_t* page, uint16_t slot);

  static uint16_t NumSlots(const uint8_t* page) {
    return HeaderOf(page)->num_slots;
  }
  static uint16_t NumRecords(const uint8_t* page) {
    const Header* h = HeaderOf(page);
    return h->num_slots - h->free_slots;
  }
  static uint16_t FreeBytes(const uint8_t* page);

 private:
  struct Slot {
    uint16_t offset;  // 0 = free
    uint16_t length;
  };

  static Header* HeaderOf(uint8_t* page) {
    return reinterpret_cast<Header*>(page);
  }
  static const Header* HeaderOf(const uint8_t* page) {
    return reinterpret_cast<const Header*>(page);
  }
  static Slot* Slots(uint8_t* page) {
    return reinterpret_cast<Slot*>(page + sizeof(Header));
  }
  static const Slot* Slots(const uint8_t* page) {
    return reinterpret_cast<const Slot*>(page + sizeof(Header));
  }
};

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_SLOTTED_PAGE_H_
