#ifndef IMOLTP_STORAGE_TABLE_H_
#define IMOLTP_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mcsim/core.h"
#include "storage/schema.h"

namespace imoltp::storage {

using RowId = uint64_t;
inline constexpr RowId kInvalidRow = UINT64_MAX;

/// Row storage. Two implementations:
///
///   - HeapTable: rows materialized in real memory (segmented arena).
///     Used whenever the configured footprint is feasible to allocate.
///   - SparseTable: rows spread over a *nominal* address space with
///     deterministic value generation and a write overlay; used for the
///     paper's 10GB/100GB configurations (see DESIGN.md, Substitutions).
///
/// Every accessor takes the worker's CoreSim so the touched cache lines
/// flow through the simulated hierarchy. Tables are engine-neutral; the
/// engines add their own access-path overheads (buffer pool, versioning)
/// on top.
class Table {
 public:
  virtual ~Table() = default;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }

  virtual uint64_t num_rows() const = 0;

  /// Address of the row in the (possibly nominal) data address space.
  virtual uint64_t RowAddress(RowId row) const = 0;

  /// Copies the full row into `out` (schema().row_bytes() bytes) and
  /// traces the read. Returns false for a deleted/absent row.
  virtual bool ReadRow(mcsim::CoreSim* core, RowId row, uint8_t* out) = 0;

  /// Overwrites one column in place and traces the write.
  virtual void WriteColumn(mcsim::CoreSim* core, RowId row, uint32_t col,
                           const void* value) = 0;

  /// Appends a row; returns its RowId. Traces the write.
  virtual RowId Append(mcsim::CoreSim* core, const uint8_t* row) = 0;

  /// Marks a row deleted. Returns false if it was absent already.
  virtual bool Delete(mcsim::CoreSim* core, RowId row) = 0;

  /// Checkpoint page granularity for in-memory tables: 64 consecutive
  /// RowIds per logical page (≈ a few KB of row data, the same order of
  /// magnitude as a disk page).
  static constexpr uint64_t kRowsPerCheckpointPage = 64;

  /// Logical page a RowId belongs to for checkpoint capture.
  static uint64_t CheckpointPageOf(RowId row) {
    return row / kRowsPerCheckpointPage;
  }

  /// Sorted logical pages mutated since creation (initial population is
  /// clean — recovery regenerates it deterministically, so a fuzzy
  /// checkpoint only needs the pages that diverged). Never reset:
  /// checkpoints are self-contained.
  virtual std::vector<uint64_t> DirtyPages() const = 0;

  /// Places a row image at exactly `row` during recovery, growing the
  /// rid space if needed; `present == false` restores the row as
  /// deleted. Rows allocated only to bridge a rid gap stay absent until
  /// explicitly restored, so lost-tail inserts never resurface as
  /// garbage.
  virtual void RestoreRow(mcsim::CoreSim* core, RowId row,
                          const uint8_t* image, bool present) = 0;

 protected:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  std::string name_;
  Schema schema_;
};

/// Deterministic initial-row generator: fills a row buffer for RowId.
/// Sparse tables call it on demand; heap tables call it at creation.
using RowGenerator = void (*)(const Schema& schema, RowId row, uint64_t seed,
                              uint8_t* out);

/// Default generator: column 0 = row id (Long) or decimal string of the
/// row id (String); other columns derived from a seeded hash.
void DefaultRowGenerator(const Schema& schema, RowId row, uint64_t seed,
                         uint8_t* out);

/// Options controlling table placement.
struct TableOptions {
  /// Bytes of address space each row occupies (>= schema row bytes).
  /// Dense OLTP pages have per-row overhead (slot headers, padding);
  /// sparse tables use this to spread rows over the nominal size.
  uint32_t row_stride = 0;  // 0: derived from schema (+8 header bytes)

  /// If the full footprint (num_rows * stride) exceeds this, a
  /// SparseTable is used instead of a HeapTable.
  uint64_t max_resident_bytes = 256ULL << 20;

  /// Seed for deterministic sparse-row generation.
  uint64_t generator_seed = 0x1234;

  /// Generator for initial rows.
  RowGenerator generator = nullptr;  // nullptr: DefaultRowGenerator

  /// Added to the local RowId before calling the generator, so one
  /// logical table split across partition slices generates globally
  /// consistent rows.
  uint64_t generator_row_offset = 0;
};

/// Factory: picks HeapTable or SparseTable by footprint (see DESIGN.md).
std::unique_ptr<Table> CreateTable(std::string name, Schema schema,
                                   uint64_t initial_rows,
                                   const TableOptions& options);

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_TABLE_H_
