#ifndef IMOLTP_STORAGE_SCHEMA_H_
#define IMOLTP_STORAGE_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace imoltp::storage {

/// Column types used by the paper's workloads. `kLong` is an 8-byte
/// integer; `kString` is a fixed 50-byte character field (the paper's
/// String micro-benchmark variant uses two 50-byte String columns).
enum class ColumnType : uint8_t {
  kLong,
  kString,
};

inline constexpr uint32_t kLongBytes = 8;
inline constexpr uint32_t kStringBytes = 50;

inline uint32_t ColumnWidth(ColumnType t) {
  return t == ColumnType::kLong ? kLongBytes : kStringBytes;
}

/// A fixed-layout row schema: column offsets are computed once; rows are
/// flat byte buffers of `row_bytes()` with no per-row indirection.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnType> columns)
      : columns_(std::move(columns)) {
    offsets_.reserve(columns_.size());
    uint32_t off = 0;
    for (ColumnType t : columns_) {
      offsets_.push_back(off);
      off += ColumnWidth(t);
    }
    row_bytes_ = off;
  }

  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }
  ColumnType column_type(uint32_t i) const { return columns_[i]; }
  uint32_t column_offset(uint32_t i) const { return offsets_[i]; }
  uint32_t column_width(uint32_t i) const {
    return ColumnWidth(columns_[i]);
  }
  uint32_t row_bytes() const { return row_bytes_; }

  /// Reads column `i` of a row buffer as a Long.
  int64_t GetLong(const uint8_t* row, uint32_t i) const {
    int64_t v;
    std::memcpy(&v, row + offsets_[i], sizeof(v));
    return v;
  }
  /// Writes column `i` of a row buffer as a Long.
  void SetLong(uint8_t* row, uint32_t i, int64_t v) const {
    std::memcpy(row + offsets_[i], &v, sizeof(v));
  }

  const uint8_t* ColumnPtr(const uint8_t* row, uint32_t i) const {
    return row + offsets_[i];
  }
  uint8_t* ColumnPtr(uint8_t* row, uint32_t i) const {
    return row + offsets_[i];
  }

 private:
  std::vector<ColumnType> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_bytes_ = 0;
};

/// Convenience builders for the paper's micro-benchmark table: two
/// columns (key, value), both Long or both String.
inline Schema TwoLongColumns() {
  return Schema({ColumnType::kLong, ColumnType::kLong});
}
inline Schema TwoStringColumns() {
  return Schema({ColumnType::kString, ColumnType::kString});
}

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_SCHEMA_H_
