#ifndef IMOLTP_STORAGE_BUFFER_POOL_H_
#define IMOLTP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mcsim/core.h"

namespace imoltp::storage {

using PageId = uint64_t;
inline constexpr PageId kInvalidPage = UINT64_MAX;

/// The buffer pool of the disk-based engine archetypes: fixed frame pool,
/// open-addressing page table, CLOCK replacement, pin counts, per-frame
/// latches. The paper's in-memory systems omit exactly this component;
/// its page-table probe and frame bookkeeping are a large part of the
/// disk-based systems' per-access overhead (Harizopoulos et al., cited as
/// [8] in the paper).
///
/// Pages evicted while dirty are copied to an in-memory backing store and
/// restored on the next fix — the pool is functionally correct at any
/// capacity, which the eviction tests and the buffer-pool ablation bench
/// rely on. In the paper's configurations the data is memory-resident, so
/// measured windows run without evictions.
///
/// Page-table probes and frame-header touches flow through the simulated
/// hierarchy (they are real memory the engine walks on every access).
///
/// Thread safety: one mutex serializes fix/unfix (the real systems this
/// models latch at finer grain, but the simulated cost is what matters —
/// the traced probe stream is identical either way). Page bytes returned
/// by FixPage stay valid until the matching UnfixPage: the pin count
/// blocks eviction, and row-disjoint writes within a page are guaranteed
/// by the engine's 2PL above.
class BufferPool {
 public:
  struct Stats {
    uint64_t fixes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
  };

  BufferPool(uint32_t num_frames, uint32_t page_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fixes `page_id` in memory and returns its frame data (page_bytes
  /// bytes). A page seen for the first time comes up zero-filled (callers
  /// format it). Returns nullptr only if every frame is pinned.
  uint8_t* FixPage(mcsim::CoreSim* core, PageId page_id);

  /// Releases a fix. `dirty` marks the frame for writeback on eviction.
  void UnfixPage(mcsim::CoreSim* core, PageId page_id, bool dirty);

  uint32_t page_bytes() const { return page_bytes_; }
  uint32_t num_frames() const { return num_frames_; }
  const Stats& stats() const { return stats_; }

  /// Number of distinct pages ever created (resident + backed).
  uint64_t num_pages() const {
    std::lock_guard<std::mutex> guard(mu_);
    return known_pages_;
  }

  /// True if the page is currently resident (testing hook).
  bool IsResident(PageId page_id) const {
    std::lock_guard<std::mutex> guard(mu_);
    return FindFrame(page_id) != kNoFrame;
  }

 private:
  static constexpr uint32_t kNoFrame = UINT32_MAX;

  struct FrameMeta {
    PageId page_id = kInvalidPage;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool ref = false;        // CLOCK reference bit
    bool initialized = false;
  };

  // Open-addressing page-table entry; empty when frame == kNoFrame.
  struct TableSlot {
    PageId page_id = kInvalidPage;
    uint32_t frame = kNoFrame;
  };

  uint32_t FindFrame(PageId page_id) const;
  void TableInsert(PageId page_id, uint32_t frame);
  void TableErase(PageId page_id);
  uint32_t Evict();
  uint64_t TableSlotAddr(uint64_t slot) const {
    return reinterpret_cast<uint64_t>(&table_[slot]);
  }

  mutable std::mutex mu_;
  uint32_t num_frames_;
  uint32_t page_bytes_;
  uint64_t table_mask_;
  uint64_t known_pages_ = 0;
  uint32_t clock_hand_ = 0;
  Stats stats_;
  std::vector<TableSlot> table_;
  std::vector<FrameMeta> frames_;
  std::unique_ptr<uint8_t[]> frame_data_;
  std::unordered_map<PageId, std::vector<uint8_t>> backing_store_;
};

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_BUFFER_POOL_H_
