#ifndef IMOLTP_STORAGE_DISK_HEAP_FILE_H_
#define IMOLTP_STORAGE_DISK_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

#include "mcsim/core.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/slotted_page.h"
#include "storage/table.h"

namespace imoltp::storage {

/// Heap file of fixed-size rows in slotted pages behind a BufferPool —
/// the disk-based engine archetypes' row storage. Every row access costs
/// a page fix (page-table probe, latch, pin), a slot-directory read, the
/// row bytes, and an unfix, exactly the access path whose overhead the
/// in-memory systems eliminate.
///
/// RowIds encode (page_no << 16 | slot).
///
/// Thread safety: structural operations (Append / Delete mutate the slot
/// directory, the append cursor and the row count) take the file lock
/// exclusively; Read / WriteColumn share it. Row-disjointness of
/// concurrent same-page writes is guaranteed by the engine's 2PL.
class DiskHeapFile {
 public:
  DiskHeapFile(BufferPool* pool, uint32_t file_id, Schema schema);

  /// Appends a row; returns its RowId.
  RowId Append(mcsim::CoreSim* core, const uint8_t* row);

  /// Copies the row into `out`; false if deleted/absent.
  bool Read(mcsim::CoreSim* core, RowId row, uint8_t* out);

  /// Overwrites one column in place; false if deleted/absent.
  bool WriteColumn(mcsim::CoreSim* core, RowId row, uint32_t col,
                   const void* value);

  bool Delete(mcsim::CoreSim* core, RowId row);

  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_relaxed);
  }
  const Schema& schema() const { return schema_; }
  uint32_t rows_per_page() const { return rows_per_page_; }

  static uint64_t PageNo(RowId row) { return row >> 16; }
  static uint16_t Slot(RowId row) { return static_cast<uint16_t>(row); }

 private:
  PageId GlobalPage(uint64_t page_no) const {
    return (static_cast<uint64_t>(file_id_) << 40) | page_no;
  }

  BufferPool* pool_;
  uint32_t file_id_;
  Schema schema_;
  uint32_t rows_per_page_;
  std::shared_mutex mu_;
  std::atomic<uint64_t> num_rows_{0};
  uint64_t append_page_ = 0;  // first page with free space
};

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_DISK_HEAP_FILE_H_
