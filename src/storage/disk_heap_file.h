#ifndef IMOLTP_STORAGE_DISK_HEAP_FILE_H_
#define IMOLTP_STORAGE_DISK_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "mcsim/core.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/slotted_page.h"
#include "storage/table.h"

namespace imoltp::storage {

/// Heap file of fixed-size rows in slotted pages behind a BufferPool —
/// the disk-based engine archetypes' row storage. Every row access costs
/// a page fix (page-table probe, latch, pin), a slot-directory read, the
/// row bytes, and an unfix, exactly the access path whose overhead the
/// in-memory systems eliminate.
///
/// RowIds encode (page_no << 16 | slot).
///
/// Thread safety: structural operations (Append / Delete mutate the slot
/// directory, the append cursor and the row count) take the file lock
/// exclusively; Read / WriteColumn share it. Row-disjointness of
/// concurrent same-page writes is guaranteed by the engine's 2PL.
class DiskHeapFile {
 public:
  DiskHeapFile(BufferPool* pool, uint32_t file_id, Schema schema);

  /// Appends a row; returns its RowId.
  RowId Append(mcsim::CoreSim* core, const uint8_t* row);

  /// Copies the row into `out`; false if deleted/absent.
  bool Read(mcsim::CoreSim* core, RowId row, uint8_t* out);

  /// Overwrites one column in place; false if deleted/absent.
  bool WriteColumn(mcsim::CoreSim* core, RowId row, uint32_t col,
                   const void* value);

  bool Delete(mcsim::CoreSim* core, RowId row);

  /// Places `image` at exactly `row` (page, slot) during recovery,
  /// formatting the page if needed. Idempotent for an occupied slot of
  /// the same size. Returns false if the page cannot hold the row.
  bool Restore(mcsim::CoreSim* core, RowId row, const uint8_t* image);

  /// Number of directory slots on `page_no` (the capture enumeration
  /// bound; 0 for an untouched page).
  uint16_t SlotsOnPage(mcsim::CoreSim* core, uint64_t page_no);

  /// Sorted page numbers mutated since the last MarkClean().
  std::vector<uint64_t> DirtyPages() const;

  /// Clears dirty tracking — called once initial population is done, so
  /// checkpoints only carry pages that diverged from the regenerable
  /// initial state.
  void MarkClean();

  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_relaxed);
  }
  const Schema& schema() const { return schema_; }
  uint32_t rows_per_page() const { return rows_per_page_; }

  static uint64_t PageNo(RowId row) { return row >> 16; }
  static uint16_t Slot(RowId row) { return static_cast<uint16_t>(row); }

 private:
  PageId GlobalPage(uint64_t page_no) const {
    return (static_cast<uint64_t>(file_id_) << 40) | page_no;
  }

  void MarkDirty(uint64_t page_no) {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.insert(page_no);
  }

  BufferPool* pool_;
  uint32_t file_id_;
  Schema schema_;
  uint32_t rows_per_page_;
  std::shared_mutex mu_;
  std::atomic<uint64_t> num_rows_{0};
  uint64_t append_page_ = 0;  // first page with free space
  // Checkpoint dirty-page table. Own mutex: WriteColumn mutates page
  // contents under only the shared file lock.
  mutable std::mutex dirty_mu_;
  std::unordered_set<uint64_t> dirty_;
};

}  // namespace imoltp::storage

#endif  // IMOLTP_STORAGE_DISK_HEAP_FILE_H_
