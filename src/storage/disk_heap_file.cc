#include "storage/disk_heap_file.h"

#include <algorithm>
#include <cstring>

namespace imoltp::storage {

DiskHeapFile::DiskHeapFile(BufferPool* pool, uint32_t file_id,
                           Schema schema)
    : pool_(pool), file_id_(file_id), schema_(std::move(schema)) {
  // 8 bytes of slotted-page overhead per row (slot entry + share of the
  // header); conservative but only used for the append cursor heuristic.
  const uint32_t per_row = schema_.row_bytes() + 8;
  rows_per_page_ = (pool_->page_bytes() - 16) / per_row;
  if (rows_per_page_ == 0) rows_per_page_ = 1;
}

RowId DiskHeapFile::Append(mcsim::CoreSim* core, const uint8_t* row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (;;) {
    const PageId pid = GlobalPage(append_page_);
    uint8_t* page = pool_->FixPage(core, pid);
    if (page == nullptr) return kInvalidRow;
    SlottedPage::Header* header =
        reinterpret_cast<SlottedPage::Header*>(page);
    if (header->page_bytes == 0) {
      SlottedPage::Format(page,
                          static_cast<uint16_t>(pool_->page_bytes()));
    }
    core->Read(reinterpret_cast<uint64_t>(page), 16);  // header
    const uint16_t slot =
        SlottedPage::Insert(page, row,
                            static_cast<uint16_t>(schema_.row_bytes()));
    if (slot != SlottedPage::kInvalidSlot) {
      const uint8_t* rec = SlottedPage::Get(page, slot);
      core->Write(reinterpret_cast<uint64_t>(rec), schema_.row_bytes());
      pool_->UnfixPage(core, pid, /*dirty=*/true);
      num_rows_.fetch_add(1, std::memory_order_relaxed);
      MarkDirty(append_page_);
      return (append_page_ << 16) | slot;
    }
    pool_->UnfixPage(core, pid, /*dirty=*/false);
    ++append_page_;
  }
}

bool DiskHeapFile::Read(mcsim::CoreSim* core, RowId row, uint8_t* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PageId pid = GlobalPage(PageNo(row));
  uint8_t* page = pool_->FixPage(core, pid);
  if (page == nullptr) return false;
  core->Read(reinterpret_cast<uint64_t>(page), 16);  // header + slot dir
  const uint8_t* rec = SlottedPage::Get(page, Slot(row));
  bool ok = rec != nullptr;
  if (ok) {
    core->Read(reinterpret_cast<uint64_t>(rec), schema_.row_bytes());
    std::memcpy(out, rec, schema_.row_bytes());
  }
  pool_->UnfixPage(core, pid, /*dirty=*/false);
  return ok;
}

bool DiskHeapFile::WriteColumn(mcsim::CoreSim* core, RowId row,
                               uint32_t col, const void* value) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PageId pid = GlobalPage(PageNo(row));
  uint8_t* page = pool_->FixPage(core, pid);
  if (page == nullptr) return false;
  core->Read(reinterpret_cast<uint64_t>(page), 16);
  uint8_t* rec = SlottedPage::GetMutable(page, Slot(row));
  bool ok = rec != nullptr;
  if (ok) {
    uint8_t* dst = schema_.ColumnPtr(rec, col);
    core->Write(reinterpret_cast<uint64_t>(dst),
                schema_.column_width(col));
    std::memcpy(dst, value, schema_.column_width(col));
    MarkDirty(PageNo(row));
  }
  pool_->UnfixPage(core, pid, /*dirty=*/ok);
  return ok;
}

bool DiskHeapFile::Delete(mcsim::CoreSim* core, RowId row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const PageId pid = GlobalPage(PageNo(row));
  uint8_t* page = pool_->FixPage(core, pid);
  if (page == nullptr) return false;
  core->Read(reinterpret_cast<uint64_t>(page), 16);
  const bool ok = SlottedPage::Delete(page, Slot(row));
  if (ok) {
    core->Write(reinterpret_cast<uint64_t>(page), 16);
    num_rows_.fetch_sub(1, std::memory_order_relaxed);
    if (PageNo(row) < append_page_) append_page_ = PageNo(row);
    MarkDirty(PageNo(row));
  }
  pool_->UnfixPage(core, pid, /*dirty=*/ok);
  return ok;
}

bool DiskHeapFile::Restore(mcsim::CoreSim* core, RowId row,
                           const uint8_t* image) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const PageId pid = GlobalPage(PageNo(row));
  uint8_t* page = pool_->FixPage(core, pid);
  if (page == nullptr) return false;
  SlottedPage::Header* header =
      reinterpret_cast<SlottedPage::Header*>(page);
  if (header->page_bytes == 0) {
    SlottedPage::Format(page, static_cast<uint16_t>(pool_->page_bytes()));
  }
  const bool existed = SlottedPage::Get(page, Slot(row)) != nullptr;
  const bool ok =
      SlottedPage::InsertAt(page, Slot(row), image,
                            static_cast<uint16_t>(schema_.row_bytes()));
  if (ok) {
    const uint8_t* rec = SlottedPage::Get(page, Slot(row));
    core->Write(reinterpret_cast<uint64_t>(rec), schema_.row_bytes());
    if (!existed) num_rows_.fetch_add(1, std::memory_order_relaxed);
    MarkDirty(PageNo(row));
  }
  pool_->UnfixPage(core, pid, /*dirty=*/ok);
  return ok;
}

uint16_t DiskHeapFile::SlotsOnPage(mcsim::CoreSim* core,
                                   uint64_t page_no) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const PageId pid = GlobalPage(page_no);
  uint8_t* page = pool_->FixPage(core, pid);
  if (page == nullptr) return 0;
  SlottedPage::Header* header =
      reinterpret_cast<SlottedPage::Header*>(page);
  const uint16_t slots =
      header->page_bytes == 0 ? 0 : SlottedPage::NumSlots(page);
  core->Read(reinterpret_cast<uint64_t>(page), 16);
  pool_->UnfixPage(core, pid, /*dirty=*/false);
  return slots;
}

std::vector<uint64_t> DiskHeapFile::DirtyPages() const {
  std::lock_guard<std::mutex> lock(dirty_mu_);
  std::vector<uint64_t> pages(dirty_.begin(), dirty_.end());
  std::sort(pages.begin(), pages.end());
  return pages;
}

void DiskHeapFile::MarkClean() {
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.clear();
}

}  // namespace imoltp::storage
