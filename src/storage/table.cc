#include "storage/table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace imoltp::storage {

namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void DefaultRowGenerator(const Schema& schema, RowId row, uint64_t seed,
                         uint8_t* out) {
  for (uint32_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column_type(c) == ColumnType::kLong) {
      const int64_t v = (c == 0) ? static_cast<int64_t>(row)
                                 : static_cast<int64_t>(
                                       Mix(seed ^ (row * 31 + c)));
      schema.SetLong(out, c, v);
    } else {
      char* dst = reinterpret_cast<char*>(schema.ColumnPtr(out, c));
      if (c == 0) {
        // Key digits lead, filler follows: realistic string keys differ
        // in their first bytes, so comparisons early-exit (the spatial
        // locality the paper's Section 6.2 measures). The encoding is
        // unique but not numeric-order-preserving.
        const int n = std::snprintf(dst, kStringBytes, "%llu",
                                    static_cast<unsigned long long>(row));
        for (uint32_t i = static_cast<uint32_t>(n); i < kStringBytes;
             ++i) {
          dst[i] = 'a';
        }
      } else {
        const uint64_t h = Mix(seed ^ (row * 31 + c));
        for (uint32_t i = 0; i < kStringBytes; ++i) {
          dst[i] = static_cast<char>('a' + ((h >> (i % 56)) + i) % 26);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HeapTable: rows materialized in real memory.
//
// Thread safety: a reader/writer lock guards row storage. Readers
// (ReadRow / RowAddress) share; mutations (WriteColumn / Append / Delete)
// are exclusive — `deleted_` is a bit-packed vector<bool>, so even
// row-disjoint mutations touch shared words, and MVCC installs can target
// the same row from two committers.
// ---------------------------------------------------------------------------

class HeapTable final : public Table {
 public:
  HeapTable(std::string name, Schema schema, uint64_t initial_rows,
            const TableOptions& options)
      : Table(std::move(name), std::move(schema)),
        stride_(options.row_stride),
        seed_(options.generator_seed) {
    const RowGenerator gen =
        options.generator ? options.generator : DefaultRowGenerator;
    segments_.reserve(initial_rows / kRowsPerSegment + 1);
    for (RowId r = 0; r < initial_rows; ++r) {
      uint8_t* slot = AllocateSlot();
      gen(schema_, options.generator_row_offset + r, seed_, slot);
    }
  }

  uint64_t num_rows() const override {
    return num_rows_.load(std::memory_order_relaxed);
  }

  uint64_t RowAddress(RowId row) const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return reinterpret_cast<uint64_t>(SlotPtr(row));
  }

  bool ReadRow(mcsim::CoreSim* core, RowId row, uint8_t* out) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (row >= num_rows() || deleted_[row]) return false;
    const uint8_t* slot = SlotPtr(row);
    core->Read(reinterpret_cast<uint64_t>(slot), schema_.row_bytes());
    std::memcpy(out, slot, schema_.row_bytes());
    return true;
  }

  void WriteColumn(mcsim::CoreSim* core, RowId row, uint32_t col,
                   const void* value) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (row >= num_rows() || deleted_[row]) return;
    uint8_t* slot = SlotPtr(row);
    uint8_t* dst = schema_.ColumnPtr(slot, col);
    core->Write(reinterpret_cast<uint64_t>(dst), schema_.column_width(col));
    std::memcpy(dst, value, schema_.column_width(col));
    dirty_.insert(CheckpointPageOf(row));
  }

  RowId Append(mcsim::CoreSim* core, const uint8_t* row) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    uint8_t* slot = AllocateSlot();
    std::memcpy(slot, row, schema_.row_bytes());
    core->Write(reinterpret_cast<uint64_t>(slot), schema_.row_bytes());
    const RowId id = num_rows() - 1;
    dirty_.insert(CheckpointPageOf(id));
    return id;
  }

  bool Delete(mcsim::CoreSim* core, RowId row) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (row >= num_rows() || deleted_[row]) return false;
    deleted_[row] = true;
    core->Write(reinterpret_cast<uint64_t>(SlotPtr(row)), 8);
    dirty_.insert(CheckpointPageOf(row));
    return true;
  }

  std::vector<uint64_t> DirtyPages() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<uint64_t> pages(dirty_.begin(), dirty_.end());
    std::sort(pages.begin(), pages.end());
    return pages;
  }

  void RestoreRow(mcsim::CoreSim* core, RowId row, const uint8_t* image,
                  bool present) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    while (num_rows() <= row) {
      AllocateSlot();
      deleted_.back() = true;  // gap rows stay absent until restored
    }
    deleted_[row] = !present;
    if (present) {
      uint8_t* slot = SlotPtr(row);
      std::memcpy(slot, image, schema_.row_bytes());
      core->Write(reinterpret_cast<uint64_t>(slot), schema_.row_bytes());
    }
    dirty_.insert(CheckpointPageOf(row));
  }

 private:
  static constexpr uint64_t kRowsPerSegment = 4096;

  uint8_t* AllocateSlot() {
    const RowId row = num_rows_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t seg = row / kRowsPerSegment;
    if (seg >= segments_.size()) {
      segments_.push_back(
          std::make_unique<uint8_t[]>(kRowsPerSegment * stride_));
    }
    deleted_.push_back(false);
    return segments_[seg].get() + (row % kRowsPerSegment) * stride_;
  }

  const uint8_t* SlotPtr(RowId row) const {
    return segments_[row / kRowsPerSegment].get() +
           (row % kRowsPerSegment) * stride_;
  }
  uint8_t* SlotPtr(RowId row) {
    return segments_[row / kRowsPerSegment].get() +
           (row % kRowsPerSegment) * stride_;
  }

  uint32_t stride_;
  uint64_t seed_;
  std::atomic<uint64_t> num_rows_{0};
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> segments_;
  std::vector<bool> deleted_;
  std::unordered_set<uint64_t> dirty_;  // ctor population stays clean
};

// ---------------------------------------------------------------------------
// SparseTable: nominal address space, deterministic values, write overlay.
// ---------------------------------------------------------------------------

class SparseTable final : public Table {
 public:
  SparseTable(std::string name, Schema schema, uint64_t initial_rows,
              const TableOptions& options)
      : Table(std::move(name), std::move(schema)),
        stride_(options.row_stride),
        seed_(options.generator_seed),
        generator_(options.generator ? options.generator
                                     : DefaultRowGenerator),
        row_offset_(options.generator_row_offset),
        num_rows_(initial_rows) {
    // A private nominal address range, far away from real heap pointers
    // and from synthetic code addresses (see mcsim::CodeSpace).
    static std::atomic<uint64_t> next_base{1ULL << 44};
    base_ = next_base.fetch_add(
        initial_rows * static_cast<uint64_t>(stride_) + (1ULL << 30));
  }

  uint64_t num_rows() const override {
    return num_rows_.load(std::memory_order_relaxed);
  }

  uint64_t RowAddress(RowId row) const override {
    return base_ + row * static_cast<uint64_t>(stride_);
  }

  bool ReadRow(mcsim::CoreSim* core, RowId row, uint8_t* out) override {
    if (row >= num_rows()) return false;
    core->Read(RowAddress(row), schema_.row_bytes());
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = overlay_.find(row);
    if (it != overlay_.end()) {
      if (it->second.deleted) return false;
      std::memcpy(out, it->second.bytes.data(), schema_.row_bytes());
      return true;
    }
    generator_(schema_, row_offset_ + row, seed_, out);
    return true;
  }

  void WriteColumn(mcsim::CoreSim* core, RowId row, uint32_t col,
                   const void* value) override {
    if (row >= num_rows()) return;
    core->Write(RowAddress(row) + schema_.column_offset(col),
                schema_.column_width(col));
    std::unique_lock<std::shared_mutex> lock(mu_);
    OverlayRow& o = Materialize(row);
    if (o.deleted) return;
    std::memcpy(o.bytes.data() + schema_.column_offset(col), value,
                schema_.column_width(col));
  }

  RowId Append(mcsim::CoreSim* core, const uint8_t* row) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const RowId id = num_rows_.fetch_add(1, std::memory_order_relaxed);
    OverlayRow& o = overlay_[id];
    o.bytes.assign(row, row + schema_.row_bytes());
    core->Write(RowAddress(id), schema_.row_bytes());
    return id;
  }

  bool Delete(mcsim::CoreSim* core, RowId row) override {
    if (row >= num_rows()) return false;
    std::unique_lock<std::shared_mutex> lock(mu_);
    OverlayRow& o = Materialize(row);
    if (o.deleted) return false;
    o.deleted = true;
    core->Write(RowAddress(row), 8);
    return true;
  }

  std::vector<uint64_t> DirtyPages() const override {
    // The overlay holds exactly the rows that diverged from the
    // deterministic generator, so dirty pages fall out of its keys.
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::unordered_set<uint64_t> pages;
    for (const auto& [row, o] : overlay_) {
      pages.insert(CheckpointPageOf(row));
    }
    std::vector<uint64_t> sorted(pages.begin(), pages.end());
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  void RestoreRow(mcsim::CoreSim* core, RowId row, const uint8_t* image,
                  bool present) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const uint64_t old_rows = num_rows_.load(std::memory_order_relaxed);
    if (row >= old_rows) {
      // Gap rows would otherwise read as generator-present; tombstone
      // them until (unless) they are restored explicitly.
      for (RowId r = old_rows; r < row; ++r) overlay_[r].deleted = true;
      num_rows_.store(row + 1, std::memory_order_relaxed);
    }
    OverlayRow& o = overlay_[row];
    o.deleted = !present;
    if (present) {
      o.bytes.assign(image, image + schema_.row_bytes());
      core->Write(RowAddress(row), schema_.row_bytes());
    }
  }

 private:
  struct OverlayRow {
    std::vector<uint8_t> bytes;
    bool deleted = false;
  };

  OverlayRow& Materialize(RowId row) {
    auto [it, inserted] = overlay_.try_emplace(row);
    if (inserted) {
      it->second.bytes.resize(schema_.row_bytes());
      generator_(schema_, row_offset_ + row, seed_,
                 it->second.bytes.data());
    }
    return it->second;
  }

  uint32_t stride_;
  uint64_t seed_;
  RowGenerator generator_;
  uint64_t row_offset_;
  std::atomic<uint64_t> num_rows_;
  uint64_t base_;
  mutable std::shared_mutex mu_;
  std::unordered_map<RowId, OverlayRow> overlay_;
};

std::unique_ptr<Table> CreateTable(std::string name, Schema schema,
                                   uint64_t initial_rows,
                                   const TableOptions& options) {
  TableOptions opts = options;
  if (opts.row_stride == 0) {
    opts.row_stride = schema.row_bytes() + 8;  // slot header
  }
  if (opts.row_stride < schema.row_bytes()) {
    opts.row_stride = schema.row_bytes();
  }
  const uint64_t footprint = initial_rows * opts.row_stride;
  if (footprint <= opts.max_resident_bytes) {
    return std::make_unique<HeapTable>(std::move(name), std::move(schema),
                                       initial_rows, opts);
  }
  return std::make_unique<SparseTable>(std::move(name), std::move(schema),
                                       initial_rows, opts);
}

}  // namespace imoltp::storage
