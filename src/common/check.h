#ifndef IMOLTP_COMMON_CHECK_H_
#define IMOLTP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Unconditional invariant check (active in all build types). Misusing
/// the measurement apparatus must fail loudly — a silently-empty window
/// report would be archived and diffed as if it were a real result.
#define IMOLTP_CHECK(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, msg, #cond);                    \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // IMOLTP_COMMON_CHECK_H_
