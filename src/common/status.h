#ifndef IMOLTP_COMMON_STATUS_H_
#define IMOLTP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace imoltp {

/// Error codes used across the library. The project does not use C++
/// exceptions on any path that executes during simulation; fallible
/// operations return Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kAborted,          // transaction aborted (conflict, deadlock, validation)
  kInvalidArgument,
  kResourceExhausted,
  kInternal,
};

/// A lightweight absl::Status-style result type.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Aborted(std::string m = "aborted") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "resource exhausted") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m = "internal error") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kAborted: return "ABORTED";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

/// Minimal StatusOr: either an error Status or a value.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace imoltp

#endif  // IMOLTP_COMMON_STATUS_H_
