#ifndef IMOLTP_COMMON_FORMAT_H_
#define IMOLTP_COMMON_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace imoltp {

/// Human-readable byte count: "1MB", "10GB", "512B".
inline std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluGB",
                  static_cast<unsigned long long>(bytes >> 30));
  } else if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Fixed-width numeric cell for plain-text tables.
inline std::string FormatCell(double v, int width = 9, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
  return buf;
}

}  // namespace imoltp

#endif  // IMOLTP_COMMON_FORMAT_H_
