#ifndef IMOLTP_COMMON_RNG_H_
#define IMOLTP_COMMON_RNG_H_

#include <cstdint>

namespace imoltp {

/// Deterministic xoshiro256** PRNG. Every experiment in the harness is
/// seeded explicitly so runs are exactly reproducible (the paper averaged
/// three noisy hardware runs; the simulator needs no such averaging).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// TPC-C style non-uniform random (NURand), clause 2.1.6.
  uint64_t NonUniform(uint64_t a, uint64_t c, uint64_t lo, uint64_t hi) {
    return (((Range(0, a) | Range(lo, hi)) + c) % (hi - lo + 1)) + lo;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace imoltp

#endif  // IMOLTP_COMMON_RNG_H_
