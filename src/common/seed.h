#ifndef IMOLTP_COMMON_SEED_H_
#define IMOLTP_COMMON_SEED_H_

#include <cstdint>

namespace imoltp {

/// Named RNG stream ids for DeriveSeed. Every subsystem that derives a
/// per-node / per-worker / per-cycle seed from a base seed names its
/// stream here, so no two call sites can collide by reusing the same
/// ad-hoc arithmetic (the bug class this helper replaces: `seed + i`
/// from two different layers producing correlated streams).
enum class SeedStream : uint64_t {
  kWorker = 1,        // per-worker transaction RNGs (ExperimentRunner)
  kChaosInjector = 2, // per-cycle fault injector (chaos harness)
  kChaosRun = 3,      // per-cycle experiment seed (chaos harness)
  kNodeClient = 4,    // per-node client/generator RNG (dist cluster)
  kNodeEngine = 5,    // per-node engine-level randomness (dist cluster)
  kClusterFault = 6,  // cluster-level fault injector (dist cluster)
  kTxnTrace = 7,      // distributed-trace ids (dist cluster tracing)
};

/// Derives a decorrelated child seed from `base` for (entity, stream).
/// SplitMix64-style finalizer over the three inputs: any bit change in
/// any input avalanches through the result, so node 0/stream k and
/// node 1/stream k share no structure (unlike `base + node`, where
/// neighboring streams start one state apart). Deterministic and
/// platform-independent; safe to fingerprint.
inline uint64_t DeriveSeed(uint64_t base, uint64_t entity,
                           SeedStream stream) {
  uint64_t z = base;
  z += 0x9e3779b97f4a7c15ULL * (entity + 1);
  z += 0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(stream);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// Two-level derivation for (entity, sub-entity) pairs, e.g. worker i
/// of node n: DeriveSeed2(base, n, i, stream).
inline uint64_t DeriveSeed2(uint64_t base, uint64_t entity,
                            uint64_t sub_entity, SeedStream stream) {
  return DeriveSeed(DeriveSeed(base, entity, stream), sub_entity, stream);
}

}  // namespace imoltp

#endif  // IMOLTP_COMMON_SEED_H_
