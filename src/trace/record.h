#ifndef IMOLTP_TRACE_RECORD_H_
#define IMOLTP_TRACE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/experiment.h"
#include "mcsim/counters.h"
#include "mcsim/profiler.h"

namespace imoltp::trace {

/// Outcome of one recorded experiment: the live run's report plus the
/// final raw counters — the reference a replay under the recorded
/// configuration must match bit for bit.
struct RecordResult {
  std::string trace_id;
  mcsim::WindowReport window;
  std::vector<mcsim::CoreCounters> counters;
  std::vector<uint64_t> prefetches;
  uint64_t events = 0;
  uint64_t aborts = 0;
};

/// One-shot capture: build + populate, attach a TraceWriter, run the
/// experiment live, and leave the full reference stream at `path`.
/// `db_bytes`, `rows`, and `warehouses` are informational (they land in
/// the trace header so replay reports carry the live run's identity).
/// The live results in `*result` are valid even if writing the file
/// fails.
Status RecordExperiment(const core::ExperimentConfig& config,
                        core::Workload* workload, const std::string& path,
                        uint64_t db_bytes, int rows, int warehouses,
                        RecordResult* result);

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_RECORD_H_
