#ifndef IMOLTP_TRACE_REPLAY_H_
#define IMOLTP_TRACE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mcsim/counters.h"
#include "mcsim/profiler.h"
#include "trace/meta.h"

namespace imoltp::trace {

/// Outcome of re-simulating one trace through one machine configuration.
struct ReplayResult {
  TraceMeta meta;  // header of the replayed trace

  /// Report of the recorded measurement window (profiler attached at
  /// the trace's window markers). Valid when has_window is true; if a
  /// trace carries several windows, this is the last one.
  mcsim::WindowReport window;
  bool has_window = false;
  int windows = 0;

  /// Final raw counters and prefetch counts, one entry per worker.
  /// Under the recorded configuration these are bit-identical to the
  /// live run's (the ctest-enforced determinism guarantee).
  std::vector<mcsim::CoreCounters> counters;
  std::vector<uint64_t> prefetches;

  uint64_t events = 0;
};

/// Re-simulates the recorded reference stream through `config`. The
/// worker/core count always comes from the trace header; every other
/// field of `config` is honored. Each call builds a private MachineSim,
/// so concurrent replays of one trace need no synchronization.
Status ReplayTrace(const std::string& path,
                   const mcsim::MachineConfig& config,
                   ReplayResult* result);

/// Replays under the configuration stored in the trace header.
Status ReplayTraceRecorded(const std::string& path, ReplayResult* result);

/// Applies a comma-separated override spec to `config`. Keys:
///   l1i,l1d,l2,llc = cache size ("32KB", "20MB", bare bytes)
///   llc_assoc, l2_assoc = ways;  line = bytes (all caches)
///   pf = on|off;  pfdeg = N;  tlb = on|off
///   base_cpi, cpi_floor, clock = doubles
/// An empty spec (or "recorded") changes nothing.
Status ApplyConfigSpec(const std::string& spec,
                       mcsim::MachineConfig* config);

/// One cell of a config sweep over a single trace.
struct SweepCell {
  std::string label;
  mcsim::MachineConfig config;
  Status status;  // per-cell outcome
  ReplayResult result;
};

/// Fans one trace across all cells on up to `threads` OS threads. Each
/// replay owns a private reader and MachineSim, preserving the
/// simulator's no-synchronization invariant per thread. Per-cell
/// failures land in SweepCell::status; the sweep itself always
/// completes.
void RunSweep(const std::string& path, std::vector<SweepCell>* cells,
              int threads);

/// Exact equality of every counter, including the IEEE-754 bit pattern
/// of cycle accumulators and the per-module array — the determinism
/// check between a live run and its replay.
bool CountersIdentical(const mcsim::CoreCounters& a,
                       const mcsim::CoreCounters& b);

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_REPLAY_H_
