#include "trace/format.h"

#include <array>

namespace imoltp::trace {

namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input
// bytes per iteration instead of 1 — a replay CRC-checks every block
// of a multi-hundred-MB trace, so the byte-at-a-time loop shows up.
struct CrcTables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

CrcTables BuildCrcTables() {
  CrcTables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tb.t[0][i] = c;
  }
  for (int j = 1; j < 8; ++j) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tb.t[j - 1][i];
      tb.t[j][i] = tb.t[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tb;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const CrcTables kT = BuildCrcTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    crc = kT.t[7][lo & 0xFF] ^ kT.t[6][(lo >> 8) & 0xFF] ^
          kT.t[5][(lo >> 16) & 0xFF] ^ kT.t[4][lo >> 24] ^
          kT.t[3][hi & 0xFF] ^ kT.t[2][(hi >> 8) & 0xFF] ^
          kT.t[1][(hi >> 16) & 0xFF] ^ kT.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = kT.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace imoltp::trace
