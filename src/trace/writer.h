#ifndef IMOLTP_TRACE_WRITER_H_
#define IMOLTP_TRACE_WRITER_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "mcsim/machine.h"
#include "mcsim/trace_sink.h"
#include "trace/format.h"
#include "trace/meta.h"

namespace imoltp::trace {

/// Records the simulated reference stream of one machine into a compact
/// binary trace file. Attach via MachineSim::SetTraceSink (or
/// ExperimentRunner::set_trace_sink, which also emits the measurement
/// window markers).
///
/// Encoding: one globally-ordered record stream (core switches are
/// explicit records, preserving the exact worker interleaving that
/// drives cross-core invalidations), data addresses delta-encoded per
/// core, code regions interned into a definition table, everything
/// varint-packed into CRC-checked 64KB blocks.
///
/// I/O errors are sticky: the first failure latches a Status, further
/// events are dropped, and Finish() reports it.
class TraceWriter final : public mcsim::TraceSink {
 public:
  /// Run identity stored in the trace header next to the machine
  /// config and module table (which come from the machine itself).
  struct Options {
    std::string engine;
    std::string workload;
    uint64_t seed = 0;
    uint64_t warmup_txns = 0;
    uint64_t measure_txns = 0;
    uint64_t db_bytes = 0;
    int rows = 0;        // rows per transaction (0 = n/a)
    int warehouses = 0;  // TPC-C scale factor (0 = n/a)
  };

  TraceWriter() = default;
  ~TraceWriter() override;

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Creates `path` and writes the header (magic, version, machine
  /// config, module table, metadata). Must be called exactly once,
  /// before any event arrives.
  Status Open(const std::string& path, const mcsim::MachineSim& machine,
              const Options& options);

  /// Writes the end-of-stream record, flushes, and closes the file.
  /// Returns the first error hit anywhere in the write path.
  Status Finish();

  const std::string& trace_id() const { return meta_.trace_id; }
  uint64_t events_written() const { return events_; }

  // mcsim::TraceSink implementation.
  void OnExecuteRegion(int core, const mcsim::CodeRegion& region,
                       uint64_t start_line) override;
  void OnRead(int core, uint64_t addr, uint32_t size) override;
  void OnWrite(int core, uint64_t addr, uint32_t size) override;
  void OnRetire(int core, uint64_t n) override;
  void OnMispredict(int core, uint64_t n) override;
  void OnBeginTransaction(int core) override;
  void OnSetModule(int core, mcsim::ModuleId module) override;
  void OnWindowMark(bool begin) override;

 private:
  bool recording() const { return file_ != nullptr && status_.ok(); }
  void SyncModules();
  void SwitchCore(int core);
  void EmitAccess(Op op, int core, uint64_t addr, uint32_t size);
  uint32_t InternRegion(const mcsim::CodeRegion& region);
  void MaybeFlush();
  void FlushBlock();
  void WriteRaw(const void* data, size_t len);

  std::FILE* file_ = nullptr;
  std::string path_;
  Status status_;
  bool finished_ = false;

  TraceMeta meta_;
  /// Engines register modules lazily (compiled transaction types), so
  /// the registry can outgrow the header snapshot; SyncModules() emits
  /// the late arrivals as in-stream kOpDefModule records.
  const mcsim::MachineSim* machine_ = nullptr;
  int modules_emitted_ = 0;  // registry slots covered so far (incl. 0)
  std::string block_;
  int cur_core_ = -1;
  std::vector<uint64_t> last_addr_;
  std::map<std::array<uint64_t, 7>, uint32_t> region_ids_;
  uint64_t events_ = 0;
};

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_WRITER_H_
