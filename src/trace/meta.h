#ifndef IMOLTP_TRACE_META_H_
#define IMOLTP_TRACE_META_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mcsim/code_region.h"
#include "mcsim/config.h"
#include "obs/json.h"

namespace imoltp::trace {

/// Everything the trace header records about the captured run: enough
/// to replay under the recorded configuration, to label reports, and to
/// decide whether two traces are comparable.
struct TraceMeta {
  std::string trace_id;  // hex id stamped at record time
  std::string engine;
  std::string workload;
  int num_workers = 1;
  uint64_t seed = 0;
  uint64_t warmup_txns = 0;
  uint64_t measure_txns = 0;
  uint64_t db_bytes = 0;
  int rows = 0;        // rows per transaction (micro-benchmark; 0 = n/a)
  int warehouses = 0;  // TPC-C scale factor (0 = n/a)

  /// The machine configuration the trace was recorded under (replay
  /// baseline; sweeps derive variants from it).
  mcsim::MachineConfig recorded_config;

  /// Module table in registry-id order, excluding the implicit
  /// "<none>" slot 0. Replay re-registers these so module ids and
  /// report names match the live run.
  std::vector<mcsim::ModuleInfo> modules;
};

/// Serializes `config` as a JSON object into `w` (all fields, doubles
/// at round-trip precision).
void MachineConfigToJson(obs::JsonWriter& w,
                         const mcsim::MachineConfig& config);

/// Strict inverse of MachineConfigToJson: every field must be present
/// and well-typed.
Status MachineConfigFromJson(const obs::JsonValue& v,
                             mcsim::MachineConfig* config);

/// Serializes the full trace header document.
std::string TraceMetaToJson(const TraceMeta& meta);

/// Parses and validates a trace header document.
Status TraceMetaFromJson(const std::string& json, TraceMeta* meta);

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_META_H_
