#include "trace/record.h"

#include "trace/writer.h"

namespace imoltp::trace {

Status RecordExperiment(const core::ExperimentConfig& config,
                        core::Workload* workload, const std::string& path,
                        uint64_t db_bytes, int rows, int warehouses,
                        RecordResult* result) {
  TraceWriter writer;
  TraceWriter::Options options;
  options.engine = engine::EngineKindName(config.engine);
  options.workload = workload->name();
  options.seed = config.seed;
  options.warmup_txns = config.warmup_txns;
  options.measure_txns = config.measure_txns;
  options.db_bytes = db_bytes;
  options.rows = rows;
  options.warehouses = warehouses;

  // Attach before the database is populated: cache warm-up runs with
  // simulation on, and a replay can only reproduce the live counters
  // if it sees those events too.
  core::ExperimentConfig cfg = config;
  cfg.hooks.pre_populate = [&](mcsim::MachineSim* machine) {
    Status s = writer.Open(path, *machine, options);
    if (!s.ok()) return s;
    machine->SetTraceSink(&writer);
    return Status::Ok();
  };
  auto created = core::ExperimentRunner::Create(cfg, workload);
  if (!created.ok()) return created.status();
  core::ExperimentRunner& runner = **created;

  runner.set_trace_sink(&writer);  // re-snapshot is benign; adds marks
  const auto run = runner.Run(workload);
  if (!run.ok()) return run.status();
  result->window = *run;
  runner.set_trace_sink(nullptr);

  result->trace_id = writer.trace_id();
  result->events = writer.events_written();
  result->aborts = runner.aborts();
  mcsim::MachineSim* machine = runner.machine();
  for (int c = 0; c < machine->num_cores(); ++c) {
    result->counters.push_back(machine->core(c).counters());
    result->prefetches.push_back(machine->core(c).prefetches_issued());
  }
  return writer.Finish();
}

}  // namespace imoltp::trace
