#ifndef IMOLTP_TRACE_FORMAT_H_
#define IMOLTP_TRACE_FORMAT_H_

// On-disk layout of an imoltp trace (see docs/tracing.md for the spec):
//
//   [8]  magic "IMOLTPTR"
//   [4]  u32 LE format version (kTraceFormatVersion)
//   [4]  u32 LE header length
//   [4]  u32 LE CRC-32 of the header bytes
//   [n]  header: one JSON document (TraceMeta — machine config, engine,
//        workload, module table, trace id)
//   [*]  blocks: u32 LE payload length, u32 LE CRC-32, payload
//
// Block payloads are a concatenation of variable-length records, each
// an opcode byte followed by varint operands (doubles are fixed 8-byte
// LE IEEE-754 so they round-trip bit-exactly). Records never span
// blocks. The final record of the final block is kOpEnd carrying the
// total event count; a file that ends without it is truncated.

#include <cstdint>
#include <cstring>
#include <string>

namespace imoltp::trace {

inline constexpr char kTraceMagic[8] = {'I', 'M', 'O', 'L',
                                        'T', 'P', 'T', 'R'};
inline constexpr uint32_t kTraceFormatVersion = 1;

/// Writer flushes a block once its payload reaches this size.
inline constexpr uint32_t kBlockFlushBytes = 64u << 10;
/// Reader rejects blocks larger than this (corrupted length field).
inline constexpr uint32_t kMaxBlockPayload = 1u << 20;
/// Reader rejects headers larger than this.
inline constexpr uint32_t kMaxHeaderBytes = 1u << 20;
/// Largest plausible single data access; a larger size in a record is
/// corruption (engines touch at most a few rows per access).
inline constexpr uint32_t kMaxAccessBytes = 1u << 20;

/// Record opcodes. Operands are varints unless noted.
enum Op : uint8_t {
  kOpEnd = 0,         // total event count; must be the last record
  kOpSetCore = 1,     // core — subsequent records apply to this core
  kOpSetModule = 2,   // module id
  kOpDefRegion = 3,   // id, module, base_line, total, touched, instr,
                      // f64 mispredicts_per_kinstr, f64 cpi
  kOpExecRegion = 4,  // region id, window offset (start - base_line)
  kOpLoad = 5,        // zigzag addr delta (per core), size
  kOpStore = 6,       // zigzag addr delta (per core), size
  kOpRetire = 7,      // instruction count
  kOpMispredict = 8,  // misprediction count
  kOpTxnBegin = 9,    // (none)
  kOpWindowBegin = 10,  // (none) — measurement window opens
  kOpWindowEnd = 11,    // (none) — measurement window closes
  kOpDefModule = 12,  // inside_engine (0/1), name length, name bytes —
                      // a module registered after the header was
                      // written (engines compile transactions lazily);
                      // its id is the next registry slot
};

/// Reader rejects module names longer than this.
inline constexpr uint32_t kMaxModuleNameBytes = 256;

inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Decodes one varint from [*p, end); advances *p. Returns false on
/// truncation or a varint longer than 10 bytes. Most operands (sizes,
/// deltas, small counts) fit one byte, hence the fast path.
inline bool GetVarint(const uint8_t** p, const uint8_t* end,
                      uint64_t* v) {
  const uint8_t* q = *p;
  if (q < end && *q < 0x80) {
    *v = *q;
    *p = q + 1;
    return true;
  }
  uint64_t result = 0;
  int shift = 0;
  while (q < end && shift < 64) {
    const uint8_t byte = *q++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 4);
}

inline uint32_t DecodeFixed32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

/// Doubles travel as their raw IEEE-754 bit pattern so record → replay
/// reproduces cycle arithmetic bit-exactly.
inline void PutDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(bits >> (8 * i));
  out->append(buf, 8);
}

inline bool GetDouble(const uint8_t** p, const uint8_t* end, double* d) {
  if (end - *p < 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>((*p)[i]) << (8 * i);
  }
  *p += 8;
  std::memcpy(d, &bits, sizeof(*d));
  return true;
}

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG one).
uint32_t Crc32(const void* data, size_t len);

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_FORMAT_H_
