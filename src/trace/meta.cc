#include "trace/meta.h"

#include "mcsim/counters.h"

namespace imoltp::trace {

namespace {

void CacheToJson(obs::JsonWriter& w, const mcsim::CacheConfig& c) {
  w.BeginObject();
  w.KeyValue("size_bytes", c.size_bytes);
  w.KeyValue("line_bytes", static_cast<uint64_t>(c.line_bytes));
  w.KeyValue("associativity", static_cast<uint64_t>(c.associativity));
  w.EndObject();
}

Status CacheFromJson(const obs::JsonValue* v, mcsim::CacheConfig* c,
                     const char* name) {
  if (v == nullptr || !v->is_object()) {
    return Status::InvalidArgument(std::string("trace header: missing cache ") +
                                   name);
  }
  const obs::JsonValue* size = v->Find("size_bytes");
  const obs::JsonValue* line = v->Find("line_bytes");
  const obs::JsonValue* assoc = v->Find("associativity");
  if (size == nullptr || !size->is_number() || line == nullptr ||
      !line->is_number() || assoc == nullptr || !assoc->is_number()) {
    return Status::InvalidArgument(std::string("trace header: malformed cache ") +
                                   name);
  }
  c->size_bytes = static_cast<uint64_t>(size->number);
  c->line_bytes = static_cast<uint32_t>(line->number);
  c->associativity = static_cast<uint32_t>(assoc->number);
  if (c->line_bytes == 0 || c->associativity == 0) {
    return Status::InvalidArgument(std::string("trace header: zero geometry in cache ") +
                                   name);
  }
  return Status::Ok();
}

Status GetNumber(const obs::JsonValue& v, const char* key, double* out) {
  const obs::JsonValue* f = v.Find(key);
  if (f == nullptr || !f->is_number()) {
    return Status::InvalidArgument(std::string("trace header: missing number ") +
                                   key);
  }
  *out = f->number;
  return Status::Ok();
}

Status GetBool(const obs::JsonValue& v, const char* key, bool* out) {
  const obs::JsonValue* f = v.Find(key);
  if (f == nullptr || f->type != obs::JsonValue::Type::kBool) {
    return Status::InvalidArgument(std::string("trace header: missing bool ") +
                                   key);
  }
  *out = f->boolean;
  return Status::Ok();
}

Status GetString(const obs::JsonValue& v, const char* key,
                 std::string* out) {
  const obs::JsonValue* f = v.Find(key);
  if (f == nullptr || !f->is_string()) {
    return Status::InvalidArgument(std::string("trace header: missing string ") +
                                   key);
  }
  *out = f->string;
  return Status::Ok();
}

}  // namespace

void MachineConfigToJson(obs::JsonWriter& w,
                         const mcsim::MachineConfig& config) {
  w.BeginObject();
  w.KeyValue("num_cores", config.num_cores);
  w.KeyValue("clock_ghz", config.clock_ghz);
  w.KeyValue("issue_width", config.issue_width);
  w.Key("l1i");
  CacheToJson(w, config.l1i);
  w.Key("l1d");
  CacheToJson(w, config.l1d);
  w.Key("l2");
  CacheToJson(w, config.l2);
  w.Key("llc");
  CacheToJson(w, config.llc);
  w.KeyValue("model_tlb", config.model_tlb);
  w.Key("dtlb");
  CacheToJson(w, config.dtlb);
  w.Key("stlb");
  CacheToJson(w, config.stlb);
  w.KeyValue("page_bytes", static_cast<uint64_t>(config.page_bytes));
  w.KeyValue("model_prefetcher", config.model_prefetcher);
  w.KeyValue("prefetch_degree",
             static_cast<uint64_t>(config.prefetch_degree));

  const mcsim::CycleModelParams& p = config.cycle;
  w.Key("cycle");
  w.BeginObject();
  w.KeyValue("base_cpi", p.base_cpi);
  w.KeyValue("cpi_floor", p.cpi_floor);
  w.KeyValue("l1_miss_penalty", p.l1_miss_penalty);
  w.KeyValue("l2_miss_penalty", p.l2_miss_penalty);
  w.KeyValue("llc_miss_penalty", p.llc_miss_penalty);
  w.KeyValue("frontend_amplification", p.frontend_amplification);
  w.KeyValue("data_amp_l1", p.data_amp_l1);
  w.KeyValue("data_amp_l2", p.data_amp_l2);
  w.KeyValue("data_amp_llc", p.data_amp_llc);
  w.KeyValue("llc_amp_floor", p.llc_amp_floor);
  w.KeyValue("llc_density_lo", p.llc_density_lo);
  w.KeyValue("llc_density_hi", p.llc_density_hi);
  w.KeyValue("mispredict_penalty", p.mispredict_penalty);
  w.KeyValue("tlb_walk_cycles", p.tlb_walk_cycles);
  w.EndObject();

  w.EndObject();
}

Status MachineConfigFromJson(const obs::JsonValue& v,
                             mcsim::MachineConfig* config) {
  if (!v.is_object()) {
    return Status::InvalidArgument("trace header: machine is not an object");
  }
  double d = 0;
  Status s;
  if (!(s = GetNumber(v, "num_cores", &d)).ok()) return s;
  config->num_cores = static_cast<int>(d);
  if (!(s = GetNumber(v, "clock_ghz", &d)).ok()) return s;
  config->clock_ghz = d;
  if (!(s = GetNumber(v, "issue_width", &d)).ok()) return s;
  config->issue_width = static_cast<int>(d);
  if (!(s = CacheFromJson(v.Find("l1i"), &config->l1i, "l1i")).ok()) return s;
  if (!(s = CacheFromJson(v.Find("l1d"), &config->l1d, "l1d")).ok()) return s;
  if (!(s = CacheFromJson(v.Find("l2"), &config->l2, "l2")).ok()) return s;
  if (!(s = CacheFromJson(v.Find("llc"), &config->llc, "llc")).ok()) return s;
  if (!(s = GetBool(v, "model_tlb", &config->model_tlb)).ok()) return s;
  if (!(s = CacheFromJson(v.Find("dtlb"), &config->dtlb, "dtlb")).ok()) {
    return s;
  }
  if (!(s = CacheFromJson(v.Find("stlb"), &config->stlb, "stlb")).ok()) {
    return s;
  }
  if (!(s = GetNumber(v, "page_bytes", &d)).ok()) return s;
  config->page_bytes = static_cast<uint32_t>(d);
  if (!(s = GetBool(v, "model_prefetcher", &config->model_prefetcher))
           .ok()) {
    return s;
  }
  if (!(s = GetNumber(v, "prefetch_degree", &d)).ok()) return s;
  config->prefetch_degree = static_cast<uint32_t>(d);

  const obs::JsonValue* cy = v.Find("cycle");
  if (cy == nullptr || !cy->is_object()) {
    return Status::InvalidArgument("trace header: missing cycle params");
  }
  mcsim::CycleModelParams* p = &config->cycle;
  struct Field {
    const char* key;
    double* dst;
  };
  const Field fields[] = {
      {"base_cpi", &p->base_cpi},
      {"cpi_floor", &p->cpi_floor},
      {"l1_miss_penalty", &p->l1_miss_penalty},
      {"l2_miss_penalty", &p->l2_miss_penalty},
      {"llc_miss_penalty", &p->llc_miss_penalty},
      {"frontend_amplification", &p->frontend_amplification},
      {"data_amp_l1", &p->data_amp_l1},
      {"data_amp_l2", &p->data_amp_l2},
      {"data_amp_llc", &p->data_amp_llc},
      {"llc_amp_floor", &p->llc_amp_floor},
      {"llc_density_lo", &p->llc_density_lo},
      {"llc_density_hi", &p->llc_density_hi},
      {"mispredict_penalty", &p->mispredict_penalty},
      {"tlb_walk_cycles", &p->tlb_walk_cycles},
  };
  for (const Field& f : fields) {
    if (!(s = GetNumber(*cy, f.key, f.dst)).ok()) return s;
  }
  if (config->num_cores < 1 || config->page_bytes == 0) {
    return Status::InvalidArgument("trace header: implausible machine config");
  }
  return Status::Ok();
}

std::string TraceMetaToJson(const TraceMeta& meta) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("trace_id", meta.trace_id);
  w.KeyValue("engine", meta.engine);
  w.KeyValue("workload", meta.workload);
  w.KeyValue("num_workers", meta.num_workers);
  w.KeyValue("seed", meta.seed);
  w.KeyValue("warmup_txns", meta.warmup_txns);
  w.KeyValue("measure_txns", meta.measure_txns);
  w.KeyValue("db_bytes", meta.db_bytes);
  w.KeyValue("rows", static_cast<uint64_t>(meta.rows));
  w.KeyValue("warehouses", static_cast<uint64_t>(meta.warehouses));
  w.Key("machine");
  MachineConfigToJson(w, meta.recorded_config);
  w.Key("modules");
  w.BeginArray();
  for (const mcsim::ModuleInfo& m : meta.modules) {
    w.BeginObject();
    w.KeyValue("name", m.name);
    w.KeyValue("inside_engine", m.inside_engine);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status TraceMetaFromJson(const std::string& json, TraceMeta* meta) {
  StatusOr<obs::JsonValue> parsed = obs::ParseJson(json);
  if (!parsed.ok()) {
    return Status::InvalidArgument("trace header: " +
                                   parsed.status().message());
  }
  const obs::JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::InvalidArgument("trace header: not a JSON object");
  }
  Status s;
  if (!(s = GetString(v, "trace_id", &meta->trace_id)).ok()) return s;
  if (!(s = GetString(v, "engine", &meta->engine)).ok()) return s;
  if (!(s = GetString(v, "workload", &meta->workload)).ok()) return s;
  double d = 0;
  if (!(s = GetNumber(v, "num_workers", &d)).ok()) return s;
  meta->num_workers = static_cast<int>(d);
  if (!(s = GetNumber(v, "seed", &d)).ok()) return s;
  meta->seed = static_cast<uint64_t>(d);
  if (!(s = GetNumber(v, "warmup_txns", &d)).ok()) return s;
  meta->warmup_txns = static_cast<uint64_t>(d);
  if (!(s = GetNumber(v, "measure_txns", &d)).ok()) return s;
  meta->measure_txns = static_cast<uint64_t>(d);
  if (!(s = GetNumber(v, "db_bytes", &d)).ok()) return s;
  meta->db_bytes = static_cast<uint64_t>(d);
  if (!(s = GetNumber(v, "rows", &d)).ok()) return s;
  meta->rows = static_cast<int>(d);
  if (!(s = GetNumber(v, "warehouses", &d)).ok()) return s;
  meta->warehouses = static_cast<int>(d);

  const obs::JsonValue* machine = v.Find("machine");
  if (machine == nullptr) {
    return Status::InvalidArgument("trace header: missing machine config");
  }
  if (!(s = MachineConfigFromJson(*machine, &meta->recorded_config)).ok()) {
    return s;
  }

  const obs::JsonValue* modules = v.Find("modules");
  if (modules == nullptr || !modules->is_array()) {
    return Status::InvalidArgument("trace header: missing module table");
  }
  meta->modules.clear();
  for (const obs::JsonValue& m : modules->array) {
    mcsim::ModuleInfo info;
    if (!(s = GetString(m, "name", &info.name)).ok()) return s;
    if (!(s = GetBool(m, "inside_engine", &info.inside_engine)).ok()) {
      return s;
    }
    meta->modules.push_back(std::move(info));
  }

  if (meta->num_workers < 1 || meta->num_workers > 4096) {
    return Status::InvalidArgument("trace header: implausible worker count");
  }
  if (static_cast<int>(meta->modules.size()) >= mcsim::kMaxModules) {
    return Status::InvalidArgument("trace header: module table too large");
  }
  return Status::Ok();
}

}  // namespace imoltp::trace
