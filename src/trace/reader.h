#ifndef IMOLTP_TRACE_READER_H_
#define IMOLTP_TRACE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "mcsim/code_region.h"
#include "trace/format.h"
#include "trace/meta.h"

namespace imoltp::trace {

/// One decoded trace record, with the core it applies to already
/// resolved (kOpSetCore and kOpDefRegion records are consumed
/// internally; region definitions land in TraceReader::regions()).
struct TraceEvent {
  Op op = kOpEnd;
  int core = 0;
  mcsim::ModuleId module = mcsim::kNoModule;  // kOpSetModule
  uint32_t region = 0;                        // kOpExecRegion: table index
  uint64_t start_line = 0;                    // kOpExecRegion: fetch window
  uint64_t addr = 0;                          // kOpLoad / kOpStore
  uint32_t size = 0;                          // kOpLoad / kOpStore
  uint64_t n = 0;                             // kOpRetire / kOpMispredict
};

/// Streaming decoder for trace files written by TraceWriter. Every
/// failure mode of a damaged file — truncation anywhere, bit flips
/// (caught by per-block CRCs), version or magic mismatch, malformed or
/// semantically invalid records — surfaces as a clean Status; no input
/// can crash the process or hand the replay driver out-of-range ids.
class TraceReader {
 public:
  TraceReader() = default;

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Loads `path` and validates magic, version, and header integrity.
  Status Open(const std::string& path);

  /// Same, over an already-loaded trace image. A sweep replaying one
  /// file through many configurations loads the bytes once and hands
  /// every reader the same buffer.
  Status OpenBuffer(std::shared_ptr<const std::string> data);

  const TraceMeta& meta() const { return meta_; }

  /// Region definition table, in definition order. Grows as events are
  /// decoded; a kOpExecRegion event's `region` always indexes a
  /// previously decoded definition.
  const std::vector<mcsim::CodeRegion>& regions() const {
    return regions_;
  }

  /// Module table in live registration order, excluding slot 0
  /// ("<none>"): the header's modules plus any registered mid-run
  /// (in-stream kOpDefModule records). A replay registering these in
  /// order reproduces the live machine's module ids exactly.
  const std::vector<mcsim::ModuleInfo>& modules() const {
    return modules_;
  }

  /// Decodes the next event. On success either fills `*event` (and
  /// `*done` = false) or reports a verified end-of-stream (`*done` =
  /// true). Any corruption or truncation returns a non-OK Status.
  Status Next(TraceEvent* event, bool* done);

  /// Events decoded so far (excludes internal set-core/def-region
  /// records, matching TraceWriter::events_written()).
  uint64_t events_decoded() const { return events_; }

  /// Attaches a fault injector; null detaches. When the
  /// `trace.read_error` point is armed, block loads fail with a
  /// simulated device read error (a clean non-OK Status, exactly like
  /// real corruption).
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  Status LoadNextBlock();
  Status Corrupt(const std::string& what) const;

  std::shared_ptr<const std::string> data_;
  const uint8_t* base_ = nullptr;  // data_->data(), cached for decode
  size_t size_ = 0;                // data_->size()
  size_t pos_ = 0;        // next unread byte of the file
  size_t block_pos_ = 0;  // decode cursor inside the image
  size_t block_end_ = 0;
  bool opened_ = false;
  bool finished_ = false;

  TraceMeta meta_;
  std::vector<mcsim::ModuleInfo> modules_;
  std::vector<mcsim::CodeRegion> regions_;
  std::vector<uint64_t> last_addr_;
  int cur_core_ = -1;
  uint64_t events_ = 0;
  fault::FaultInjector* fault_ = nullptr;
};

/// Reads a trace file into a buffer suitable for
/// TraceReader::OpenBuffer (shared across the readers of a sweep).
Status LoadTraceFile(const std::string& path,
                     std::shared_ptr<const std::string>* out);

}  // namespace imoltp::trace

#endif  // IMOLTP_TRACE_READER_H_
