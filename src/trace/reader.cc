#include "trace/reader.h"

#include <cstdio>
#include <cstring>

namespace imoltp::trace {

namespace {

constexpr size_t kPrefixBytes = 8 + 4 + 4 + 4;  // magic, version, len, crc

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file " + path);
  }
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) out->reserve(static_cast<size_t>(size));
    std::rewind(f);
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return Status::Internal("read error on " + path);
  return Status::Ok();
}

}  // namespace

Status LoadTraceFile(const std::string& path,
                     std::shared_ptr<const std::string>* out) {
  auto data = std::make_shared<std::string>();
  Status s = ReadFile(path, data.get());
  if (!s.ok()) return s;
  *out = std::move(data);
  return Status::Ok();
}

Status TraceReader::Corrupt(const std::string& what) const {
  return Status::InvalidArgument("corrupted trace: " + what);
}

Status TraceReader::Open(const std::string& path) {
  std::shared_ptr<const std::string> data;
  Status s = LoadTraceFile(path, &data);
  if (!s.ok()) return s;
  return OpenBuffer(std::move(data));
}

Status TraceReader::OpenBuffer(std::shared_ptr<const std::string> data) {
  if (opened_) return Status::InvalidArgument("TraceReader already open");
  data_ = std::move(data);
  base_ = reinterpret_cast<const uint8_t*>(data_->data());
  size_ = data_->size();

  if (size_ < kPrefixBytes) {
    return Corrupt("file shorter than the fixed header");
  }
  if (std::memcmp(base_, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return Status::InvalidArgument(
        "not an imoltp trace file (bad magic)");
  }
  const uint32_t version = DecodeFixed32(base_ + 8);
  if (version != kTraceFormatVersion) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "trace format version mismatch: file v%u, reader v%u",
                  version, kTraceFormatVersion);
    return Status::InvalidArgument(buf);
  }
  const uint32_t header_len = DecodeFixed32(base_ + 12);
  const uint32_t header_crc = DecodeFixed32(base_ + 16);
  if (header_len > kMaxHeaderBytes ||
      kPrefixBytes + header_len > size_) {
    return Corrupt("header length exceeds file size");
  }
  if (Crc32(base_ + kPrefixBytes, header_len) != header_crc) {
    return Corrupt("header CRC mismatch");
  }
  Status s =
      TraceMetaFromJson(data_->substr(kPrefixBytes, header_len), &meta_);
  if (!s.ok()) return s;

  pos_ = kPrefixBytes + header_len;
  block_pos_ = block_end_ = pos_;
  modules_ = meta_.modules;
  last_addr_.assign(static_cast<size_t>(meta_.num_workers), 0);
  opened_ = true;
  return Status::Ok();
}

Status TraceReader::LoadNextBlock() {
  if (fault_ != nullptr && fault_->Fires(fault::kTraceReadError)) {
    return Corrupt("injected device read error");
  }
  if (pos_ == size_) {
    return Corrupt("truncated (end-of-stream record missing)");
  }
  if (size_ - pos_ < 8) {
    return Corrupt("truncated block header");
  }
  const uint32_t len = DecodeFixed32(base_ + pos_);
  const uint32_t crc = DecodeFixed32(base_ + pos_ + 4);
  if (len == 0 || len > kMaxBlockPayload) {
    return Corrupt("implausible block length");
  }
  if (size_ - pos_ - 8 < len) {
    return Corrupt("truncated block payload");
  }
  if (Crc32(base_ + pos_ + 8, len) != crc) {
    return Corrupt("block CRC mismatch");
  }
  block_pos_ = pos_ + 8;
  block_end_ = block_pos_ + len;
  pos_ = block_end_;
  return Status::Ok();
}

Status TraceReader::Next(TraceEvent* event, bool* done) {
  if (!opened_) return Status::InvalidArgument("TraceReader not open");
  if (finished_) {
    *done = true;
    return Status::Ok();
  }
  while (true) {
    if (block_pos_ == block_end_) {
      Status s = LoadNextBlock();
      if (!s.ok()) return s;
    }
    const uint8_t* p = base_ + block_pos_;
    const uint8_t* end = base_ + block_end_;
    const uint8_t op = *p++;
    uint64_t a = 0, b = 0;
    switch (op) {
      case kOpEnd: {
        if (!GetVarint(&p, end, &a)) return Corrupt("truncated record");
        if (a != events_) {
          return Corrupt("event count mismatch in end-of-stream record");
        }
        if (p != end || pos_ != size_) {
          return Corrupt("trailing data after end-of-stream record");
        }
        finished_ = true;
        *done = true;
        block_pos_ = block_end_;
        return Status::Ok();
      }
      case kOpSetCore: {
        if (!GetVarint(&p, end, &a)) return Corrupt("truncated record");
        if (a >= static_cast<uint64_t>(meta_.num_workers)) {
          return Corrupt("core id out of range");
        }
        cur_core_ = static_cast<int>(a);
        block_pos_ = static_cast<size_t>(p - base_);
        continue;  // internal record; decode the next one
      }
      case kOpDefRegion: {
        uint64_t id, module, base, total, touched, instr;
        mcsim::CodeRegion r;
        if (!GetVarint(&p, end, &id) || !GetVarint(&p, end, &module) ||
            !GetVarint(&p, end, &base) || !GetVarint(&p, end, &total) ||
            !GetVarint(&p, end, &touched) ||
            !GetVarint(&p, end, &instr) ||
            !GetDouble(&p, end, &r.mispredicts_per_kinstr) ||
            !GetDouble(&p, end, &r.cpi)) {
          return Corrupt("truncated record");
        }
        if (id != regions_.size()) {
          return Corrupt("region definition out of order");
        }
        if (module > modules_.size()) {
          return Corrupt("region module out of range");
        }
        if (total > UINT32_MAX || touched > total ||
            instr > UINT32_MAX) {
          return Corrupt("implausible region geometry");
        }
        r.module = static_cast<mcsim::ModuleId>(module);
        r.base_line = base;
        r.total_lines = static_cast<uint32_t>(total);
        r.touched_lines = static_cast<uint32_t>(touched);
        r.instructions = static_cast<uint32_t>(instr);
        regions_.push_back(r);
        block_pos_ = static_cast<size_t>(p - base_);
        continue;  // internal record; decode the next one
      }
      case kOpDefModule: {
        uint64_t inside, len;
        if (!GetVarint(&p, end, &inside) || !GetVarint(&p, end, &len)) {
          return Corrupt("truncated record");
        }
        if (inside > 1) return Corrupt("bad module flag");
        if (len > kMaxModuleNameBytes) {
          return Corrupt("implausible module name length");
        }
        if (static_cast<uint64_t>(end - p) < len) {
          return Corrupt("truncated record");
        }
        if (modules_.size() + 1 >= mcsim::kMaxModules) {
          return Corrupt("module table overflow");
        }
        mcsim::ModuleInfo info;
        info.name.assign(reinterpret_cast<const char*>(p),
                         static_cast<size_t>(len));
        info.inside_engine = inside != 0;
        modules_.push_back(std::move(info));
        p += len;
        block_pos_ = static_cast<size_t>(p - base_);
        continue;  // internal record; decode the next one
      }
      case kOpWindowBegin:
      case kOpWindowEnd:
        event->op = static_cast<Op>(op);
        event->core = cur_core_ < 0 ? 0 : cur_core_;
        break;
      case kOpSetModule:
      case kOpExecRegion:
      case kOpLoad:
      case kOpStore:
      case kOpRetire:
      case kOpMispredict:
      case kOpTxnBegin: {
        if (cur_core_ < 0) {
          return Corrupt("core-scoped record before any core switch");
        }
        event->op = static_cast<Op>(op);
        event->core = cur_core_;
        switch (op) {
          case kOpSetModule:
            if (!GetVarint(&p, end, &a)) {
              return Corrupt("truncated record");
            }
            if (a > modules_.size()) {
              return Corrupt("module id out of range");
            }
            event->module = static_cast<mcsim::ModuleId>(a);
            break;
          case kOpExecRegion: {
            if (!GetVarint(&p, end, &a) || !GetVarint(&p, end, &b)) {
              return Corrupt("truncated record");
            }
            if (a >= regions_.size()) {
              return Corrupt("region id out of range");
            }
            const mcsim::CodeRegion& r =
                regions_[static_cast<size_t>(a)];
            const uint64_t max_offset =
                r.total_lines > r.touched_lines
                    ? r.total_lines - r.touched_lines
                    : 0;
            if (b > max_offset) {
              return Corrupt("fetch window outside its region");
            }
            event->region = static_cast<uint32_t>(a);
            event->start_line = r.base_line + b;
            break;
          }
          case kOpLoad:
          case kOpStore: {
            if (!GetVarint(&p, end, &a) || !GetVarint(&p, end, &b)) {
              return Corrupt("truncated record");
            }
            if (b > kMaxAccessBytes) {
              return Corrupt("implausible access size");
            }
            uint64_t& last =
                last_addr_[static_cast<size_t>(cur_core_)];
            last += static_cast<uint64_t>(ZigzagDecode(a));
            event->addr = last;
            event->size = static_cast<uint32_t>(b);
            break;
          }
          case kOpRetire:
          case kOpMispredict:
            if (!GetVarint(&p, end, &a)) {
              return Corrupt("truncated record");
            }
            event->n = a;
            break;
          default:  // kOpTxnBegin: no operands
            break;
        }
        break;
      }
      default:
        return Corrupt("unknown opcode");
    }
    block_pos_ = static_cast<size_t>(p - base_);
    ++events_;
    *done = false;
    return Status::Ok();
  }
}

}  // namespace imoltp::trace
