#include "trace/replay.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "mcsim/machine.h"
#include "trace/reader.h"

namespace imoltp::trace {

namespace {

Status ReplayEvents(TraceReader* reader,
                    const mcsim::MachineConfig& config,
                    ReplayResult* result) {
  const TraceMeta& meta = reader->meta();
  mcsim::MachineConfig mc = config;
  mc.num_cores = meta.num_workers;
  mcsim::MachineSim machine(mc);
  // Mirror the live machine's registry in registration order — the
  // reader's table grows as in-stream definitions are decoded (engines
  // register compiled-transaction modules mid-run).
  size_t modules_registered = 0;
  auto sync_modules = [&]() {
    const std::vector<mcsim::ModuleInfo>& mods = reader->modules();
    while (modules_registered < mods.size()) {
      const mcsim::ModuleInfo& m = mods[modules_registered];
      machine.modules().Register(m.name, m.inside_engine);
      ++modules_registered;
    }
  };
  sync_modules();
  mcsim::Profiler profiler(&machine);
  std::vector<int> all_cores;
  for (int c = 0; c < machine.num_cores(); ++c) all_cores.push_back(c);

  TraceEvent ev;
  bool done = false;
  while (true) {
    Status s = reader->Next(&ev, &done);
    if (!s.ok()) return s;
    if (done) break;
    sync_modules();
    mcsim::CoreSim& core = machine.core(ev.core);
    switch (ev.op) {
      case kOpSetModule:
        core.SetModule(ev.module);
        break;
      case kOpExecRegion:
        core.ExecuteRegionAt(reader->regions()[ev.region],
                             ev.start_line);
        break;
      case kOpLoad:
        core.Read(ev.addr, ev.size);
        break;
      case kOpStore:
        core.Write(ev.addr, ev.size);
        break;
      case kOpRetire:
        core.Retire(ev.n);
        break;
      case kOpMispredict:
        core.Mispredict(ev.n);
        break;
      case kOpTxnBegin:
        core.BeginTransaction();
        break;
      case kOpWindowBegin:
        if (profiler.window_open()) {
          return Status::InvalidArgument(
              "corrupted trace: window begins inside an open window");
        }
        profiler.BeginWindow(all_cores);
        break;
      case kOpWindowEnd:
        if (!profiler.window_open()) {
          return Status::InvalidArgument(
              "corrupted trace: window end without a begin");
        }
        result->window = profiler.EndWindow();
        result->has_window = true;
        ++result->windows;
        break;
      default:
        return Status::InvalidArgument(
            "corrupted trace: unexpected opcode in replay");
    }
    ++result->events;
  }
  if (profiler.window_open()) {
    return Status::InvalidArgument(
        "corrupted trace: measurement window never closed");
  }

  result->meta = meta;
  result->counters.reserve(static_cast<size_t>(machine.num_cores()));
  for (int c = 0; c < machine.num_cores(); ++c) {
    result->counters.push_back(machine.core(c).counters());
    result->prefetches.push_back(machine.core(c).prefetches_issued());
  }
  return Status::Ok();
}

}  // namespace

Status ReplayTrace(const std::string& path,
                   const mcsim::MachineConfig& config,
                   ReplayResult* result) {
  TraceReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  return ReplayEvents(&reader, config, result);
}

Status ReplayTraceRecorded(const std::string& path,
                           ReplayResult* result) {
  TraceReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  return ReplayEvents(&reader, reader.meta().recorded_config, result);
}

namespace {

/// "32KB" / "20MB" / "1GB" / bare bytes. Returns 0 on malformed input.
uint64_t ParseByteSize(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v <= 0) return 0;
  if (strcasecmp(end, "KB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 10));
  }
  if (strcasecmp(end, "MB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 20));
  }
  if (strcasecmp(end, "GB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 30));
  }
  if (*end == '\0') return static_cast<uint64_t>(v);
  return 0;
}

Status BadSpec(const std::string& item) {
  return Status::InvalidArgument("bad config spec item: " + item);
}

}  // namespace

Status ApplyConfigSpec(const std::string& spec,
                       mcsim::MachineConfig* config) {
  if (spec.empty() || spec == "recorded") return Status::Ok();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) return BadSpec(item);
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);

    auto as_size = [&](uint64_t* dst) -> Status {
      const uint64_t bytes = ParseByteSize(val);
      if (bytes == 0) return BadSpec(item);
      *dst = bytes;
      return Status::Ok();
    };
    auto as_u32 = [&](uint32_t* dst) -> Status {
      char* end = nullptr;
      const long n = std::strtol(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0' || n <= 0 ||
          n > (1 << 20)) {
        return BadSpec(item);
      }
      *dst = static_cast<uint32_t>(n);
      return Status::Ok();
    };
    auto as_double = [&](double* dst) -> Status {
      char* end = nullptr;
      const double d = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || d < 0) {
        return BadSpec(item);
      }
      *dst = d;
      return Status::Ok();
    };
    auto as_onoff = [&](bool* dst) -> Status {
      if (val == "on" || val == "1" || val == "true") {
        *dst = true;
      } else if (val == "off" || val == "0" || val == "false") {
        *dst = false;
      } else {
        return BadSpec(item);
      }
      return Status::Ok();
    };

    Status s = Status::Ok();
    if (key == "l1i") {
      s = as_size(&config->l1i.size_bytes);
    } else if (key == "l1d") {
      s = as_size(&config->l1d.size_bytes);
    } else if (key == "l2") {
      s = as_size(&config->l2.size_bytes);
    } else if (key == "llc") {
      s = as_size(&config->llc.size_bytes);
    } else if (key == "l2_assoc") {
      s = as_u32(&config->l2.associativity);
    } else if (key == "llc_assoc") {
      s = as_u32(&config->llc.associativity);
    } else if (key == "line") {
      uint32_t line = 0;
      s = as_u32(&line);
      if (s.ok() && (line < 16 || (line & (line - 1)) != 0)) {
        s = BadSpec(item);
      }
      if (s.ok()) {
        config->l1i.line_bytes = config->l1d.line_bytes = line;
        config->l2.line_bytes = config->llc.line_bytes = line;
      }
    } else if (key == "pf") {
      s = as_onoff(&config->model_prefetcher);
    } else if (key == "pfdeg") {
      s = as_u32(&config->prefetch_degree);
    } else if (key == "tlb") {
      s = as_onoff(&config->model_tlb);
    } else if (key == "base_cpi") {
      s = as_double(&config->cycle.base_cpi);
    } else if (key == "cpi_floor") {
      s = as_double(&config->cycle.cpi_floor);
    } else if (key == "clock") {
      s = as_double(&config->clock_ghz);
    } else {
      return Status::InvalidArgument("unknown config spec key: " + key);
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void RunSweep(const std::string& path, std::vector<SweepCell>* cells,
              int threads) {
  if (cells->empty()) return;
  if (threads < 1) threads = 1;
  if (threads > static_cast<int>(cells->size())) {
    threads = static_cast<int>(cells->size());
  }
  // Load the file once; every cell's reader decodes the same buffer.
  std::shared_ptr<const std::string> data;
  const Status load = LoadTraceFile(path, &data);
  if (!load.ok()) {
    for (SweepCell& cell : *cells) cell.status = load;
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= cells->size()) return;
      SweepCell& cell = (*cells)[i];
      TraceReader reader;
      cell.status = reader.OpenBuffer(data);
      if (cell.status.ok()) {
        cell.status = ReplayEvents(&reader, cell.config, &cell.result);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

bool CountersIdentical(const mcsim::CoreCounters& a,
                       const mcsim::CoreCounters& b) {
  auto modules_equal = [](const mcsim::ModuleCounters& x,
                          const mcsim::ModuleCounters& y) {
    return x.instructions == y.instructions &&
           x.mispredictions == y.mispredictions &&
           x.tlb_misses == y.tlb_misses &&
           std::memcmp(&x.base_cycles, &y.base_cycles,
                       sizeof(x.base_cycles)) == 0 &&
           std::memcmp(&x.misses, &y.misses, sizeof(x.misses)) == 0;
  };
  if (a.instructions != b.instructions ||
      a.mispredictions != b.mispredictions ||
      a.transactions != b.transactions ||
      a.code_line_fetches != b.code_line_fetches ||
      a.data_accesses != b.data_accesses ||
      a.tlb_misses != b.tlb_misses ||
      std::memcmp(&a.base_cycles, &b.base_cycles,
                  sizeof(a.base_cycles)) != 0 ||
      std::memcmp(&a.misses, &b.misses, sizeof(a.misses)) != 0) {
    return false;
  }
  for (int m = 0; m < mcsim::kMaxModules; ++m) {
    if (!modules_equal(a.per_module[m], b.per_module[m])) return false;
  }
  return true;
}

}  // namespace imoltp::trace
