#include "trace/writer.h"

#include <cstring>
#include <ctime>

namespace imoltp::trace {

namespace {

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string MakeTraceId(const TraceWriter::Options& options) {
  uint64_t h = 14695981039346656037ULL;
  h = Fnv1a(options.engine.data(), options.engine.size(), h);
  h = Fnv1a(options.workload.data(), options.workload.size(), h);
  h = Fnv1a(&options.seed, sizeof(options.seed), h);
  const std::time_t now = std::time(nullptr);
  h = Fnv1a(&now, sizeof(now), h);
  const std::clock_t ticks = std::clock();
  h = Fnv1a(&ticks, sizeof(ticks), h);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status TraceWriter::Open(const std::string& path,
                         const mcsim::MachineSim& machine,
                         const Options& options) {
  if (file_ != nullptr || finished_) {
    return Status::InvalidArgument("TraceWriter already opened");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  path_ = path;

  meta_.trace_id = MakeTraceId(options);
  meta_.engine = options.engine;
  meta_.workload = options.workload;
  meta_.num_workers = machine.num_cores();
  meta_.seed = options.seed;
  meta_.warmup_txns = options.warmup_txns;
  meta_.measure_txns = options.measure_txns;
  meta_.db_bytes = options.db_bytes;
  meta_.rows = options.rows;
  meta_.warehouses = options.warehouses;
  meta_.recorded_config = machine.config();
  meta_.recorded_config.num_cores = machine.num_cores();
  machine_ = &machine;
  const mcsim::ModuleRegistry& modules = machine.modules();
  for (int m = 1; m < modules.size(); ++m) {  // slot 0 is "<none>"
    meta_.modules.push_back(modules.info(static_cast<mcsim::ModuleId>(m)));
  }
  modules_emitted_ = modules.size();

  const std::string header = TraceMetaToJson(meta_);
  std::string prefix;
  prefix.append(kTraceMagic, sizeof(kTraceMagic));
  PutFixed32(&prefix, kTraceFormatVersion);
  PutFixed32(&prefix, static_cast<uint32_t>(header.size()));
  PutFixed32(&prefix, Crc32(header.data(), header.size()));
  WriteRaw(prefix.data(), prefix.size());
  WriteRaw(header.data(), header.size());

  last_addr_.assign(static_cast<size_t>(machine.num_cores()), 0);
  return status_;
}

Status TraceWriter::Finish() {
  if (file_ == nullptr) {
    return finished_ ? status_
                     : Status::InvalidArgument("TraceWriter not open");
  }
  if (status_.ok()) {
    block_.push_back(static_cast<char>(kOpEnd));
    PutVarint(&block_, events_);
    FlushBlock();
  }
  if (status_.ok() && std::fflush(file_) != 0) {
    status_ = Status::Internal("flush failed on " + path_);
  }
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::Internal("close failed on " + path_);
  }
  file_ = nullptr;
  finished_ = true;
  return status_;
}

void TraceWriter::WriteRaw(const void* data, size_t len) {
  if (!status_.ok()) return;
  if (std::fwrite(data, 1, len, file_) != len) {
    status_ = Status::Internal("short write to " + path_);
  }
}

void TraceWriter::FlushBlock() {
  if (block_.empty() || !status_.ok()) return;
  std::string header;
  PutFixed32(&header, static_cast<uint32_t>(block_.size()));
  PutFixed32(&header, Crc32(block_.data(), block_.size()));
  WriteRaw(header.data(), header.size());
  WriteRaw(block_.data(), block_.size());
  block_.clear();
}

void TraceWriter::MaybeFlush() {
  if (block_.size() >= kBlockFlushBytes) FlushBlock();
}

void TraceWriter::SyncModules() {
  const mcsim::ModuleRegistry& modules = machine_->modules();
  while (modules_emitted_ < modules.size()) {
    const mcsim::ModuleInfo& info =
        modules.info(static_cast<mcsim::ModuleId>(modules_emitted_));
    block_.push_back(static_cast<char>(kOpDefModule));
    PutVarint(&block_, info.inside_engine ? 1 : 0);
    PutVarint(&block_, info.name.size());
    block_.append(info.name);
    ++modules_emitted_;
  }
}

void TraceWriter::SwitchCore(int core) {
  if (core == cur_core_) return;
  cur_core_ = core;
  block_.push_back(static_cast<char>(kOpSetCore));
  PutVarint(&block_, static_cast<uint64_t>(core));
}

uint32_t TraceWriter::InternRegion(const mcsim::CodeRegion& region) {
  const std::array<uint64_t, 7> key = {
      region.module,
      region.base_line,
      region.total_lines,
      region.touched_lines,
      region.instructions,
      DoubleBits(region.mispredicts_per_kinstr),
      DoubleBits(region.cpi)};
  auto [it, inserted] =
      region_ids_.emplace(key, static_cast<uint32_t>(region_ids_.size()));
  if (inserted) {
    SyncModules();  // the region may name a just-registered module
    block_.push_back(static_cast<char>(kOpDefRegion));
    PutVarint(&block_, it->second);
    PutVarint(&block_, region.module);
    PutVarint(&block_, region.base_line);
    PutVarint(&block_, region.total_lines);
    PutVarint(&block_, region.touched_lines);
    PutVarint(&block_, region.instructions);
    PutDouble(&block_, region.mispredicts_per_kinstr);
    PutDouble(&block_, region.cpi);
  }
  return it->second;
}

void TraceWriter::OnExecuteRegion(int core,
                                  const mcsim::CodeRegion& region,
                                  uint64_t start_line) {
  if (!recording()) return;
  SwitchCore(core);
  const uint32_t id = InternRegion(region);
  block_.push_back(static_cast<char>(kOpExecRegion));
  PutVarint(&block_, id);
  PutVarint(&block_, start_line - region.base_line);
  ++events_;
  MaybeFlush();
}

void TraceWriter::EmitAccess(Op op, int core, uint64_t addr,
                             uint32_t size) {
  if (!recording()) return;
  SwitchCore(core);
  uint64_t& last = last_addr_[static_cast<size_t>(core)];
  const int64_t delta = static_cast<int64_t>(addr - last);
  last = addr;
  block_.push_back(static_cast<char>(op));
  PutVarint(&block_, ZigzagEncode(delta));
  PutVarint(&block_, size);
  ++events_;
  MaybeFlush();
}

void TraceWriter::OnRead(int core, uint64_t addr, uint32_t size) {
  EmitAccess(kOpLoad, core, addr, size);
}

void TraceWriter::OnWrite(int core, uint64_t addr, uint32_t size) {
  EmitAccess(kOpStore, core, addr, size);
}

void TraceWriter::OnRetire(int core, uint64_t n) {
  if (!recording()) return;
  SwitchCore(core);
  block_.push_back(static_cast<char>(kOpRetire));
  PutVarint(&block_, n);
  ++events_;
  MaybeFlush();
}

void TraceWriter::OnMispredict(int core, uint64_t n) {
  if (!recording()) return;
  SwitchCore(core);
  block_.push_back(static_cast<char>(kOpMispredict));
  PutVarint(&block_, n);
  ++events_;
  MaybeFlush();
}

void TraceWriter::OnBeginTransaction(int core) {
  if (!recording()) return;
  SwitchCore(core);
  block_.push_back(static_cast<char>(kOpTxnBegin));
  ++events_;
  MaybeFlush();
}

void TraceWriter::OnSetModule(int core, mcsim::ModuleId module) {
  if (!recording()) return;
  SyncModules();
  SwitchCore(core);
  block_.push_back(static_cast<char>(kOpSetModule));
  PutVarint(&block_, module);
  ++events_;
  MaybeFlush();
}

void TraceWriter::OnWindowMark(bool begin) {
  if (!recording()) return;
  block_.push_back(
      static_cast<char>(begin ? kOpWindowBegin : kOpWindowEnd));
  ++events_;
  MaybeFlush();
}

}  // namespace imoltp::trace
