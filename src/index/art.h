#ifndef IMOLTP_INDEX_ART_H_
#define IMOLTP_INDEX_ART_H_

#include <cstdint>

#include "index/index.h"

namespace imoltp::index {

/// Adaptive Radix Tree (Leis et al., ICDE 2013) — HyPer's index. Four
/// adaptive node sizes (4/16/48/256 children), pessimistic path
/// compression (full prefixes stored inline), and single-value leaves as
/// tagged pointers. An ART probe touches a handful of small nodes whose
/// upper levels stay cache-resident, which is why the paper measures the
/// lowest LLC data stalls per transaction for HyPer (Section 4.2.3).
///
/// All keys inserted into one Art instance must have the same length
/// (fixed 8-byte encoded integers or fixed 50-byte strings here), which
/// makes the key set prefix-free as the structure requires.
class Art final : public Index {
 public:
  explicit Art(uint32_t key_bytes);
  ~Art() override;

  Art(const Art&) = delete;
  Art& operator=(const Art&) = delete;

  IndexKind kind() const override { return IndexKind::kArt; }
  Status Insert(mcsim::CoreSim* core, const Key& key,
                uint64_t value) override;
  bool Lookup(mcsim::CoreSim* core, const Key& key,
              uint64_t* value) override;
  bool Remove(mcsim::CoreSim* core, const Key& key) override;
  uint64_t Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                std::vector<uint64_t>* out) override;
  uint64_t size() const override { return size_; }
  bool ordered() const override { return true; }

 private:
  struct Leaf;
  struct Node;
  struct Node4;
  struct Node16;
  struct Node48;
  struct Node256;

  static bool IsLeaf(void* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static Leaf* AsLeaf(void* p) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(p) & ~1ULL);
  }
  static void* TagLeaf(Leaf* l) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(l) | 1);
  }

  Leaf* NewLeaf(const Key& key, uint64_t value);
  void FreeSubtree(void* node);

  void** FindChild(Node* node, uint8_t byte) const;
  void AddChild(Node** node_ref, Node* node, uint8_t byte, void* child);
  void RemoveChild(Node* node, uint8_t byte);
  bool InsertRec(mcsim::CoreSim* core, void** ref, const Key& key,
                 uint64_t value, uint32_t depth);
  bool RemoveRec(mcsim::CoreSim* core, void** ref, const Key& key,
                 uint32_t depth);
  uint64_t ScanRec(mcsim::CoreSim* core, void* node, const Key& from,
                   uint64_t limit, uint32_t depth, bool* past_from,
                   std::vector<uint64_t>* out) const;

  uint32_t key_bytes_;
  uint64_t size_ = 0;
  void* root_ = nullptr;
};

}  // namespace imoltp::index

#endif  // IMOLTP_INDEX_ART_H_
