#ifndef IMOLTP_INDEX_INDEX_H_
#define IMOLTP_INDEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/key.h"
#include "mcsim/core.h"

namespace imoltp::index {

/// Kinds of index structures the analyzed systems use (paper Section 3,
/// "Analyzed Systems", and Section 6.1).
enum class IndexKind {
  kBTree8K,       // Shore-MT / DBMS D: disk-optimized B-tree, 8KB nodes
  kBTreeCacheline,  // VoltDB: node size tuned to cache lines
  kBTreeCc,       // DBMS M: cache-conscious B-tree variant
  kArt,           // HyPer: adaptive radix tree
  kHash,          // DBMS M: hash index
};

inline const char* IndexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::kBTree8K: return "btree-8k";
    case IndexKind::kBTreeCacheline: return "btree-cacheline";
    case IndexKind::kBTreeCc: return "btree-cc";
    case IndexKind::kArt: return "art";
    case IndexKind::kHash: return "hash";
  }
  return "?";
}

/// Unique-key index mapping Key → 64-bit value (a RowId). All methods
/// trace their node/bucket memory through the worker's CoreSim and retire
/// the instructions of their comparisons, so index choice shows up in the
/// simulated data-stall profile exactly as in the paper's Section 6.1.
class Index {
 public:
  virtual ~Index() = default;

  virtual IndexKind kind() const = 0;

  /// Inserts key → value. kAlreadyExists if the key is present.
  virtual Status Insert(mcsim::CoreSim* core, const Key& key,
                        uint64_t value) = 0;

  /// Point lookup; returns true and sets *value if found.
  virtual bool Lookup(mcsim::CoreSim* core, const Key& key,
                      uint64_t* value) = 0;

  /// Removes a key; returns true if it was present.
  virtual bool Remove(mcsim::CoreSim* core, const Key& key) = 0;

  /// Ordered scan: appends up to `limit` values for keys >= `from`, in
  /// key order. Unordered indexes return 0 (hash). Returns the count.
  virtual uint64_t Scan(mcsim::CoreSim* core, const Key& from,
                        uint64_t limit, std::vector<uint64_t>* out) = 0;

  virtual uint64_t size() const = 0;

  /// True for ordered (range-capable) structures.
  virtual bool ordered() const = 0;
};

/// Factory. `key_bytes` fixes the stored key slot width for the B-tree
/// variants (8 for Long / composite keys, 50 for the String experiment).
std::unique_ptr<Index> CreateIndex(IndexKind kind, uint32_t key_bytes);

}  // namespace imoltp::index

#endif  // IMOLTP_INDEX_INDEX_H_
