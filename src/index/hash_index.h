#ifndef IMOLTP_INDEX_HASH_INDEX_H_
#define IMOLTP_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/index.h"

namespace imoltp::index {

/// Chained hash index — DBMS M's primary structure for point workloads.
/// A probe hashes straight to one bucket and walks a (normally
/// single-entry) chain: one or two random lines per lookup, versus a full
/// root-to-leaf traversal for the B-trees. The paper measures 2–4x lower
/// LLC data stalls for this index than for the B-tree (Section 6.1).
///
/// The directory doubles when load factor exceeds 1; entries are
/// allocated from a segmented pool so their addresses are stable.
class HashIndex final : public Index {
 public:
  explicit HashIndex(uint32_t key_bytes, uint64_t initial_buckets = 1024);
  ~HashIndex() override = default;

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  IndexKind kind() const override { return IndexKind::kHash; }
  Status Insert(mcsim::CoreSim* core, const Key& key,
                uint64_t value) override;
  bool Lookup(mcsim::CoreSim* core, const Key& key,
              uint64_t* value) override;
  bool Remove(mcsim::CoreSim* core, const Key& key) override;
  uint64_t Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                std::vector<uint64_t>* out) override;
  uint64_t size() const override { return size_; }
  bool ordered() const override { return false; }

  uint64_t num_buckets() const { return buckets_.size(); }

 private:
  struct Entry {
    Entry* next;
    uint64_t value;
    uint32_t key_len;
    // Key bytes follow inline; entries are allocated at exactly
    // offsetof(Entry, key) + key_len bytes.
    uint8_t key[1];
  };

  Entry* AllocEntry();
  void MaybeGrow();

  uint32_t key_bytes_;
  uint32_t entry_bytes_;
  uint64_t size_ = 0;
  std::vector<Entry*> buckets_;
  std::vector<std::unique_ptr<uint8_t[]>> pool_;
  uint32_t pool_used_ = 0;
  Entry* free_list_ = nullptr;
};

}  // namespace imoltp::index

#endif  // IMOLTP_INDEX_HASH_INDEX_H_
