#include "index/btree.h"

#include <cstdlib>
#include <cstring>

namespace imoltp::index {

// Node memory layout (node_bytes total, 64-byte aligned):
//   Node header (below), then `count` fixed-width entries of
//   (key_bytes key | 8-byte payload). In a leaf the payload is the value;
//   in an inner node it is the child covering keys >= that entry's key.
//   `leftmost` (inner only) covers keys below the first entry's key.
struct BTree::Node {
  uint16_t count;
  uint8_t is_leaf;
  uint8_t pad0;
  uint32_t pad1;
  Node* leftmost;   // inner: child for keys < entry[0].key
  Node* next_leaf;  // leaf chain
  // entries follow
};

namespace {

constexpr uint32_t kHeaderBytes = 32;

// Instruction cost of one key comparison: loop setup plus ~6
// instructions (load, compare, branch, advance) per 8-byte chunk
// actually examined. Long keys resolve in one chunk; 50-byte String
// keys retire several times more instructions per touched cache line —
// the spatial-locality effect of the paper's Section 6.2.
uint32_t CompareInstructions(uint32_t bytes_examined) {
  return 6 + 6 * ((bytes_examined + 7) / 8);
}

// Bytes a memcmp-style comparison examines before resolving: up to and
// including the first differing 8-byte chunk.
uint32_t BytesExamined(const uint8_t* a, const uint8_t* b, uint32_t n) {
  for (uint32_t i = 0; i < n; i += 8) {
    const uint32_t chunk = n - i < 8 ? n - i : 8;
    if (std::memcmp(a + i, b + i, chunk) != 0) return i + chunk;
  }
  return n;
}

}  // namespace

BTree::BTree(uint32_t node_bytes, uint32_t key_bytes, IndexKind kind)
    : kind_(kind), node_bytes_(node_bytes), key_bytes_(key_bytes) {
  const uint32_t entry = key_bytes_ + 8;
  leaf_capacity_ = (node_bytes_ - kHeaderBytes) / entry;
  inner_capacity_ = leaf_capacity_;
  root_ = NewNode(/*leaf=*/true);
}

BTree::~BTree() { FreeTree(root_); }

BTree::Node* BTree::NewNode(bool leaf) {
  void* mem = std::aligned_alloc(64, node_bytes_);
  std::memset(mem, 0, node_bytes_);
  Node* n = static_cast<Node*>(mem);
  n->is_leaf = leaf ? 1 : 0;
  return n;
}

void BTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    FreeTree(node->leftmost);
    for (uint32_t i = 0; i < node->count; ++i) {
      Node* child;
      std::memcpy(&child,
                  reinterpret_cast<uint8_t*>(node) + kHeaderBytes +
                      i * (key_bytes_ + 8) + key_bytes_,
                  sizeof(child));
      FreeTree(child);
    }
  }
  std::free(node);
}

namespace {

inline uint8_t* EntryPtr(BTree::Node* node, uint32_t i, uint32_t entry) {
  return reinterpret_cast<uint8_t*>(node) + kHeaderBytes + i * entry;
}
inline const uint8_t* EntryPtr(const BTree::Node* node, uint32_t i,
                               uint32_t entry) {
  return reinterpret_cast<const uint8_t*>(node) + kHeaderBytes + i * entry;
}

}  // namespace

uint32_t BTree::LowerBound(mcsim::CoreSim* core, const Node* node,
                           const Key& key, bool* found) const {
  const uint32_t entry = key_bytes_ + 8;
  uint32_t lo = 0;
  uint32_t hi = node->count;
  *found = false;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    const uint8_t* slot = EntryPtr(node, mid, entry);
    const uint32_t cmp_bytes =
        key_bytes_ < key.size() ? key_bytes_ : key.size();
    const uint32_t examined = BytesExamined(slot, key.data(), cmp_bytes);
    core->Read(reinterpret_cast<uint64_t>(slot), examined);
    core->Retire(CompareInstructions(examined));
    const int c = std::memcmp(slot, key.data(), cmp_bytes);
    if (c == 0 && key_bytes_ >= key.size()) {
      // Fixed-width slots are zero-padded; a shorter probe key matches
      // only if the slot's remainder is zero.
      bool equal = true;
      for (uint32_t b = key.size(); b < key_bytes_; ++b) {
        if (slot[b] != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        *found = true;
        return mid;
      }
    }
    const int full = (c != 0) ? c
                              : (key_bytes_ < key.size() ? -1 : 1);
    if (full < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BTree::Node* BTree::FindLeaf(mcsim::CoreSim* core, const Key& key) const {
  const uint32_t entry = key_bytes_ + 8;
  Node* node = root_;
  while (!node->is_leaf) {
    core->Read(reinterpret_cast<uint64_t>(node), kHeaderBytes);
    core->Retire(8);
    bool found;
    uint32_t pos = LowerBound(core, node, key, &found);
    // Child covering `key`: entry[pos-1].child, or leftmost if pos == 0.
    // On exact separator match descend right of the separator.
    if (found) pos += 1;
    Node* child;
    if (pos == 0) {
      child = node->leftmost;
    } else {
      std::memcpy(&child, EntryPtr(node, pos - 1, entry) + key_bytes_,
                  sizeof(child));
    }
    node = child;
  }
  core->Read(reinterpret_cast<uint64_t>(node), kHeaderBytes);
  core->Retire(8);
  return node;
}

bool BTree::Lookup(mcsim::CoreSim* core, const Key& key, uint64_t* value) {
  Node* leaf = FindLeaf(core, key);
  bool found;
  const uint32_t pos = LowerBound(core, leaf, key, &found);
  if (!found) return false;
  const uint8_t* slot = EntryPtr(leaf, pos, key_bytes_ + 8);
  core->Read(reinterpret_cast<uint64_t>(slot + key_bytes_), 8);
  core->Retire(4);
  std::memcpy(value, slot + key_bytes_, 8);
  return true;
}

bool BTree::InsertRec(mcsim::CoreSim* core, Node* node, const Key& key,
                      uint64_t value, SplitResult* split, bool* duplicate) {
  const uint32_t entry = key_bytes_ + 8;
  core->Read(reinterpret_cast<uint64_t>(node), kHeaderBytes);
  core->Retire(8);
  bool found;
  uint32_t pos = LowerBound(core, node, key, &found);

  if (node->is_leaf) {
    if (found) {
      *duplicate = true;
      return false;
    }
    // Shift entries right and place the new one.
    uint8_t* base = EntryPtr(node, 0, entry);
    std::memmove(base + (pos + 1) * entry, base + pos * entry,
                 (node->count - pos) * entry);
    uint8_t* slot = base + pos * entry;
    std::memset(slot, 0, key_bytes_);
    std::memcpy(slot, key.data(),
                key.size() < key_bytes_ ? key.size() : key_bytes_);
    std::memcpy(slot + key_bytes_, &value, 8);
    ++node->count;
    core->Write(reinterpret_cast<uint64_t>(slot), entry);
    core->Write(reinterpret_cast<uint64_t>(node), 8);
    core->Retire(12);
    if (node->count < leaf_capacity_) return false;

    // Split the leaf: upper half moves to a new leaf.
    Node* right = NewNode(/*leaf=*/true);
    const uint32_t keep = node->count / 2;
    right->count = node->count - keep;
    std::memcpy(EntryPtr(right, 0, entry), EntryPtr(node, keep, entry),
                right->count * entry);
    node->count = static_cast<uint16_t>(keep);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right;
    split->new_node = right;
    split->separator = Key::FromBytes(EntryPtr(right, 0, entry),
                                      key_bytes_);
    core->Write(reinterpret_cast<uint64_t>(right), node_bytes_ / 2);
    core->Retire(40);
    return true;
  }

  // Inner node: descend.
  if (found) pos += 1;
  Node* child;
  if (pos == 0) {
    child = node->leftmost;
  } else {
    std::memcpy(&child, EntryPtr(node, pos - 1, entry) + key_bytes_,
                sizeof(child));
  }
  SplitResult child_split;
  if (!InsertRec(core, child, key, value, &child_split, duplicate)) {
    return false;
  }

  // Insert (separator, new child) at `pos`.
  uint8_t* base = EntryPtr(node, 0, entry);
  std::memmove(base + (pos + 1) * entry, base + pos * entry,
               (node->count - pos) * entry);
  uint8_t* slot = base + pos * entry;
  std::memset(slot, 0, key_bytes_);
  std::memcpy(slot, child_split.separator.data(),
              child_split.separator.size() < key_bytes_
                  ? child_split.separator.size()
                  : key_bytes_);
  std::memcpy(slot + key_bytes_, &child_split.new_node, 8);
  ++node->count;
  core->Write(reinterpret_cast<uint64_t>(slot), entry);
  core->Retire(12);
  if (node->count < inner_capacity_) return false;

  // Split the inner node: middle key moves up.
  Node* right = NewNode(/*leaf=*/false);
  const uint32_t mid = node->count / 2;
  split->separator = Key::FromBytes(EntryPtr(node, mid, entry), key_bytes_);
  Node* mid_child;
  std::memcpy(&mid_child, EntryPtr(node, mid, entry) + key_bytes_,
              sizeof(mid_child));
  right->leftmost = mid_child;
  right->count = static_cast<uint16_t>(node->count - mid - 1);
  std::memcpy(EntryPtr(right, 0, entry), EntryPtr(node, mid + 1, entry),
              right->count * entry);
  node->count = static_cast<uint16_t>(mid);
  split->new_node = right;
  core->Write(reinterpret_cast<uint64_t>(right), node_bytes_ / 2);
  core->Retire(40);
  return true;
}

Status BTree::Insert(mcsim::CoreSim* core, const Key& key, uint64_t value) {
  SplitResult split;
  bool duplicate = false;
  if (InsertRec(core, root_, key, value, &split, &duplicate)) {
    // Grow a new root.
    Node* new_root = NewNode(/*leaf=*/false);
    new_root->leftmost = root_;
    new_root->count = 1;
    const uint32_t entry = key_bytes_ + 8;
    uint8_t* slot = EntryPtr(new_root, 0, entry);
    std::memset(slot, 0, key_bytes_);
    std::memcpy(slot, split.separator.data(),
                split.separator.size() < key_bytes_ ? split.separator.size()
                                                    : key_bytes_);
    std::memcpy(slot + key_bytes_, &split.new_node, 8);
    root_ = new_root;
    ++height_;
    core->Write(reinterpret_cast<uint64_t>(new_root), kHeaderBytes + entry);
  }
  if (duplicate) return Status::AlreadyExists();
  ++size_;
  return Status::Ok();
}

bool BTree::Remove(mcsim::CoreSim* core, const Key& key) {
  Node* leaf = FindLeaf(core, key);
  bool found;
  const uint32_t pos = LowerBound(core, leaf, key, &found);
  if (!found) return false;
  const uint32_t entry = key_bytes_ + 8;
  uint8_t* base = EntryPtr(leaf, 0, entry);
  std::memmove(base + pos * entry, base + (pos + 1) * entry,
               (leaf->count - pos - 1) * entry);
  --leaf->count;
  core->Write(reinterpret_cast<uint64_t>(base + pos * entry), entry);
  core->Write(reinterpret_cast<uint64_t>(leaf), 8);
  core->Retire(12);
  --size_;
  return true;
}

uint64_t BTree::Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                     std::vector<uint64_t>* out) {
  Node* leaf = FindLeaf(core, from);
  bool found;
  uint32_t pos = LowerBound(core, leaf, from, &found);
  const uint32_t entry = key_bytes_ + 8;
  uint64_t n = 0;
  while (leaf != nullptr && n < limit) {
    if (pos >= leaf->count) {
      leaf = leaf->next_leaf;
      pos = 0;
      if (leaf != nullptr) {
        core->Read(reinterpret_cast<uint64_t>(leaf), kHeaderBytes);
        core->Retire(6);
      }
      continue;
    }
    const uint8_t* slot = EntryPtr(leaf, pos, entry);
    core->Read(reinterpret_cast<uint64_t>(slot), entry);
    core->Retire(8);
    uint64_t value;
    std::memcpy(&value, slot + key_bytes_, 8);
    out->push_back(value);
    ++n;
    ++pos;
  }
  return n;
}

}  // namespace imoltp::index
