#include "index/hash_index.h"

#include <bit>
#include <cstddef>
#include <cstring>

namespace imoltp::index {

namespace {
constexpr uint32_t kPoolSegment = 1 << 18;  // bytes per pool segment
}  // namespace

HashIndex::HashIndex(uint32_t key_bytes, uint64_t initial_buckets)
    : key_bytes_(key_bytes) {
  // Fixed-size entries sized for this index's keys, 8-byte aligned.
  entry_bytes_ = static_cast<uint32_t>(
      (offsetof(Entry, key) + key_bytes_ + 7) & ~7u);
  buckets_.assign(std::bit_ceil(initial_buckets), nullptr);
}

HashIndex::Entry* HashIndex::AllocEntry() {
  if (free_list_ != nullptr) {
    Entry* e = free_list_;
    free_list_ = e->next;
    return e;
  }
  if (pool_.empty() || pool_used_ + entry_bytes_ > kPoolSegment) {
    pool_.push_back(std::make_unique<uint8_t[]>(kPoolSegment));
    pool_used_ = 0;
  }
  Entry* e = reinterpret_cast<Entry*>(pool_.back().get() + pool_used_);
  pool_used_ += entry_bytes_;
  return e;
}

void HashIndex::MaybeGrow() {
  if (size_ <= buckets_.size()) return;
  std::vector<Entry*> bigger(buckets_.size() * 2, nullptr);
  const uint64_t mask = bigger.size() - 1;
  for (Entry* head : buckets_) {
    while (head != nullptr) {
      Entry* next = head->next;
      const uint64_t b =
          Key::FromBytes(head->key, head->key_len).Hash() & mask;
      head->next = bigger[b];
      bigger[b] = head;
      head = next;
    }
  }
  buckets_.swap(bigger);
}

Status HashIndex::Insert(mcsim::CoreSim* core, const Key& key,
                         uint64_t value) {
  const uint64_t b = key.Hash() & (buckets_.size() - 1);
  core->Retire(10);  // hash computation
  core->Read(reinterpret_cast<uint64_t>(&buckets_[b]), 8);
  for (Entry* e = buckets_[b]; e != nullptr; e = e->next) {
    core->Read(reinterpret_cast<uint64_t>(e), 16 + e->key_len);
    core->Retire(6 + 6 * ((e->key_len + 7) / 8));
    if (e->key_len == key.size() &&
        std::memcmp(e->key, key.data(), key.size()) == 0) {
      return Status::AlreadyExists();
    }
  }
  Entry* e = AllocEntry();
  e->next = buckets_[b];
  e->value = value;
  e->key_len = key.size();
  std::memcpy(e->key, key.data(), key.size());
  buckets_[b] = e;
  core->Write(reinterpret_cast<uint64_t>(e), 16 + key.size());
  core->Write(reinterpret_cast<uint64_t>(&buckets_[b]), 8);
  core->Retire(12);
  ++size_;
  MaybeGrow();
  return Status::Ok();
}

bool HashIndex::Lookup(mcsim::CoreSim* core, const Key& key,
                       uint64_t* value) {
  const uint64_t b = key.Hash() & (buckets_.size() - 1);
  core->Retire(10);
  core->Read(reinterpret_cast<uint64_t>(&buckets_[b]), 8);
  for (Entry* e = buckets_[b]; e != nullptr; e = e->next) {
    core->Read(reinterpret_cast<uint64_t>(e), 16 + e->key_len);
    core->Retire(6 + 6 * ((e->key_len + 7) / 8));
    if (e->key_len == key.size() &&
        std::memcmp(e->key, key.data(), key.size()) == 0) {
      *value = e->value;
      return true;
    }
  }
  return false;
}

bool HashIndex::Remove(mcsim::CoreSim* core, const Key& key) {
  const uint64_t b = key.Hash() & (buckets_.size() - 1);
  core->Retire(10);
  core->Read(reinterpret_cast<uint64_t>(&buckets_[b]), 8);
  Entry** link = &buckets_[b];
  for (Entry* e = *link; e != nullptr; link = &e->next, e = e->next) {
    core->Read(reinterpret_cast<uint64_t>(e), 16 + e->key_len);
    core->Retire(6 + 6 * ((e->key_len + 7) / 8));
    if (e->key_len == key.size() &&
        std::memcmp(e->key, key.data(), key.size()) == 0) {
      *link = e->next;
      e->next = free_list_;
      free_list_ = e;
      core->Write(reinterpret_cast<uint64_t>(link), 8);
      core->Retire(6);
      --size_;
      return true;
    }
  }
  return false;
}

uint64_t HashIndex::Scan(mcsim::CoreSim* core, const Key& from,
                         uint64_t limit, std::vector<uint64_t>* out) {
  (void)core;
  (void)from;
  (void)limit;
  (void)out;
  return 0;  // unordered structure: range scans unsupported
}

}  // namespace imoltp::index
