#ifndef IMOLTP_INDEX_KEY_H_
#define IMOLTP_INDEX_KEY_H_

#include <cstdint>
#include <cstring>

namespace imoltp::index {

/// Maximum key length any index must handle: the paper's String
/// micro-benchmark uses 50-byte keys; composite TPC-C keys fit in 8.
inline constexpr uint32_t kMaxKeyBytes = 56;

/// A fixed-capacity, memcmp-comparable key. Long keys are stored
/// big-endian so byte order equals numeric order; String keys are used
/// as-is. Comparison cost scales with key length, which is exactly the
/// spatial-locality effect the paper's data-type experiment measures
/// (Section 6.2).
class Key {
 public:
  Key() : size_(0) {}

  static Key FromUint64(uint64_t v) {
    Key k;
    k.size_ = 8;
    for (int i = 7; i >= 0; --i) {
      k.bytes_[i] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
    return k;
  }

  static Key FromBytes(const void* data, uint32_t size) {
    Key k;
    k.size_ = size > kMaxKeyBytes ? kMaxKeyBytes : size;
    std::memcpy(k.bytes_, data, k.size_);
    return k;
  }

  const uint8_t* data() const { return bytes_; }
  uint32_t size() const { return size_; }

  uint64_t AsUint64() const {
    uint64_t v = 0;
    for (uint32_t i = 0; i < 8 && i < size_; ++i) {
      v = (v << 8) | bytes_[i];
    }
    return v;
  }

  /// memcmp semantics over the shorter common prefix, then by length.
  int Compare(const Key& other) const {
    const uint32_t n = size_ < other.size_ ? size_ : other.size_;
    const int c = std::memcmp(bytes_, other.bytes_, n);
    if (c != 0) return c;
    if (size_ == other.size_) return 0;
    return size_ < other.size_ ? -1 : 1;
  }

  bool operator==(const Key& other) const { return Compare(other) == 0; }
  bool operator<(const Key& other) const { return Compare(other) < 0; }

  uint64_t Hash() const {
    // FNV-1a over the key bytes.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t i = 0; i < size_; ++i) {
      h ^= bytes_[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  }

 private:
  uint8_t bytes_[kMaxKeyBytes];
  uint32_t size_;
};

/// Packs TPC-style composite ids into one ordered uint64 key:
/// each component gets a fixed bit width, most-significant first.
inline uint64_t Compose2(uint64_t a, uint64_t b, int b_bits) {
  return (a << b_bits) | b;
}
inline uint64_t Compose3(uint64_t a, uint64_t b, int b_bits, uint64_t c,
                         int c_bits) {
  return (((a << b_bits) | b) << c_bits) | c;
}

}  // namespace imoltp::index

#endif  // IMOLTP_INDEX_KEY_H_
