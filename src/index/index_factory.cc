#include <shared_mutex>
#include <utility>

#include "index/art.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/index.h"

namespace imoltp::index {

namespace {

/// Reader/writer locking decorator. The underlying structures (B-tree
/// splits, ART node growth, hash rehash) move memory around on insert, so
/// free-running parallel workers must not probe mid-restructure. Lookups
/// and scans share the lock; mutations are exclusive. The simulated cost
/// model is unchanged — the traced node walks happen inside the lock on
/// the caller's own core.
class LockedIndex final : public Index {
 public:
  explicit LockedIndex(std::unique_ptr<Index> inner)
      : inner_(std::move(inner)) {}

  IndexKind kind() const override { return inner_->kind(); }

  Status Insert(mcsim::CoreSim* core, const Key& key,
                uint64_t value) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Insert(core, key, value);
  }

  bool Lookup(mcsim::CoreSim* core, const Key& key,
              uint64_t* value) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->Lookup(core, key, value);
  }

  bool Remove(mcsim::CoreSim* core, const Key& key) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Remove(core, key);
  }

  uint64_t Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                std::vector<uint64_t>* out) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->Scan(core, from, limit, out);
  }

  uint64_t size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->size();
  }

  bool ordered() const override { return inner_->ordered(); }

 private:
  mutable std::shared_mutex mu_;
  std::unique_ptr<Index> inner_;
};

std::unique_ptr<Index> CreateBareIndex(IndexKind kind,
                                       uint32_t key_bytes) {
  switch (kind) {
    case IndexKind::kBTree8K:
      return std::make_unique<BTree>(8192, key_bytes, kind);
    case IndexKind::kBTreeCacheline:
      return std::make_unique<BTree>(512, key_bytes, kind);
    case IndexKind::kBTreeCc:
      // Bw-tree / solidDB style: cache-conscious layout with KB-sized
      // logical pages (paper refs [17], [18]).
      return std::make_unique<BTree>(2048, key_bytes, kind);
    case IndexKind::kArt:
      return std::make_unique<Art>(key_bytes);
    case IndexKind::kHash:
      return std::make_unique<HashIndex>(key_bytes);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Index> CreateIndex(IndexKind kind, uint32_t key_bytes) {
  auto inner = CreateBareIndex(kind, key_bytes);
  if (inner == nullptr) return nullptr;
  return std::make_unique<LockedIndex>(std::move(inner));
}

}  // namespace imoltp::index
