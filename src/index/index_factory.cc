#include "index/art.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/index.h"

namespace imoltp::index {

std::unique_ptr<Index> CreateIndex(IndexKind kind, uint32_t key_bytes) {
  switch (kind) {
    case IndexKind::kBTree8K:
      return std::make_unique<BTree>(8192, key_bytes, kind);
    case IndexKind::kBTreeCacheline:
      return std::make_unique<BTree>(512, key_bytes, kind);
    case IndexKind::kBTreeCc:
      // Bw-tree / solidDB style: cache-conscious layout with KB-sized
      // logical pages (paper refs [17], [18]).
      return std::make_unique<BTree>(2048, key_bytes, kind);
    case IndexKind::kArt:
      return std::make_unique<Art>(key_bytes);
    case IndexKind::kHash:
      return std::make_unique<HashIndex>(key_bytes);
  }
  return nullptr;
}

}  // namespace imoltp::index
