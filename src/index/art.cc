#include "index/art.h"

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace imoltp::index {

namespace {
constexpr uint32_t kMaxPrefix = 52;  // >= longest key; fully pessimistic

enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };
}  // namespace

struct Art::Leaf {
  uint32_t key_len;
  uint64_t value;
  // Key bytes follow inline; leaves are allocated at exactly
  // offsetof(Leaf, key) + key_len bytes (they dominate index memory).
  uint8_t key[1];
};

struct Art::Node {
  uint8_t type;
  uint16_t num_children;
  uint32_t prefix_len;
  uint8_t prefix[kMaxPrefix];
};

struct Art::Node4 {
  Node base;
  uint8_t keys[4];
  void* children[4];
};
struct Art::Node16 {
  Node base;
  uint8_t keys[16];
  void* children[16];
};
struct Art::Node48 {
  Node base;
  uint8_t child_index[256];  // 0 = empty, else slot+1
  void* children[48];
};
struct Art::Node256 {
  Node base;
  void* children[256];
};

namespace {

template <typename T>
T* AllocNode(NodeType type) {
  T* n = static_cast<T*>(std::calloc(1, sizeof(T)));
  n->base.type = type;
  return n;
}

}  // namespace

Art::Art(uint32_t key_bytes) : key_bytes_(key_bytes) {}

Art::~Art() { FreeSubtree(root_); }

void Art::FreeSubtree(void* p) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    std::free(AsLeaf(p));
    return;
  }
  Node* n = static_cast<Node*>(p);
  switch (n->type) {
    case kNode4: {
      auto* n4 = reinterpret_cast<Node4*>(n);
      for (int i = 0; i < n->num_children; ++i) FreeSubtree(n4->children[i]);
      break;
    }
    case kNode16: {
      auto* n16 = reinterpret_cast<Node16*>(n);
      for (int i = 0; i < n->num_children; ++i)
        FreeSubtree(n16->children[i]);
      break;
    }
    case kNode48: {
      auto* n48 = reinterpret_cast<Node48*>(n);
      for (int b = 0; b < 256; ++b) {
        if (n48->child_index[b] != 0)
          FreeSubtree(n48->children[n48->child_index[b] - 1]);
      }
      break;
    }
    default: {
      auto* n256 = reinterpret_cast<Node256*>(n);
      for (int b = 0; b < 256; ++b) FreeSubtree(n256->children[b]);
      break;
    }
  }
  std::free(n);
}

Art::Leaf* Art::NewLeaf(const Key& key, uint64_t value) {
  Leaf* l = static_cast<Leaf*>(
      std::calloc(1, offsetof(Leaf, key) + key.size()));
  l->key_len = key.size();
  l->value = value;
  std::memcpy(l->key, key.data(), key.size());
  return l;
}

void** Art::FindChild(Node* node, uint8_t byte) const {
  switch (node->type) {
    case kNode4: {
      auto* n = reinterpret_cast<Node4*>(node);
      for (int i = 0; i < node->num_children; ++i) {
        if (n->keys[i] == byte) return &n->children[i];
      }
      return nullptr;
    }
    case kNode16: {
      auto* n = reinterpret_cast<Node16*>(node);
      for (int i = 0; i < node->num_children; ++i) {
        if (n->keys[i] == byte) return &n->children[i];
      }
      return nullptr;
    }
    case kNode48: {
      auto* n = reinterpret_cast<Node48*>(node);
      if (n->child_index[byte] == 0) return nullptr;
      return &n->children[n->child_index[byte] - 1];
    }
    default: {
      auto* n = reinterpret_cast<Node256*>(node);
      return n->children[byte] != nullptr ? &n->children[byte] : nullptr;
    }
  }
}

void Art::AddChild(Node** node_ref, Node* node, uint8_t byte, void* child) {
  switch (node->type) {
    case kNode4: {
      auto* n = reinterpret_cast<Node4*>(node);
      if (node->num_children < 4) {
        int pos = 0;
        while (pos < node->num_children && n->keys[pos] < byte) ++pos;
        std::memmove(n->keys + pos + 1, n->keys + pos,
                     node->num_children - pos);
        std::memmove(n->children + pos + 1, n->children + pos,
                     (node->num_children - pos) * sizeof(void*));
        n->keys[pos] = byte;
        n->children[pos] = child;
        ++node->num_children;
        return;
      }
      // Grow to Node16.
      auto* bigger = AllocNode<Node16>(kNode16);
      bigger->base.num_children = node->num_children;
      bigger->base.prefix_len = node->prefix_len;
      std::memcpy(bigger->base.prefix, node->prefix, kMaxPrefix);
      std::memcpy(bigger->keys, n->keys, 4);
      std::memcpy(bigger->children, n->children, 4 * sizeof(void*));
      std::free(node);
      *node_ref = &bigger->base;
      AddChild(node_ref, &bigger->base, byte, child);
      return;
    }
    case kNode16: {
      auto* n = reinterpret_cast<Node16*>(node);
      if (node->num_children < 16) {
        int pos = 0;
        while (pos < node->num_children && n->keys[pos] < byte) ++pos;
        std::memmove(n->keys + pos + 1, n->keys + pos,
                     node->num_children - pos);
        std::memmove(n->children + pos + 1, n->children + pos,
                     (node->num_children - pos) * sizeof(void*));
        n->keys[pos] = byte;
        n->children[pos] = child;
        ++node->num_children;
        return;
      }
      auto* bigger = AllocNode<Node48>(kNode48);
      bigger->base.num_children = node->num_children;
      bigger->base.prefix_len = node->prefix_len;
      std::memcpy(bigger->base.prefix, node->prefix, kMaxPrefix);
      for (int i = 0; i < 16; ++i) {
        bigger->children[i] = n->children[i];
        bigger->child_index[n->keys[i]] = static_cast<uint8_t>(i + 1);
      }
      std::free(node);
      *node_ref = &bigger->base;
      AddChild(node_ref, &bigger->base, byte, child);
      return;
    }
    case kNode48: {
      auto* n = reinterpret_cast<Node48*>(node);
      if (node->num_children < 48) {
        // Removals leave holes in children[]; find a free slot rather
        // than assuming slots [0, num_children) are the occupied ones.
        int slot = 0;
        while (n->children[slot] != nullptr) ++slot;
        n->children[slot] = child;
        n->child_index[byte] = static_cast<uint8_t>(slot + 1);
        ++node->num_children;
        return;
      }
      auto* bigger = AllocNode<Node256>(kNode256);
      bigger->base.num_children = node->num_children;
      bigger->base.prefix_len = node->prefix_len;
      std::memcpy(bigger->base.prefix, node->prefix, kMaxPrefix);
      for (int b = 0; b < 256; ++b) {
        if (n->child_index[b] != 0) {
          bigger->children[b] = n->children[n->child_index[b] - 1];
        }
      }
      std::free(node);
      *node_ref = &bigger->base;
      AddChild(node_ref, &bigger->base, byte, child);
      return;
    }
    default: {
      auto* n = reinterpret_cast<Node256*>(node);
      n->children[byte] = child;
      ++node->num_children;
      return;
    }
  }
}

void Art::RemoveChild(Node* node, uint8_t byte) {
  switch (node->type) {
    case kNode4: {
      auto* n = reinterpret_cast<Node4*>(node);
      for (int i = 0; i < node->num_children; ++i) {
        if (n->keys[i] == byte) {
          std::memmove(n->keys + i, n->keys + i + 1,
                       node->num_children - i - 1);
          std::memmove(n->children + i, n->children + i + 1,
                       (node->num_children - i - 1) * sizeof(void*));
          --node->num_children;
          return;
        }
      }
      return;
    }
    case kNode16: {
      auto* n = reinterpret_cast<Node16*>(node);
      for (int i = 0; i < node->num_children; ++i) {
        if (n->keys[i] == byte) {
          std::memmove(n->keys + i, n->keys + i + 1,
                       node->num_children - i - 1);
          std::memmove(n->children + i, n->children + i + 1,
                       (node->num_children - i - 1) * sizeof(void*));
          --node->num_children;
          return;
        }
      }
      return;
    }
    case kNode48: {
      auto* n = reinterpret_cast<Node48*>(node);
      if (n->child_index[byte] != 0) {
        // Leave a hole in children[]; slots are not compacted (holes are
        // reused only via growth, which is fine for OLTP delete rates).
        n->children[n->child_index[byte] - 1] = nullptr;
        n->child_index[byte] = 0;
        --node->num_children;
      }
      return;
    }
    default: {
      auto* n = reinterpret_cast<Node256*>(node);
      if (n->children[byte] != nullptr) {
        n->children[byte] = nullptr;
        --node->num_children;
      }
      return;
    }
  }
}

bool Art::Lookup(mcsim::CoreSim* core, const Key& key, uint64_t* value) {
  void* p = root_;
  uint32_t depth = 0;
  while (p != nullptr) {
    if (IsLeaf(p)) {
      Leaf* l = AsLeaf(p);
      core->Read(reinterpret_cast<uint64_t>(l), 16 + l->key_len);
      core->Retire(6 + 6 * ((l->key_len + 7) / 8));
      if (l->key_len == key.size() &&
          std::memcmp(l->key, key.data(), key.size()) == 0) {
        *value = l->value;
        return true;
      }
      return false;
    }
    Node* n = static_cast<Node*>(p);
    core->Read(reinterpret_cast<uint64_t>(n),
               sizeof(Node) < 24 ? sizeof(Node) : 24);
    core->Retire(8);
    if (n->prefix_len > 0) {
      if (depth + n->prefix_len > key.size() ||
          std::memcmp(n->prefix, key.data() + depth, n->prefix_len) != 0) {
        return false;
      }
      core->Retire(2 + n->prefix_len / 8);
      depth += n->prefix_len;
    }
    if (depth >= key.size()) return false;
    void** child = FindChild(n, key.data()[depth]);
    // Child array probe: one line of the child pointer area.
    core->Read(reinterpret_cast<uint64_t>(n) + sizeof(Node), 16);
    core->Retire(4);
    if (child == nullptr) return false;
    p = *child;
    ++depth;
  }
  return false;
}

bool Art::InsertRec(mcsim::CoreSim* core, void** ref, const Key& key,
                    uint64_t value, uint32_t depth) {
  if (*ref == nullptr) {
    *ref = TagLeaf(NewLeaf(key, value));
    core->Write(reinterpret_cast<uint64_t>(AsLeaf(*ref)), 16 + key.size());
    core->Retire(12);
    return true;
  }
  if (IsLeaf(*ref)) {
    Leaf* l = AsLeaf(*ref);
    core->Read(reinterpret_cast<uint64_t>(l), 16 + l->key_len);
    core->Retire(6 + 6 * ((l->key_len + 7) / 8));
    if (l->key_len == key.size() &&
        std::memcmp(l->key, key.data(), key.size()) == 0) {
      return false;  // duplicate
    }
    // Split: new Node4 with the common prefix of the two keys.
    uint32_t common = 0;
    const uint32_t max_common = (l->key_len < key.size() ? l->key_len
                                                         : key.size()) -
                                depth;
    while (common < max_common &&
           l->key[depth + common] == key.data()[depth + common]) {
      ++common;
    }
    auto* n4 = AllocNode<Node4>(kNode4);
    n4->base.prefix_len = common;
    std::memcpy(n4->base.prefix, key.data() + depth, common);
    Leaf* new_leaf = NewLeaf(key, value);
    Node* as_node = &n4->base;
    void* old_ref = *ref;
    *ref = as_node;
    AddChild(reinterpret_cast<Node**>(ref), as_node,
             l->key[depth + common], old_ref);
    AddChild(reinterpret_cast<Node**>(ref),
             static_cast<Node*>(*ref), key.data()[depth + common],
             TagLeaf(new_leaf));
    core->Write(reinterpret_cast<uint64_t>(n4), sizeof(Node4));
    core->Retire(30);
    return true;
  }

  Node* n = static_cast<Node*>(*ref);
  core->Read(reinterpret_cast<uint64_t>(n), 24);
  core->Retire(8);
  if (n->prefix_len > 0) {
    uint32_t match = 0;
    while (match < n->prefix_len &&
           depth + match < key.size() &&
           n->prefix[match] == key.data()[depth + match]) {
      ++match;
    }
    core->Retire(2 + match / 8);
    if (match < n->prefix_len) {
      // Prefix mismatch: split the prefix with a new Node4 above.
      auto* n4 = AllocNode<Node4>(kNode4);
      n4->base.prefix_len = match;
      std::memcpy(n4->base.prefix, n->prefix, match);
      const uint8_t old_byte = n->prefix[match];
      // Shorten the old node's prefix past the split point.
      n->prefix_len -= match + 1;
      std::memmove(n->prefix, n->prefix + match + 1, n->prefix_len);
      Leaf* new_leaf = NewLeaf(key, value);
      void* node_ref = &n4->base;
      *ref = node_ref;
      AddChild(reinterpret_cast<Node**>(ref), &n4->base, old_byte, n);
      AddChild(reinterpret_cast<Node**>(ref), static_cast<Node*>(*ref),
               key.data()[depth + match], TagLeaf(new_leaf));
      core->Write(reinterpret_cast<uint64_t>(n4), sizeof(Node4));
      core->Retire(30);
      return true;
    }
    depth += n->prefix_len;
  }
  const uint8_t byte = key.data()[depth];
  void** child = FindChild(n, byte);
  core->Read(reinterpret_cast<uint64_t>(n) + sizeof(Node), 16);
  core->Retire(4);
  if (child != nullptr) {
    return InsertRec(core, child, key, value, depth + 1);
  }
  Leaf* new_leaf = NewLeaf(key, value);
  AddChild(reinterpret_cast<Node**>(ref), n, byte, TagLeaf(new_leaf));
  core->Write(reinterpret_cast<uint64_t>(*ref), 32);
  core->Retire(14);
  return true;
}

Status Art::Insert(mcsim::CoreSim* core, const Key& key, uint64_t value) {
  if (!InsertRec(core, &root_, key, value, 0)) {
    return Status::AlreadyExists();
  }
  ++size_;
  return Status::Ok();
}

bool Art::RemoveRec(mcsim::CoreSim* core, void** ref, const Key& key,
                    uint32_t depth) {
  if (*ref == nullptr) return false;
  if (IsLeaf(*ref)) {
    Leaf* l = AsLeaf(*ref);
    core->Read(reinterpret_cast<uint64_t>(l), 16 + l->key_len);
    core->Retire(6);
    if (l->key_len == key.size() &&
        std::memcmp(l->key, key.data(), key.size()) == 0) {
      std::free(l);
      *ref = nullptr;
      return true;
    }
    return false;
  }
  Node* n = static_cast<Node*>(*ref);
  core->Read(reinterpret_cast<uint64_t>(n), 24);
  core->Retire(8);
  if (n->prefix_len > 0) {
    if (depth + n->prefix_len > key.size() ||
        std::memcmp(n->prefix, key.data() + depth, n->prefix_len) != 0) {
      return false;
    }
    depth += n->prefix_len;
  }
  if (depth >= key.size()) return false;
  const uint8_t byte = key.data()[depth];
  void** child = FindChild(n, byte);
  if (child == nullptr) return false;
  if (IsLeaf(*child)) {
    Leaf* l = AsLeaf(*child);
    core->Read(reinterpret_cast<uint64_t>(l), 16 + l->key_len);
    core->Retire(6);
    if (l->key_len != key.size() ||
        std::memcmp(l->key, key.data(), key.size()) != 0) {
      return false;
    }
    std::free(l);
    RemoveChild(n, byte);
    core->Write(reinterpret_cast<uint64_t>(n), 32);
    core->Retire(10);
    return true;
  }
  return RemoveRec(core, child, key, depth + 1);
}

bool Art::Remove(mcsim::CoreSim* core, const Key& key) {
  if (!RemoveRec(core, &root_, key, 0)) return false;
  --size_;
  return true;
}

uint64_t Art::ScanRec(mcsim::CoreSim* core, void* p, const Key& from,
                      uint64_t limit, uint32_t depth, bool* past_from,
                      std::vector<uint64_t>* out) const {
  if (p == nullptr || out->size() >= limit) return 0;
  if (IsLeaf(p)) {
    Leaf* l = AsLeaf(p);
    core->Read(reinterpret_cast<uint64_t>(l), 16 + l->key_len);
    core->Retire(6 + 6 * ((l->key_len + 7) / 8));
    if (!*past_from) {
      const Key leaf_key = Key::FromBytes(l->key, l->key_len);
      if (leaf_key.Compare(from) < 0) return 0;
      *past_from = true;
    }
    out->push_back(l->value);
    return 1;
  }
  Node* n = static_cast<Node*>(p);
  core->Read(reinterpret_cast<uint64_t>(n), 24);
  core->Retire(8);

  if (!*past_from && n->prefix_len > 0) {
    // Compare the compressed prefix against the corresponding bytes of
    // `from` to prune subtrees that are entirely below the start key.
    const uint32_t remaining =
        depth < from.size() ? from.size() - depth : 0;
    const uint32_t cmp_len =
        n->prefix_len < remaining ? n->prefix_len : remaining;
    const int c = std::memcmp(n->prefix, from.data() + depth, cmp_len);
    core->Retire(2 + cmp_len / 8);
    if (c < 0) return 0;            // whole subtree < from
    if (c > 0) *past_from = true;   // whole subtree > from
  }
  depth += n->prefix_len;
  if (!*past_from && depth >= from.size()) *past_from = true;

  uint64_t added = 0;
  auto visit = [&](uint8_t byte, void* child) {
    if (child == nullptr || out->size() >= limit) return;
    if (!*past_from) {
      const uint8_t want = from.data()[depth];
      if (byte < want) return;        // prune: subtree entirely < from
      if (byte > want) *past_from = true;
      added += ScanRec(core, child, from, limit, depth + 1, past_from, out);
      return;
    }
    added += ScanRec(core, child, from, limit, depth + 1, past_from, out);
  };
  switch (n->type) {
    case kNode4: {
      auto* node = reinterpret_cast<Node4*>(n);
      for (int i = 0; i < n->num_children; ++i)
        visit(node->keys[i], node->children[i]);
      break;
    }
    case kNode16: {
      auto* node = reinterpret_cast<Node16*>(n);
      for (int i = 0; i < n->num_children; ++i)
        visit(node->keys[i], node->children[i]);
      break;
    }
    case kNode48: {
      auto* node = reinterpret_cast<Node48*>(n);
      for (int b = 0; b < 256; ++b) {
        if (node->child_index[b] != 0) {
          visit(static_cast<uint8_t>(b),
                node->children[node->child_index[b] - 1]);
        }
      }
      break;
    }
    default: {
      auto* node = reinterpret_cast<Node256*>(n);
      for (int b = 0; b < 256; ++b)
        visit(static_cast<uint8_t>(b), node->children[b]);
      break;
    }
  }
  return added;
}

uint64_t Art::Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                   std::vector<uint64_t>* out) {
  bool past_from = false;
  const size_t before = out->size();
  ScanRec(core, root_, from, limit + before, 0, &past_from, out);
  return out->size() - before;
}

}  // namespace imoltp::index
