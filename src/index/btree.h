#ifndef IMOLTP_INDEX_BTREE_H_
#define IMOLTP_INDEX_BTREE_H_

#include <cstdint>
#include <memory>

#include "index/index.h"

namespace imoltp::index {

/// A B+-tree with a runtime-configurable node size, covering three of
/// the paper's index archetypes with one implementation:
///
///   - 8KB nodes  : the disk-optimized B-tree of Shore-MT and DBMS D.
///     Probing one key binary-searches a large node, touching many
///     scattered cache lines per level — the paper blames exactly this
///     for Shore-MT's high LLC data stalls (Section 4.1.3).
///   - 512B nodes : VoltDB's tree "with node size tuned to the last-level
///     cache line size".
///   - 256B nodes : DBMS M's cache-conscious B-tree variant.
///
/// Leaves are chained for range scans. Deletion removes leaf entries
/// without merging under-full nodes (the common practice in real OLTP
/// engines; structure stays correct, space is reused by later inserts).
class BTree final : public Index {
 public:
  BTree(uint32_t node_bytes, uint32_t key_bytes, IndexKind kind);
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  IndexKind kind() const override { return kind_; }
  Status Insert(mcsim::CoreSim* core, const Key& key,
                uint64_t value) override;
  bool Lookup(mcsim::CoreSim* core, const Key& key,
              uint64_t* value) override;
  bool Remove(mcsim::CoreSim* core, const Key& key) override;
  uint64_t Scan(mcsim::CoreSim* core, const Key& from, uint64_t limit,
                std::vector<uint64_t>* out) override;
  uint64_t size() const override { return size_; }
  bool ordered() const override { return true; }

  /// Height of the tree (levels). Exposed for tests/benches.
  uint32_t height() const { return height_; }
  uint32_t node_bytes() const { return node_bytes_; }
  uint32_t leaf_capacity() const { return leaf_capacity_; }

  struct Node;  // layout detail, defined in btree.cc

 private:

  struct SplitResult {
    Node* new_node = nullptr;
    Key separator;
  };

  Node* NewNode(bool leaf);
  void FreeTree(Node* node);
  // Returns entry index via binary search; traced through `core`.
  uint32_t LowerBound(mcsim::CoreSim* core, const Node* node,
                      const Key& key, bool* found) const;
  bool InsertRec(mcsim::CoreSim* core, Node* node, const Key& key,
                 uint64_t value, SplitResult* split, bool* duplicate);
  Node* FindLeaf(mcsim::CoreSim* core, const Key& key) const;

  IndexKind kind_;
  uint32_t node_bytes_;
  uint32_t key_bytes_;
  uint32_t leaf_capacity_;
  uint32_t inner_capacity_;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
  Node* root_;
};

}  // namespace imoltp::index

#endif  // IMOLTP_INDEX_BTREE_H_
