#ifndef IMOLTP_OBS_BENCH_JSON_H_
#define IMOLTP_OBS_BENCH_JSON_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace imoltp::obs {

/// Version of the benchmark-trajectory schema emitted by imoltp_bench
/// (`BENCH_<label>.json`) and consumed by imoltp_compare. Independent of
/// the per-run report schema: bench matrices live across commits, so
/// this version only bumps when a key is renamed/removed — adding keys
/// is compatible (ParseBenchMatrix defaults what is absent).
inline constexpr int kBenchSchemaVersion = 1;

/// One cell of a benchmark campaign: an (engine, workload, mode,
/// workers) point with its simulated quality metrics (IPC, stalls —
/// deterministic under serialized modes) and its host-side speed
/// metrics (wall-clock, simulated references per host second — never
/// deterministic, compared only with regression thresholds).
struct BenchCell {
  /// Stable matching key, e.g. "voltdb/tpcc/deterministic/w2". Cells of
  /// two matrices are paired by id; everything else is payload.
  std::string id;

  std::string engine;
  std::string workload;
  std::string mode;
  int workers = 0;
  uint64_t warmup_txns = 0;
  uint64_t measure_txns = 0;
  uint64_t seed = 0;

  // Simulated-machine metrics (the paper's axes).
  double ipc = 0.0;
  double instructions_per_txn = 0.0;
  double cycles_per_txn = 0.0;
  std::array<double, 6> stalls_per_kinstr{};  // StallBreakdown order
  uint64_t committed = 0;
  uint64_t aborts = 0;
  /// Cluster cells only: network+ordering share of the p99 multi-home
  /// critical path (distributed tracing, docs/distributed.md). 0 for
  /// single-machine cells and for baselines recorded before the column
  /// existed (the parser defaults it — schema stays v1).
  double p99_net_order_share = 0.0;

  // Host-side speed metrics (simulator self-observability).
  double wall_seconds = 0.0;        // measurement window
  double total_wall_seconds = 0.0;  // populate + warmup + measure
  uint64_t simulated_refs = 0;
  double refs_per_sec = 0.0;
  double instructions_per_sec = 0.0;
  uint64_t peak_rss_bytes = 0;
};

/// One recorded point of the benchmark trajectory: a labeled campaign
/// with its provenance (commit, flag string, creation time) and cells.
struct BenchMatrix {
  std::string label;
  std::string commit;       // git revision, or "unknown"
  std::string config;       // the campaign flags, verbatim
  uint64_t created_unix = 0;
  std::vector<BenchCell> cells;
};

std::string BenchMatrixToJson(const BenchMatrix& matrix);

/// Parses a bench matrix. Tolerant of sparse cells — a timing-only
/// matrix (e.g. the run_all_bench.sh wall-clock table) carries just
/// `id` and `wall_seconds`, and every absent numeric field stays 0 —
/// but strict about structure: a missing `cells` array, a cell without
/// an `id`, or a bench_schema_version mismatch is an error.
StatusOr<BenchMatrix> ParseBenchMatrix(const std::string& json);

/// Tolerance rules for comparing two trajectory points.
struct BenchCompareOptions {
  /// Relative drift allowed on the simulated metrics (ipc,
  /// instructions_per_txn) — symmetric, since a simulated-metric change
  /// in either direction means the modeled behavior changed.
  double ipc_rtol = 0.05;
  /// Allowed fractional host-speed regression: candidate refs/sec below
  /// baseline * (1 - max_regress) fails (so does wall-clock above
  /// baseline * (1 + max_regress) for timing-only cells). Improvements
  /// never fail.
  double max_regress = 0.15;
  /// When set, baseline cells absent from the candidate are skipped
  /// instead of failing (reduced CI sweeps vs a full baseline).
  bool allow_missing = false;
};

struct BenchCompareFailure {
  std::string cell;    // cell id, or "" for matrix-level problems
  std::string metric;
  std::string detail;
};

/// Pairs cells by id and applies the tolerance rules. Empty result =
/// the candidate is at least as good as the baseline everywhere.
std::vector<BenchCompareFailure> CompareBenchMatrices(
    const BenchMatrix& baseline, const BenchMatrix& candidate,
    const BenchCompareOptions& options);

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_BENCH_JSON_H_
