#ifndef IMOLTP_OBS_REPORT_JSON_H_
#define IMOLTP_OBS_REPORT_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "mcsim/profiler.h"
#include "obs/histogram.h"
#include "obs/host_metrics.h"
#include "obs/json.h"
#include "obs/span.h"
#include "txn/checkpoint.h"

namespace imoltp::obs {

/// Version of the JSON report schema. Bump on any incompatible change
/// (renamed/removed keys, changed units); imoltp_diff refuses to
/// compare documents with different versions.
/// v4 added `window.txn_module_breakdown` and the top-level
/// `timeseries` section (sampled per-core series + the auto-warmup
/// convergence verdict; present only when sampling was on).
/// v5 added the top-level `host` section (host-side wall-clock,
/// simulator throughput, RSS — never deterministic, always ignored by
/// imoltp_diff) and the per-module sampled series
/// (`timeseries.sampled_modules` + per-bucket `module_cycles`, present
/// only when the sampler ran per-module).
/// v6 added the cluster documents emitted by `imoltp_cluster`: a
/// top-level `cluster` section (deterministic outcome counts, network
/// accounting, per-node stats, fingerprint, invariants, plus per-node
/// `windows` carrying the standard window report) and the
/// `cluster_sweep` document's top-level `sweep` section
/// (`series` exact / `perf` tolerant). Single-run reports are
/// unchanged in shape.
/// v7 added the top-level `recovery` section (fuzzy-checkpoint
/// accounting — checkpoints begun/completed, captured pages/bytes, WAL
/// truncation — plus the recovery stats when the run performed one;
/// present only when checkpointing was enabled).
/// v8 added distributed tracing to the cluster documents: the
/// `cluster.tracing` section (trace counts, per-stage cycle
/// percentiles, critical-path histograms, p99 tail composition and its
/// network+ordering share) and the sweep tracing columns
/// (`sweep.series.*.traced`/`orphaned` exact,
/// `sweep.perf.*.p99_critical_cycles`/`p99_net_order_share` tolerant).
/// Single-run reports are unchanged in shape.
inline constexpr int kReportSchemaVersion = 8;

/// Top-Down-style decomposition of the modeled cycles (per worker):
/// retiring (inherent CPI work), frontend (instruction-miss refill),
/// memory (data misses + TLB walks), bad speculation (branch flushes).
struct CycleAccounting {
  double retiring = 0.0;
  double frontend = 0.0;
  double memory = 0.0;
  double bad_speculation = 0.0;

  double total() const {
    return retiring + frontend + memory + bad_speculation;
  }
};

CycleAccounting ComputeCycleAccounting(
    const mcsim::WindowReport& report,
    const mcsim::CycleModelParams& params);

/// Identity of one measured run — everything needed to decide whether
/// two reports are comparable.
struct RunInfo {
  std::string engine;
  std::string workload;
  uint64_t db_bytes = 0;
  int rows = 0;
  int warehouses = 0;
  int workers = 1;
  uint64_t warmup_txns = 0;
  uint64_t measure_txns = 0;
  uint64_t seed = 0;
  uint64_t aborts = 0;

  /// Trace provenance (schema v2): the id of the trace file this run
  /// recorded or replayed ("" = no trace involved), and whether the
  /// numbers come from a replay rather than a live simulation.
  std::string trace_file_id;
  bool replayed = false;
};

/// Robustness section of the report (schema v3): abort causes, the
/// retry path, and the fault-injection schedule of the run. Zero-filled
/// /absent for replayed windows (replay re-executes no transaction
/// logic).
struct RobustnessInfo {
  mcsim::AbortBreakdown aborts;
  uint64_t committed = 0;

  int retry_max_attempts = 1;
  uint64_t retries = 0;
  uint64_t retry_successes = 0;
  uint64_t retry_rejections = 0;

  bool faults_enabled = false;
  uint64_t fault_seed = 0;
  std::string crash_point;  // "" = run finished without an injected crash
  std::vector<fault::FaultPointStats> fault_points;
};

/// Checkpoint / recovery section of the report (schema v7). Live runs
/// fill the checkpoint half from the engine's CheckpointManager; a
/// process that performed a recovery also fills `recovery` and sets
/// `recovered`. Deterministic in serialized modes, so imoltp_diff
/// compares it exactly.
struct RecoveryInfo {
  bool checkpoint_enabled = false;
  uint64_t checkpoint_every_n_ticks = 0;
  int checkpoint_pages_per_step = 0;
  int checkpoint_retain = 0;
  txn::CheckpointStats checkpoint;
  uint64_t log_truncation_lsn = 0;
  uint64_t appended_log_records = 0;
  bool recovered = false;
  txn::RecoveryStats recovery;
};

/// Serializes one WindowReport (IPC, both stall breakdowns, raw misses,
/// module breakdown, cycle accounting) as a JSON object into `w`.
/// `params` feeds the cycle-accounting decomposition.
void WindowReportToJson(JsonWriter& w, const mcsim::WindowReport& report,
                        const mcsim::CycleModelParams& params);

/// The full schema-versioned report emitted by `imoltp_run --json`.
/// `latency`, `spans`, `robustness` and `host` may be null (e.g. bench
/// rows, which only have the window; replays, which have no live host
/// profile).
std::string RunReportToJson(const RunInfo& info,
                            const mcsim::WindowReport& report,
                            const mcsim::CycleModelParams& params,
                            const LatencyHistogram* latency,
                            const SpanCollector* spans,
                            const RobustnessInfo* robustness = nullptr,
                            const HostPerf* host = nullptr,
                            const RecoveryInfo* recovery = nullptr);

/// Writes `json` to `path` ("-" = stdout). Atomic via rename.
Status WriteJsonFile(const std::string& path, const std::string& json);

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_REPORT_JSON_H_
