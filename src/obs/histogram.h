#ifndef IMOLTP_OBS_HISTOGRAM_H_
#define IMOLTP_OBS_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace imoltp::obs {

/// Log-spaced histogram of per-transaction simulated-cycle latencies.
/// Bin edges grow by 2^(1/kBinsPerOctave), so relative quantization
/// error is bounded (~19% per bin at 4 bins/octave) while 128 bins span
/// 1 cycle to 2^32 cycles — far beyond any simulated transaction.
/// Percentiles interpolate linearly inside the owning bin and are
/// clamped to the observed min/max, so p100 == max exactly.
class LatencyHistogram {
 public:
  static constexpr int kBinsPerOctave = 4;
  static constexpr int kNumBins = 128;

  void Add(double cycles);
  void Reset();

  /// Folds `other` into this histogram (free-running parallel mode
  /// accumulates one histogram per worker and merges after joining).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Latency at percentile `p` in [0, 100]. 0 with no samples.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p90() const { return Percentile(90.0); }
  double p99() const { return Percentile(99.0); }

  const std::array<uint64_t, kNumBins>& bins() const { return bins_; }

  /// Inclusive lower / exclusive upper cycle bound of bin `i`.
  static double BinLowerBound(int i);
  static double BinUpperBound(int i);

 private:
  static int BinIndex(double cycles);

  std::array<uint64_t, kNumBins> bins_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_HISTOGRAM_H_
