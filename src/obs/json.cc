#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace imoltp::obs {

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  need_comma_ = false;
}

void JsonWriter::Value(std::string_view v) {
  MaybeComma();
  AppendEscaped(v);
}

void JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf
    out_ += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    // 17 significant digits round-trip any double; %g drops the
    // trailing zeros so short values stay short.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view path) const {
  const JsonValue* cur = this;
  while (!path.empty()) {
    const size_t dot = path.find('.');
    const std::string_view seg =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    cur = cur->Find(seg);
    if (cur == nullptr) return nullptr;
    path = dot == std::string_view::npos ? std::string_view()
                                         : path.substr(dot + 1);
  }
  return cur;
}

namespace {

/// Recursive-descent parser; depth-limited so hostile input cannot
/// overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (ConsumeWord("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Error("bad \\u escape");
          }
          // The schema only escapes control characters; encode the
          // code point as UTF-8 without surrogate handling.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Error("expected a value");
    pos_ += static_cast<size_t>(end - begin);
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace imoltp::obs
