#include "obs/bench_json.h"

#include <cmath>
#include <cstdio>

#include "mcsim/counters.h"

namespace imoltp::obs {

namespace {

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

uint64_t CountOr(const JsonValue* v, uint64_t fallback) {
  return v != nullptr && v->is_number()
             ? static_cast<uint64_t>(v->number)
             : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->string : fallback;
}

}  // namespace

std::string BenchMatrixToJson(const BenchMatrix& matrix) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("bench_schema_version", kBenchSchemaVersion);
  w.KeyValue("label", matrix.label);
  w.KeyValue("commit", matrix.commit);
  w.KeyValue("config", matrix.config);
  w.KeyValue("created_unix", matrix.created_unix);
  w.Key("cells");
  w.BeginArray();
  for (const BenchCell& c : matrix.cells) {
    w.BeginObject();
    w.KeyValue("id", c.id);
    w.KeyValue("engine", c.engine);
    w.KeyValue("workload", c.workload);
    w.KeyValue("mode", c.mode);
    w.KeyValue("workers", c.workers);
    w.KeyValue("warmup_txns", c.warmup_txns);
    w.KeyValue("measure_txns", c.measure_txns);
    w.KeyValue("seed", c.seed);
    w.KeyValue("ipc", c.ipc);
    w.KeyValue("instructions_per_txn", c.instructions_per_txn);
    w.KeyValue("cycles_per_txn", c.cycles_per_txn);
    w.Key("stalls_per_kinstr");
    w.BeginObject();
    for (int i = 0; i < 6; ++i) {
      w.KeyValue(mcsim::StallBreakdown::kNames[i], c.stalls_per_kinstr[i]);
    }
    w.EndObject();
    w.KeyValue("committed", c.committed);
    w.KeyValue("aborts", c.aborts);
    w.KeyValue("p99_net_order_share", c.p99_net_order_share);
    w.KeyValue("wall_seconds", c.wall_seconds);
    w.KeyValue("total_wall_seconds", c.total_wall_seconds);
    w.KeyValue("simulated_refs", c.simulated_refs);
    w.KeyValue("refs_per_sec", c.refs_per_sec);
    w.KeyValue("instructions_per_sec", c.instructions_per_sec);
    w.KeyValue("peak_rss_bytes", c.peak_rss_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

StatusOr<BenchMatrix> ParseBenchMatrix(const std::string& json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("bench matrix: root is not an object");
  }
  const JsonValue* version = root.Find("bench_schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument(
        "bench matrix: missing bench_schema_version (not a "
        "BENCH_*.json document?)");
  }
  if (static_cast<int>(version->number) != kBenchSchemaVersion) {
    return Status::InvalidArgument(
        "bench matrix: bench_schema_version " +
        std::to_string(static_cast<int>(version->number)) +
        " is not the supported " + std::to_string(kBenchSchemaVersion));
  }
  const JsonValue* cells = root.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return Status::InvalidArgument("bench matrix: missing cells array");
  }

  BenchMatrix matrix;
  matrix.label = StringOr(root.Find("label"), "");
  matrix.commit = StringOr(root.Find("commit"), "");
  matrix.config = StringOr(root.Find("config"), "");
  matrix.created_unix = CountOr(root.Find("created_unix"), 0);
  for (const JsonValue& entry : cells->array) {
    if (!entry.is_object()) {
      return Status::InvalidArgument(
          "bench matrix: cells entry is not an object");
    }
    BenchCell c;
    c.id = StringOr(entry.Find("id"), "");
    if (c.id.empty()) {
      return Status::InvalidArgument("bench matrix: cell without an id");
    }
    c.engine = StringOr(entry.Find("engine"), "");
    c.workload = StringOr(entry.Find("workload"), "");
    c.mode = StringOr(entry.Find("mode"), "");
    c.workers = static_cast<int>(NumberOr(entry.Find("workers"), 0));
    c.warmup_txns = CountOr(entry.Find("warmup_txns"), 0);
    c.measure_txns = CountOr(entry.Find("measure_txns"), 0);
    c.seed = CountOr(entry.Find("seed"), 0);
    c.ipc = NumberOr(entry.Find("ipc"), 0.0);
    c.instructions_per_txn =
        NumberOr(entry.Find("instructions_per_txn"), 0.0);
    c.cycles_per_txn = NumberOr(entry.Find("cycles_per_txn"), 0.0);
    if (const JsonValue* stalls = entry.Find("stalls_per_kinstr")) {
      for (int i = 0; i < 6; ++i) {
        c.stalls_per_kinstr[i] =
            NumberOr(stalls->Find(mcsim::StallBreakdown::kNames[i]), 0.0);
      }
    }
    c.committed = CountOr(entry.Find("committed"), 0);
    c.aborts = CountOr(entry.Find("aborts"), 0);
    c.p99_net_order_share =
        NumberOr(entry.Find("p99_net_order_share"), 0.0);
    c.wall_seconds = NumberOr(entry.Find("wall_seconds"), 0.0);
    c.total_wall_seconds =
        NumberOr(entry.Find("total_wall_seconds"), 0.0);
    c.simulated_refs = CountOr(entry.Find("simulated_refs"), 0);
    c.refs_per_sec = NumberOr(entry.Find("refs_per_sec"), 0.0);
    c.instructions_per_sec =
        NumberOr(entry.Find("instructions_per_sec"), 0.0);
    c.peak_rss_bytes = CountOr(entry.Find("peak_rss_bytes"), 0);
    matrix.cells.push_back(std::move(c));
  }
  return matrix;
}

namespace {

const BenchCell* FindCell(const BenchMatrix& m, const std::string& id) {
  for (const BenchCell& c : m.cells) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

void CheckSimulatedDrift(const std::string& id, const char* metric,
                         double base, double cand, double rtol,
                         std::vector<BenchCompareFailure>* failures) {
  if (base <= 0 || cand <= 0) return;  // not measured on one side
  const double scale = std::fmax(std::fabs(base), std::fabs(cand));
  const double rel = std::fabs(base - cand) / scale;
  if (rel > rtol) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.6g vs %.6g (rel %.4f > rtol %.4f)",
                  base, cand, rel, rtol);
    failures->push_back({id, metric, buf});
  }
}

}  // namespace

std::vector<BenchCompareFailure> CompareBenchMatrices(
    const BenchMatrix& baseline, const BenchMatrix& candidate,
    const BenchCompareOptions& options) {
  std::vector<BenchCompareFailure> failures;
  for (const BenchCell& base : baseline.cells) {
    const BenchCell* cand = FindCell(candidate, base.id);
    if (cand == nullptr) {
      if (!options.allow_missing) {
        failures.push_back(
            {base.id, "cell", "missing from candidate matrix"});
      }
      continue;
    }

    CheckSimulatedDrift(base.id, "ipc", base.ipc, cand->ipc,
                        options.ipc_rtol, &failures);
    CheckSimulatedDrift(base.id, "instructions_per_txn",
                        base.instructions_per_txn,
                        cand->instructions_per_txn, options.ipc_rtol,
                        &failures);

    // Host speed: one-sided. Prefer refs/sec (work-normalized, so a
    // config with different txn counts still compares); fall back to
    // wall-clock for timing-only cells.
    if (base.refs_per_sec > 0 && cand->refs_per_sec > 0) {
      const double floor =
          base.refs_per_sec * (1.0 - options.max_regress);
      if (cand->refs_per_sec < floor) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%.4g refs/sec vs baseline %.4g (below the "
                      "allowed %.4g = -%.0f%%)",
                      cand->refs_per_sec, base.refs_per_sec, floor,
                      options.max_regress * 100.0);
        failures.push_back({base.id, "refs_per_sec", buf});
      }
    } else if (base.wall_seconds > 0 && cand->wall_seconds > 0) {
      const double ceiling =
          base.wall_seconds * (1.0 + options.max_regress);
      if (cand->wall_seconds > ceiling) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%.3fs vs baseline %.3fs (above the allowed "
                      "%.3fs = +%.0f%%)",
                      cand->wall_seconds, base.wall_seconds, ceiling,
                      options.max_regress * 100.0);
        failures.push_back({base.id, "wall_seconds", buf});
      }
    }
  }
  return failures;
}

}  // namespace imoltp::obs
