#ifndef IMOLTP_OBS_JSON_H_
#define IMOLTP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace imoltp::obs {

/// Streaming JSON serializer. Call order is validated only by the
/// emitted text; callers are expected to pair Begin*/End* correctly.
/// Doubles print as integers when they are exactly integral (keeps
/// counters readable) and with enough digits to round-trip otherwise.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(double v);
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v);
  void Null();

  void KeyValue(std::string_view key, std::string_view v) {
    Key(key);
    Value(v);
  }
  template <typename T>
  void KeyValue(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON document node. Numbers are doubles (every metric the
/// report schema emits fits); object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Dotted-path lookup ("window.stalls_per_kinstr.L1I"). Path segments
  /// index objects by key; array elements are not addressable this way.
  const JsonValue* FindPath(std::string_view path) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_JSON_H_
