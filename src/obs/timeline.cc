#include "obs/timeline.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "obs/json.h"

namespace imoltp::obs {

void WriteTraceMetadataEvent(JsonWriter& w, const char* name, int pid,
                             int tid, const char* value) {
  w.BeginObject();
  w.KeyValue("name", name);
  w.KeyValue("ph", "M");
  w.KeyValue("pid", pid);
  w.KeyValue("tid", tid);
  w.Key("args");
  w.BeginObject();
  w.KeyValue("name", value);
  w.EndObject();
  w.EndObject();
}

void WriteTraceCounterEvent(
    JsonWriter& w, const char* name, int pid, int tid, double ts_us,
    const std::vector<std::pair<const char*, double>>& args) {
  w.BeginObject();
  w.KeyValue("name", name);
  w.KeyValue("ph", "C");
  w.KeyValue("pid", pid);
  w.KeyValue("tid", tid);
  w.KeyValue("ts", ts_us);
  w.Key("args");
  w.BeginObject();
  for (const auto& [key, value] : args) w.KeyValue(key, value);
  w.EndObject();
  w.EndObject();
}

void WriteTraceSpanEvent(JsonWriter& w, const char* name, const char* cat,
                         int pid, int tid, double ts_us, double dur_us) {
  w.BeginObject();
  w.KeyValue("name", name);
  w.KeyValue("cat", cat);
  w.KeyValue("ph", "X");
  w.KeyValue("pid", pid);
  w.KeyValue("tid", tid);
  w.KeyValue("ts", ts_us);
  w.KeyValue("dur", dur_us);
  w.EndObject();
}

namespace {

double ToMicros(double cycles, double clock_ghz) {
  return TraceEventMicros(cycles, clock_ghz);
}

void MetadataEvent(JsonWriter& w, const char* name, int pid,
                   const char* value) {
  WriteTraceMetadataEvent(w, name, pid, 0, value);
}

void CounterEvent(JsonWriter& w, const char* name, int pid, double ts_us,
                  const std::vector<std::pair<const char*, double>>& args) {
  WriteTraceCounterEvent(w, name, pid, 0, ts_us, args);
}

}  // namespace

std::string TimelineToJson(const TimelineOptions& options,
                           const mcsim::WindowReport& report,
                           const TimelineRecorder* recorder) {
  // Spans carry cumulative machine time; shift them so the earliest
  // recorded event lands at t=0, like the (window-relative) counter
  // buckets.
  double span_origin = 0.0;
  bool have_span = false;
  if (recorder != nullptr) {
    for (int c = 0; c < recorder->num_cores(); ++c) {
      for (const TimelineEvent& e : recorder->events(c)) {
        if (!have_span || e.t0 < span_origin) span_origin = e.t0;
        have_span = true;
      }
      for (const AttemptEvent& e : recorder->attempts(c)) {
        if (!have_span || e.t0 < span_origin) span_origin = e.t0;
        have_span = true;
      }
    }
  }

  // One trace-event "process" per core that has spans, retry attempts
  // or samples.
  std::set<int> cores;
  std::set<int> retry_cores;
  if (recorder != nullptr) {
    for (int c = 0; c < recorder->num_cores(); ++c) {
      if (!recorder->events(c).empty()) cores.insert(c);
      if (!recorder->attempts(c).empty()) {
        cores.insert(c);
        retry_cores.insert(c);
      }
    }
  }
  for (const mcsim::CoreSeries& series : report.timeseries) {
    cores.insert(series.core);
  }

  JsonWriter w;
  w.BeginObject();
  w.KeyValue("displayTimeUnit", "ms");
  w.Key("metadata");
  w.BeginObject();
  w.KeyValue("tool", "imoltp_timeline");
  w.KeyValue("engine", options.engine);
  w.KeyValue("workload", options.workload);
  w.KeyValue("clock_ghz", options.clock_ghz);
  w.KeyValue("sample_every", report.sample_every);
  w.EndObject();

  w.Key("traceEvents");
  w.BeginArray();
  for (int c : cores) {
    const std::string label = "core " + std::to_string(c);
    MetadataEvent(w, "process_name", c, label.c_str());
    MetadataEvent(w, "thread_name", c, "spans");
  }
  for (int c : retry_cores) {
    w.BeginObject();
    w.KeyValue("name", "thread_name");
    w.KeyValue("ph", "M");
    w.KeyValue("pid", c);
    w.KeyValue("tid", 1);
    w.Key("args");
    w.BeginObject();
    w.KeyValue("name", "retries");
    w.EndObject();
    w.EndObject();
  }

  if (recorder != nullptr) {
    for (int c = 0; c < recorder->num_cores(); ++c) {
      for (const TimelineEvent& e : recorder->events(c)) {
        WriteTraceSpanEvent(
            w, SpanKindName(e.kind), "span", c, 0,
            ToMicros(e.t0 - span_origin, options.clock_ghz),
            ToMicros(e.t1 - e.t0, options.clock_ghz));
      }
    }

    // Retry-attempt slices on the "retries" thread row, plus flow
    // arrows chaining the attempts of one logical transaction. Flow
    // binding is by enclosing slice, so each s/t/f event's timestamp
    // sits inside its attempt slice ("f" binds to the enclosing end
    // via bp:"e").
    std::map<uint64_t, std::vector<std::pair<int, AttemptEvent>>> flows;
    for (int c = 0; c < recorder->num_cores(); ++c) {
      for (const AttemptEvent& e : recorder->attempts(c)) {
        const std::string name =
            "attempt " + std::to_string(e.attempt);
        w.BeginObject();
        w.KeyValue("name", name);
        w.KeyValue("cat", "retry");
        w.KeyValue("ph", "X");
        w.KeyValue("pid", c);
        w.KeyValue("tid", 1);
        w.KeyValue("ts", ToMicros(e.t0 - span_origin, options.clock_ghz));
        w.KeyValue("dur", ToMicros(e.t1 - e.t0, options.clock_ghz));
        w.Key("args");
        w.BeginObject();
        w.KeyValue("flow", e.flow_id);
        w.KeyValue("committed", e.committed);
        w.EndObject();
        w.EndObject();
        flows[e.flow_id].emplace_back(c, e);
      }
    }
    for (auto& [flow_id, attempts] : flows) {
      std::sort(attempts.begin(), attempts.end(),
                [](const auto& a, const auto& b) {
                  return a.second.attempt < b.second.attempt;
                });
      for (size_t i = 0; i < attempts.size(); ++i) {
        const int c = attempts[i].first;
        const AttemptEvent& e = attempts[i].second;
        const bool last = i + 1 == attempts.size();
        const char* ph = i == 0 ? "s" : (last ? "f" : "t");
        w.BeginObject();
        w.KeyValue("name", "txn retry");
        w.KeyValue("cat", "retry");
        w.KeyValue("ph", ph);
        w.KeyValue("id", flow_id);
        w.KeyValue("pid", c);
        w.KeyValue("tid", 1);
        const double ts = last ? e.t1 : e.t0;
        w.KeyValue("ts", ToMicros(ts - span_origin, options.clock_ghz));
        if (last) w.KeyValue("bp", "e");
        w.EndObject();
      }
    }
  }

  for (const mcsim::CoreSeries& series : report.timeseries) {
    for (const mcsim::SeriesBucket& b : series.buckets) {
      const double ts = ToMicros(b.t0, options.clock_ghz);
      CounterEvent(w, "ipc", series.core, ts, {{"ipc", b.ipc}});
      const auto& s = b.stalls_per_kinstr.stalls;
      CounterEvent(w, "stalls/kinstr", series.core, ts,
                   {{"L1I", s[0]},
                    {"L2I", s[1]},
                    {"LLC I", s[2]},
                    {"L1D", s[3]},
                    {"L2D", s[4]},
                    {"LLC D", s[5]}});
      CounterEvent(w, "abort_rate", series.core, ts,
                   {{"abort_rate", b.abort_rate}});
      // One counter track per sampled code module (opt-in via
      // SamplerConfig::per_module — see mcsim/sampler.h).
      const size_t mods = std::min(report.sampled_module_names.size(),
                                   b.module_cycles.size());
      for (size_t m = 0; m < mods; ++m) {
        const std::string name =
            "mod:" + report.sampled_module_names[m];
        CounterEvent(w, name.c_str(), series.core, ts,
                     {{"cycles", b.module_cycles[m]}});
      }
    }
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status ValidateTimelineJson(std::string_view json, uint64_t* span_events,
                            uint64_t* counter_events,
                            uint64_t* flow_events) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("timeline: root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument(
        "timeline: missing traceEvents array");
  }
  uint64_t spans = 0;
  uint64_t counters = 0;
  uint64_t flows = 0;
  for (const JsonValue& e : events->array) {
    if (!e.is_object()) {
      return Status::InvalidArgument(
          "timeline: traceEvents entry is not an object");
    }
    const JsonValue* ph = e.Find("ph");
    const JsonValue* name = e.Find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr ||
        !name->is_string()) {
      return Status::InvalidArgument(
          "timeline: event missing ph/name strings");
    }
    if (ph->string == "X" || ph->string == "C") {
      const JsonValue* ts = e.Find("ts");
      if (ts == nullptr || !ts->is_number()) {
        return Status::InvalidArgument(
            "timeline: " + ph->string + " event missing numeric ts");
      }
      if (ph->string == "X") {
        const JsonValue* dur = e.Find("dur");
        if (dur == nullptr || !dur->is_number()) {
          return Status::InvalidArgument(
              "timeline: X event missing numeric dur");
        }
        ++spans;
      } else {
        const JsonValue* args = e.Find("args");
        if (args == nullptr || !args->is_object()) {
          return Status::InvalidArgument(
              "timeline: C event missing args object");
        }
        ++counters;
      }
    } else if (ph->string == "s" || ph->string == "t" ||
               ph->string == "f") {
      const JsonValue* ts = e.Find("ts");
      const JsonValue* id = e.Find("id");
      if (ts == nullptr || !ts->is_number() || id == nullptr ||
          !id->is_number()) {
        return Status::InvalidArgument(
            "timeline: flow event missing numeric ts/id");
      }
      ++flows;
    }
  }
  if (span_events != nullptr) *span_events = spans;
  if (counter_events != nullptr) *counter_events = counters;
  if (flow_events != nullptr) *flow_events = flows;
  return Status::Ok();
}

}  // namespace imoltp::obs
