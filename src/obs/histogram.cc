#include "obs/histogram.h"

#include <cmath>

namespace imoltp::obs {

int LatencyHistogram::BinIndex(double cycles) {
  if (!(cycles > 1.0)) return 0;  // also catches NaN
  const int idx =
      static_cast<int>(std::log2(cycles) * kBinsPerOctave);
  return idx >= kNumBins ? kNumBins - 1 : idx;
}

double LatencyHistogram::BinLowerBound(int i) {
  if (i <= 0) return 0.0;
  return std::exp2(static_cast<double>(i) / kBinsPerOctave);
}

double LatencyHistogram::BinUpperBound(int i) {
  return std::exp2(static_cast<double>(i + 1) / kBinsPerOctave);
}

void LatencyHistogram::Add(double cycles) {
  if (cycles < 0.0) cycles = 0.0;
  ++bins_[BinIndex(cycles)];
  ++count_;
  sum_ += cycles;
  if (count_ == 1 || cycles < min_) min_ = cycles;
  if (cycles > max_) max_ = cycles;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBins; ++i) bins_[i] += other.bins_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank of the requested sample (1-based, nearest-rank convention).
  const double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBins; ++i) {
    if (bins_[i] == 0) continue;
    const uint64_t next = cumulative + bins_[i];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation by rank within the bin's cycle range.
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(bins_[i]);
      const double lo = BinLowerBound(i);
      const double hi = BinUpperBound(i);
      double v = lo + frac * (hi - lo);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    cumulative = next;
  }
  return max_;
}

}  // namespace imoltp::obs
