#include "obs/host_metrics.h"

#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace imoltp::obs {

double MonotonicSeconds() {
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void HostPerfToJson(JsonWriter& w, const HostPerf& perf) {
  w.BeginObject();
  w.KeyValue("parallel_mode", perf.parallel_mode);
  w.Key("phase_seconds");
  w.BeginObject();
  w.KeyValue("populate", perf.populate_seconds);
  w.KeyValue("warmup", perf.warmup_seconds);
  w.KeyValue("measure", perf.measure_seconds);
  w.KeyValue("total", perf.populate_seconds + perf.warmup_seconds +
                          perf.measure_seconds);
  w.EndObject();
  w.Key("measure");
  w.BeginObject();
  w.KeyValue("simulated_refs", perf.simulated_refs);
  w.KeyValue("refs_per_sec", perf.refs_per_second);
  w.KeyValue("simulated_instructions", perf.simulated_instructions);
  w.KeyValue("instructions_per_sec", perf.instructions_per_second);
  w.KeyValue("committed_txns_per_sec", perf.txns_per_second);
  w.EndObject();
  w.KeyValue("peak_rss_bytes", perf.peak_rss_bytes);
  w.Key("workers");
  w.BeginArray();
  for (const WorkerHostUtilization& u : perf.workers) {
    w.BeginObject();
    w.KeyValue("worker", u.worker);
    w.KeyValue("cpu_seconds", u.cpu_seconds);
    w.KeyValue("utilization", u.utilization);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace imoltp::obs
