#include "obs/span.h"

#include "obs/timeline.h"

namespace imoltp::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIndexProbe: return "index-probe";
    case SpanKind::kLockAcquire: return "lock-acquire";
    case SpanKind::kLogAppend: return "log-append";
    case SpanKind::kStorageAccess: return "storage-access";
  }
  return "?";
}

void SpanCollector::Reset() {
  for (Lane& lane : lanes_) {
    lane.stats = {};
    lane.depth = 0;
  }
  if (recorder_ != nullptr) recorder_->Reset();
}

ScopedSpan::ScopedSpan(SpanCollector* collector, mcsim::CoreSim* core,
                       SpanKind kind)
    : collector_(collector), core_(core), kind_(kind) {
  active_ = collector_ != nullptr && core_->enabled() &&
            collector_->lane_for(core_).depth == 0;
  if (!active_) return;
  ++collector_->lane_for(core_).depth;
  start_ = mcsim::AggregateCounters(core_->counters());
  if (collector_->recorder_ != nullptr) {
    start_model_cycles_ =
        mcsim::SimulatedCycles(start_, *collector_->params_);
  }
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanCollector::Lane& lane = collector_->lane_for(core_);
  --lane.depth;
  const mcsim::ModuleCounters delta =
      mcsim::AggregateCounters(core_->counters()) - start_;
  SpanStats& stats = lane.stats[static_cast<int>(kind_)];
  const double cycles = mcsim::SimulatedCycles(delta, *collector_->params_);
  stats.cycles += cycles;
  ++stats.count;
  if (collector_->recorder_ != nullptr) {
    collector_->recorder_->Record(core_->core_id(), kind_,
                                  start_model_cycles_,
                                  start_model_cycles_ + cycles);
  }
}

}  // namespace imoltp::obs
