#ifndef IMOLTP_OBS_HOST_METRICS_H_
#define IMOLTP_OBS_HOST_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace imoltp::obs {

/// Host-side performance self-observability (docs/OBSERVABILITY.md,
/// "Host metrics"). Everything in this header measures the *simulator
/// process* — wall-clock, host CPU, resident memory — never the
/// simulated machine. Host numbers are inherently non-deterministic, so
/// they are segregated into the report's `host` section, which
/// imoltp_diff ignores entirely and no determinism fingerprint covers.

/// Monotonic wall-clock seconds (CLOCK_MONOTONIC-backed; never jumps on
/// NTP adjustment, so phase deltas are trustworthy).
double MonotonicSeconds();

/// CPU seconds consumed by the calling host thread so far
/// (CLOCK_THREAD_CPUTIME_ID; 0.0 where unsupported).
double ThreadCpuSeconds();

/// Peak resident set size of the process in bytes (ru_maxrss; 0 where
/// unsupported). Monotonic over the process lifetime — per-phase deltas
/// are meaningless, only the high-water mark is reported.
uint64_t PeakRssBytes();

/// Scoped monotonic timer: adds the elapsed wall seconds to `*sink` on
/// destruction. Accumulating (+=) so repeated phases of the same kind
/// (e.g. one warm-up per Run call) sum naturally.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(MonotonicSeconds()) {}
  ~PhaseTimer() {
    if (sink_ != nullptr) *sink_ += MonotonicSeconds() - start_;
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  double start_;
};

/// Host CPU consumption of one worker's host thread across the
/// measurement window. Only the threaded parallel modes produce these
/// (kSerial multiplexes every worker onto the calling thread, so
/// per-worker attribution would be fiction).
struct WorkerHostUtilization {
  int worker = -1;
  double cpu_seconds = 0.0;
  /// cpu_seconds / measurement wall seconds — ~1.0 for a busy free-
  /// running worker, well below 1.0 for turnstile-stepped threads that
  /// spend most of their time parked on the condition variable.
  double utilization = 0.0;
};

/// The host-side profile of one measured run: per-phase wall-clock,
/// simulator throughput (simulated cache references and retired
/// instructions per host second), peak RSS, and per-worker host-thread
/// utilization. Filled by ExperimentRunner, serialized as the schema v5
/// `host` section.
struct HostPerf {
  std::string parallel_mode;  // serial|deterministic|free (effective)

  double populate_seconds = 0.0;  // Create(): populate + cache build
  double warmup_seconds = 0.0;    // all warm-up phases so far
  double measure_seconds = 0.0;   // most recent measurement window

  /// Simulated work of the most recent measurement window, summed over
  /// every core: references = code-line fetches + data accesses (the
  /// unit the raw-speed ROADMAP item ratchets), instructions = retired
  /// instruction count.
  uint64_t simulated_refs = 0;
  uint64_t simulated_instructions = 0;
  double refs_per_second = 0.0;
  double instructions_per_second = 0.0;
  /// Committed transactions of the window per host second.
  double txns_per_second = 0.0;

  uint64_t peak_rss_bytes = 0;

  /// One entry per worker host thread (threaded modes only; empty under
  /// kSerial).
  std::vector<WorkerHostUtilization> workers;
};

/// Serializes `perf` as the `host` JSON object into `w`.
void HostPerfToJson(JsonWriter& w, const HostPerf& perf);

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_HOST_METRICS_H_
