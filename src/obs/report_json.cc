#include "obs/report_json.h"

#include <cstdio>

namespace imoltp::obs {

CycleAccounting ComputeCycleAccounting(
    const mcsim::WindowReport& report,
    const mcsim::CycleModelParams& params) {
  CycleAccounting acc;
  const double workers =
      report.num_workers > 0 ? report.num_workers : 1;
  const mcsim::LevelMisses& m = report.misses;  // summed over workers
  acc.frontend =
      (static_cast<double>(m.l1i) * params.l1_miss_penalty +
       static_cast<double>(m.l2i) * params.l2_miss_penalty +
       static_cast<double>(m.llc_i) * params.llc_miss_penalty) *
      params.frontend_amplification / workers;
  acc.memory =
      (static_cast<double>(m.l1d) * params.l1_miss_penalty *
           params.data_amp_l1 +
       static_cast<double>(m.l2d) * params.l2_miss_penalty *
           params.data_amp_l2 +
       static_cast<double>(m.llc_d) * params.llc_miss_penalty *
           mcsim::EffectiveLlcAmp(
               m.llc_d,
               static_cast<uint64_t>(report.instructions * workers),
               params)) /
          workers +
      report.tlb_misses * params.tlb_walk_cycles;
  acc.bad_speculation = report.mispredictions * params.mispredict_penalty;
  acc.retiring = report.base_cycles;
  return acc;
}

namespace {

void StallsToJson(JsonWriter& w, const mcsim::StallBreakdown& b) {
  w.BeginObject();
  for (int i = 0; i < 6; ++i) {
    w.KeyValue(mcsim::StallBreakdown::kNames[i], b.stalls[i]);
  }
  w.KeyValue("total", b.total());
  w.EndObject();
}

void HistogramToJson(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.KeyValue("count", h.count());
  w.KeyValue("mean", h.mean());
  w.KeyValue("min", h.min());
  w.KeyValue("p50", h.p50());
  w.KeyValue("p90", h.p90());
  w.KeyValue("p99", h.p99());
  w.KeyValue("max", h.max());
  w.Key("bins");
  w.BeginArray();
  for (int i = 0; i < LatencyHistogram::kNumBins; ++i) {
    if (h.bins()[i] == 0) continue;
    w.BeginObject();
    w.KeyValue("lo", LatencyHistogram::BinLowerBound(i));
    w.KeyValue("hi", LatencyHistogram::BinUpperBound(i));
    w.KeyValue("count", h.bins()[i]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void SpansToJson(JsonWriter& w, const SpanCollector& spans,
                 double window_cycles_total) {
  w.BeginObject();
  for (int i = 0; i < kNumSpanKinds; ++i) {
    const SpanKind kind = static_cast<SpanKind>(i);
    const SpanStats& s = spans.stats(kind);
    w.Key(SpanKindName(kind));
    w.BeginObject();
    w.KeyValue("cycles", s.cycles);
    w.KeyValue("count", s.count);
    w.KeyValue("fraction_of_window",
               window_cycles_total > 0 ? s.cycles / window_cycles_total
                                       : 0.0);
    w.EndObject();
  }
  w.KeyValue("total_cycles", spans.total_cycles());
  w.EndObject();
}

void RobustnessToJson(JsonWriter& w, const RobustnessInfo& r) {
  w.BeginObject();
  w.Key("aborts");
  w.BeginObject();
  w.KeyValue("total", r.aborts.total);
  w.KeyValue("lock_conflict", r.aborts.lock_conflict);
  w.KeyValue("validation", r.aborts.validation);
  w.KeyValue("partition", r.aborts.partition);
  w.KeyValue("injected_fault", r.aborts.injected_fault);
  w.KeyValue("other", r.aborts.other);
  w.EndObject();
  w.KeyValue("committed", r.committed);
  w.Key("retry");
  w.BeginObject();
  w.KeyValue("max_attempts", r.retry_max_attempts);
  w.KeyValue("retries", r.retries);
  w.KeyValue("successes", r.retry_successes);
  w.KeyValue("rejections", r.retry_rejections);
  w.EndObject();
  w.Key("faults");
  w.BeginObject();
  w.KeyValue("enabled", r.faults_enabled);
  w.KeyValue("seed", r.fault_seed);
  w.KeyValue("crash_point", r.crash_point);
  w.Key("points");
  w.BeginObject();
  for (const fault::FaultPointStats& p : r.fault_points) {
    w.Key(p.point);
    w.BeginObject();
    w.KeyValue("hits", p.hits);
    w.KeyValue("fires", p.fires);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
}

void RecoveryToJson(JsonWriter& w, const RecoveryInfo& r) {
  w.BeginObject();
  w.Key("checkpoint");
  w.BeginObject();
  w.KeyValue("enabled", r.checkpoint_enabled);
  w.KeyValue("every_n_ticks", r.checkpoint_every_n_ticks);
  w.KeyValue("pages_per_step", r.checkpoint_pages_per_step);
  w.KeyValue("retain", r.checkpoint_retain);
  w.KeyValue("begun", r.checkpoint.begun);
  w.KeyValue("completed", r.checkpoint.completed);
  w.KeyValue("captured_pages", r.checkpoint.captured_pages);
  w.KeyValue("captured_bytes", r.checkpoint.captured_bytes);
  w.KeyValue("truncations", r.checkpoint.truncations);
  w.KeyValue("truncated_records", r.checkpoint.truncated_records);
  w.EndObject();
  w.KeyValue("log_truncation_lsn", r.log_truncation_lsn);
  w.KeyValue("appended_log_records", r.appended_log_records);
  w.KeyValue("recovered", r.recovered);
  if (r.recovered) {
    w.Key("stats");
    w.BeginObject();
    w.KeyValue("checkpoints_available", r.recovery.checkpoints_available);
    w.KeyValue("checkpoints_discarded", r.recovery.checkpoints_discarded);
    w.KeyValue("torn_pages", r.recovery.torn_pages);
    w.KeyValue("used_checkpoint", r.recovery.used_checkpoint);
    w.KeyValue("checkpoint_id", r.recovery.checkpoint_id);
    w.KeyValue("restored_pages", r.recovery.restored_pages);
    w.KeyValue("restored_bytes", r.recovery.restored_bytes);
    w.KeyValue("journal_entries", r.recovery.journal_entries);
    w.KeyValue("replayed_records", r.recovery.replayed_records);
    w.KeyValue("undone_records", r.recovery.undone_records);
    w.KeyValue("truncation_lsn", r.recovery.truncation_lsn);
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace

void WindowReportToJson(JsonWriter& w, const mcsim::WindowReport& report,
                        const mcsim::CycleModelParams& params) {
  w.BeginObject();
  w.KeyValue("num_workers", report.num_workers);
  w.KeyValue("instructions", report.instructions);
  w.KeyValue("cycles", report.cycles);
  w.KeyValue("transactions", report.transactions);
  w.KeyValue("mispredictions", report.mispredictions);
  w.KeyValue("base_cycles", report.base_cycles);
  w.KeyValue("tlb_misses", report.tlb_misses);
  w.KeyValue("ipc", report.ipc);
  w.KeyValue("instructions_per_txn", report.instructions_per_txn);
  w.KeyValue("cycles_per_txn", report.cycles_per_txn);

  w.Key("misses");
  w.BeginObject();
  w.KeyValue("l1i", report.misses.l1i);
  w.KeyValue("l2i", report.misses.l2i);
  w.KeyValue("llc_i", report.misses.llc_i);
  w.KeyValue("l1d", report.misses.l1d);
  w.KeyValue("l2d", report.misses.l2d);
  w.KeyValue("llc_d", report.misses.llc_d);
  w.EndObject();

  w.Key("stalls_per_kinstr");
  StallsToJson(w, report.stalls_per_kinstr);
  w.Key("stalls_per_txn");
  StallsToJson(w, report.stalls_per_txn);

  w.KeyValue("engine_cycle_fraction", report.engine_cycle_fraction);
  w.Key("module_breakdown");
  w.BeginObject();
  for (const mcsim::ModuleShare& share : report.module_breakdown) {
    w.Key(share.name);
    w.BeginObject();
    w.KeyValue("inside_engine", share.inside_engine);
    w.KeyValue("cycles", share.cycles);
    w.KeyValue("fraction", share.fraction);
    w.EndObject();
  }
  w.EndObject();

  w.Key("txn_module_breakdown");
  w.BeginObject();
  for (const mcsim::TxnTypeShare& row : report.txn_module_matrix) {
    w.Key(row.txn_type);
    w.BeginObject();
    w.KeyValue("count", row.count);
    w.KeyValue("cycles", row.cycles);
    w.KeyValue("fraction", row.fraction);
    w.Key("modules");
    w.BeginObject();
    for (const mcsim::ModuleShare& share : row.modules) {
      w.Key(share.name);
      w.BeginObject();
      w.KeyValue("inside_engine", share.inside_engine);
      w.KeyValue("cycles", share.cycles);
      w.KeyValue("fraction", share.fraction);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();

  const CycleAccounting acc = ComputeCycleAccounting(report, params);
  w.Key("cycle_accounting");
  w.BeginObject();
  w.KeyValue("retiring", acc.retiring);
  w.KeyValue("frontend", acc.frontend);
  w.KeyValue("memory", acc.memory);
  w.KeyValue("bad_speculation", acc.bad_speculation);
  const double total = acc.total();
  w.KeyValue("retiring_fraction",
             total > 0 ? acc.retiring / total : 0.0);
  w.KeyValue("frontend_fraction",
             total > 0 ? acc.frontend / total : 0.0);
  w.KeyValue("memory_fraction", total > 0 ? acc.memory / total : 0.0);
  w.KeyValue("bad_speculation_fraction",
             total > 0 ? acc.bad_speculation / total : 0.0);
  w.EndObject();

  w.EndObject();
}

std::string RunReportToJson(const RunInfo& info,
                            const mcsim::WindowReport& report,
                            const mcsim::CycleModelParams& params,
                            const LatencyHistogram* latency,
                            const SpanCollector* spans,
                            const RobustnessInfo* robustness,
                            const HostPerf* host,
                            const RecoveryInfo* recovery) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version", kReportSchemaVersion);

  w.Key("meta");
  w.BeginObject();
  w.KeyValue("engine", info.engine);
  w.KeyValue("workload", info.workload);
  w.KeyValue("db_bytes", info.db_bytes);
  w.KeyValue("rows", info.rows);
  w.KeyValue("warehouses", info.warehouses);
  w.KeyValue("workers", info.workers);
  w.KeyValue("warmup_txns", info.warmup_txns);
  w.KeyValue("measure_txns", info.measure_txns);
  w.KeyValue("seed", info.seed);
  w.KeyValue("aborts", info.aborts);
  w.Key("trace");
  w.BeginObject();
  w.KeyValue("file_id", info.trace_file_id);
  w.KeyValue("replayed", info.replayed);
  w.EndObject();
  w.EndObject();

  w.Key("window");
  WindowReportToJson(w, report, params);

  // Sampled time-series (schema v4): absent when sampling was off, so
  // unsampled reports — goldens included — are byte-for-byte what v3
  // produced plus the empty txn_module_breakdown.
  if (report.sample_every > 0) {
    w.Key("timeseries");
    w.BeginObject();
    w.KeyValue("sample_every", report.sample_every);
    w.Key("convergence");
    w.BeginObject();
    w.KeyValue("checked", report.convergence.checked);
    w.KeyValue("first_half_ipc", report.convergence.first_half_ipc);
    w.KeyValue("second_half_ipc", report.convergence.second_half_ipc);
    w.KeyValue("divergence", report.convergence.divergence);
    w.KeyValue("tolerance", report.convergence.tolerance);
    w.KeyValue("converged", report.convergence.converged);
    w.EndObject();
    // Per-module series (schema v5): names for every bucket's
    // module_cycles entries. Absent unless the sampler ran per-module.
    if (!report.sampled_module_names.empty()) {
      w.Key("sampled_modules");
      w.BeginArray();
      for (const std::string& name : report.sampled_module_names) {
        w.Value(name);
      }
      w.EndArray();
    }
    w.Key("cores");
    w.BeginArray();
    for (const mcsim::CoreSeries& series : report.timeseries) {
      w.BeginObject();
      w.KeyValue("core", series.core);
      w.KeyValue("dropped", series.dropped);
      w.Key("buckets");
      w.BeginArray();
      for (const mcsim::SeriesBucket& b : series.buckets) {
        w.BeginObject();
        w.KeyValue("t0", b.t0);
        w.KeyValue("t1", b.t1);
        w.KeyValue("instructions", b.instructions);
        w.KeyValue("transactions", b.transactions);
        w.KeyValue("aborted_txns", b.aborted_txns);
        w.KeyValue("mispredictions", b.mispredictions);
        w.KeyValue("tlb_misses", b.tlb_misses);
        w.KeyValue("model_cycles", b.model_cycles);
        w.KeyValue("ipc", b.ipc);
        w.KeyValue("stalls_per_kinstr", b.stalls_per_kinstr.total());
        w.KeyValue("abort_rate", b.abort_rate);
        if (!b.module_cycles.empty()) {
          w.Key("module_cycles");
          w.BeginArray();
          for (double cycles : b.module_cycles) w.Value(cycles);
          w.EndArray();
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  if (latency != nullptr) {
    w.Key("latency_cycles");
    HistogramToJson(w, *latency);
  }
  if (spans != nullptr) {
    // Window cycles are per-worker averages; spans accumulate over all
    // workers, so scale to the window's total for the fraction.
    const double window_total =
        report.cycles * (report.num_workers > 0 ? report.num_workers : 1);
    w.Key("spans");
    SpansToJson(w, *spans, window_total);
  }
  if (robustness != nullptr) {
    w.Key("robustness");
    RobustnessToJson(w, *robustness);
  }

  // Checkpoint / recovery accounting (schema v7). Deterministic in
  // serialized modes, so imoltp_diff compares it exactly. Absent unless
  // checkpointing was enabled.
  if (recovery != nullptr) {
    w.Key("recovery");
    RecoveryToJson(w, *recovery);
  }

  // Host-side self-observability (schema v5). Inherently
  // non-deterministic — imoltp_diff ignores this whole subtree, and no
  // determinism fingerprint covers it. Absent on replays.
  if (host != nullptr) {
    w.Key("host");
    HostPerfToJson(w, *host);
  }

  w.EndObject();
  return w.TakeString();
}

Status WriteJsonFile(const std::string& path, const std::string& json) {
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return Status::Ok();
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0 || written != json.size()) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace imoltp::obs
