#ifndef IMOLTP_OBS_SPAN_H_
#define IMOLTP_OBS_SPAN_H_

#include <array>
#include <cstdint>
#include <vector>

#include "mcsim/core.h"
#include "mcsim/counters.h"

namespace imoltp::obs {

/// Transaction lifecycle phases. These cut across the static code-module
/// breakdown (ModuleRegistry): a span covers everything a phase executes
/// — engine code regions AND the index/storage substrate work inside
/// them — so engines can attribute cycles to *what the transaction was
/// doing*, not just *whose code was running*.
enum class SpanKind : int {
  kIndexProbe = 0,   // index lookup / insert / remove / scan
  kLockAcquire = 1,  // lock-manager or partition-guard traffic
  kLogAppend = 2,    // WAL / command-log serialization and append
  kStorageAccess = 3,  // heap / buffer-pool / version-store row access
};
inline constexpr int kNumSpanKinds = 4;

const char* SpanKindName(SpanKind kind);

class TimelineRecorder;

struct SpanStats {
  double cycles = 0.0;
  uint64_t count = 0;
};

/// Per-engine accumulator of span-attributed simulated cycles.
///
/// Accumulation is striped into one lane per simulated core (a span only
/// ever touches the lane of the core it measures), so worker threads in
/// free-running parallel mode never share accumulator state. Readers
/// (`stats()`, `total_cycles()`) sum the lanes; call them only while no
/// worker threads are running. Spans never nest effectively: an inner
/// ScopedSpan opened while another is active on the same core records
/// nothing, so summed span cycles never double-count and stay
/// reconcilable with the profiler's window total.
class SpanCollector {
 public:
  explicit SpanCollector(const mcsim::CycleModelParams* params,
                         int num_cores = 1)
      : params_(params),
        lanes_(num_cores > 0 ? static_cast<size_t>(num_cores) : 1) {}

  /// Zeroes every lane; also clears an attached TimelineRecorder, so a
  /// window-start Reset leaves the timeline covering exactly the
  /// window.
  void Reset();

  /// Sum of all lanes for `kind` (call from the coordinating thread).
  SpanStats stats(SpanKind kind) const {
    SpanStats total;
    for (const Lane& lane : lanes_) {
      total.cycles += lane.stats[static_cast<int>(kind)].cycles;
      total.count += lane.stats[static_cast<int>(kind)].count;
    }
    return total;
  }

  double total_cycles() const {
    double total = 0.0;
    for (const Lane& lane : lanes_) {
      for (const SpanStats& s : lane.stats) total += s.cycles;
    }
    return total;
  }

  const mcsim::CycleModelParams& params() const { return *params_; }

  /// Attaches a per-core interval recorder (nullptr detaches): every
  /// effective span additionally logs its [start, end) model-cycle
  /// interval for the Perfetto timeline export (obs/timeline.h). Off
  /// by default — the hot path then pays only a null check.
  void set_recorder(TimelineRecorder* recorder) { recorder_ = recorder; }
  TimelineRecorder* recorder() const { return recorder_; }

 private:
  friend class ScopedSpan;

  // Cache-line aligned so adjacent lanes never false-share under
  // free-running parallel execution.
  struct alignas(64) Lane {
    std::array<SpanStats, kNumSpanKinds> stats{};
    int depth = 0;
  };

  Lane& lane_for(const mcsim::CoreSim* core) {
    const size_t id = static_cast<size_t>(core->core_id());
    return lanes_[id < lanes_.size() ? id : 0];
  }

  const mcsim::CycleModelParams* params_;
  std::vector<Lane> lanes_;
  TimelineRecorder* recorder_ = nullptr;
};

/// RAII phase marker. Snapshots the core's aggregate counters on entry
/// and charges the simulated-cycle delta to `kind` on exit. No-op when
/// the core's simulation is disabled (bulk load) or a span is already
/// open on this core's lane.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, mcsim::CoreSim* core,
             SpanKind kind);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector* collector_;
  mcsim::CoreSim* core_;
  SpanKind kind_;
  bool active_;
  mcsim::ModuleCounters start_;
  double start_model_cycles_ = 0.0;  // only set while a recorder is on
};

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_SPAN_H_
