#ifndef IMOLTP_OBS_SPAN_H_
#define IMOLTP_OBS_SPAN_H_

#include <array>
#include <cstdint>

#include "mcsim/core.h"
#include "mcsim/counters.h"

namespace imoltp::obs {

/// Transaction lifecycle phases. These cut across the static code-module
/// breakdown (ModuleRegistry): a span covers everything a phase executes
/// — engine code regions AND the index/storage substrate work inside
/// them — so engines can attribute cycles to *what the transaction was
/// doing*, not just *whose code was running*.
enum class SpanKind : int {
  kIndexProbe = 0,   // index lookup / insert / remove / scan
  kLockAcquire = 1,  // lock-manager or partition-guard traffic
  kLogAppend = 2,    // WAL / command-log serialization and append
  kStorageAccess = 3,  // heap / buffer-pool / version-store row access
};
inline constexpr int kNumSpanKinds = 4;

const char* SpanKindName(SpanKind kind);

struct SpanStats {
  double cycles = 0.0;
  uint64_t count = 0;
};

/// Per-engine accumulator of span-attributed simulated cycles. The
/// simulator is single-threaded (workers interleave at transaction
/// granularity), so one collector per engine needs no synchronization.
/// Spans never nest effectively: an inner ScopedSpan opened while
/// another is active records nothing, so summed span cycles never
/// double-count and stay reconcilable with the profiler's window total.
class SpanCollector {
 public:
  explicit SpanCollector(const mcsim::CycleModelParams* params)
      : params_(params) {}

  void Reset() { stats_ = {}; }

  const SpanStats& stats(SpanKind kind) const {
    return stats_[static_cast<int>(kind)];
  }

  double total_cycles() const {
    double total = 0.0;
    for (const SpanStats& s : stats_) total += s.cycles;
    return total;
  }

  const mcsim::CycleModelParams& params() const { return *params_; }

 private:
  friend class ScopedSpan;

  std::array<SpanStats, kNumSpanKinds> stats_{};
  const mcsim::CycleModelParams* params_;
  int depth_ = 0;
};

/// RAII phase marker. Snapshots the core's aggregate counters on entry
/// and charges the simulated-cycle delta to `kind` on exit. No-op when
/// the core's simulation is disabled (bulk load) or a span is already
/// open on the collector.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, mcsim::CoreSim* core,
             SpanKind kind);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector* collector_;
  mcsim::CoreSim* core_;
  SpanKind kind_;
  bool active_;
  mcsim::ModuleCounters start_;
};

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_SPAN_H_
