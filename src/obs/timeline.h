#ifndef IMOLTP_OBS_TIMELINE_H_
#define IMOLTP_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mcsim/profiler.h"
#include "obs/json.h"
#include "obs/span.h"

namespace imoltp::obs {

/// One recorded span interval on one core's timeline, in cumulative
/// simulated model cycles (machine time, not wall-clock).
struct TimelineEvent {
  SpanKind kind = SpanKind::kIndexProbe;
  double t0 = 0.0;
  double t1 = 0.0;
};

/// One execution attempt of a retried transaction, in cumulative
/// simulated model cycles. Attempts of the same logical transaction
/// share a flow_id, which the Perfetto export turns into flow arrows
/// ("s"/"t"/"f" events) linking the attempt slices — the retry story of
/// one transaction reads as a connected chain across the timeline.
struct AttemptEvent {
  uint64_t flow_id = 0;
  int attempt = 0;  // 1-based execution attempt
  bool committed = false;
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Per-core interval log behind the Perfetto timeline export.
///
/// Like SpanCollector, recording is striped into one lane per simulated
/// core (a ScopedSpan only ever appends to the lane of the core it
/// measures), so free-running worker threads never share lane state.
/// Each lane is bounded: once `capacity_per_core` events are held,
/// further events are dropped and counted — a runaway window degrades
/// to a truncated timeline, never to unbounded memory. Readers
/// (`events()`, `dropped()`) run on the coordinating thread only, after
/// the workers have joined.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(int num_cores = 1,
                            size_t capacity_per_core = 1 << 16)
      : capacity_(capacity_per_core > 0 ? capacity_per_core : 1),
        lanes_(num_cores > 0 ? static_cast<size_t>(num_cores) : 1) {}

  void Reset() {
    for (Lane& lane : lanes_) {
      lane.events.clear();
      lane.attempts.clear();
      lane.dropped = 0;
    }
  }

  void Record(int core, SpanKind kind, double t0, double t1) {
    Lane& lane = lane_for(core);
    if (lane.events.size() >= capacity_) {
      ++lane.dropped;
      return;
    }
    lane.events.push_back(TimelineEvent{kind, t0, t1});
  }

  /// Appends one retry-attempt slice to the core's lane. Same
  /// thread-confinement and bound as Record.
  void RecordAttempt(int core, const AttemptEvent& event) {
    Lane& lane = lane_for(core);
    if (lane.attempts.size() >= capacity_) {
      ++lane.dropped;
      return;
    }
    lane.attempts.push_back(event);
  }

  int num_cores() const { return static_cast<int>(lanes_.size()); }
  const std::vector<TimelineEvent>& events(int core) const {
    return lanes_[static_cast<size_t>(core)].events;
  }
  const std::vector<AttemptEvent>& attempts(int core) const {
    return lanes_[static_cast<size_t>(core)].attempts;
  }
  uint64_t dropped(int core) const {
    return lanes_[static_cast<size_t>(core)].dropped;
  }

 private:
  // Cache-line aligned so adjacent lanes never false-share under
  // free-running parallel execution.
  struct alignas(64) Lane {
    std::vector<TimelineEvent> events;
    std::vector<AttemptEvent> attempts;
    uint64_t dropped = 0;
  };

  Lane& lane_for(int core) {
    const size_t id = static_cast<size_t>(core);
    return lanes_[id < lanes_.size() ? id : 0];
  }

  size_t capacity_;
  std::vector<Lane> lanes_;
};

// ---------------------------------------------------------------------
// Shared trace-event emitters. Both timeline exporters — the
// single-machine one below and the whole-cluster one in
// src/dist/cluster_timeline.cc — speak the same Chrome trace-event
// dialect through these helpers, so the ValidateTimelineJson contract
// is enforced at one place.

/// Model cycles → trace-event microseconds at the configured clock.
inline double TraceEventMicros(double cycles, double clock_ghz) {
  const double ghz = clock_ghz > 0 ? clock_ghz : 1.0;
  return cycles / (ghz * 1000.0);
}

/// One "M" metadata event (process_name / thread_name labels).
void WriteTraceMetadataEvent(JsonWriter& w, const char* name, int pid,
                             int tid, const char* value);

/// One "C" counter event with numeric args.
void WriteTraceCounterEvent(
    JsonWriter& w, const char* name, int pid, int tid, double ts_us,
    const std::vector<std::pair<const char*, double>>& args);

/// One complete "X" span event.
void WriteTraceSpanEvent(JsonWriter& w, const char* name, const char* cat,
                         int pid, int tid, double ts_us, double dur_us);

/// Identity and clock of one exported timeline.
struct TimelineOptions {
  std::string engine;
  std::string workload;
  /// Simulated core clock used to map model cycles to trace-event
  /// microseconds (the paper's machine runs at 2 GHz).
  double clock_ghz = 2.0;
};

/// Renders one measurement window as Chrome trace-event JSON, loadable
/// by Perfetto (ui.perfetto.dev) and chrome://tracing. One "process"
/// per simulated core carries that core's lifecycle spans (complete
/// "X" events from `recorder`, may be null), retry-attempt slices on a
/// second thread row with flow arrows ("s"/"t"/"f" events sharing a
/// flow id) linking re-executions of the same transaction, and its
/// sampled counter tracks ("C" events — IPC, total stalls per
/// kilo-instruction, abort rate, plus one `mod:<name>` track per code
/// module when the sampler ran per-module). Span timestamps are
/// normalized to the earliest recorded event so the window starts near
/// t=0.
std::string TimelineToJson(const TimelineOptions& options,
                           const mcsim::WindowReport& report,
                           const TimelineRecorder* recorder);

/// Structural validation of a timeline document: parses the JSON and
/// checks the trace-event contract (a `traceEvents` array whose entries
/// carry `ph`/`name`; numeric `ts` for "X"/"C" events; an `id` for
/// flow events). Used by `imoltp_timeline validate` and CI. Returns
/// counts through the optional out-params.
Status ValidateTimelineJson(std::string_view json,
                            uint64_t* span_events = nullptr,
                            uint64_t* counter_events = nullptr,
                            uint64_t* flow_events = nullptr);

}  // namespace imoltp::obs

#endif  // IMOLTP_OBS_TIMELINE_H_
