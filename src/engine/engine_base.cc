#include "engine/engine_base.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

namespace imoltp::engine {

EngineBase::EngineBase(mcsim::MachineSim* machine,
                       const EngineOptions& options)
    : machine_(machine),
      options_(options),
      spans_(&machine->config().cycle, machine->num_cores()) {
  logs_.reserve(machine_->num_cores());
  for (int i = 0; i < machine_->num_cores(); ++i) {
    logs_.push_back(
        std::make_unique<txn::LogManager>(options_.log_buffer_bytes));
    logs_.back()->set_fault_injector(options_.fault_injector);
  }
  if (options_.checkpoint.enabled) {
    ckpt_ = std::make_unique<txn::CheckpointManager>(options_.checkpoint);
  }
}

mcsim::CodeRegion EngineBase::DefineRegion(const RegionSpec& spec) {
  const mcsim::ModuleId module =
      machine_->modules().Register(spec.module, spec.engine_side);
  return machine_->code_space().Define(
      module, spec.total_bytes, spec.touched_bytes, spec.instructions,
      spec.mispredicts_per_kinstr, spec.cpi);
}

index::Key EngineBase::DefaultKeyOf(const storage::Schema& schema,
                                    storage::RowId r, uint64_t seed) {
  (void)seed;
  if (schema.num_columns() > 0 &&
      schema.column_type(0) == storage::ColumnType::kString) {
    // String tables key on the generated column-0 contents.
    uint8_t buf[256];
    storage::DefaultRowGenerator(schema, r, seed, buf);
    return index::Key::FromBytes(buf, storage::kStringBytes);
  }
  return index::Key::FromUint64(r);
}

index::Key EngineBase::KeyForRow(const TableDef& def, storage::RowId r) {
  if (def.key_of != nullptr) return def.key_of(def.schema, r, def.seed);
  return DefaultKeyOf(def.schema, r, def.seed);
}

index::IndexKind EngineBase::PrimaryIndexKind(const TableDef& def) const {
  index::IndexKind kind = default_index_kind(def);
  if (def.needs_ordered_index && kind == index::IndexKind::kHash) {
    kind = index::IndexKind::kBTreeCc;  // DBMS M's ordered alternative
  }
  return kind;
}

Status EngineBase::CreateDatabase(const std::vector<TableDef>& defs) {
  // Populate with simulation off: the paper attaches the profiler only
  // after loading and warm-up (Section 3, "Measurements").
  machine_->SetEnabled(false);
  mcsim::CoreSim* core = &machine_->core(0);

  if (disk_based() && bufferpool_ == nullptr) {
    bufferpool_ = std::make_unique<storage::BufferPool>(
        options_.bufferpool_frames, 8192);
  }

  const int slices = num_slices();
  tables_.clear();
  tables_.reserve(defs.size());

  for (const TableDef& def : defs) {
    TableRt rt;
    rt.def = def;
    rt.slices.resize(slices);
    for (int p = 0; p < slices; ++p) {
      Slice& slice = rt.slices[p];
      uint64_t lo = def.initial_rows * p / slices;
      uint64_t hi = def.initial_rows * (p + 1) / slices;
      if (def.replicated) {  // full copy on every partition
        lo = 0;
        hi = def.initial_rows;
      }
      slice.first_global_row = lo;
      slice.num_initial_rows = hi - lo;
      if (!def.no_primary_index) {
        slice.primary =
            index::CreateIndex(PrimaryIndexKind(def), def.key_bytes);
      }
      // Secondary indexes are ordered: promote a hash default.
      index::IndexKind sec_kind = default_index_kind(def);
      if (sec_kind == index::IndexKind::kHash) {
        sec_kind = index::IndexKind::kBTreeCc;
      }
      for (size_t i = 0; i < def.secondaries.size(); ++i) {
        slice.secondaries.push_back(index::CreateIndex(sec_kind, 8));
      }

      if (disk_based()) {
        slice.disk = std::make_unique<storage::DiskHeapFile>(
            bufferpool_.get(), next_file_id_++, def.schema);
        slice.rowid_of.reserve(slice.num_initial_rows);
        std::vector<uint8_t> buf(def.schema.row_bytes());
        const storage::RowGenerator gen =
            def.generator ? def.generator : storage::DefaultRowGenerator;
        for (uint64_t r = lo; r < hi; ++r) {
          gen(def.schema, r, def.seed, buf.data());
          const storage::RowId rid = slice.disk->Append(core, buf.data());
          if (rid == storage::kInvalidRow) {
            return Status::ResourceExhausted("buffer pool full");
          }
          slice.rowid_of.push_back(rid);
          if (slice.primary != nullptr) {
            const Status s =
                slice.primary->Insert(core, KeyForRow(def, r), rid);
            if (!s.ok()) return s;
          }
          InsertSecondaries(core, rt, slice, buf.data(), rid);
        }
      } else {
        storage::TableOptions topts;
        topts.generator = def.generator;
        topts.generator_seed = def.seed;
        topts.generator_row_offset = lo;
        if (def.nominal_bytes > 0 && def.initial_rows > 0) {
          topts.row_stride = static_cast<uint32_t>(
              def.nominal_bytes / def.initial_rows);
        }
        slice.mem = storage::CreateTable(def.name, def.schema,
                                         slice.num_initial_rows, topts);
        std::vector<uint8_t> buf(def.schema.row_bytes());
        const storage::RowGenerator gen =
            def.generator ? def.generator : storage::DefaultRowGenerator;
        for (uint64_t r = lo; r < hi; ++r) {
          if (slice.primary != nullptr) {
            const Status s =
                slice.primary->Insert(core, KeyForRow(def, r), r - lo);
            if (!s.ok()) return s;
          }
          if (!slice.secondaries.empty()) {
            gen(def.schema, r, def.seed, buf.data());
            InsertSecondaries(core, rt, slice, buf.data(), r - lo);
          }
        }
      }
    }
    tables_.push_back(std::move(rt));
  }

  if (ckpt_ != nullptr) {
    for (TableRt& rt : tables_) {
      for (Slice& slice : rt.slices) {
        slice.journal_mu = std::make_unique<std::mutex>();
        // Initial population is regenerable (CreateDatabase rebuilds
        // it deterministically): checkpoints only carry pages that
        // diverged from it.
        if (slice.disk != nullptr) slice.disk->MarkClean();
      }
    }
    if (num_slices() == 1) {
      // WAL rule for fuzzy capture: worker 0's capture thread can
      // snapshot any worker's in-place effects, and only a worker's
      // own thread may touch its log — so the log device runs
      // synchronously (see LogManager::set_force).
      for (auto& log : logs_) log->set_force(true);
    }
    journal_enabled_ = true;
  }

  machine_->SetEnabled(true);
  WarmCaches();
  OnDatabaseReady();
  return Status::Ok();
}

void EngineBase::WarmCaches() {
  // Stream every index path and row through the hierarchy once — the
  // paper runs the benchmark for 60 seconds before attaching VTune, long
  // enough for the steady-state cache contents to form. Databases that
  // fit in the LLC end up resident; larger ones end with the tail of the
  // scan resident, which random probes then evict either way.
  for (TableRt& rt : tables_) {
    for (size_t p = 0; p < rt.slices.size(); ++p) {
      Slice& slice = rt.slices[p];
      mcsim::CoreSim* core =
          &machine_->core(static_cast<int>(p) % machine_->num_cores());
      std::vector<uint8_t> buf(rt.def.schema.row_bytes());
      if (slice.primary == nullptr) continue;
      for (uint64_t r = slice.first_global_row;
           r < slice.first_global_row + slice.num_initial_rows; ++r) {
        uint64_t value = 0;
        if (!slice.primary->Lookup(core, KeyForRow(rt.def, r), &value)) {
          continue;
        }
        if (slice.mem != nullptr) {
          slice.mem->ReadRow(core, value, buf.data());
        } else {
          slice.disk->Read(core, value, buf.data());
        }
      }
    }
  }
}

}  // namespace imoltp::engine

// ---------------------------------------------------------------------------
// Storage-agnostic row helpers (disk heap file vs in-memory table).
// ---------------------------------------------------------------------------

namespace imoltp::engine {

bool EngineBase::SliceRead(mcsim::CoreSim* core, Slice& slice,
                           storage::RowId row, uint8_t* out) {
  return slice.disk ? slice.disk->Read(core, row, out)
                    : slice.mem->ReadRow(core, row, out);
}

bool EngineBase::SliceWriteColumn(mcsim::CoreSim* core, Slice& slice,
                                  storage::RowId row, uint32_t column,
                                  const void* value,
                                  const storage::Schema& schema) {
  (void)schema;
  if (slice.disk) {
    return slice.disk->WriteColumn(core, row, column, value);
  }
  slice.mem->WriteColumn(core, row, column, value);
  return true;
}

void EngineBase::SliceWriteRow(mcsim::CoreSim* core, Slice& slice,
                               storage::RowId row, const uint8_t* image,
                               const storage::Schema& schema) {
  for (uint32_t c = 0; c < schema.num_columns(); ++c) {
    SliceWriteColumn(core, slice, row, c, schema.ColumnPtr(image, c),
                     schema);
  }
}

storage::RowId EngineBase::SliceAppend(mcsim::CoreSim* core, Slice& slice,
                                       const uint8_t* row) {
  return slice.disk ? slice.disk->Append(core, row)
                    : slice.mem->Append(core, row);
}

bool EngineBase::SliceDelete(mcsim::CoreSim* core, Slice& slice,
                             storage::RowId row) {
  return slice.disk ? slice.disk->Delete(core, row)
                    : slice.mem->Delete(core, row);
}

void EngineBase::SliceRestore(mcsim::CoreSim* core, Slice& slice,
                              storage::RowId row, const uint8_t* image,
                              bool present) {
  if (slice.disk != nullptr) {
    if (present) {
      slice.disk->Restore(core, row, image);
    } else {
      slice.disk->Delete(core, row);
    }
    return;
  }
  slice.mem->RestoreRow(core, row, image, present);
}

void EngineBase::JournalPrimary(Slice& slice, bool insert,
                                const index::Key& key,
                                storage::RowId rid) {
  if (!journal_enabled_ || slice.journal_mu == nullptr) return;
  txn::CheckpointJournalEntry e;
  e.target = -1;
  e.insert = insert;
  e.key = key;
  e.rid = rid;
  std::lock_guard<std::mutex> lock(*slice.journal_mu);
  slice.journal.push_back(e);
}

void EngineBase::JournalSecondary(Slice& slice, int16_t target,
                                  bool insert, const index::Key& key,
                                  storage::RowId rid) {
  if (!journal_enabled_ || slice.journal_mu == nullptr) return;
  txn::CheckpointJournalEntry e;
  e.target = target;
  e.insert = insert;
  e.key = key;
  e.rid = rid;
  std::lock_guard<std::mutex> lock(*slice.journal_mu);
  slice.journal.push_back(e);
}

Status EngineBase::PrimaryInsert(mcsim::CoreSim* core, Slice& slice,
                                 const index::Key& key,
                                 storage::RowId rid) {
  const Status s = slice.primary->Insert(core, key, rid);
  if (s.ok()) JournalPrimary(slice, /*insert=*/true, key, rid);
  return s;
}

bool EngineBase::PrimaryRemove(mcsim::CoreSim* core, Slice& slice,
                               const index::Key& key) {
  const bool ok = slice.primary->Remove(core, key);
  if (ok) JournalPrimary(slice, /*insert=*/false, key, 0);
  return ok;
}

void EngineBase::InsertSecondaries(mcsim::CoreSim* core, TableRt& rt,
                                   Slice& slice, const uint8_t* row,
                                   storage::RowId rid) {
  for (size_t i = 0; i < slice.secondaries.size(); ++i) {
    const index::Key key =
        rt.def.secondaries[i].key_of(rt.def.schema, row);
    slice.secondaries[i]->Insert(core, key, rid);
    JournalSecondary(slice, static_cast<int16_t>(i), /*insert=*/true,
                     key, rid);
  }
}

void EngineBase::RemoveSecondaries(mcsim::CoreSim* core, TableRt& rt,
                                   Slice& slice, const uint8_t* row) {
  for (size_t i = 0; i < slice.secondaries.size(); ++i) {
    const index::Key key =
        rt.def.secondaries[i].key_of(rt.def.schema, row);
    slice.secondaries[i]->Remove(core, key);
    JournalSecondary(slice, static_cast<int16_t>(i), /*insert=*/false,
                     key, 0);
  }
}

void EngineBase::ApplyUndo(mcsim::CoreSim* core,
                           std::vector<UndoEntry>& undo,
                           txn::LogManager* log, uint64_t txn_id) {
  // CLRs: redo-only compensation records, emitted when a checkpoint
  // may have captured the transaction's in-place writes. Recovery
  // replays them unconditionally, repeating this rollback.
  const bool clr =
      log != nullptr && ckpt_logging() && logs_physical();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    UndoEntry& u = *it;
    TableRt& rt = tables_[u.table];
    Slice& slice = rt.slices[u.slice];
    const int16_t slice16 = static_cast<int16_t>(u.slice);
    switch (u.kind) {
      case UndoEntry::Kind::kColumnImage:
        SliceWriteColumn(core, slice, u.row, u.column, u.image.data(),
                         rt.def.schema);
        if (clr) {
          log->Append(core, txn::LogOp::kUpdate, txn_id,
                      static_cast<int16_t>(u.table), u.row,
                      static_cast<int16_t>(u.column), u.image.data(),
                      static_cast<uint32_t>(u.image.size()), nullptr, 0,
                      slice16, nullptr, 0, /*clr=*/true);
        }
        break;
      case UndoEntry::Kind::kInsertedRow:
        if (slice.primary != nullptr) PrimaryRemove(core, slice, u.key);
        if (!u.image.empty()) {
          RemoveSecondaries(core, rt, slice, u.image.data());
        }
        SliceDelete(core, slice, u.row);
        if (clr) {
          log->Append(core, txn::LogOp::kDelete, txn_id,
                      static_cast<int16_t>(u.table), u.row, -1, nullptr,
                      0, u.key.data(), u.key.size(), slice16,
                      u.image.data(),
                      static_cast<uint32_t>(u.image.size()),
                      /*clr=*/true);
        }
        break;
      case UndoEntry::Kind::kDeletedRow: {
        // Resurrect the row (possibly at a fresh slot) and re-index it.
        const storage::RowId rid =
            SliceAppend(core, slice, u.image.data());
        if (slice.primary != nullptr) {
          PrimaryInsert(core, slice, u.key, rid);
        }
        InsertSecondaries(core, rt, slice, u.image.data(), rid);
        if (clr) {
          log->Append(core, txn::LogOp::kInsert, txn_id,
                      static_cast<int16_t>(u.table), rid, -1,
                      u.image.data(),
                      static_cast<uint32_t>(u.image.size()),
                      u.key.data(), u.key.size(), slice16, nullptr, 0,
                      /*clr=*/true);
        }
        break;
      }
    }
  }
  undo.clear();
}

// ---------------------------------------------------------------------------
// Recovery: merged stable log + REDO replay.
// ---------------------------------------------------------------------------

uint64_t EngineBase::LogTruncationLsn() const {
  uint64_t lsn = 0;
  for (const auto& log : logs_) {
    lsn = std::max(lsn, log->truncation_lsn());
  }
  return lsn;
}

uint64_t EngineBase::AppendedLogRecords() const {
  uint64_t n = 0;
  for (const auto& log : logs_) n += log->appended_records();
  return n;
}

std::vector<txn::LogRecord> EngineBase::StableLog() const {
  std::vector<txn::LogRecord> merged;
  for (const auto& log : logs_) {
    const auto& records = log->stable_log();
    merged.insert(merged.end(), records.begin(), records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const txn::LogRecord& a, const txn::LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return merged;
}

std::vector<txn::LogRecord> EngineBase::FlushedLog() const {
  std::vector<txn::LogRecord> merged;
  for (const auto& log : logs_) {
    const auto& records = log->stable_log();
    merged.insert(merged.end(), records.begin(),
                  records.begin() +
                      static_cast<std::ptrdiff_t>(log->flushed_records()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const txn::LogRecord& a, const txn::LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return merged;
}

Status EngineBase::Replay(const std::vector<txn::LogRecord>& log) {
  machine_->SetEnabled(false);
  const Status result = RedoPass(log, nullptr);
  machine_->SetEnabled(true);
  return result;
}

Status EngineBase::RedoPass(const std::vector<txn::LogRecord>& log,
                            txn::RecoveryStats* stats) {
  // A torn record (bad checksum on the device) ends the usable log:
  // recovery scans forward and stops at the first record that fails
  // verification, exactly like a real ARIES analysis pass.
  size_t usable = log.size();
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].torn) {
      usable = i;
      break;
    }
  }

  // Analysis pass: which transactions committed?
  std::unordered_set<uint64_t> committed;
  for (size_t i = 0; i < usable; ++i) {
    if (log[i].op == txn::LogOp::kCommit) committed.insert(log[i].txn_id);
  }

  // REDO pass, in LSN order, committed transactions only. Recovery runs
  // outside any measurement window (the caller disabled the machine).
  mcsim::CoreSim* core = &machine_->core(0);
  Status result = Status::Ok();
  for (size_t i = 0; i < usable; ++i) {
    const txn::LogRecord& rec = log[i];
    if (rec.op == txn::LogOp::kCommit || rec.op == txn::LogOp::kAbort ||
        rec.op == txn::LogOp::kCommand ||
        rec.op == txn::LogOp::kCheckpointBegin ||
        rec.op == txn::LogOp::kCheckpointEnd) {
      continue;  // kCommand is logical; physical REDO cannot replay it
    }
    // CLRs replay unconditionally: they repeat a rollback that already
    // happened (checkpoint-enabled logs only).
    if (!rec.clr && committed.count(rec.txn_id) == 0) continue;
    if (rec.table < 0 ||
        rec.table >= static_cast<int16_t>(tables_.size())) {
      result = Status::Internal("log record references unknown table");
      break;
    }
    if (stats != nullptr) ++stats->replayed_records;
    TableRt& rt = tables_[rec.table];
    const int slice_idx =
        rec.slice >= 0 &&
                rec.slice < static_cast<int16_t>(rt.slices.size())
            ? rec.slice
            : 0;
    Slice& slice = rt.slices[slice_idx];
    switch (rec.op) {
      case txn::LogOp::kUpdate:
        if (rec.column >= 0) {
          SliceWriteColumn(core, slice, rec.row, rec.column,
                           rec.payload.data(), rt.def.schema);
        } else {
          SliceWriteRow(core, slice, rec.row, rec.payload.data(),
                        rt.def.schema);
        }
        break;
      case txn::LogOp::kInsert: {
        // Placement replay: the record's RowId is the physical position
        // the live run assigned; later records reference it, so the
        // replayed row must land exactly there.
        SliceRestore(core, slice, rec.row, rec.payload.data(),
                     /*present=*/true);
        if (slice.primary != nullptr && !rec.key.empty()) {
          const index::Key k = index::Key::FromBytes(
              rec.key.data(), static_cast<uint32_t>(rec.key.size()));
          slice.primary->Remove(core, k);  // idempotent re-replay
          const Status s = slice.primary->Insert(core, k, rec.row);
          if (!s.ok()) {
            result = s;
          } else {
            JournalPrimary(slice, /*insert=*/true, k, rec.row);
          }
        }
        InsertSecondaries(core, rt, slice, rec.payload.data(), rec.row);
        break;
      }
      case txn::LogOp::kDelete: {
        if (!slice.secondaries.empty()) {
          // Prefer the logged before-image (checkpoint-enabled logs);
          // fall back to the current row contents.
          if (rec.before.size() >= rt.def.schema.row_bytes()) {
            RemoveSecondaries(core, rt, slice, rec.before.data());
          } else {
            std::vector<uint8_t> image(rt.def.schema.row_bytes());
            if (SliceRead(core, slice, rec.row, image.data())) {
              RemoveSecondaries(core, rt, slice, image.data());
            }
          }
        }
        if (slice.primary != nullptr && !rec.key.empty()) {
          const index::Key k = index::Key::FromBytes(
              rec.key.data(), static_cast<uint32_t>(rec.key.size()));
          if (slice.primary->Remove(core, k)) {
            JournalPrimary(slice, /*insert=*/false, k, 0);
          }
        }
        SliceDelete(core, slice, rec.row);
        break;
      }
      default:
        break;
    }
    if (!result.ok()) break;
  }
  return result;
}

}  // namespace imoltp::engine
