// Fuzzy checkpoint capture and ARIES-style recovery for EngineBase
// (docs/robustness.md, "Checkpointing & fuzzy recovery").
//
// Capture protocols:
//  - Partitioned engines (num_slices() > 1): worker 0 opens the
//    checkpoint on its cadence; each worker then captures ALL tables'
//    slice of its own partition atomically at one of its transaction
//    boundaries (transaction-consistent per partition under
//    single-site execution). The last partition to contribute seals
//    the checkpoint.
//  - Non-partitioned engines: worker 0 walks a capture plan (the dirty
//    pages at checkpoint begin) a few pages per transaction tick while
//    the other workers keep running — a genuinely fuzzy snapshot.
//    Before-images + CLRs in the log make it recoverable.
//
// The WAL rule: a captured page may hold effects of log records still
// in the asynchronous ring, so capture flushes the worker's own log
// first (partitioned), or the log runs in force-at-append mode
// (non-partitioned, where any worker's in-flight effects can land in a
// page the capture thread copies).

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "engine/engine_base.h"

namespace imoltp::engine {

void EngineBase::CaptureSliceMeta(mcsim::CoreSim* core, int table,
                                  int slice_idx,
                                  txn::CheckpointSliceImage* out) {
  (void)core;
  Slice& slice = tables_[table].slices[slice_idx];
  out->table = static_cast<int16_t>(table);
  out->slice = static_cast<int16_t>(slice_idx);
  out->num_rows =
      slice.disk != nullptr ? slice.disk->num_rows() : slice.mem->num_rows();
  if (slice.journal_mu != nullptr) {
    std::lock_guard<std::mutex> lock(*slice.journal_mu);
    out->journal = slice.journal;  // prefix as of capture time
  }
}

txn::CheckpointPage EngineBase::CapturePage(mcsim::CoreSim* core,
                                            int table, int slice_idx,
                                            uint64_t page_no) {
  TableRt& rt = tables_[table];
  Slice& slice = rt.slices[slice_idx];
  txn::CheckpointPage pg;
  pg.table = static_cast<int16_t>(table);
  pg.slice = static_cast<int16_t>(slice_idx);
  pg.page_no = page_no;
  pg.row_bytes = rt.def.schema.row_bytes();
  if (slice.disk != nullptr) {
    const uint16_t slots = slice.disk->SlotsOnPage(core, page_no);
    pg.rids.reserve(slots);
    for (uint16_t s = 0; s < slots; ++s) {
      pg.rids.push_back((page_no << 16) | s);
    }
  } else {
    const uint64_t lo = page_no * storage::Table::kRowsPerCheckpointPage;
    const uint64_t hi =
        std::min(lo + storage::Table::kRowsPerCheckpointPage,
                 slice.mem->num_rows());
    for (uint64_t r = lo; r < hi; ++r) pg.rids.push_back(r);
  }
  pg.present.assign(pg.rids.size(), 0);
  pg.images.assign(pg.rids.size() * pg.row_bytes, 0);
  std::vector<uint8_t> buf(pg.row_bytes);
  for (size_t i = 0; i < pg.rids.size(); ++i) {
    if (SliceRead(core, slice, pg.rids[i], buf.data())) {
      pg.present[i] = 1;
      std::memcpy(pg.images.data() + i * pg.row_bytes, buf.data(),
                  pg.row_bytes);
    }
  }
  pg.Seal();
  return pg;
}

void EngineBase::BeginCheckpoint(int worker) {
  mcsim::CoreSim* core = &machine_->core(worker);
  txn::CheckpointImage& img = ckpt_->Begin(0);
  img.begin_lsn = logs_[worker]->Append(
      core, txn::LogOp::kCheckpointBegin, 0, -1, img.id, -1, nullptr, 0);
  logs_[worker]->FlushAll();
  if (num_slices() > 1) {
    slice_captured_.assign(static_cast<size_t>(num_slices()), 0);
    return;
  }
  // Non-partitioned: freeze the capture plan now. Pages dirtied after
  // this instant carry before-images in the retained log (begin_lsn
  // precedes them), so the fuzzy copy stays recoverable.
  capture_plan_.clear();
  capture_next_ = 0;
  img.slices.clear();
  img.slices.reserve(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    Slice& slice = tables_[t].slices[0];
    txn::CheckpointSliceImage si;
    CaptureSliceMeta(core, static_cast<int>(t), 0, &si);
    img.slices.push_back(std::move(si));
    const std::vector<uint64_t> pages = slice.disk != nullptr
                                            ? slice.disk->DirtyPages()
                                            : slice.mem->DirtyPages();
    for (uint64_t p : pages) {
      capture_plan_.push_back({static_cast<int>(t), p});
    }
  }
}

void EngineBase::FinishCheckpoint(int worker) {
  mcsim::CoreSim* core = &machine_->core(worker);
  txn::CheckpointImage* pending = ckpt_->pending();
  const uint64_t begin_lsn = pending->begin_lsn;
  uint8_t payload[8];
  std::memcpy(payload, &begin_lsn, sizeof(payload));
  const uint64_t end_lsn =
      logs_[worker]->Append(core, txn::LogOp::kCheckpointEnd, 0, -1,
                            pending->id, -1, payload, sizeof(payload));
  logs_[worker]->FlushAll();
  const uint64_t anchor = ckpt_->Complete(end_lsn);
  ++ckpt_->stats().truncations;
  // Publish the anchor; every worker truncates its own log on its next
  // tick (a worker's log is only ever touched from its own thread).
  truncate_anchor_.store(anchor, std::memory_order_release);
  const uint64_t before = logs_[worker]->truncated_records();
  logs_[worker]->Truncate(anchor);
  ckpt_->stats().truncated_records +=
      logs_[worker]->truncated_records() - before;
}

void EngineBase::CapturePartition(int worker,
                                  txn::CheckpointImage* pending) {
  mcsim::CoreSim* core = &machine_->core(worker);
  for (size_t t = 0; t < tables_.size(); ++t) {
    TableRt& rt = tables_[t];
    if (worker >= static_cast<int>(rt.slices.size())) continue;
    Slice& slice = rt.slices[worker];
    txn::CheckpointSliceImage si;
    CaptureSliceMeta(core, static_cast<int>(t), worker, &si);
    const std::vector<uint64_t> pages = slice.disk != nullptr
                                            ? slice.disk->DirtyPages()
                                            : slice.mem->DirtyPages();
    si.pages.reserve(pages.size());
    for (uint64_t p : pages) {
      si.pages.push_back(CapturePage(core, static_cast<int>(t), worker, p));
    }
    pending->slices.push_back(std::move(si));
  }
}

void EngineBase::CaptureStep(mcsim::CoreSim* core,
                             txn::CheckpointImage* pending) {
  const int step = std::max(1, ckpt_->policy().pages_per_step);
  for (int i = 0;
       i < step && capture_next_ < capture_plan_.size(); ++i) {
    const CaptureUnit& u = capture_plan_[capture_next_++];
    pending->slices[u.table].pages.push_back(
        CapturePage(core, u.table, 0, u.page_no));
  }
}

void EngineBase::CheckpointTick(int worker) {
  if (ckpt_ == nullptr || tables_.empty()) return;
  if (worker < 0 || worker >= static_cast<int>(logs_.size())) return;

  // Deferred truncation: adopt the last completed checkpoint's anchor
  // on this worker's own log (single-threaded access by construction).
  const uint64_t anchor = truncate_anchor_.load(std::memory_order_acquire);
  if (anchor > logs_[worker]->truncation_lsn()) {
    const uint64_t before = logs_[worker]->truncated_records();
    logs_[worker]->Truncate(anchor);
    const uint64_t dropped = logs_[worker]->truncated_records() - before;
    if (dropped > 0) {
      std::lock_guard<std::mutex> lock(ckpt_mu_);
      ckpt_->stats().truncated_records += dropped;
    }
  }

  std::lock_guard<std::mutex> lock(ckpt_mu_);
  const uint64_t every =
      std::max<uint64_t>(1, ckpt_->policy().every_n_ticks);

  if (num_slices() > 1) {
    if (worker == 0) {
      ++ticks_;
      if (ckpt_->pending() == nullptr && ticks_ % every == 0) {
        BeginCheckpoint(0);
      }
    }
    txn::CheckpointImage* pending = ckpt_->pending();
    if (pending != nullptr &&
        worker < static_cast<int>(slice_captured_.size()) &&
        slice_captured_[worker] == 0) {
      // WAL rule: this partition's in-ring records must be durable
      // before its pages are.
      logs_[worker]->FlushAll();
      CapturePartition(worker, pending);
      slice_captured_[worker] = 1;
      const bool all_captured =
          std::all_of(slice_captured_.begin(), slice_captured_.end(),
                      [](uint8_t c) { return c != 0; });
      if (all_captured) FinishCheckpoint(worker);
    }
    return;
  }

  // Non-partitioned: worker 0 drives begin/capture/finish. The log
  // runs force-at-append (set in CreateDatabase), so the WAL rule
  // holds for pages that caught other workers' in-flight writes.
  if (worker != 0) return;
  ++ticks_;
  txn::CheckpointImage* pending = ckpt_->pending();
  if (pending == nullptr) {
    if (ticks_ % every == 0) BeginCheckpoint(0);
    return;
  }
  CaptureStep(&machine_->core(0), pending);
  if (capture_next_ >= capture_plan_.size()) FinishCheckpoint(0);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void EngineBase::RestorePage(mcsim::CoreSim* core,
                             const txn::CheckpointPage& page,
                             txn::RecoveryStats* stats) {
  if (page.table < 0 ||
      page.table >= static_cast<int16_t>(tables_.size())) {
    return;
  }
  TableRt& rt = tables_[page.table];
  if (page.row_bytes != rt.def.schema.row_bytes()) return;
  const int slice_idx =
      page.slice >= 0 &&
              page.slice < static_cast<int16_t>(rt.slices.size())
          ? page.slice
          : 0;
  Slice& slice = rt.slices[slice_idx];
  for (size_t i = 0; i < page.rids.size(); ++i) {
    const bool present = i < page.present.size() && page.present[i] != 0;
    SliceRestore(core, slice, page.rids[i],
                 page.images.data() + i * page.row_bytes, present);
  }
  ++stats->restored_pages;
  stats->restored_bytes += page.images.size();
}

Status EngineBase::Recover(const std::vector<txn::CheckpointImage>& device,
                           const std::vector<txn::LogRecord>& log,
                           uint64_t log_truncation_lsn,
                           txn::RecoveryStats* stats) {
  txn::RecoveryStats local;
  if (stats == nullptr) stats = &local;
  stats->truncation_lsn = log_truncation_lsn;

  const txn::CheckpointImage* ckpt =
      txn::SelectRecoverable(device, stats);
  if (ckpt == nullptr) {
    if (log_truncation_lsn > 0) {
      // The log's prefix is gone and no checkpoint survives to stand
      // in for it. Nothing sound can be reconstructed.
      return Status::Internal(
          "log truncated to a checkpoint anchor but no complete, "
          "checksum-clean checkpoint is available");
    }
    machine_->SetEnabled(false);
    const Status s = RedoPass(log, stats);
    machine_->SetEnabled(true);
    return s;
  }
  stats->used_checkpoint = true;
  stats->checkpoint_id = ckpt->id;

  machine_->SetEnabled(false);
  mcsim::CoreSim* core = &machine_->core(0);

  // 1. Restore captured pages, then replay each slice's index journal
  // (indexes expose no key iteration; the journal re-derives keys whose
  // index mutations were truncated out of the log). Application is
  // defensive — Remove before Insert — so entries repeated by the redo
  // pass below are harmless.
  for (const txn::CheckpointSliceImage& si : ckpt->slices) {
    if (si.table < 0 ||
        si.table >= static_cast<int16_t>(tables_.size())) {
      continue;
    }
    TableRt& rt = tables_[si.table];
    const int slice_idx =
        si.slice >= 0 && si.slice < static_cast<int16_t>(rt.slices.size())
            ? si.slice
            : 0;
    Slice& slice = rt.slices[slice_idx];
    for (const txn::CheckpointPage& pg : si.pages) {
      RestorePage(core, pg, stats);
    }
    for (const txn::CheckpointJournalEntry& e : si.journal) {
      if (e.target < 0) {
        if (slice.primary != nullptr) {
          slice.primary->Remove(core, e.key);
          if (e.insert) slice.primary->Insert(core, e.key, e.rid);
        }
      } else if (e.target <
                 static_cast<int16_t>(slice.secondaries.size())) {
        index::Index* sec = slice.secondaries[e.target].get();
        sec->Remove(core, e.key);
        if (e.insert) sec->Insert(core, e.key, e.rid);
      }
    }
    stats->journal_entries += si.journal.size();
    // Seed the recovered engine's own journal so its future
    // checkpoints stay self-contained across chaos cycles.
    if (slice.journal_mu != nullptr && !si.journal.empty()) {
      std::lock_guard<std::mutex> jlock(*slice.journal_mu);
      slice.journal.insert(slice.journal.end(), si.journal.begin(),
                           si.journal.end());
    }
  }

  // 2. REDO the retained log tail from the truncation anchor:
  // committed transactions' records plus every CLR, in LSN order.
  // Re-applying records older than a captured page is idempotent —
  // placement replay lands rows exactly where the live run put them.
  Status result = RedoPass(log, stats);
  if (!result.ok()) {
    machine_->SetEnabled(true);
    return result;
  }

  // 3. UNDO losers: transactions with physical records in the usable
  // log but no end record. A fuzzy page may have captured their
  // in-place writes; roll them back from the logged before-images, in
  // reverse LSN order. (A kAbort record proves the live rollback
  // finished and its CLRs were redone above — not a loser. Engines
  // that stage updates privately — MVCC — skip kUpdate undo: the
  // loser's update never reached the table.)
  size_t usable = log.size();
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].torn) {
      usable = i;
      break;
    }
  }
  std::unordered_set<uint64_t> ended;
  for (size_t i = 0; i < usable; ++i) {
    if (log[i].op == txn::LogOp::kCommit ||
        log[i].op == txn::LogOp::kAbort) {
      ended.insert(log[i].txn_id);
    }
  }
  std::unordered_set<uint64_t> losers;
  for (size_t i = 0; i < usable; ++i) {
    const txn::LogRecord& rec = log[i];
    if (rec.clr || ended.count(rec.txn_id) != 0) continue;
    if (rec.op == txn::LogOp::kUpdate ||
        rec.op == txn::LogOp::kInsert ||
        rec.op == txn::LogOp::kDelete) {
      losers.insert(rec.txn_id);
    }
  }
  for (size_t i = usable; i-- > 0;) {
    const txn::LogRecord& rec = log[i];
    if (rec.clr || losers.count(rec.txn_id) == 0) continue;
    if (rec.table < 0 ||
        rec.table >= static_cast<int16_t>(tables_.size())) {
      continue;
    }
    TableRt& rt = tables_[rec.table];
    const int slice_idx =
        rec.slice >= 0 &&
                rec.slice < static_cast<int16_t>(rt.slices.size())
            ? rec.slice
            : 0;
    Slice& slice = rt.slices[slice_idx];
    switch (rec.op) {
      case txn::LogOp::kUpdate:
        if (!updates_in_place() || rec.before.empty()) break;
        if (rec.column >= 0) {
          SliceWriteColumn(core, slice, rec.row, rec.column,
                           rec.before.data(), rt.def.schema);
        } else if (rec.before.size() >= rt.def.schema.row_bytes()) {
          SliceWriteRow(core, slice, rec.row, rec.before.data(),
                        rt.def.schema);
        }
        ++stats->undone_records;
        break;
      case txn::LogOp::kInsert: {
        // The loser inserted this row; remove it wherever it landed.
        // All operations are no-ops if the fuzzy capture missed it.
        if (!rec.key.empty()) {
          PrimaryRemove(core, slice,
                        index::Key::FromBytes(
                            rec.key.data(),
                            static_cast<uint32_t>(rec.key.size())));
        }
        if (rec.payload.size() >= rt.def.schema.row_bytes()) {
          RemoveSecondaries(core, rt, slice, rec.payload.data());
        }
        SliceDelete(core, slice, rec.row);
        ++stats->undone_records;
        break;
      }
      case txn::LogOp::kDelete: {
        if (rec.before.size() < rt.def.schema.row_bytes()) break;
        SliceRestore(core, slice, rec.row, rec.before.data(),
                     /*present=*/true);
        if (!rec.key.empty()) {
          const index::Key k = index::Key::FromBytes(
              rec.key.data(), static_cast<uint32_t>(rec.key.size()));
          PrimaryRemove(core, slice, k);
          PrimaryInsert(core, slice, k, rec.row);
        }
        InsertSecondaries(core, rt, slice, rec.before.data(), rec.row);
        ++stats->undone_records;
        break;
      }
      default:
        break;
    }
  }

  machine_->SetEnabled(true);
  return Status::Ok();
}

}  // namespace imoltp::engine
