#ifndef IMOLTP_ENGINE_ENGINE_H_
#define IMOLTP_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "index/index.h"
#include "index/key.h"
#include "mcsim/machine.h"
#include "obs/span.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "txn/checkpoint.h"
#include "txn/log_manager.h"

namespace imoltp::engine {

/// The five analyzed systems (paper Section 3, "Analyzed Systems").
/// Closed-source systems are archetypes named as in the paper.
enum class EngineKind {
  kShoreMt,  // disk-based open-source storage manager
  kDbmsD,    // disk-based commercial DBMS (full query stack)
  kVoltDb,   // in-memory, partitioned, interpreted procedures
  kHyPer,    // in-memory, partitioned, compiled transactions
  kDbmsM,    // in-memory commercial engine: MVCC, legacy frontend
};

inline const char* EngineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::kShoreMt: return "Shore-MT";
    case EngineKind::kDbmsD: return "DBMS D";
    case EngineKind::kVoltDb: return "VoltDB";
    case EngineKind::kHyPer: return "HyPer";
    case EngineKind::kDbmsM: return "DBMS M";
  }
  return "?";
}

/// Derives the primary key of initial row `r` (bulk-load path).
using KeyOfRow = index::Key (*)(const storage::Schema& schema,
                                storage::RowId r, uint64_t seed);

/// Derives a secondary key from a row image. Secondary keys MUST be
/// unique; embed a discriminator (e.g., the primary id) in the low
/// bits and scan by prefix.
using SecondaryKeyOf = index::Key (*)(const storage::Schema& schema,
                                      const uint8_t* row);

/// A secondary access path, maintained on insert/delete. Secondary
/// indexes are ordered (prefix scans are their purpose). Columns feeding
/// a secondary key must be immutable under updates — TPC-C's
/// customer-by-last-name and order-by-customer paths satisfy this.
struct SecondaryIndexDef {
  std::string name;
  SecondaryKeyOf key_of = nullptr;
};

/// Declarative table definition handed to Engine::CreateDatabase.
struct TableDef {
  std::string name;
  storage::Schema schema;
  uint64_t initial_rows = 0;

  /// Nominal on-"disk" footprint; when it exceeds the resident budget
  /// the in-memory engines place rows in a sparse address space
  /// (DESIGN.md, Substitutions). 0 = dense.
  uint64_t nominal_bytes = 0;

  storage::RowGenerator generator = nullptr;  // initial contents
  uint64_t seed = 1;

  KeyOfRow key_of = nullptr;  // default: Key::FromUint64(r)
  uint32_t key_bytes = 8;

  /// Tables probed with range scans need an ordered index even on
  /// engines whose default is a hash (DBMS M uses its B-tree for TPC-C).
  bool needs_ordered_index = false;

  /// Read-mostly tables replicated to every partition on the
  /// partitioned engines (VoltDB replicates TPC-C's Item table).
  bool replicated = false;

  /// Append-only tables with no key access (TPC-B/TPC-C History) carry
  /// no primary index: appends stay sequential, exactly the locality
  /// the paper credits for TPC-B's low data stalls (Section 5.1.1).
  bool no_primary_index = false;

  /// Secondary access paths (e.g., TPC-C customer by last name).
  std::vector<SecondaryIndexDef> secondaries;
};

/// Per-call transaction descriptor.
struct TxnRequest {
  int type = 0;                // stable id per transaction type
  uint64_t partition_key = 0;  // routing hint (key / warehouse / branch)
  uint64_t key_space = 1;      // size of the routing key domain

  /// Number of SQL statements in the procedure body — the compiled
  /// engines' per-transaction-type code size and straight-line
  /// instruction count grow with it (loops over rows do not: their
  /// per-iteration work is charged per operation).
  int statements = 1;
};

/// Engine-neutral operations available inside a stored procedure. The
/// benchmark bodies (micro, TPC-B, TPC-C) are written once against this
/// interface; each engine implements it with its own storage, index,
/// concurrency-control, and code-footprint behavior.
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// Primary-index probe. kNotFound if absent.
  virtual Status Probe(int table, const index::Key& key,
                       storage::RowId* row) = 0;

  /// Reads the full row into `out` (schema row_bytes of `table`).
  virtual Status Read(int table, storage::RowId row, uint8_t* out) = 0;

  /// Updates one column.
  virtual Status Update(int table, storage::RowId row, uint32_t column,
                        const void* value) = 0;

  /// Inserts a row with its primary key.
  virtual Status Insert(int table, const uint8_t* row,
                        const index::Key& key,
                        storage::RowId* out_row = nullptr) = 0;

  /// Deletes a row (and its key from the primary index).
  virtual Status Delete(int table, storage::RowId row,
                        const index::Key& key) = 0;

  /// Ordered scan of up to `limit` rows with keys >= `from`.
  virtual Status Scan(int table, const index::Key& from, uint64_t limit,
                      std::vector<storage::RowId>* rows) = 0;

  /// Ordered scan over secondary index `secondary` of `table`.
  virtual Status ScanSecondary(int table, int secondary,
                               const index::Key& from, uint64_t limit,
                               std::vector<storage::RowId>* rows) = 0;

  /// The worker's simulated core (for workload-side bookkeeping).
  virtual mcsim::CoreSim* core() = 0;
};

/// Behavioral switches (Section 6 experiments and ablations).
struct EngineOptions {
  int num_partitions = 1;  // partitioned engines: one worker each

  /// DBMS M: transaction-compilation toggle (Figure 13/14). HyPer is
  /// always compiled; the others never are.
  bool compilation = true;

  /// DBMS M: hash (micro/TPC-B) or cache-conscious B-tree (TPC-C).
  index::IndexKind dbms_m_index = index::IndexKind::kHash;

  /// VoltDB: single-site guarantee (Section 7 note: disabling it raises
  /// instruction stalls by ~60%).
  bool single_site = true;

  /// Disk engines: frame count of the buffer pool.
  uint32_t bufferpool_frames = 1u << 17;  // 1GB of 8KB frames

  /// Ablation: run a disk engine without its buffer pool layer.
  bool use_bufferpool = true;

  /// Per-worker WAL ring size. Chaos runs shrink it to force frequent
  /// asynchronous flushes (tightening the post-commit durability
  /// window they crash into).
  uint32_t log_buffer_bytes = 1u << 20;

  /// Optional fault injector (not owned; must outlive the engine).
  /// Wired into every LogManager, the 2PL lock table, and the engines'
  /// crash points. Null ⇒ no fault checks at all.
  fault::FaultInjector* fault_injector = nullptr;

  /// Fuzzy checkpointing cadence/retention. Disabled by default; when
  /// enabled, the engines also log before-images and compensation
  /// records so recovery can roll back losers captured mid-flight.
  txn::CheckpointPolicy checkpoint;
};

/// One OLTP engine archetype bound to a simulated machine. Workers map
/// 1:1 to simulated cores.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const = 0;
  const char* name() const { return EngineKindName(kind()); }

  /// Creates tables and primary indexes and bulk-populates them with
  /// their initial rows (simulation is disabled during the bulk load,
  /// mirroring the paper's profile-after-populate methodology).
  virtual Status CreateDatabase(const std::vector<TableDef>& defs) = 0;

  /// Executes one transaction on `worker`: engine-specific frontend and
  /// commit work wraps the stored-procedure `body`.
  virtual Status Execute(int worker, const TxnRequest& request,
                         const std::function<Status(TxnContext&)>& body) = 0;

  virtual mcsim::MachineSim* machine() = 0;

  /// Lifecycle-span accumulator (index-probe / lock-acquire /
  /// log-append / storage-access cycles). The harness resets it at each
  /// measurement-window start and reads it after EndWindow.
  virtual obs::SpanCollector* span_collector() = 0;

  /// The engine's durable write-ahead log, merged across workers in LSN
  /// order (the simulated log device).
  virtual std::vector<txn::LogRecord> StableLog() const = 0;

  /// The flushed prefix of the durable log: only records the
  /// asynchronous background writer had pushed to the device. This is
  /// what survives a crash that loses the in-memory log rings
  /// (crash.post_commit faults recover from this, not StableLog).
  virtual std::vector<txn::LogRecord> FlushedLog() const = 0;

  /// Crash recovery: REDOes the committed transactions of `log` onto
  /// this engine's tables and indexes. Call on a freshly created
  /// database (same TableDefs as the crashed instance). Logical
  /// kCommand records (VoltDB-style command logging) are not physically
  /// replayable and are skipped.
  virtual Status Replay(const std::vector<txn::LogRecord>& log) = 0;

  /// Advances the fuzzy checkpoint state machine after `worker` retired
  /// a transaction. No-op unless options.checkpoint.enabled.
  virtual void CheckpointTick(int /*worker*/) {}

  /// Checkpoint-aware recovery: restores the newest usable checkpoint
  /// from `device` (torn pages discard a checkpoint in favor of the
  /// previous complete one), replays the retained `log` from the
  /// truncation anchor, and rolls back losers with before-images. Falls
  /// back to plain Replay when no checkpoint is usable — unless the log
  /// was truncated (`log_truncation_lsn` > 0), which makes full replay
  /// unsound and recovery fails with an error. Call on a freshly
  /// created database.
  virtual Status Recover(const std::vector<txn::CheckpointImage>& device,
                         const std::vector<txn::LogRecord>& log,
                         uint64_t log_truncation_lsn,
                         txn::RecoveryStats* stats) = 0;

  /// The live checkpoint manager (null when checkpointing is disabled).
  virtual const txn::CheckpointManager* checkpoints() const {
    return nullptr;
  }

  /// Highest truncation LSN across the per-worker logs (0 = never
  /// truncated). Recovery inputs carry this alongside FlushedLog().
  virtual uint64_t LogTruncationLsn() const = 0;

  /// Lifetime record count across all per-worker logs, including
  /// truncated records — what a full no-checkpoint replay would have
  /// had to process.
  virtual uint64_t AppendedLogRecords() const = 0;
};

std::unique_ptr<Engine> CreateEngine(EngineKind kind,
                                     mcsim::MachineSim* machine,
                                     const EngineOptions& options);

/// Parses a CLI engine name ("shore-mt", "dbms-d", "voltdb", "hyper",
/// "dbms-m") — the single spelling authority for every tool that takes
/// an --engine flag. Returns false on an unknown name.
bool ParseEngineKind(const std::string& name, EngineKind* out);

/// The valid ParseEngineKind spellings, space-separated, for error
/// messages ("unknown engine: X (choices: ...)").
const char* EngineKindChoices();

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_ENGINE_H_
