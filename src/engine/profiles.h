#ifndef IMOLTP_ENGINE_PROFILES_H_
#define IMOLTP_ENGINE_PROFILES_H_

#include <cstdint>

namespace imoltp::engine {

/// One code module's execution profile (see DESIGN.md,
/// "Instruction-footprint model"):
///
///   - total_bytes:   the module's code range.
///   - touched_bytes: bytes fetched per execution. When smaller than
///     total_bytes, each execution starts at a pseudo-random window — the
///     model of branchy legacy code whose dynamic path varies between
///     invocations (poor i-cache locality).
///   - instructions:  instructions retired per execution.
///   - mispredicts_per_kinstr: branch misprediction rate.
///
/// This header is the single calibration point for every engine
/// archetype. The figures' *shapes* are structural (which modules exist,
/// which execute per transaction vs per operation, which have random
/// windows); these numbers set the magnitudes.
struct RegionSpec {
  const char* module;
  bool engine_side;  // true = storage manager / OLTP engine (Figure 7)
  uint32_t total_bytes;
  uint32_t touched_bytes;
  uint32_t instructions;
  double mispredicts_per_kinstr;
  /// Inherent cycles-per-instruction with warm caches (code-quality
  /// knob: compiled straight-line ~0.45, legacy branchy ~0.95).
  double cpi = 0.85;
};

// ---------------------------------------------------------------------------
// Shore-MT: open-source storage manager. No layers outside the SM — the
// benchmark's query plans are hard-coded C++ (Shore-Kits). Sizeable,
// decades-old SM codebase: B-tree, buffer pool, lock manager, logging.
// ---------------------------------------------------------------------------
struct ShoreMtProfile {
  RegionSpec xct_begin{"sm-xct", true, 20 << 10, 11 << 10, 5200, 7.0, 0.9};
  RegionSpec xct_commit{"sm-xct", true, 20 << 10, 10 << 10, 5600, 7.0, 0.9};
  RegionSpec btree{"sm-btree", true, 15 << 10, 10 << 10, 5200, 7.5, 0.9};
  RegionSpec heap_bp{"sm-bufferpool", true, 13 << 10, 9 << 10, 4200, 7.0,
                     0.9};
  RegionSpec lock{"sm-lock", true, 8 << 10, 5 << 10, 2400, 8.0, 0.9};
  RegionSpec log{"sm-log", true, 6 << 10, 4 << 10, 1600, 5.0, 0.9};
};

// ---------------------------------------------------------------------------
// DBMS D: disk-based commercial system. Everything Shore-MT has, plus the
// layers around the storage manager: network/session handling, SQL
// parsing, query optimization, plan interpretation — large, branchy
// regions with windowed (random) execution paths.
// ---------------------------------------------------------------------------
struct DbmsDProfile {
  RegionSpec network{"network", false, 28 << 10, 10 << 10, 4200, 8.0, 1.0};
  RegionSpec parser{"parser", false, 56 << 10, 18 << 10, 7600, 10.0, 1.0};
  RegionSpec optimizer{"optimizer", false, 56 << 10, 16 << 10, 7000, 10.0,
                       1.0};
  RegionSpec plan_exec{"plan-exec", false, 12 << 10, 8 << 10, 3400, 9.0,
                       1.0};
  RegionSpec xct_begin{"sm-xct", true, 16 << 10, 8 << 10, 3600, 7.0, 0.95};
  RegionSpec xct_commit{"sm-xct", true, 16 << 10, 8 << 10, 3800, 7.0, 0.95};
  RegionSpec btree{"sm-btree", true, 11 << 10, 8 << 10, 4400, 7.0, 0.95};
  RegionSpec heap_bp{"sm-bufferpool", true, 10 << 10, 7 << 10, 3600, 7.0,
                     0.95};
  RegionSpec lock{"sm-lock", true, 6 << 10, 4 << 10, 2200, 8.0, 0.95};
  RegionSpec log{"sm-log", true, 5 << 10, 3 << 10, 1400, 5.0, 0.95};
};

// ---------------------------------------------------------------------------
// VoltDB: partitioned in-memory engine. A managed-runtime dispatch /
// serialization layer wraps a compact C++ execution engine that
// interprets pre-planned stored procedures. No buffer pool, no locks.
// ---------------------------------------------------------------------------
struct VoltDbProfile {
  RegionSpec dispatch{"dispatch", false, 36 << 10, 14 << 10, 9200, 7.0,
                      0.6};
  RegionSpec ee_op{"exec-engine", true, 14 << 10, 6 << 10, 1100, 6.0, 0.68};
  RegionSpec index_op{"ee-index", true, 5 << 10, 3 << 10, 650, 5.0, 0.55};
  RegionSpec commit{"ee-commit", true, 10 << 10, 4 << 10, 1800, 5.0, 0.55};
  RegionSpec cmd_log{"cmd-log", true, 4 << 10, 2 << 10, 800, 4.0, 0.55};
  /// Extra coordination when single-site execution cannot be guaranteed
  /// (Section 7: instruction stalls grow by ~60%).
  RegionSpec multi_site{"dtxn-coord", false, 18 << 10, 7 << 10, 3100, 8.0,
                        0.9};
};

// ---------------------------------------------------------------------------
// HyPer: partitioned in-memory engine with transactions compiled to
// machine code. The per-transaction-type compiled region is tiny and
// straight-line; everything else is a thin dispatch shim.
// ---------------------------------------------------------------------------
struct HyPerProfile {
  RegionSpec dispatch{"dispatch", false, 2 << 10, 1 << 10, 300, 2.0, 0.6};
  /// Base compiled region (a one-statement procedure); each further
  /// statement adds code bytes and straight-line instructions.
  RegionSpec compiled_txn{"compiled-txn", true, 3 << 10, 2 << 10, 600,
                          1.5, 0.45};
  uint32_t per_statement_bytes = 700;
  uint32_t per_statement_instructions = 1400;
  RegionSpec commit{"txn-commit", true, 1 << 10, 512, 200, 2.0, 0.45};
  RegionSpec log{"redo-log", true, 1 << 10, 512, 180, 2.0, 0.45};
  /// Per-operation compiled code beyond the index/storage substrate work.
  uint32_t per_op_instructions = 120;
};

// ---------------------------------------------------------------------------
// DBMS M: main-memory engine of a traditional disk-based vendor. Inherits
// large, branchy legacy layers (session, query, transaction management)
// around a lean, optionally compiled storage engine with MVCC.
// ---------------------------------------------------------------------------
struct DbmsMProfile {
  RegionSpec session{"legacy-session", false, 40 << 10, 11 << 10, 4200,
                     9.0, 0.9};
  RegionSpec query_layer{"legacy-query", false, 48 << 10, 13 << 10, 5000,
                         10.0, 0.9};
  RegionSpec txn_mgmt{"legacy-txn", false, 28 << 10, 8 << 10, 3000, 8.0,
                      0.9};
  RegionSpec mvcc_op{"mvcc", true, 6 << 10, 4 << 10, 800, 6.0, 0.8};
  RegionSpec storage_compiled{"compiled-op", true, 2 << 10, 1200, 520,
                              3.0, 0.5};
  RegionSpec storage_interp{"interp-op", true, 64 << 10, 12 << 10, 3200,
                            9.0, 0.9};
  RegionSpec index_op{"mm-index", true, 3 << 10, 2 << 10, 500, 4.0, 0.7};
  RegionSpec validate_commit{"mvcc-commit", true, 14 << 10, 6 << 10, 2500,
                             6.0, 0.8};
  RegionSpec log{"mm-log", true, 3 << 10, 2 << 10, 750, 4.0, 0.8};
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_PROFILES_H_
