#ifndef IMOLTP_ENGINE_PARTITIONED_ENGINE_H_
#define IMOLTP_ENGINE_PARTITIONED_ENGINE_H_

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "engine/engine_base.h"
#include "txn/partition.h"

namespace imoltp::engine {

/// The partitioned in-memory archetypes: one data partition per worker,
/// serial execution inside a partition, no locks, no buffer pool
/// (VoltDB/H-Store and HyPer; paper Section 2.1).
///
/// Differences:
///   - VoltDB interprets pre-planned stored procedures inside a compact
///     C++ execution engine wrapped by a managed-runtime dispatch layer;
///     its tree index uses cache-line-sized nodes.
///   - HyPer compiles each transaction type to machine code: a tiny,
///     straight-line code region replaces the interpreter entirely, and
///     the index is an Adaptive Radix Tree.
class PartitionedEngine final : public EngineBase {
 public:
  PartitionedEngine(EngineKind kind, mcsim::MachineSim* machine,
                    const EngineOptions& options);

  EngineKind kind() const override { return kind_; }
  Status Execute(int worker, const TxnRequest& request,
                 const std::function<Status(TxnContext&)>& body) override;

 protected:
  int num_slices() const override { return options_.num_partitions; }
  /// VoltDB's command log carries no physical records: CLRs and loser
  /// undo have nothing to compensate. HyPer logs physical redo.
  bool logs_physical() const override { return compiled_; }
  index::IndexKind default_index_kind(const TableDef&) const override {
    return kind_ == EngineKind::kHyPer ? index::IndexKind::kArt
                                       : index::IndexKind::kBTreeCacheline;
  }

 private:
  class Ctx;
  friend class Ctx;

  mcsim::CodeRegion CompiledRegion(int txn_type, int statements);

  EngineKind kind_;
  bool compiled_;  // HyPer

  VoltDbProfile volt_profile_;
  HyPerProfile hyper_profile_;
  mcsim::CodeRegion dispatch_, ee_op_, index_op_, commit_, log_;
  mcsim::CodeRegion multi_site_;
  // HyPer compiles a transaction type on first dispatch; with
  // free-running workers two threads can race to compile.
  std::mutex compiled_mu_;
  std::unordered_map<int, mcsim::CodeRegion> compiled_txns_;

  txn::PartitionManager partitions_;
  std::atomic<uint64_t> next_txn_{0};
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_PARTITIONED_ENGINE_H_
