#include "engine/disk_engine.h"

#include "obs/span.h"

namespace imoltp::engine {

namespace {

uint64_t LockObject(int table, uint64_t id) {
  return (static_cast<uint64_t>(table + 1) << 48) ^ id;
}

}  // namespace

DiskEngine::DiskEngine(EngineKind kind, mcsim::MachineSim* machine,
                       const EngineOptions& options)
    : EngineBase(machine, options),
      kind_(kind),
      full_stack_(kind == EngineKind::kDbmsD),
      row_level_locks_(kind == EngineKind::kShoreMt) {
  if (full_stack_) {
    DbmsDProfile p;
    network_ = DefineRegion(p.network);
    parser_ = DefineRegion(p.parser);
    optimizer_ = DefineRegion(p.optimizer);
    plan_exec_ = DefineRegion(p.plan_exec);
    xct_begin_ = DefineRegion(p.xct_begin);
    xct_commit_ = DefineRegion(p.xct_commit);
    btree_ = DefineRegion(p.btree);
    heap_bp_ = DefineRegion(p.heap_bp);
    lock_ = DefineRegion(p.lock);
    log_ = DefineRegion(p.log);
  } else {
    ShoreMtProfile p;
    xct_begin_ = DefineRegion(p.xct_begin);
    xct_commit_ = DefineRegion(p.xct_commit);
    btree_ = DefineRegion(p.btree);
    heap_bp_ = DefineRegion(p.heap_bp);
    lock_ = DefineRegion(p.lock);
    log_ = DefineRegion(p.log);
  }
  // Direct heap path for the buffer-pool ablation: a much smaller code
  // region (no page table, no latching, no pin bookkeeping).
  heap_direct_ = DefineRegion(RegionSpec{
      "sm-heap-direct", true, 8 << 10, 4 << 10, 1800, 7.0, 0.9});
  lock_manager_.set_fault_injector(options.fault_injector);
}

/// Stored-procedure context for the disk archetypes. Every data
/// operation goes through: plan interpretation (DBMS D only) → lock
/// manager → B-tree / buffer-pooled heap → log manager.
class DiskEngine::Ctx final : public TxnContext {
 public:
  Ctx(DiskEngine* e, mcsim::CoreSim* core, uint64_t txn_id)
      : e_(e), core_(core), txn_id_(txn_id) {}

  mcsim::CoreSim* core() override { return core_; }

  Status Probe(int table, const index::Key& key,
               storage::RowId* row) override {
    PerOpFrontend();
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->btree_.module);
    e_->Exec(core_, e_->btree_);
    auto& slice = e_->tables_[table].slices[0];
    uint64_t value;
    if (slice.primary == nullptr ||
        !slice.primary->Lookup(core_, key, &value)) {
      return Status::NotFound();
    }
    *row = value;
    return Status::Ok();
  }

  Status Read(int table, storage::RowId row, uint8_t* out) override {
    auto& slice = e_->tables_[table].slices[0];
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLockAcquire);
      mcsim::ScopedModule mod(core_, e_->lock_.module);
      e_->Exec(core_, e_->lock_);
      const Status s = e_->lock_manager_.Acquire(
          core_, txn_id_, LockId(table, row), txn::LockMode::kShared);
      if (!s.ok()) return s;
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kStorageAccess);
    mcsim::ScopedModule mod(core_, HeapRegion().module);
    e_->Exec(core_, HeapRegion());
    if (!RowRead(slice, row, out)) return Status::NotFound();
    return Status::Ok();
  }

  Status Update(int table, storage::RowId row, uint32_t column,
                const void* value) override {
    auto& slice = e_->tables_[table].slices[0];
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLockAcquire);
      mcsim::ScopedModule mod(core_, e_->lock_.module);
      e_->Exec(core_, e_->lock_);
      const Status s = e_->lock_manager_.Acquire(
          core_, txn_id_, LockId(table, row), txn::LockMode::kExclusive);
      if (!s.ok()) return s;
    }
    const storage::Schema& schema = e_->tables_[table].def.schema;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      mcsim::ScopedModule mod(core_, HeapRegion().module);
      e_->Exec(core_, HeapRegion());
      // Before-image for undo (steal policy: in-place writes must be
      // reversible on abort).
      std::vector<uint8_t> before(schema.row_bytes());
      if (!RowRead(slice, row, before.data())) return Status::NotFound();
      EngineBase::UndoEntry u;
      u.kind = EngineBase::UndoEntry::Kind::kColumnImage;
      u.table = table;
      u.slice = 0;
      u.row = row;
      u.column = column;
      u.image.assign(schema.ColumnPtr(before.data(), column),
                     schema.ColumnPtr(before.data(), column) +
                         schema.column_width(column));
      undo.push_back(std::move(u));
      if (!RowWriteColumn(slice, row, column, value)) {
        return Status::NotFound();
      }
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    mcsim::ScopedModule mod(core_, e_->log_.module);
    e_->Exec(core_, e_->log_);
    const auto& before_img = undo.back().image;
    e_->logs_[core_->core_id()]->LogUpdate(
        core_, txn_id_, static_cast<int16_t>(table), row,
        static_cast<int16_t>(column), value,
        schema.column_width(column), /*slice=*/0,
        e_->ckpt_logging() ? before_img.data() : nullptr,
        e_->ckpt_logging() ? static_cast<uint32_t>(before_img.size())
                           : 0);
    dirty = true;
    return Status::Ok();
  }

  Status Insert(int table, const uint8_t* row, const index::Key& key,
                storage::RowId* out_row) override {
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[0];
    PerOpFrontend();
    storage::RowId rid;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      mcsim::ScopedModule mod(core_, HeapRegion().module);
      e_->Exec(core_, HeapRegion());
      rid = RowAppend(slice, row);
      if (rid == storage::kInvalidRow) {
        return Status::ResourceExhausted("buffer pool full");
      }
    }
    Status s;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLockAcquire);
      mcsim::ScopedModule mod(core_, e_->lock_.module);
      e_->Exec(core_, e_->lock_);
      s = e_->lock_manager_.Acquire(core_, txn_id_, LockId(table, rid),
                                    txn::LockMode::kExclusive);
      if (!s.ok()) return s;
    }
    if (slice.primary != nullptr) {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      mcsim::ScopedModule mod(core_, e_->btree_.module);
      e_->Exec(core_, e_->btree_);
      s = e_->PrimaryInsert(core_, slice, key, rid);
      if (!s.ok()) return s;
    }
    if (!slice.secondaries.empty()) {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      mcsim::ScopedModule mod(core_, e_->btree_.module);
      e_->InsertSecondaries(core_, rt, slice, row, rid);
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    mcsim::ScopedModule mod(core_, e_->log_.module);
    e_->Exec(core_, e_->log_);
    e_->logs_[core_->core_id()]->Append(
        core_, txn::LogOp::kInsert, txn_id_, static_cast<int16_t>(table),
        rid, -1, row, rt.def.schema.row_bytes(), key.data(), key.size());
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kInsertedRow;
    u.table = table;
    u.slice = 0;
    u.row = rid;
    u.key = key;
    u.image.assign(row, row + rt.def.schema.row_bytes());
    undo.push_back(std::move(u));
    dirty = true;
    if (out_row != nullptr) *out_row = rid;
    return Status::Ok();
  }

  Status Delete(int table, storage::RowId row,
                const index::Key& key) override {
    auto& slice = e_->tables_[table].slices[0];
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLockAcquire);
      mcsim::ScopedModule mod(core_, e_->lock_.module);
      e_->Exec(core_, e_->lock_);
      const Status s = e_->lock_manager_.Acquire(
          core_, txn_id_, LockId(table, row), txn::LockMode::kExclusive);
      if (!s.ok()) return s;
    }
    const storage::Schema& schema = e_->tables_[table].def.schema;
    std::vector<uint8_t> before(schema.row_bytes());
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      mcsim::ScopedModule mod(core_, HeapRegion().module);
      if (!RowRead(slice, row, before.data())) return Status::NotFound();
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      mcsim::ScopedModule mod(core_, e_->btree_.module);
      e_->Exec(core_, e_->btree_);
      if (!e_->PrimaryRemove(core_, slice, key)) {
        return Status::NotFound();
      }
      e_->RemoveSecondaries(core_, e_->tables_[table], slice,
                            before.data());
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      mcsim::ScopedModule mod(core_, HeapRegion().module);
      e_->Exec(core_, HeapRegion());
      if (!RowDelete(slice, row)) return Status::NotFound();
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    mcsim::ScopedModule mod(core_, e_->log_.module);
    e_->Exec(core_, e_->log_);
    e_->logs_[core_->core_id()]->Append(
        core_, txn::LogOp::kDelete, txn_id_, static_cast<int16_t>(table),
        row, -1, nullptr, 0, key.data(), key.size(), /*slice=*/0,
        e_->ckpt_logging() ? before.data() : nullptr,
        e_->ckpt_logging() ? schema.row_bytes() : 0);
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kDeletedRow;
    u.table = table;
    u.slice = 0;
    u.row = row;
    u.image = std::move(before);
    u.key = key;
    undo.push_back(std::move(u));
    dirty = true;
    return Status::Ok();
  }

  Status Scan(int table, const index::Key& from, uint64_t limit,
              std::vector<storage::RowId>* rows) override {
    PerOpFrontend();
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->btree_.module);
    e_->Exec(core_, e_->btree_);
    auto& slice = e_->tables_[table].slices[0];
    slice.primary->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

  Status ScanSecondary(int table, int secondary, const index::Key& from,
                       uint64_t limit,
                       std::vector<storage::RowId>* rows) override {
    PerOpFrontend();
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->btree_.module);
    e_->Exec(core_, e_->btree_);
    auto& slice = e_->tables_[table].slices[0];
    if (secondary < 0 ||
        secondary >= static_cast<int>(slice.secondaries.size())) {
      return Status::InvalidArgument("no such secondary index");
    }
    slice.secondaries[secondary]->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

 private:
  /// DBMS D interprets a plan operator per data operation.
  void PerOpFrontend() {
    if (e_->full_stack_) e_->Exec(core_, e_->plan_exec_);
  }

  /// Shore-MT: row-granularity lock ids; DBMS D: page granularity.
  uint64_t LockId(int table, storage::RowId row) const {
    if (e_->row_level_locks_ || !e_->options_.use_bufferpool) {
      return LockObject(table, row);
    }
    return LockObject(table, storage::DiskHeapFile::PageNo(row));
  }

  /// Buffer-pool ablation plumbing: the heap access path is either the
  /// slotted-page file behind the pool or a direct in-memory table.
  const mcsim::CodeRegion& HeapRegion() const {
    return e_->options_.use_bufferpool ? e_->heap_bp_ : e_->heap_direct_;
  }
  bool RowRead(EngineBase::Slice& slice, storage::RowId row,
               uint8_t* out) {
    return slice.disk ? slice.disk->Read(core_, row, out)
                      : slice.mem->ReadRow(core_, row, out);
  }
  bool RowWriteColumn(EngineBase::Slice& slice, storage::RowId row,
                      uint32_t column, const void* value) {
    if (slice.disk) {
      return slice.disk->WriteColumn(core_, row, column, value);
    }
    slice.mem->WriteColumn(core_, row, column, value);
    return true;
  }
  storage::RowId RowAppend(EngineBase::Slice& slice, const uint8_t* row) {
    return slice.disk ? slice.disk->Append(core_, row)
                      : slice.mem->Append(core_, row);
  }
  bool RowDelete(EngineBase::Slice& slice, storage::RowId row) {
    return slice.disk ? slice.disk->Delete(core_, row)
                      : slice.mem->Delete(core_, row);
  }

  DiskEngine* e_;
  mcsim::CoreSim* core_;
  uint64_t txn_id_;

 public:
  bool dirty = false;  // any update/insert/delete ran
  std::vector<EngineBase::UndoEntry> undo;
};

Status DiskEngine::Execute(int worker, const TxnRequest& request,
                           const std::function<Status(TxnContext&)>& body) {
  (void)request;
  mcsim::CoreSim* core = &machine_->core(worker);
  core->BeginTransaction();
  const uint64_t txn_id = ++next_txn_;

  if (full_stack_) {
    Exec(core, network_);
    Exec(core, parser_);
    Exec(core, optimizer_);
  }
  Exec(core, xct_begin_);

  // Crash before any work: nothing held, nothing logged.
  if (FaultCrash(fault::kCrashPreBody)) {
    return Status::Aborted("injected crash: pre_body");
  }

  Ctx ctx(this, core, txn_id);
  Status s = body(ctx);

  // Crash mid-commit: in-place changes stay dirty, locks stay held —
  // recovery must drop this transaction (no commit record was logged).
  if (s.ok() && FaultCrash(fault::kCrashMidCommit)) {
    return Status::Aborted("injected crash: mid_commit");
  }

  if (!s.ok()) {
    // Abort: undo in-place changes, release locks, log the abort.
    if (!ctx.undo.empty()) {
      obs::ScopedSpan span(&spans_, core,
                           obs::SpanKind::kStorageAccess);
      mcsim::ScopedModule mod(core, heap_bp_.module);
      ApplyUndo(core, ctx.undo, logs_[core->core_id()].get(), txn_id);
    }
    {
      obs::ScopedSpan span(&spans_, core,
                           obs::SpanKind::kLockAcquire);
      mcsim::ScopedModule mod(core, lock_.module);
      lock_manager_.ReleaseAll(core, txn_id);
    }
    {
      obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLogAppend);
      Exec(core, log_);
      logs_[core->core_id()]->LogAbort(core, txn_id);
    }
    Exec(core, xct_commit_);
    return s;
  }

  if (ctx.dirty) {
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLogAppend);
    mcsim::ScopedModule mod(core, log_.module);
    Exec(core, log_);
    logs_[core->core_id()]->LogCommit(core, txn_id);
  }
  // Crash after the commit record but before lock release / flush: the
  // commit is durable only up to the flushed log prefix.
  if (FaultCrash(fault::kCrashPostCommit)) {
    return Status::Aborted("injected crash: post_commit");
  }
  {
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLockAcquire);
    mcsim::ScopedModule mod(core, lock_.module);
    lock_manager_.ReleaseAll(core, txn_id);
  }
  Exec(core, xct_commit_);
  if (full_stack_) Exec(core, network_);
  return Status::Ok();
}

}  // namespace imoltp::engine
