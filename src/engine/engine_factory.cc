#include "engine/disk_engine.h"
#include "engine/engine.h"
#include "engine/mvcc_engine.h"
#include "engine/partitioned_engine.h"

namespace imoltp::engine {

std::unique_ptr<Engine> CreateEngine(EngineKind kind,
                                     mcsim::MachineSim* machine,
                                     const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kShoreMt:
    case EngineKind::kDbmsD:
      return std::make_unique<DiskEngine>(kind, machine, options);
    case EngineKind::kVoltDb:
    case EngineKind::kHyPer:
      return std::make_unique<PartitionedEngine>(kind, machine, options);
    case EngineKind::kDbmsM:
      return std::make_unique<MvccEngine>(machine, options);
  }
  return nullptr;
}

bool ParseEngineKind(const std::string& name, EngineKind* out) {
  if (name == "shore-mt") return *out = EngineKind::kShoreMt, true;
  if (name == "dbms-d") return *out = EngineKind::kDbmsD, true;
  if (name == "voltdb") return *out = EngineKind::kVoltDb, true;
  if (name == "hyper") return *out = EngineKind::kHyPer, true;
  if (name == "dbms-m") return *out = EngineKind::kDbmsM, true;
  return false;
}

const char* EngineKindChoices() {
  return "shore-mt dbms-d voltdb hyper dbms-m";
}

}  // namespace imoltp::engine
