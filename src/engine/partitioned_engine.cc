#include "engine/partitioned_engine.h"

#include "obs/span.h"

namespace imoltp::engine {

PartitionedEngine::PartitionedEngine(EngineKind kind,
                                     mcsim::MachineSim* machine,
                                     const EngineOptions& options)
    : EngineBase(machine, options),
      kind_(kind),
      compiled_(kind == EngineKind::kHyPer),
      partitions_(options.num_partitions) {
  if (compiled_) {
    dispatch_ = DefineRegion(hyper_profile_.dispatch);
    commit_ = DefineRegion(hyper_profile_.commit);
    log_ = DefineRegion(hyper_profile_.log);
  } else {
    dispatch_ = DefineRegion(volt_profile_.dispatch);
    ee_op_ = DefineRegion(volt_profile_.ee_op);
    index_op_ = DefineRegion(volt_profile_.index_op);
    commit_ = DefineRegion(volt_profile_.commit);
    log_ = DefineRegion(volt_profile_.cmd_log);
    multi_site_ = DefineRegion(volt_profile_.multi_site);
  }
}

mcsim::CodeRegion PartitionedEngine::CompiledRegion(int txn_type,
                                                    int statements) {
  std::lock_guard<std::mutex> guard(compiled_mu_);
  auto it = compiled_txns_.find(txn_type);
  if (it == compiled_txns_.end()) {
    // Compile on first use: code size and straight-line instruction
    // count grow with the procedure's statement count.
    RegionSpec spec = hyper_profile_.compiled_txn;
    // Distinct module name per procedure: each type is its own compiled
    // code object, and duplicate names would collide in the report's
    // module_breakdown object keys. ModuleRegistry copies the name, so
    // the local only has to outlive DefineRegion.
    const std::string name =
        std::string(spec.module) + "#" + std::to_string(txn_type);
    spec.module = name.c_str();
    const uint32_t extra = statements > 1 ? statements - 1 : 0;
    spec.total_bytes += extra * hyper_profile_.per_statement_bytes;
    spec.touched_bytes += extra * hyper_profile_.per_statement_bytes;
    spec.instructions += extra * hyper_profile_.per_statement_instructions;
    it = compiled_txns_.emplace(txn_type, DefineRegion(spec)).first;
  }
  return it->second;
}

/// Stored-procedure context: direct in-memory table and index access, no
/// locks (serial partition execution guarantees isolation).
class PartitionedEngine::Ctx final : public TxnContext {
 public:
  Ctx(PartitionedEngine* e, mcsim::CoreSim* core, uint64_t txn_id,
      int slice, mcsim::ModuleId op_module)
      : e_(e),
        core_(core),
        txn_id_(txn_id),
        slice_(slice),
        op_module_(op_module) {}

  mcsim::CoreSim* core() override { return core_; }

  Status Probe(int table, const index::Key& key,
               storage::RowId* row) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(
        core_, e_->compiled_ ? op_module_ : e_->index_op_.module);
    OpCode(table);
    if (!e_->compiled_) e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[slice_];
    uint64_t value;
    if (slice.primary == nullptr ||
        !slice.primary->Lookup(core_, key, &value)) {
      return Status::NotFound();
    }
    *row = value;
    return Status::Ok();
  }

  Status Read(int table, storage::RowId row, uint8_t* out) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kStorageAccess);
    mcsim::ScopedModule mod(core_, op_module_);
    OpCode(table);
    auto& slice = e_->tables_[table].slices[slice_];
    if (!slice.mem->ReadRow(core_, row, out)) return Status::NotFound();
    return Status::Ok();
  }

  Status Update(int table, storage::RowId row, uint32_t column,
                const void* value) override {
    mcsim::ScopedModule mod(core_, op_module_);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[slice_];
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      OpCode(table);
      // Before-image for rollback of failed procedures.
      std::vector<uint8_t> before(rt.def.schema.row_bytes());
      if (!slice.mem->ReadRow(core_, row, before.data())) {
        return Status::NotFound();
      }
      EngineBase::UndoEntry u;
      u.kind = EngineBase::UndoEntry::Kind::kColumnImage;
      u.table = table;
      u.slice = slice_;
      u.row = row;
      u.column = column;
      u.image.assign(rt.def.schema.ColumnPtr(before.data(), column),
                     rt.def.schema.ColumnPtr(before.data(), column) +
                         rt.def.schema.column_width(column));
      undo.push_back(std::move(u));
      slice.mem->WriteColumn(core_, row, column, value);
    }
    // VoltDB command logging logs per transaction, not per update;
    // HyPer writes a redo record per update.
    if (e_->compiled_) {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLogAppend);
      e_->Exec(core_, e_->log_);
      const auto& before_img = undo.back().image;
      e_->logs_[core_->core_id()]->LogUpdate(
          core_, txn_id_, static_cast<int16_t>(table), row,
          static_cast<int16_t>(column), value,
          rt.def.schema.column_width(column),
          static_cast<int16_t>(slice_),
          e_->ckpt_logging() ? before_img.data() : nullptr,
          e_->ckpt_logging()
              ? static_cast<uint32_t>(before_img.size())
              : 0);
    }
    dirty = true;
    return Status::Ok();
  }

  Status Insert(int table, const uint8_t* row, const index::Key& key,
                storage::RowId* out_row) override {
    mcsim::ScopedModule mod(core_, op_module_);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[slice_];
    storage::RowId rid;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      OpCode(table);
      rid = slice.mem->Append(core_, row);
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      if (!e_->compiled_) e_->Exec(core_, e_->index_op_);
      if (slice.primary != nullptr) {
        const Status s = e_->PrimaryInsert(core_, slice, key, rid);
        if (!s.ok()) return s;
      }
      e_->InsertSecondaries(core_, rt, slice, row, rid);
    }
    if (e_->compiled_) {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLogAppend);
      e_->Exec(core_, e_->log_);
      e_->logs_[core_->core_id()]->Append(
          core_, txn::LogOp::kInsert, txn_id_,
          static_cast<int16_t>(table), rid, -1, row,
          rt.def.schema.row_bytes(), key.data(), key.size(),
          static_cast<int16_t>(slice_));
    }
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kInsertedRow;
    u.table = table;
    u.slice = slice_;
    u.row = rid;
    u.key = key;
    u.image.assign(row, row + rt.def.schema.row_bytes());
    undo.push_back(std::move(u));
    dirty = true;
    if (out_row != nullptr) *out_row = rid;
    return Status::Ok();
  }

  Status Delete(int table, storage::RowId row,
                const index::Key& key) override {
    mcsim::ScopedModule mod(core_, op_module_);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[slice_];
    std::vector<uint8_t> before(rt.def.schema.row_bytes());
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      OpCode(table);
      if (!slice.mem->ReadRow(core_, row, before.data())) {
        return Status::NotFound();
      }
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      if (!e_->compiled_) e_->Exec(core_, e_->index_op_);
      if (!e_->PrimaryRemove(core_, slice, key)) {
        return Status::NotFound();
      }
      e_->RemoveSecondaries(core_, rt, slice, before.data());
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      if (!slice.mem->Delete(core_, row)) return Status::NotFound();
    }
    if (e_->compiled_) {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kLogAppend);
      e_->Exec(core_, e_->log_);
      e_->logs_[core_->core_id()]->Append(
          core_, txn::LogOp::kDelete, txn_id_,
          static_cast<int16_t>(table), row, -1, nullptr, 0, key.data(),
          key.size(), static_cast<int16_t>(slice_),
          e_->ckpt_logging() ? before.data() : nullptr,
          e_->ckpt_logging() ? rt.def.schema.row_bytes() : 0);
    }
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kDeletedRow;
    u.table = table;
    u.slice = slice_;
    u.row = row;
    u.image = std::move(before);
    u.key = key;
    undo.push_back(std::move(u));
    dirty = true;
    return Status::Ok();
  }

  Status Scan(int table, const index::Key& from, uint64_t limit,
              std::vector<storage::RowId>* rows) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, op_module_);
    OpCode(table);
    if (!e_->compiled_) e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[slice_];
    slice.primary->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

  Status ScanSecondary(int table, int secondary, const index::Key& from,
                       uint64_t limit,
                       std::vector<storage::RowId>* rows) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, op_module_);
    OpCode(table);
    if (!e_->compiled_) e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[slice_];
    if (secondary < 0 ||
        secondary >= static_cast<int>(slice.secondaries.size())) {
      return Status::InvalidArgument("no such secondary index");
    }
    slice.secondaries[secondary]->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

 private:
  /// Per-operation code: VoltDB interprets an executor operator; HyPer's
  /// compiled code adds only a few straight-line instructions. Value
  /// handling (deserialize/copy/validate) scales with the row bytes —
  /// interpreted engines pay ~12 instructions per byte, compiled code
  /// ~3 (it operates on the storage format in place).
  void OpCode(int table) {
    const uint32_t row_bytes =
        e_->tables_[table].def.schema.row_bytes();
    if (e_->compiled_) {
      core_->Retire(e_->hyper_profile_.per_op_instructions +
                    row_bytes * 2);
    } else {
      e_->Exec(core_, e_->ee_op_);
      core_->Retire(row_bytes * 6);
    }
  }

  PartitionedEngine* e_;
  mcsim::CoreSim* core_;
  uint64_t txn_id_;
  int slice_;
  mcsim::ModuleId op_module_;

 public:
  bool dirty = false;  // any update/insert/delete ran
  std::vector<EngineBase::UndoEntry> undo;
};

Status PartitionedEngine::Execute(
    int worker, const TxnRequest& request,
    const std::function<Status(TxnContext&)>& body) {
  mcsim::CoreSim* core = &machine_->core(worker);
  core->BeginTransaction();
  const uint64_t txn_id = ++next_txn_;

  const int home = partitions_.PartitionOf(request.partition_key,
                                           request.key_space);
  Exec(core, dispatch_);

  if (options_.single_site) {
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLockAcquire);
    const Status s = partitions_.EnterSinglePartition(core, worker, home);
    if (!s.ok()) return s;
  } else {
    // Multi-partition coordination path (Section 7 ablation).
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLockAcquire);
    Exec(core, multi_site_);
    const Status s =
        partitions_.EnterMultiPartition(core, worker, {home});
    if (!s.ok()) return s;
  }

  // Crash before any work: the partition executor dies idle.
  if (FaultCrash(fault::kCrashPreBody)) {
    return Status::Aborted("injected crash: pre_body");
  }

  mcsim::CodeRegion compiled_region;
  if (compiled_) {
    compiled_region = CompiledRegion(request.type, request.statements);
  }
  const mcsim::ModuleId op_module =
      compiled_ ? compiled_region.module : ee_op_.module;
  Ctx ctx(this, core, txn_id, home, op_module);
  if (compiled_) Exec(core, compiled_region);
  Status s = body(ctx);

  // Crash mid-commit: in-place changes stay dirty with no commit (or
  // command) record, so recovery drops the transaction.
  if (s.ok() && FaultCrash(fault::kCrashMidCommit)) {
    return Status::Aborted("injected crash: mid_commit");
  }

  if (!options_.single_site) {
    partitions_.ReleaseMultiPartition(core, worker);
  }
  if (!s.ok()) {
    // Failed procedure: roll back its in-place changes.
    {
      obs::ScopedSpan span(&spans_, core,
                           obs::SpanKind::kStorageAccess);
      ApplyUndo(core, ctx.undo, logs_[core->core_id()].get(), txn_id);
    }
    if (compiled_ && ctx.dirty) {
      obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLogAppend);
      logs_[core->core_id()]->LogAbort(core, txn_id);
    }
    return s;
  }

  Exec(core, commit_);
  if (ctx.dirty) {
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLogAppend);
    if (!compiled_) {
      // Command logging: one record per transaction invocation.
      Exec(core, log_);
      logs_[core->core_id()]->Append(core, txn::LogOp::kCommand, txn_id,
                                     -1, 0, -1, &request,
                                     sizeof(request));
    } else {
      logs_[core->core_id()]->LogCommit(core, txn_id);
    }
  }
  // Crash after the commit/command record hit the log ring.
  if (FaultCrash(fault::kCrashPostCommit)) {
    return Status::Aborted("injected crash: post_commit");
  }
  return Status::Ok();
}

}  // namespace imoltp::engine
