#ifndef IMOLTP_ENGINE_MVCC_ENGINE_H_
#define IMOLTP_ENGINE_MVCC_ENGINE_H_

#include "engine/engine_base.h"
#include "txn/mvcc.h"

namespace imoltp::engine {

/// DBMS M: the main-memory OLTP engine of a traditional disk-based
/// commercial system (paper Section 3). Optimistic multiversion
/// concurrency control, a hash index (or a cache-conscious B-tree where
/// range scans are needed), optional transaction compilation — and a
/// large inherited frontend: the paper repeatedly attributes DBMS M's
/// high L1I stalls to "the legacy code it borrows from the traditional
/// disk-based OLTP system it belongs to" (Sections 4.1.3, 4.2.2, 8).
class MvccEngine final : public EngineBase {
 public:
  MvccEngine(mcsim::MachineSim* machine, const EngineOptions& options);

  EngineKind kind() const override { return EngineKind::kDbmsM; }
  Status Execute(int worker, const TxnRequest& request,
                 const std::function<Status(TxnContext&)>& body) override;

 protected:
  index::IndexKind default_index_kind(const TableDef&) const override {
    return options_.dbms_m_index;
  }
  /// MVCC stages updates privately until commit: a loser's kUpdate
  /// never reached the table, so recovery must not undo it.
  bool updates_in_place() const override { return false; }

 private:
  class Ctx;
  friend class Ctx;

  DbmsMProfile profile_;
  mcsim::CodeRegion session_, query_layer_, txn_mgmt_, mvcc_op_,
      storage_op_, index_op_, validate_commit_, log_;
  txn::MvccManager mvcc_;
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_MVCC_ENGINE_H_
