#include "engine/mvcc_engine.h"

#include <cstring>

#include "obs/span.h"

namespace imoltp::engine {

MvccEngine::MvccEngine(mcsim::MachineSim* machine,
                       const EngineOptions& options)
    : EngineBase(machine, options) {
  session_ = DefineRegion(profile_.session);
  query_layer_ = DefineRegion(profile_.query_layer);
  txn_mgmt_ = DefineRegion(profile_.txn_mgmt);
  mvcc_op_ = DefineRegion(profile_.mvcc_op);
  storage_op_ = DefineRegion(options.compilation ? profile_.storage_compiled
                                                 : profile_.storage_interp);
  index_op_ = DefineRegion(profile_.index_op);
  validate_commit_ = DefineRegion(profile_.validate_commit);
  log_ = DefineRegion(profile_.log);
}

/// Stored-procedure context: every operation runs MVCC visibility /
/// staging plus the (compiled or interpreted) storage-engine code.
class MvccEngine::Ctx final : public TxnContext {
 public:
  Ctx(MvccEngine* e, mcsim::CoreSim* core, uint64_t txn_id)
      : e_(e), core_(core), txn_id_(txn_id) {}

  mcsim::CoreSim* core() override { return core_; }

  Status Probe(int table, const index::Key& key,
               storage::RowId* row) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->index_op_.module);
    e_->Exec(core_, e_->storage_op_);
    e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[0];
    uint64_t value;
    if (slice.primary == nullptr ||
        !slice.primary->Lookup(core_, key, &value)) {
      return Status::NotFound();
    }
    *row = value;
    return Status::Ok();
  }

  Status Read(int table, storage::RowId row, uint8_t* out) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kStorageAccess);
    mcsim::ScopedModule mod(core_, e_->mvcc_op_.module);
    e_->Exec(core_, e_->storage_op_);
    core_->Retire(e_->tables_[table].def.schema.row_bytes() * 4);
    e_->Exec(core_, e_->mvcc_op_);
    auto& slice = e_->tables_[table].slices[0];
    std::vector<uint8_t> version;
    if (e_->mvcc_.ReadOwnWrite(core_, txn_id_,
                               static_cast<uint64_t>(table), row,
                               &version)) {
      // Read-your-own-writes: the txn's staged image shadows every
      // committed version.
      std::memcpy(out, version.data(),
                  e_->tables_[table].def.schema.row_bytes());
      return Status::Ok();
    }
    if (e_->mvcc_.Read(core_, txn_id_, static_cast<uint64_t>(table), row,
                       &version)) {
      // An older image is visible at this snapshot.
      std::memcpy(out, version.data(),
                  e_->tables_[table].def.schema.row_bytes());
      return Status::Ok();
    }
    if (!slice.mem->ReadRow(core_, row, out)) return Status::NotFound();
    return Status::Ok();
  }

  Status Update(int table, storage::RowId row, uint32_t column,
                const void* value) override {
    mcsim::ScopedModule mod(core_, e_->mvcc_op_.module);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[0];
    std::vector<uint8_t> next;
    std::vector<uint8_t> prior_copy;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      e_->Exec(core_, e_->storage_op_);
      core_->Retire(rt.def.schema.row_bytes() * 4);
      e_->Exec(core_, e_->mvcc_op_);
      // Versioned update: build the new full-row image from the current
      // one (multiversioning copies rows; it never updates in place).
      // "Current" means this transaction's own staged image when it
      // already wrote the row — otherwise a second single-column update
      // would rebuild from the committed image and silently drop the
      // first one.
      std::vector<uint8_t> prior(rt.def.schema.row_bytes());
      std::vector<uint8_t> own;
      if (e_->mvcc_.ReadOwnWrite(core_, txn_id_,
                                 static_cast<uint64_t>(table), row,
                                 &own)) {
        std::memcpy(prior.data(), own.data(), prior.size());
      } else if (!slice.mem->ReadRow(core_, row, prior.data())) {
        return Status::NotFound();
      }
      next = prior;
      std::memcpy(next.data() + rt.def.schema.column_offset(column),
                  value, rt.def.schema.column_width(column));
      const Status s = e_->mvcc_.StageWrite(
          core_, txn_id_, static_cast<uint64_t>(table), row, next.data(),
          static_cast<uint32_t>(next.size()), prior.data());
      if (!s.ok()) return s;
      if (e_->ckpt_logging()) prior_copy = std::move(prior);
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    e_->Exec(core_, e_->log_);
    e_->logs_[core_->core_id()]->LogUpdate(
        core_, txn_id_, static_cast<int16_t>(table), row, -1,
        next.data(), rt.def.schema.row_bytes(), /*slice=*/0,
        e_->ckpt_logging() ? prior_copy.data() : nullptr,
        e_->ckpt_logging() ? rt.def.schema.row_bytes() : 0);
    return Status::Ok();
  }

  Status Insert(int table, const uint8_t* row, const index::Key& key,
                storage::RowId* out_row) override {
    mcsim::ScopedModule mod(core_, e_->index_op_.module);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[0];
    storage::RowId rid;
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      e_->Exec(core_, e_->storage_op_);
      rid = slice.mem->Append(core_, row);
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      e_->Exec(core_, e_->index_op_);
      if (slice.primary != nullptr) {
        const Status s = e_->PrimaryInsert(core_, slice, key, rid);
        if (!s.ok()) return s;
      }
      e_->InsertSecondaries(core_, rt, slice, row, rid);
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    e_->Exec(core_, e_->log_);
    e_->logs_[core_->core_id()]->Append(
        core_, txn::LogOp::kInsert, txn_id_, static_cast<int16_t>(table),
        rid, -1, row, rt.def.schema.row_bytes(), key.data(), key.size());
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kInsertedRow;
    u.table = table;
    u.slice = 0;
    u.row = rid;
    u.key = key;
    u.image.assign(row, row + rt.def.schema.row_bytes());
    undo.push_back(std::move(u));
    if (out_row != nullptr) *out_row = rid;
    return Status::Ok();
  }

  Status Delete(int table, storage::RowId row,
                const index::Key& key) override {
    mcsim::ScopedModule mod(core_, e_->mvcc_op_.module);
    auto& rt = e_->tables_[table];
    auto& slice = rt.slices[0];
    std::vector<uint8_t> before(rt.def.schema.row_bytes());
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      e_->Exec(core_, e_->storage_op_);
      e_->Exec(core_, e_->mvcc_op_);
      if (!slice.mem->ReadRow(core_, row, before.data())) {
        return Status::NotFound();
      }
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kIndexProbe);
      e_->Exec(core_, e_->index_op_);
      if (!e_->PrimaryRemove(core_, slice, key)) {
        return Status::NotFound();
      }
      e_->RemoveSecondaries(core_, rt, slice, before.data());
    }
    {
      obs::ScopedSpan span(&e_->spans_, core_,
                           obs::SpanKind::kStorageAccess);
      if (!slice.mem->Delete(core_, row)) return Status::NotFound();
    }
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kLogAppend);
    e_->Exec(core_, e_->log_);
    e_->logs_[core_->core_id()]->Append(
        core_, txn::LogOp::kDelete, txn_id_, static_cast<int16_t>(table),
        row, -1, nullptr, 0, key.data(), key.size(), /*slice=*/0,
        e_->ckpt_logging() ? before.data() : nullptr,
        e_->ckpt_logging() ? rt.def.schema.row_bytes() : 0);
    EngineBase::UndoEntry u;
    u.kind = EngineBase::UndoEntry::Kind::kDeletedRow;
    u.table = table;
    u.slice = 0;
    u.row = row;
    u.image = std::move(before);
    u.key = key;
    undo.push_back(std::move(u));
    return Status::Ok();
  }

  Status Scan(int table, const index::Key& from, uint64_t limit,
              std::vector<storage::RowId>* rows) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->index_op_.module);
    e_->Exec(core_, e_->storage_op_);
    e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[0];
    slice.primary->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

  Status ScanSecondary(int table, int secondary, const index::Key& from,
                       uint64_t limit,
                       std::vector<storage::RowId>* rows) override {
    obs::ScopedSpan span(&e_->spans_, core_,
                         obs::SpanKind::kIndexProbe);
    mcsim::ScopedModule mod(core_, e_->index_op_.module);
    e_->Exec(core_, e_->storage_op_);
    e_->Exec(core_, e_->index_op_);
    auto& slice = e_->tables_[table].slices[0];
    if (secondary < 0 ||
        secondary >= static_cast<int>(slice.secondaries.size())) {
      return Status::InvalidArgument("no such secondary index");
    }
    slice.secondaries[secondary]->Scan(core_, from, limit, rows);
    return Status::Ok();
  }

 private:
  MvccEngine* e_;
  mcsim::CoreSim* core_;
  uint64_t txn_id_;

 public:
  std::vector<EngineBase::UndoEntry> undo;
};

Status MvccEngine::Execute(int worker, const TxnRequest& request,
                           const std::function<Status(TxnContext&)>& body) {
  (void)request;
  mcsim::CoreSim* core = &machine_->core(worker);
  core->BeginTransaction();

  // Legacy frontend inherited from the parent disk-based system.
  Exec(core, session_);
  Exec(core, query_layer_);
  Exec(core, txn_mgmt_);

  uint64_t txn_id;
  {
    mcsim::ScopedModule mod(core, txn_mgmt_.module);
    txn_id = mvcc_.Begin(core);
  }
  // Crash before any work: the open snapshot just vanishes.
  if (FaultCrash(fault::kCrashPreBody)) {
    return Status::Aborted("injected crash: pre_body");
  }

  Ctx ctx(this, core, txn_id);
  Status s = body(ctx);

  // Crash mid-commit: staged versions die with the process; in-place
  // inserts/deletes stay dirty and no commit record exists, so recovery
  // drops the transaction.
  if (s.ok() && FaultCrash(fault::kCrashMidCommit)) {
    return Status::Aborted("injected crash: mid_commit");
  }

  if (!s.ok()) {
    mvcc_.Abort(core, txn_id);
    // Inserts/deletes were applied in place; their undo emits CLRs
    // under checkpointing.
    ApplyUndo(core, ctx.undo, logs_[core->core_id()].get(), txn_id);
    logs_[core->core_id()]->LogAbort(core, txn_id);
    return s;
  }

  mcsim::ScopedModule mod(core, validate_commit_.module);
  Exec(core, validate_commit_);
  std::vector<txn::MvccManager::StagedWrite> installs;
  s = mvcc_.Commit(core, txn_id, &installs);
  if (!s.ok()) {
    // Validation failure: staged updates vanish with the transaction,
    // but in-place inserts/deletes need explicit rollback.
    ApplyUndo(core, ctx.undo, logs_[core->core_id()].get(), txn_id);
    logs_[core->core_id()]->LogAbort(core, txn_id);
    return s;
  }
  for (const auto& w : installs) {
    auto& rt = tables_[w.table_id];
    auto& slice = rt.slices[0];
    // Install the committed image as the table's current version.
    for (uint32_t c = 0; c < rt.def.schema.num_columns(); ++c) {
      slice.mem->WriteColumn(core, w.row, c,
                             rt.def.schema.ColumnPtr(w.data.data(), c));
    }
  }
  if (!installs.empty() || !ctx.undo.empty()) {
    // Staged updates or in-place inserts/deletes: a commit record makes
    // the transaction's log records replayable.
    obs::ScopedSpan span(&spans_, core, obs::SpanKind::kLogAppend);
    Exec(core, log_);
    logs_[core->core_id()]->LogCommit(core, txn_id);
  }
  // Crash after the commit record: durable only up to the flushed
  // prefix of the log.
  if (FaultCrash(fault::kCrashPostCommit)) {
    return Status::Aborted("injected crash: post_commit");
  }
  return Status::Ok();
}

}  // namespace imoltp::engine
