#ifndef IMOLTP_ENGINE_ENGINE_BASE_H_
#define IMOLTP_ENGINE_ENGINE_BASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/engine.h"
#include "engine/profiles.h"
#include "storage/buffer_pool.h"
#include "storage/disk_heap_file.h"
#include "txn/checkpoint.h"
#include "txn/log_manager.h"

namespace imoltp::engine {

/// Shared machinery for the engine archetypes: table slices (one per
/// partition for the partitioned engines, one total otherwise), bulk
/// population, code-region instantiation, and per-worker logging.
class EngineBase : public Engine {
 public:
  EngineBase(mcsim::MachineSim* machine, const EngineOptions& options);
  ~EngineBase() override = default;

  mcsim::MachineSim* machine() override { return machine_; }
  obs::SpanCollector* span_collector() override { return &spans_; }

  Status CreateDatabase(const std::vector<TableDef>& defs) override;
  std::vector<txn::LogRecord> StableLog() const override;
  std::vector<txn::LogRecord> FlushedLog() const override;
  Status Replay(const std::vector<txn::LogRecord>& log) override;
  void CheckpointTick(int worker) override;
  Status Recover(const std::vector<txn::CheckpointImage>& device,
                 const std::vector<txn::LogRecord>& log,
                 uint64_t log_truncation_lsn,
                 txn::RecoveryStats* stats) override;
  const txn::CheckpointManager* checkpoints() const override {
    return ckpt_.get();
  }
  uint64_t LogTruncationLsn() const override;
  uint64_t AppendedLogRecords() const override;

 protected:
  /// One partition's share of one table. In-memory engines fill `mem`;
  /// disk engines fill `disk` (always a single slice).
  struct Slice {
    std::unique_ptr<storage::Table> mem;
    std::unique_ptr<storage::DiskHeapFile> disk;
    std::unique_ptr<index::Index> primary;
    std::vector<std::unique_ptr<index::Index>> secondaries;
    uint64_t first_global_row = 0;
    uint64_t num_initial_rows = 0;
    /// Disk engines: initial global row r → heap RowId.
    std::vector<storage::RowId> rowid_of;
    /// Post-population index mutations (checkpoint key journal;
    /// indexes expose no key iteration, so checkpoints carry this to
    /// rebuild keys whose inserts were truncated out of the log).
    /// Heap-allocated mutex keeps Slice movable; only used when
    /// checkpointing is enabled.
    std::vector<txn::CheckpointJournalEntry> journal;
    std::unique_ptr<std::mutex> journal_mu;
  };

  struct TableRt {
    TableDef def;
    std::vector<Slice> slices;
  };

  /// How many slices this engine splits tables into (partitioned
  /// engines: one per worker; others: 1).
  virtual int num_slices() const { return 1; }

  /// True for the disk-based archetypes (rows in slotted pages behind
  /// the buffer pool).
  virtual bool disk_based() const { return false; }

  /// Hook: engines may pre-create code regions after the database is
  /// loaded (compiled engines create per-transaction-type regions lazily
  /// in Execute instead).
  virtual void OnDatabaseReady() {}

  mcsim::CodeRegion DefineRegion(const RegionSpec& spec);

  /// Streams all index paths and rows once after population (steady-state
  /// cache warm-up; see CreateDatabase).
  void WarmCaches();

  void Exec(mcsim::CoreSim* core, const mcsim::CodeRegion& region) const {
    core->ExecuteRegion(region);
  }

  index::IndexKind PrimaryIndexKind(const TableDef& def) const;

  /// Default key derivation for initial rows when TableDef::key_of is
  /// unset: the global row id, encoded per key width.
  static index::Key DefaultKeyOf(const storage::Schema& schema,
                                 storage::RowId r, uint64_t seed);
  static index::Key KeyForRow(const TableDef& def, storage::RowId r);

  /// Per-engine default index kind.
  virtual index::IndexKind default_index_kind(
      const TableDef& def) const = 0;

  /// Storage-agnostic row operations on a slice (disk heap or memory
  /// table), used by recovery replay and the engines' undo paths.
  bool SliceRead(mcsim::CoreSim* core, Slice& slice, storage::RowId row,
                 uint8_t* out);
  bool SliceWriteColumn(mcsim::CoreSim* core, Slice& slice,
                        storage::RowId row, uint32_t column,
                        const void* value, const storage::Schema& schema);
  void SliceWriteRow(mcsim::CoreSim* core, Slice& slice,
                     storage::RowId row, const uint8_t* image,
                     const storage::Schema& schema);
  storage::RowId SliceAppend(mcsim::CoreSim* core, Slice& slice,
                             const uint8_t* row);
  bool SliceDelete(mcsim::CoreSim* core, Slice& slice,
                   storage::RowId row);
  /// Recovery placement: puts `image` at exactly `row` (RowIds in log
  /// records and checkpoint pages are physical positions; replayed rows
  /// must land where the live run put them). `present == false`
  /// restores the row as deleted/absent.
  void SliceRestore(mcsim::CoreSim* core, Slice& slice,
                    storage::RowId row, const uint8_t* image,
                    bool present);

  /// Per-transaction undo record (before-images / structural inverses)
  /// for engines that modify state in place before commit.
  struct UndoEntry {
    enum class Kind { kColumnImage, kInsertedRow, kDeletedRow };
    Kind kind;
    int table;
    int slice;
    storage::RowId row;
    uint32_t column = 0;
    std::vector<uint8_t> image;  // before-image (column or full row)
    index::Key key;
  };

  /// Rolls a failed transaction back: applies `undo` in reverse order.
  /// When fuzzy checkpointing is on and the engine logs physically,
  /// pass the worker's log + txn id: every undo action then emits a
  /// redo-only compensation record (CLR) so recovery can repair
  /// checkpoint pages that captured the aborted transaction's writes.
  void ApplyUndo(mcsim::CoreSim* core, std::vector<UndoEntry>& undo,
                 txn::LogManager* log = nullptr, uint64_t txn_id = 0);

  /// Journaled primary-index mutation (records a checkpoint journal
  /// entry when checkpointing is enabled).
  Status PrimaryInsert(mcsim::CoreSim* core, Slice& slice,
                       const index::Key& key, storage::RowId rid);
  bool PrimaryRemove(mcsim::CoreSim* core, Slice& slice,
                     const index::Key& key);

  /// Secondary-index maintenance from a row image (journaled).
  void InsertSecondaries(mcsim::CoreSim* core, TableRt& rt, Slice& slice,
                         const uint8_t* row, storage::RowId rid);
  void RemoveSecondaries(mcsim::CoreSim* core, TableRt& rt, Slice& slice,
                         const uint8_t* row);

  /// True while checkpointing is active: engines attach before-images
  /// to their physical log records (recovery needs them to roll back
  /// losers whose writes a fuzzy checkpoint captured).
  bool ckpt_logging() const { return ckpt_ != nullptr; }

  /// False for engines whose log carries no physical records (VoltDB
  /// command logging): CLRs and loser undo do not apply.
  virtual bool logs_physical() const { return true; }

  /// False for engines that stage updates privately until commit
  /// (MVCC): a loser's kUpdate never reached the table, so recovery
  /// must not write its before-image (it would clobber committed
  /// values).
  virtual bool updates_in_place() const { return true; }

  /// Fault-point helpers over options_.fault_injector (null ⇒ never).
  bool FaultFires(const char* point) {
    return options_.fault_injector != nullptr &&
           options_.fault_injector->Fires(point);
  }
  /// Crash-class point: latches crash_pending on the injector so the
  /// experiment loop halts. The engine returns Aborted — a crashed
  /// process does no further work in this transaction.
  bool FaultCrash(const char* point) {
    return options_.fault_injector != nullptr &&
           options_.fault_injector->FireCrash(point);
  }

  mcsim::MachineSim* machine_;
  EngineOptions options_;
  obs::SpanCollector spans_;
  std::vector<TableRt> tables_;
  std::unique_ptr<storage::BufferPool> bufferpool_;  // disk engines
  std::vector<std::unique_ptr<txn::LogManager>> logs_;  // per worker
  uint32_t next_file_id_ = 1;

  /// Checkpoint state (null when options_.checkpoint.enabled is false).
  std::unique_ptr<txn::CheckpointManager> ckpt_;
  /// Journaling starts once population is done: CreateDatabase's bulk
  /// index fill is regenerable and never journaled.
  bool journal_enabled_ = false;

 private:
  void JournalPrimary(Slice& slice, bool insert, const index::Key& key,
                      storage::RowId rid);
  void JournalSecondary(Slice& slice, int16_t target, bool insert,
                        const index::Key& key, storage::RowId rid);

  /// Capture worker `w`'s share of the pending checkpoint
  /// (partitioned engines: every table's slice w, atomically at a
  /// transaction boundary).
  void CapturePartition(int worker, txn::CheckpointImage* pending);
  /// Capture up to policy.pages_per_step pages of the fuzzy capture
  /// plan (non-partitioned engines, worker 0 ticks).
  void CaptureStep(mcsim::CoreSim* core, txn::CheckpointImage* pending);
  void CaptureSliceMeta(mcsim::CoreSim* core, int table, int slice_idx,
                        txn::CheckpointSliceImage* out);
  txn::CheckpointPage CapturePage(mcsim::CoreSim* core, int table,
                                  int slice_idx, uint64_t page_no);
  void BeginCheckpoint(int worker);
  void FinishCheckpoint(int worker);

  /// Restores one captured page onto the (freshly created) database.
  void RestorePage(mcsim::CoreSim* core, const txn::CheckpointPage& page,
                   txn::RecoveryStats* stats);

  /// ARIES REDO: applies committed transactions' records plus all CLRs
  /// in LSN order. Shared by full replay and checkpoint recovery;
  /// counts applied records into `stats` when given. Caller brackets
  /// with SetEnabled(false/true).
  Status RedoPass(const std::vector<txn::LogRecord>& log,
                  txn::RecoveryStats* stats);

  std::mutex ckpt_mu_;  // manager + capture plan + ticks
  uint64_t ticks_ = 0;  // worker-0 transaction ticks (cadence driver)
  /// Partitioned capture: which partitions contributed to the pending
  /// checkpoint.
  std::vector<uint8_t> slice_captured_;
  /// Fuzzy capture plan (non-partitioned): pages still to copy.
  struct CaptureUnit {
    int table;
    uint64_t page_no;
  };
  std::vector<CaptureUnit> capture_plan_;
  size_t capture_next_ = 0;
  /// Last completed checkpoint's truncation anchor. Workers truncate
  /// their own logs to it on their next tick — a worker's log is only
  /// ever touched from its own thread.
  std::atomic<uint64_t> truncate_anchor_{0};
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_ENGINE_BASE_H_
