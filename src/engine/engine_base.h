#ifndef IMOLTP_ENGINE_ENGINE_BASE_H_
#define IMOLTP_ENGINE_ENGINE_BASE_H_

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "engine/profiles.h"
#include "storage/buffer_pool.h"
#include "storage/disk_heap_file.h"
#include "txn/log_manager.h"

namespace imoltp::engine {

/// Shared machinery for the engine archetypes: table slices (one per
/// partition for the partitioned engines, one total otherwise), bulk
/// population, code-region instantiation, and per-worker logging.
class EngineBase : public Engine {
 public:
  EngineBase(mcsim::MachineSim* machine, const EngineOptions& options);
  ~EngineBase() override = default;

  mcsim::MachineSim* machine() override { return machine_; }
  obs::SpanCollector* span_collector() override { return &spans_; }

  Status CreateDatabase(const std::vector<TableDef>& defs) override;
  std::vector<txn::LogRecord> StableLog() const override;
  std::vector<txn::LogRecord> FlushedLog() const override;
  Status Replay(const std::vector<txn::LogRecord>& log) override;

 protected:
  /// One partition's share of one table. In-memory engines fill `mem`;
  /// disk engines fill `disk` (always a single slice).
  struct Slice {
    std::unique_ptr<storage::Table> mem;
    std::unique_ptr<storage::DiskHeapFile> disk;
    std::unique_ptr<index::Index> primary;
    std::vector<std::unique_ptr<index::Index>> secondaries;
    uint64_t first_global_row = 0;
    uint64_t num_initial_rows = 0;
    /// Disk engines: initial global row r → heap RowId.
    std::vector<storage::RowId> rowid_of;
  };

  struct TableRt {
    TableDef def;
    std::vector<Slice> slices;
  };

  /// How many slices this engine splits tables into (partitioned
  /// engines: one per worker; others: 1).
  virtual int num_slices() const { return 1; }

  /// True for the disk-based archetypes (rows in slotted pages behind
  /// the buffer pool).
  virtual bool disk_based() const { return false; }

  /// Hook: engines may pre-create code regions after the database is
  /// loaded (compiled engines create per-transaction-type regions lazily
  /// in Execute instead).
  virtual void OnDatabaseReady() {}

  mcsim::CodeRegion DefineRegion(const RegionSpec& spec);

  /// Streams all index paths and rows once after population (steady-state
  /// cache warm-up; see CreateDatabase).
  void WarmCaches();

  void Exec(mcsim::CoreSim* core, const mcsim::CodeRegion& region) const {
    core->ExecuteRegion(region);
  }

  index::IndexKind PrimaryIndexKind(const TableDef& def) const;

  /// Default key derivation for initial rows when TableDef::key_of is
  /// unset: the global row id, encoded per key width.
  static index::Key DefaultKeyOf(const storage::Schema& schema,
                                 storage::RowId r, uint64_t seed);
  static index::Key KeyForRow(const TableDef& def, storage::RowId r);

  /// Per-engine default index kind.
  virtual index::IndexKind default_index_kind(
      const TableDef& def) const = 0;

  /// Storage-agnostic row operations on a slice (disk heap or memory
  /// table), used by recovery replay and the engines' undo paths.
  bool SliceRead(mcsim::CoreSim* core, Slice& slice, storage::RowId row,
                 uint8_t* out);
  bool SliceWriteColumn(mcsim::CoreSim* core, Slice& slice,
                        storage::RowId row, uint32_t column,
                        const void* value, const storage::Schema& schema);
  void SliceWriteRow(mcsim::CoreSim* core, Slice& slice,
                     storage::RowId row, const uint8_t* image,
                     const storage::Schema& schema);
  storage::RowId SliceAppend(mcsim::CoreSim* core, Slice& slice,
                             const uint8_t* row);
  bool SliceDelete(mcsim::CoreSim* core, Slice& slice,
                   storage::RowId row);

  /// Per-transaction undo record (before-images / structural inverses)
  /// for engines that modify state in place before commit.
  struct UndoEntry {
    enum class Kind { kColumnImage, kInsertedRow, kDeletedRow };
    Kind kind;
    int table;
    int slice;
    storage::RowId row;
    uint32_t column = 0;
    std::vector<uint8_t> image;  // before-image (column or full row)
    index::Key key;
  };

  /// Rolls a failed transaction back: applies `undo` in reverse order.
  void ApplyUndo(mcsim::CoreSim* core, std::vector<UndoEntry>& undo);

  /// Secondary-index maintenance from a row image.
  void InsertSecondaries(mcsim::CoreSim* core, TableRt& rt, Slice& slice,
                         const uint8_t* row, storage::RowId rid);
  void RemoveSecondaries(mcsim::CoreSim* core, TableRt& rt, Slice& slice,
                         const uint8_t* row);

  /// Fault-point helpers over options_.fault_injector (null ⇒ never).
  bool FaultFires(const char* point) {
    return options_.fault_injector != nullptr &&
           options_.fault_injector->Fires(point);
  }
  /// Crash-class point: latches crash_pending on the injector so the
  /// experiment loop halts. The engine returns Aborted — a crashed
  /// process does no further work in this transaction.
  bool FaultCrash(const char* point) {
    return options_.fault_injector != nullptr &&
           options_.fault_injector->FireCrash(point);
  }

  mcsim::MachineSim* machine_;
  EngineOptions options_;
  obs::SpanCollector spans_;
  std::vector<TableRt> tables_;
  std::unique_ptr<storage::BufferPool> bufferpool_;  // disk engines
  std::vector<std::unique_ptr<txn::LogManager>> logs_;  // per worker
  uint32_t next_file_id_ = 1;
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_ENGINE_BASE_H_
