#ifndef IMOLTP_ENGINE_DISK_ENGINE_H_
#define IMOLTP_ENGINE_DISK_ENGINE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "engine/engine_base.h"
#include "txn/lock_manager.h"

namespace imoltp::engine {

/// The disk-based archetypes. Shared traits (paper Sections 2.1 and 3):
/// slotted 8KB pages behind a buffer pool, a traditional 8KB-node B-tree,
/// centralized two-phase locking, ARIES-style logging.
///
/// Differences:
///   - Shore-MT is only a storage manager: query plans are hard-coded
///     C++ (Shore-Kits), so no layers execute around the SM. It locks at
///     row granularity.
///   - DBMS D is a full commercial stack: network, parser, optimizer and
///     plan-interpretation layers run on every transaction — the largest
///     instruction footprint of all five systems. It locks at page
///     granularity.
class DiskEngine final : public EngineBase {
 public:
  DiskEngine(EngineKind kind, mcsim::MachineSim* machine,
             const EngineOptions& options);

  EngineKind kind() const override { return kind_; }
  Status Execute(int worker, const TxnRequest& request,
                 const std::function<Status(TxnContext&)>& body) override;

 protected:
  // The buffer-pool ablation (EngineOptions::use_bufferpool = false)
  // stores rows in direct in-memory tables instead of slotted pages
  // behind the pool — the "OLTP through the looking glass" experiment.
  bool disk_based() const override { return options_.use_bufferpool; }
  index::IndexKind default_index_kind(const TableDef&) const override {
    return index::IndexKind::kBTree8K;
  }

 private:
  class Ctx;
  friend class Ctx;

  EngineKind kind_;
  bool full_stack_;       // DBMS D: frontend layers per transaction
  bool row_level_locks_;  // Shore-MT: row locks; DBMS D: page locks

  // Code regions (instantiated from profiles.h).
  mcsim::CodeRegion network_, parser_, optimizer_, plan_exec_;
  mcsim::CodeRegion xct_begin_, xct_commit_, btree_, heap_bp_, lock_,
      log_;
  mcsim::CodeRegion heap_direct_;  // buffer-pool ablation

  txn::LockManager lock_manager_;
  std::atomic<uint64_t> next_txn_{0};
};

}  // namespace imoltp::engine

#endif  // IMOLTP_ENGINE_DISK_ENGINE_H_
