#ifndef IMOLTP_MCSIM_CONFIG_H_
#define IMOLTP_MCSIM_CONFIG_H_

#include <cstdint>

namespace imoltp::mcsim {

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t size_bytes = 0;
  uint32_t line_bytes = 64;
  uint32_t associativity = 8;
};

/// Parameters of the cycle model.
///
/// Reported stall cycles follow the paper's convention exactly: the number
/// of misses from each level multiplied by the per-level miss penalty in
/// Table 1 (L1 miss 8 cycles, L2 miss 19, LLC miss 167), drawn
/// side-by-side. Total simulated cycles (the denominator of IPC)
/// additionally model what raw penalties under-count on an out-of-order
/// core: frontend resteer/refill amplification for instruction misses, an
/// overlap discount for data misses (memory-level parallelism), and branch
/// mispredictions.
struct CycleModelParams {
  /// Cycles per instruction with no cache misses, for code outside any
  /// code region (index/storage substrate work, which is compact,
  /// pointer-chasing code). The paper's no-miss loop retires IPC 3 on
  /// this machine (Section 4.1.1). Code regions carry their own CPI:
  /// compiled straight-line code sustains ~0.45, decades-old branchy
  /// engine code ~0.9-1.0 (low inherent ILP).
  double base_cpi = 1.0 / 3.0;

  /// Lower bound applied to every code region's inherent CPI (0 = none).
  /// Models narrower/in-order cores that cannot reach the ILP the
  /// region's code exposes (see bench/extension_energy).
  double cpi_floor = 0.0;

  /// Table 1 miss penalties (cycles).
  double l1_miss_penalty = 8.0;
  double l2_miss_penalty = 19.0;
  double llc_miss_penalty = 167.0;

  /// An L1I miss costs more than the raw refill latency: the frontend
  /// resteers, the decode pipeline refills, and the DSB is flushed.
  double frontend_amplification = 3.0;

  /// Effective-cost multipliers per data-miss penalty. Below 1.0 the
  /// out-of-order window hides part of the latency (L1/L2 misses).
  ///
  /// LLC misses are different: their effective cost depends on DENSITY.
  /// An isolated miss amid thousands of instructions overlaps with
  /// useful work (cost near the raw penalty); dense dependent chains —
  /// compiled code pointer-chasing random rows — serialize completely
  /// and add TLB walks, NUMA-remote hops, and queueing that the averaged
  /// Table 1 penalty omits. The model ramps the multiplier with observed
  /// miss density (misses per k-instruction) between `llc_amp_floor`
  /// and `data_amp_llc` (see EffectiveLlcAmp in counters.h). This is
  /// what lets HyPer be the FASTEST system on TPC-B (sparse misses,
  /// Figure 8) and the SLOWEST on the 100GB micro-benchmark (dense
  /// chains, Figure 1) — the paper's own crossover. The paper likewise
  /// notes that side-by-side miss x penalty accounting cannot reproduce
  /// measured IPC exactly (Section 3, "Measurements").
  double data_amp_l1 = 0.55;
  double data_amp_l2 = 0.65;
  double data_amp_llc = 4.5;   // at/above llc_density_hi misses per kI
  double llc_amp_floor = 1.3;  // at/below llc_density_lo misses per kI
  double llc_density_lo = 0.3;
  double llc_density_hi = 2.5;

  /// Branch misprediction flush penalty (cycles).
  double mispredict_penalty = 17.0;

  /// dTLB miss cost beyond the page-walker's own memory accesses
  /// (which flow through the simulated hierarchy; see CoreSim).
  double tlb_walk_cycles = 7.0;
};

/// Table 1 of the paper: Intel Xeon E5-2640 v2 (Ivy Bridge).
struct MachineConfig {
  int num_cores = 1;
  double clock_ghz = 2.0;
  int issue_width = 4;
  CacheConfig l1i{32 * 1024, 64, 8};
  CacheConfig l1d{32 * 1024, 64, 8};
  CacheConfig l2{256 * 1024, 64, 8};
  CacheConfig llc{20 * 1024 * 1024, 64, 20};

  /// dTLB model (Ivy Bridge: 64-entry L1 dTLB, 512-entry STLB). Entry
  /// counts are expressed through the Cache geometry (one "line" per
  /// page entry). On a full miss the hardware walker's PTE load goes
  /// through the data hierarchy — for a 100GB working set the page
  /// table itself falls out of the LLC, which is part of why random
  /// probes at that scale cost far more than one memory access.
  bool model_tlb = true;
  CacheConfig dtlb{64 * 64, 64, 4};
  CacheConfig stlb{512 * 64, 64, 4};
  uint32_t page_bytes = 4096;

  /// Optional L2 stream prefetcher: on an L1D miss that continues an
  /// ascending line sequence, the next `prefetch_degree` lines are
  /// pulled into L2/LLC. Off by default — the calibrated cycle model
  /// folds the production prefetchers' effect into its effective
  /// penalties; turn this on to study prefetching explicitly
  /// (bench/ablation_prefetcher).
  bool model_prefetcher = false;
  uint32_t prefetch_degree = 2;

  CycleModelParams cycle;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_CONFIG_H_
