#ifndef IMOLTP_MCSIM_PROFILER_H_
#define IMOLTP_MCSIM_PROFILER_H_

#include <string>
#include <vector>

#include "mcsim/counters.h"
#include "mcsim/machine.h"

namespace imoltp::mcsim {

/// Cycle share of one code module inside a measurement window.
struct ModuleShare {
  std::string name;
  bool inside_engine = false;
  double cycles = 0.0;
  double fraction = 0.0;
};

/// Aborted-transaction counts by cause for one measurement window.
/// The machine model knows nothing about transactions — the experiment
/// harness classifies each abort Status and fills this in after
/// EndWindow (zero-filled on replayed windows, which re-execute no
/// transaction logic).
struct AbortBreakdown {
  uint64_t total = 0;
  uint64_t lock_conflict = 0;   // no-wait 2PL conflicts and upgrades
  uint64_t validation = 0;      // MVCC write-write / validation failures
  uint64_t partition = 0;       // mis-routed / claimed-partition aborts
  uint64_t injected_fault = 0;  // fault-injector crashes and conflicts
  uint64_t other = 0;
};

/// Everything the paper reports for one measurement window, filtered to
/// the worker threads and averaged across them (Section 3,
/// "Measurements"): IPC, stall cycles per 1000 instructions and per
/// transaction from each level of the hierarchy, and the per-module cycle
/// breakdown behind Figure 7.
struct WindowReport {
  int num_workers = 0;
  double instructions = 0.0;  // average per worker
  double cycles = 0.0;        // average per worker (cycle model)
  double transactions = 0.0;  // average per worker
  double mispredictions = 0.0;
  double base_cycles = 0.0;   // average per worker (instr x inherent CPI)
  double tlb_misses = 0.0;    // average per worker
  LevelMisses misses;  // summed over workers (raw counts)

  double ipc = 0.0;
  double instructions_per_txn = 0.0;
  double cycles_per_txn = 0.0;
  StallBreakdown stalls_per_kinstr;
  StallBreakdown stalls_per_txn;

  /// Fraction of modeled cycles spent in modules flagged inside_engine.
  double engine_cycle_fraction = 0.0;
  std::vector<ModuleShare> module_breakdown;

  /// Filled by the experiment harness (not the profiler) — see
  /// AbortBreakdown.
  AbortBreakdown aborts;
};

/// VTune-lookalike sampling facade. Usage mirrors the paper's
/// methodology: populate and warm up with the profiler detached, then
/// `BeginWindow()` … run the measured transactions … `EndWindow()`, and
/// read `Report()`. Counter filtering to the identified worker threads is
/// the `worker_cores` argument.
/// Window misuse — EndWindow without BeginWindow, double BeginWindow,
/// an empty or out-of-range worker set — aborts via IMOLTP_CHECK: a
/// silently-empty report would poison archived results.
class Profiler {
 public:
  explicit Profiler(MachineSim* machine) : machine_(machine) {}

  void BeginWindow(std::vector<int> worker_cores);
  WindowReport EndWindow();

  bool window_open() const { return window_open_; }

 private:
  MachineSim* machine_;
  std::vector<int> worker_cores_;
  std::vector<CoreCounters> window_start_;
  bool window_open_ = false;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_PROFILER_H_
