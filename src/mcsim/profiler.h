#ifndef IMOLTP_MCSIM_PROFILER_H_
#define IMOLTP_MCSIM_PROFILER_H_

#include <string>
#include <vector>

#include "mcsim/counters.h"
#include "mcsim/machine.h"
#include "mcsim/sampler.h"

namespace imoltp::mcsim {

/// Cycle share of one code module inside a measurement window.
struct ModuleShare {
  std::string name;
  bool inside_engine = false;
  double cycles = 0.0;
  double fraction = 0.0;
};

/// Aborted-transaction counts by cause for one measurement window.
/// The machine model knows nothing about transactions — the experiment
/// harness classifies each abort Status and fills this in after
/// EndWindow (zero-filled on replayed windows, which re-execute no
/// transaction logic).
struct AbortBreakdown {
  uint64_t total = 0;
  uint64_t lock_conflict = 0;   // no-wait 2PL conflicts and upgrades
  uint64_t validation = 0;      // MVCC write-write / validation failures
  uint64_t partition = 0;       // mis-routed / claimed-partition aborts
  uint64_t injected_fault = 0;  // fault-injector crashes and conflicts
  uint64_t other = 0;
};

/// One bucket of the sampled time-series: the deltas between two
/// consecutive counter samples on one core. Bucket boundaries (`t0`,
/// `t1`) are on the retirement clock and therefore placement-
/// independent and bit-identical across same-seed serialized runs;
/// miss-derived values (`model_cycles`, `ipc`, `stalls_per_kinstr`)
/// carry only address-placement noise (see mcsim/sampler.h).
struct SeriesBucket {
  double t0 = 0.0;  // window-relative retire cycles at bucket start
  double t1 = 0.0;  // window-relative retire cycles at bucket end
  uint64_t instructions = 0;
  uint64_t transactions = 0;
  uint64_t aborted_txns = 0;
  uint64_t mispredictions = 0;
  uint64_t tlb_misses = 0;
  LevelMisses misses;
  double model_cycles = 0.0;  // full cycle-model delta
  double ipc = 0.0;
  StallBreakdown stalls_per_kinstr;
  double abort_rate = 0.0;  // aborted / (committed + aborted)
  /// Modeled-cycle delta per module, index-aligned with
  /// WindowReport::sampled_module_names. Empty unless the sampler was
  /// armed with SamplerConfig::per_module.
  std::vector<double> module_cycles;
};

/// The sampled time-series of one worker core across a measurement
/// window, including the closing partial bucket (last sample → window
/// end).
struct CoreSeries {
  int core = -1;
  uint64_t dropped = 0;  // samples lost to ring wrap-around
  std::vector<SeriesBucket> buckets;
};

/// Auto-warmup convergence check: a window whose first- and second-half
/// IPC diverge beyond tolerance was still warming up (ramping caches or
/// a contention storm), and its whole-window averages hide a trend.
/// Computed from the sampled series by the experiment harness.
struct ConvergenceCheck {
  bool checked = false;  // sampling was on and the series had >=2 buckets
  double first_half_ipc = 0.0;
  double second_half_ipc = 0.0;
  double divergence = 0.0;  // |first - second| / second
  double tolerance = 0.0;
  bool converged = true;
};

/// One row of the module×transaction-type attribution matrix: where one
/// transaction type's modeled cycles went, module by module. Extends the
/// Figure 7 breakdown in the transaction dimension — e.g. TPC-C shows
/// where NewOrder spends versus StockLevel. Filled by the experiment
/// harness (the machine model knows nothing about transaction types).
struct TxnTypeShare {
  std::string txn_type;
  uint64_t count = 0;      // transactions of this type (any outcome)
  double cycles = 0.0;     // total modeled cycles across workers
  double fraction = 0.0;   // of all matrix cycles
  std::vector<ModuleShare> modules;
};

/// Everything the paper reports for one measurement window, filtered to
/// the worker threads and averaged across them (Section 3,
/// "Measurements"): IPC, stall cycles per 1000 instructions and per
/// transaction from each level of the hierarchy, and the per-module cycle
/// breakdown behind Figure 7.
struct WindowReport {
  int num_workers = 0;
  double instructions = 0.0;  // average per worker
  double cycles = 0.0;        // average per worker (cycle model)
  double transactions = 0.0;  // average per worker
  double mispredictions = 0.0;
  double base_cycles = 0.0;   // average per worker (instr x inherent CPI)
  double tlb_misses = 0.0;    // average per worker
  LevelMisses misses;  // summed over workers (raw counts)

  double ipc = 0.0;
  double instructions_per_txn = 0.0;
  double cycles_per_txn = 0.0;
  StallBreakdown stalls_per_kinstr;
  StallBreakdown stalls_per_txn;

  /// Fraction of modeled cycles spent in modules flagged inside_engine.
  double engine_cycle_fraction = 0.0;
  std::vector<ModuleShare> module_breakdown;

  /// Filled by the experiment harness (not the profiler) — see
  /// AbortBreakdown.
  AbortBreakdown aborts;

  /// Sampled time-series, one entry per worker core, in worker order.
  /// Empty when sampling was off for the window (sample_every == 0).
  uint64_t sample_every = 0;  // retire-cycle period of the samples
  std::vector<CoreSeries> timeseries;

  /// Names for SeriesBucket::module_cycles indices, in registry order.
  /// Empty unless the sampler ran with SamplerConfig::per_module.
  std::vector<std::string> sampled_module_names;

  /// Auto-warmup convergence verdict over `timeseries` (experiment
  /// harness; `checked` stays false when sampling was off).
  ConvergenceCheck convergence;

  /// Module×transaction-type attribution (experiment harness; empty on
  /// replayed windows, which re-execute no transaction logic).
  std::vector<TxnTypeShare> txn_module_matrix;
};

/// VTune-lookalike sampling facade. Usage mirrors the paper's
/// methodology: populate and warm up with the profiler detached, then
/// `BeginWindow()` … run the measured transactions … `EndWindow()`, and
/// read `Report()`. Counter filtering to the identified worker threads is
/// the `worker_cores` argument.
/// Window misuse — EndWindow without BeginWindow, double BeginWindow,
/// an empty or out-of-range worker set — aborts via IMOLTP_CHECK: a
/// silently-empty report would poison archived results.
class Profiler {
 public:
  explicit Profiler(MachineSim* machine) : machine_(machine) {}

  /// Opens the window. When sampling is armed on the machine, each
  /// worker core's sample ring is restarted so the window's time-series
  /// buckets are window-relative and never polluted by warm-up samples.
  void BeginWindow(std::vector<int> worker_cores);
  WindowReport EndWindow();

  bool window_open() const { return window_open_; }

 private:
  /// Builds the per-core time-series from the samples each worker
  /// core's ring collected during the window.
  void BuildTimeseries(WindowReport* r) const;

  MachineSim* machine_;
  std::vector<int> worker_cores_;
  std::vector<CoreCounters> window_start_;
  bool window_open_ = false;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_PROFILER_H_
