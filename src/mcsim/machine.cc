#include "mcsim/machine.h"

namespace imoltp::mcsim {

MachineSim::MachineSim(const MachineConfig& config)
    : config_(config), llc_(config.llc) {
  cores_.reserve(config.num_cores);
  for (int i = 0; i < config.num_cores; ++i) {
    cores_.push_back(std::make_unique<CoreSim>(config, this, i));
  }
}

CoreCounters MachineSim::TotalCounters() const {
  CoreCounters total;
  for (const auto& core : cores_) {
    const CoreCounters& c = core->counters();
    total.instructions += c.instructions;
    total.mispredictions += c.mispredictions;
    total.transactions += c.transactions;
    total.aborted_txns += c.aborted_txns;
    total.code_line_fetches += c.code_line_fetches;
    total.data_accesses += c.data_accesses;
    total.tlb_misses += c.tlb_misses;
    total.base_cycles += c.base_cycles;
    total.misses += c.misses;
    for (int m = 0; m < kMaxModules; ++m) {
      total.per_module[m] += c.per_module[m];
    }
  }
  return total;
}

void MachineSim::Reset() {
  llc_.Reset();
  for (auto& core : cores_) core->Reset();
}

}  // namespace imoltp::mcsim
