#ifndef IMOLTP_MCSIM_ENERGY_H_
#define IMOLTP_MCSIM_ENERGY_H_

#include "mcsim/counters.h"

namespace imoltp::mcsim {

/// First-order energy model (extension of the paper's Section 8
/// implication: "using simpler cores with caching mechanisms tailored
/// toward ... OLTP would lead to higher energy-efficiency with better or
/// similar performance").
///
/// Energy = dynamic event energies + leakage proportional to occupied
/// cycles. Per-event values are order-of-magnitude figures for a ~22nm
/// server part (pJ scale), not vendor data; the extension bench only
/// relies on their ratios.
struct EnergyParams {
  // Dynamic energy per event, picojoules.
  double instruction_pj = 60.0;   // wide OoO issue/rename/retire
  double l1_access_pj = 10.0;
  double l2_access_pj = 40.0;
  double llc_access_pj = 200.0;
  double dram_access_pj = 5000.0;
  double mispredict_pj = 300.0;   // flushed work

  // Leakage + clock tree, picojoules per cycle the workload occupies.
  double static_pj_per_cycle = 450.0;
};

/// A simpler in-order core: each instruction costs far less energy and
/// the pipeline leaks less, at the price of a higher no-miss CPI and no
/// ability to hide misses (the cycle-model adjustments live in the
/// bench that uses this).
inline EnergyParams LittleCoreEnergy() {
  EnergyParams p;
  p.instruction_pj = 15.0;
  p.mispredict_pj = 80.0;
  p.static_pj_per_cycle = 90.0;
  return p;
}

struct EnergyReport {
  double total_nj = 0.0;
  double dynamic_nj = 0.0;
  double static_nj = 0.0;
};

/// Energy for a counter delta whose modeled duration is `cycles`.
inline EnergyReport ComputeEnergy(const CoreCounters& c, double cycles,
                                  const EnergyParams& p) {
  const LevelMisses& m = c.misses;
  // Every access reaches L1; misses descend further. LLC misses go to
  // DRAM. Instruction fetches are per-line.
  const double l1 = static_cast<double>(c.data_accesses) +
                    static_cast<double>(c.code_line_fetches);
  const double l2 = static_cast<double>(m.l1d + m.l1i);
  const double llc = static_cast<double>(m.l2d + m.l2i);
  const double dram = static_cast<double>(m.llc_d + m.llc_i);

  EnergyReport r;
  r.dynamic_nj =
      (static_cast<double>(c.instructions) * p.instruction_pj +
       l1 * p.l1_access_pj + l2 * p.l2_access_pj + llc * p.llc_access_pj +
       dram * p.dram_access_pj +
       static_cast<double>(c.mispredictions) * p.mispredict_pj) /
      1000.0;
  r.static_nj = cycles * p.static_pj_per_cycle / 1000.0;
  r.total_nj = r.dynamic_nj + r.static_nj;
  return r;
}

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_ENERGY_H_
