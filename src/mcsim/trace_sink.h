#ifndef IMOLTP_MCSIM_TRACE_SINK_H_
#define IMOLTP_MCSIM_TRACE_SINK_H_

#include <cstdint>

#include "mcsim/code_region.h"
#include "mcsim/counters.h"

namespace imoltp::mcsim {

/// Observer of the simulated reference stream. When a sink is attached
/// to a machine (MachineSim::SetTraceSink), every CoreSim verb that
/// passes the `enabled()` gate reports itself here before executing —
/// the exact sequence of events needed to re-simulate the run on a
/// different machine configuration (src/trace implements a binary
/// recorder on top of this).
///
/// Hooks fire only while simulation is enabled, so populate/recovery
/// phases (which run detached) produce no events, matching what the
/// caches actually saw. When no sink is attached the cost per verb is a
/// single well-predicted null check.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A code-region execution with its resolved fetch window. The window
  /// start is captured post-randomization so replay never consumes (or
  /// depends on) core-local random state.
  virtual void OnExecuteRegion(int core, const CodeRegion& region,
                               uint64_t start_line) = 0;
  virtual void OnRead(int core, uint64_t addr, uint32_t size) = 0;
  virtual void OnWrite(int core, uint64_t addr, uint32_t size) = 0;
  virtual void OnRetire(int core, uint64_t n) = 0;
  virtual void OnMispredict(int core, uint64_t n) = 0;
  virtual void OnBeginTransaction(int core) = 0;
  virtual void OnSetModule(int core, ModuleId module) = 0;

  /// Measurement-window boundary (profiler attach/detach point).
  virtual void OnWindowMark(bool begin) = 0;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_TRACE_SINK_H_
