#ifndef IMOLTP_MCSIM_SAMPLER_H_
#define IMOLTP_MCSIM_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcsim/config.h"
#include "mcsim/counters.h"

namespace imoltp::mcsim {

/// Periodic counter sampling (docs/OBSERVABILITY.md, "Time-resolved
/// profiling").
///
/// The sample clock is the RETIREMENT clock — cumulative base cycles
/// (instructions x inherent CPI) — not the full cycle model. Base
/// cycles are placement-independent: they depend only on the retired
/// instruction stream, never on where the host allocator happened to
/// put a table. Same seed + a serialized ParallelMode therefore yields
/// bit-identical sample boundaries and bit-identical retired-work
/// columns run after run, while the miss-derived columns carry only
/// the same address-placement noise every cross-run comparison in this
/// repo already tolerates (docs/parallel_execution.md).
struct SamplerConfig {
  /// Sample period on the retirement clock, in simulated base cycles.
  /// 0 = sampling disabled.
  uint64_t every_cycles = 0;
  /// Ring capacity per core. When a window produces more samples the
  /// oldest are overwritten (dropped() counts them) — the tail of the
  /// window survives, which is the steady-state end a convergence
  /// check cares about.
  size_t capacity = 4096;
  /// Also snapshot per-module modeled cycles at every sample, so the
  /// time-series (and the Perfetto export) carries one counter track
  /// per code module. Off by default: it multiplies the per-sample cost
  /// by kMaxModules and the ring footprint by ~5×.
  bool per_module = false;
};

/// One snapshot of a core's cumulative aggregate counters. Compact on
/// purpose: the full per-module counter array is not sampled (module
/// attribution stays whole-window — see WindowReport::txn_module_matrix)
/// so a 4096-deep ring costs ~0.5MB per core, not ~20MB. With
/// SamplerConfig::per_module the *modeled cycles* per module (one
/// double each) are additionally snapshotted — enough for per-module
/// timeline tracks at ~5× the footprint, still far from the full array.
struct CounterSample {
  double retire_cycles = 0.0;  // base_cycles at snapshot (sample clock)
  double model_cycles = 0.0;   // full cycle-model time at snapshot
  uint64_t instructions = 0;
  uint64_t transactions = 0;
  uint64_t aborted_txns = 0;
  uint64_t mispredictions = 0;
  uint64_t tlb_misses = 0;
  LevelMisses misses;
  /// Cumulative modeled cycles per module id. Empty unless the sampler
  /// was armed with per_module; sized kMaxModules otherwise.
  std::vector<double> module_cycles;
};

/// Per-core sample ring. Thread-confinement mirrors CoreSim: the owning
/// core's host thread is the only writer; readers (profiler, timeline
/// writer) run while no worker threads do.
class CoreSampler {
 public:
  CoreSampler(const SamplerConfig& config, const CycleModelParams* params)
      : every_(config.every_cycles > 0 ? config.every_cycles : 1),
        params_(params),
        per_module_(config.per_module),
        ring_(config.capacity > 0 ? config.capacity : 1) {}

  /// Fast path, called from CoreSim::RetireInternal — one double
  /// compare per retire when armed, nothing at all when the core holds
  /// no sampler pointer.
  void MaybeSample(const CoreCounters& c) {
    if (c.base_cycles < next_at_) return;
    TakeSample(c);
  }

  /// Total samples ever taken (monotonic; survives ring wrap-around).
  uint64_t seq() const { return seq_; }
  /// Samples overwritten by ring wrap-around.
  uint64_t dropped() const {
    return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
  }
  uint64_t every_cycles() const { return every_; }
  bool per_module() const { return per_module_; }

  /// Samples with sequence number >= `since`, oldest first. Sequence
  /// numbers already evicted from the ring are silently absent.
  std::vector<CounterSample> SamplesSince(uint64_t since) const {
    std::vector<CounterSample> out;
    const uint64_t lo =
        seq_ > ring_.size() ? seq_ - ring_.size() : 0;
    const uint64_t first = since > lo ? since : lo;
    for (uint64_t s = first; s < seq_; ++s) {
      out.push_back(ring_[s % ring_.size()]);
    }
    return out;
  }

  /// Rewinds the ring and re-phases the sample clock to `c`'s current
  /// retirement time (the profiler does this at window begin so bucket
  /// boundaries are window-relative, not machine-lifetime-relative).
  void Restart(const CoreCounters& c) {
    seq_ = 0;
    next_at_ = c.base_cycles + static_cast<double>(every_);
  }

 private:
  void TakeSample(const CoreCounters& c) {
    // One sample per crossing; a single huge retire burst advances the
    // clock past several periods without emitting duplicate snapshots.
    do {
      next_at_ += static_cast<double>(every_);
    } while (c.base_cycles >= next_at_);
    CounterSample& s = ring_[seq_ % ring_.size()];
    s.retire_cycles = c.base_cycles;
    s.model_cycles = SimulatedCycles(c, *params_);
    s.instructions = c.instructions;
    s.transactions = c.transactions;
    s.aborted_txns = c.aborted_txns;
    s.mispredictions = c.mispredictions;
    s.tlb_misses = c.tlb_misses;
    s.misses = c.misses;
    if (per_module_) {
      s.module_cycles.resize(kMaxModules);
      for (int m = 0; m < kMaxModules; ++m) {
        s.module_cycles[m] = SimulatedCycles(c.per_module[m], *params_);
      }
    }
    ++seq_;
  }

  uint64_t every_;
  const CycleModelParams* params_;
  bool per_module_;
  std::vector<CounterSample> ring_;
  uint64_t seq_ = 0;
  double next_at_ = 0.0;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_SAMPLER_H_
