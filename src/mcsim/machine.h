#ifndef IMOLTP_MCSIM_MACHINE_H_
#define IMOLTP_MCSIM_MACHINE_H_

#include <memory>
#include <vector>

#include "mcsim/cache.h"
#include "mcsim/code_region.h"
#include "mcsim/config.h"
#include "mcsim/core.h"

namespace imoltp::mcsim {

/// The whole simulated machine: N cores with private L1I/L1D/L2 plus one
/// shared LLC, mirroring Table 1 of the paper.
///
/// Threading model (docs/parallel_execution.md): each CoreSim is
/// thread-confined — at most one host thread drives it at a time. In the
/// serialized execution modes (kSerial / kDeterministic) core verbs are
/// additionally totally ordered, so cross-core invalidation pokes sibling
/// caches directly and every counter is bit-identical to the historical
/// single-threaded interleaving. In free-running mode
/// (`SetFreeRunning(true)`) one host thread runs per core concurrently:
/// the shared LLC switches to sharded locking and cross-core
/// invalidations are posted to per-core mailboxes instead of touching
/// sibling caches from the writer's thread.
class MachineSim {
 public:
  explicit MachineSim(const MachineConfig& config = MachineConfig());

  MachineSim(const MachineSim&) = delete;
  MachineSim& operator=(const MachineSim&) = delete;

  CoreSim& core(int i) { return *cores_[i]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  Cache& llc() { return llc_; }
  const MachineConfig& config() const { return config_; }
  ModuleRegistry& modules() { return modules_; }
  const ModuleRegistry& modules() const { return modules_; }
  CodeSpace& code_space() { return code_space_; }

  /// Invalidates `line` in every private cache except `writer_core`'s.
  /// Called on writes when more than one core is simulated. Serialized
  /// modes check presence and invalidate in place; free-running mode
  /// posts to each sibling's mailbox unconditionally (peeking at a
  /// sibling's tags from the writer's thread would race — an invalidate
  /// for an absent line is a no-op when drained).
  void InvalidateOthers(uint64_t line, int writer_core) {
    if (free_running_) {
      for (auto& core : cores_) {
        if (core->core_id() != writer_core) core->PostInvalidate(line);
      }
      return;
    }
    for (auto& core : cores_) {
      if (core->core_id() != writer_core && core->HoldsLine(line)) {
        core->InvalidateLine(line);
      }
    }
  }

  /// Switches the machine between serialized execution (default) and
  /// free-running parallel execution: the LLC takes sharded locks and
  /// cross-core invalidation goes through per-core mailboxes. Flip only
  /// while no worker threads are running.
  void SetFreeRunning(bool on) {
    free_running_ = on;
    llc_.set_concurrent(on);
    if (!on) {
      for (auto& core : cores_) core->DrainInvalidates();
    }
  }
  bool free_running() const { return free_running_; }

  void SetEnabled(bool enabled) {
    for (auto& core : cores_) core->set_enabled(enabled);
  }

  /// Attaches `sink` to every core (nullptr detaches). On attach, each
  /// core's current module is snapshotted into the sink so replay
  /// starts from identical attribution state. Capture determinism
  /// assumes the machine is otherwise pristine at attach time (cold
  /// caches, zeroed counters) — attach before the first measured run.
  void SetTraceSink(TraceSink* sink) {
    for (auto& core : cores_) {
      if (sink != nullptr) {
        sink->OnSetModule(core->core_id(), core->module());
      }
      core->set_trace_sink(sink);
    }
  }

  /// Arms periodic counter sampling on every core (see mcsim/sampler.h)
  /// or disarms it everywhere (config.every_cycles == 0). Arm/disarm
  /// only while no worker threads are running — the sample rings are
  /// thread-confined to their core, like everything else on CoreSim.
  void ArmSampler(const SamplerConfig& config) {
    for (auto& core : cores_) core->ArmSampler(config);
  }

  /// The armed sampler of core `i`, or nullptr when sampling is off.
  CoreSampler* sampler(int i) { return cores_[i]->sampler(); }
  const CoreSampler* sampler(int i) const { return cores_[i]->sampler(); }

  /// Sums per-core counters (used for machine-wide sanity checks; figures
  /// report per-worker averages through the profiler instead).
  CoreCounters TotalCounters() const;

  /// Drops all cache state and counters on every core and the LLC.
  void Reset();

 private:
  MachineConfig config_;
  bool free_running_ = false;
  Cache llc_;
  std::vector<std::unique_ptr<CoreSim>> cores_;
  ModuleRegistry modules_;
  CodeSpace code_space_;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_MACHINE_H_
