#ifndef IMOLTP_MCSIM_CORE_H_
#define IMOLTP_MCSIM_CORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mcsim/cache.h"
#include "mcsim/code_region.h"
#include "mcsim/config.h"
#include "mcsim/counters.h"
#include "mcsim/sampler.h"
#include "mcsim/trace_sink.h"

namespace imoltp::mcsim {

class MachineSim;

/// One simulated hardware context: private L1I/L1D and unified L2, a
/// pointer to the machine-shared LLC, and the per-core event counters.
///
/// Engines drive a core through four verbs:
///   - ExecuteRegion(region): instruction-side — fetch code lines, retire
///     instructions, generate branch mispredictions.
///   - Read/Write(addr, size): data-side — walk the touched cache lines
///     through L1D → L2 → LLC; writes invalidate sibling cores' copies.
///   - Retire(n): extra instructions not tied to a region (loop bodies of
///     data operations).
///   - BeginTransaction(): transaction boundary for per-txn metrics.
///
/// When `enabled()` is false every verb is a no-op; the harness disables
/// simulation during bulk population (the paper attaches VTune only after
/// populating and warming up).
class CoreSim {
 public:
  CoreSim(const MachineConfig& config, MachineSim* machine, int core_id);

  CoreSim(const CoreSim&) = delete;
  CoreSim& operator=(const CoreSim&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void SetModule(ModuleId module) {
    if (trace_ != nullptr && module != module_) {
      trace_->OnSetModule(core_id_, module);
    }
    module_ = module;
  }
  ModuleId module() const { return module_; }

  /// Observer of the simulated event stream (nullptr = none). Set via
  /// MachineSim::SetTraceSink, which also snapshots module state.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Executes a code region: fetches its window of i-cache lines and
  /// retires its instruction count. See CodeRegion for the model.
  void ExecuteRegion(const CodeRegion& region) {
    if (!enabled_) return;
    uint64_t start = region.base_line;
    if (region.total_lines > region.touched_lines) {
      const uint32_t span = region.total_lines - region.touched_lines + 1;
      start += NextWindow() % span;
    }
    if (trace_ != nullptr) {
      trace_->OnExecuteRegion(core_id_, region, start);
    }
    ExecuteRegionAt(region, start);
  }

  /// Executes `region` with its fetch window pinned at `start` (line
  /// address). Live execution funnels through here after choosing the
  /// window; trace replay calls it directly with the recorded window so
  /// the replayed fetch stream is bit-identical.
  void ExecuteRegionAt(const CodeRegion& region, uint64_t start) {
    if (!enabled_) return;
    const ModuleId saved = module_;
    module_ = region.module;
    for (uint32_t i = 0; i < region.touched_lines; ++i) {
      FetchCodeLine(start + i);
    }
    double cpi = region.cpi > 0 ? region.cpi : default_cpi_;
    if (cpi < cpi_floor_) cpi = cpi_floor_;
    RetireInternal(region.instructions, cpi);
    if (region.mispredicts_per_kinstr > 0) {
      mispredict_acc_ +=
          region.instructions * region.mispredicts_per_kinstr / 1000.0;
      const uint64_t whole = static_cast<uint64_t>(mispredict_acc_);
      if (whole > 0) {
        mispredict_acc_ -= static_cast<double>(whole);
        counters_.mispredictions += whole;
        counters_.per_module[module_].mispredictions += whole;
      }
    }
    module_ = saved;
  }

  /// Data read of `size` bytes at `addr` (any alignment).
  void Read(uint64_t addr, uint32_t size) {
    if (!enabled_) return;
    if (trace_ != nullptr) trace_->OnRead(core_id_, addr, size);
    AccessData(addr, size, /*is_write=*/false);
  }

  /// Data write of `size` bytes at `addr`. Invalidates sibling copies.
  void Write(uint64_t addr, uint32_t size) {
    if (!enabled_) return;
    if (trace_ != nullptr) trace_->OnWrite(core_id_, addr, size);
    AccessData(addr, size, /*is_write=*/true);
  }

  /// Retires `n` instructions outside any code region (e.g., the compare
  /// loop of a key comparison).
  void Retire(uint64_t n) {
    if (!enabled_) return;
    if (trace_ != nullptr) trace_->OnRetire(core_id_, n);
    RetireInternal(n, default_cpi_ < cpi_floor_ ? cpi_floor_
                                                : default_cpi_);
  }

  /// Charges `cycles` of off-core wait (e.g. simulated network latency
  /// while a cross-node fragment waits for its ordering message) to
  /// this core: the retirement clock advances with no instructions
  /// retired, so waiting lowers IPC instead of inflating instruction
  /// counts the way a busy-wait Retire() would.
  void Stall(double cycles) {
    if (!enabled_) return;
    counters_.base_cycles += cycles;
    counters_.per_module[module_].base_cycles += cycles;
    if (sampler_ != nullptr) sampler_->MaybeSample(counters_);
  }

  /// Records `n` branch mispredictions.
  void Mispredict(uint64_t n) {
    if (!enabled_) return;
    if (trace_ != nullptr) trace_->OnMispredict(core_id_, n);
    counters_.mispredictions += n;
    counters_.per_module[module_].mispredictions += n;
  }

  void BeginTransaction() {
    if (!enabled_) return;
    if (trace_ != nullptr) trace_->OnBeginTransaction(core_id_);
    ++counters_.transactions;
    if (mbox_pending_.load(std::memory_order_acquire)) {
      DrainInvalidates();
    }
  }

  /// Marks the transaction the core just finished as aborted (final
  /// outcome, not per attempt). Pure bookkeeping for the sampled
  /// time-series — perturbs no simulated state.
  void CountAbort() {
    if (!enabled_) return;
    ++counters_.aborted_txns;
  }

  /// Arms periodic counter sampling on this core (replacing any prior
  /// sampler) or disarms it (every_cycles == 0). When disarmed the only
  /// residue on the hot path is one well-predicted null check; sampling
  /// itself never writes counters, so armed and disarmed runs retire
  /// identical streams (ctest-enforced, tests/sampling_test.cc).
  void ArmSampler(const SamplerConfig& config);

  /// The armed sampler, or nullptr.
  CoreSampler* sampler() { return sampler_; }
  const CoreSampler* sampler() const { return sampler_; }

  const CoreCounters& counters() const { return counters_; }
  int core_id() const { return core_id_; }

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }

  /// True if `line` is present in any private level (used by sibling
  /// write-invalidation).
  bool HoldsLine(uint64_t line) const {
    return l1d_.Contains(line) || l2_.Contains(line) || l1i_.Contains(line);
  }

  void InvalidateLine(uint64_t line) {
    l1d_.Invalidate(line);
    l1i_.Invalidate(line);
    l2_.Invalidate(line);
  }

  /// Queues a cross-core invalidation posted from another host thread
  /// (free-running parallel mode only). The writer thread cannot touch
  /// this core's private caches directly, so the line is parked in a
  /// mailbox and applied at this core's next transaction boundary —
  /// coherence with transaction-granular lag, which is fine for the
  /// statistical counters kFree mode produces.
  void PostInvalidate(uint64_t line) {
    std::lock_guard<std::mutex> guard(mbox_mu_);
    mbox_.push_back(line);
    mbox_pending_.store(true, std::memory_order_release);
  }

  /// Applies all queued cross-core invalidations (owner thread only).
  void DrainInvalidates() {
    std::vector<uint64_t> lines;
    {
      std::lock_guard<std::mutex> guard(mbox_mu_);
      lines.swap(mbox_);
      mbox_pending_.store(false, std::memory_order_relaxed);
    }
    for (uint64_t line : lines) InvalidateLine(line);
  }

  /// Lines the stream prefetcher pulled into L2 (0 when disabled).
  uint64_t prefetches_issued() const { return prefetches_issued_; }

  /// Drops all private-cache contents and rewinds counters to zero.
  void Reset();

 private:
  void FetchCodeLine(uint64_t line);
  void AccessData(uint64_t addr, uint32_t size, bool is_write);
  void AccessDataLine(uint64_t line, bool is_write);

  void RetireInternal(uint64_t n, double cpi) {
    counters_.instructions += n;
    counters_.per_module[module_].instructions += n;
    const double cycles = static_cast<double>(n) * cpi;
    counters_.base_cycles += cycles;
    counters_.per_module[module_].base_cycles += cycles;
    // The retirement clock only advances here, so this is the one
    // sampling hook the whole core needs.
    if (sampler_ != nullptr) sampler_->MaybeSample(counters_);
  }

  // Small xorshift for window selection; independent of workload RNGs so
  // footprint randomness never perturbs key choice.
  uint64_t NextWindow() {
    window_state_ ^= window_state_ << 13;
    window_state_ ^= window_state_ >> 7;
    window_state_ ^= window_state_ << 17;
    return window_state_;
  }

  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache dtlb_;
  Cache stlb_;
  MachineSim* machine_;
  int core_id_;
  bool model_tlb_;
  bool model_prefetcher_;
  uint32_t prefetch_degree_;
  uint64_t last_miss_line_ = 0;
  uint64_t prefetches_issued_ = 0;
  bool in_page_walk_ = false;
  int page_line_shift_;
  double default_cpi_;
  double cpi_floor_;
  bool enabled_ = true;
  TraceSink* trace_ = nullptr;
  std::unique_ptr<CoreSampler> sampler_owned_;
  CoreSampler* sampler_ = nullptr;
  ModuleId module_ = kNoModule;
  double mispredict_acc_ = 0.0;
  uint64_t window_state_;
  CoreCounters counters_;
  // Cross-core invalidation mailbox (used in free-running mode only).
  std::mutex mbox_mu_;
  std::vector<uint64_t> mbox_;
  std::atomic<bool> mbox_pending_{false};
};

/// RAII module scope: attributes all events inside the scope to `module`.
class ScopedModule {
 public:
  ScopedModule(CoreSim* core, ModuleId module)
      : core_(core), saved_(core->module()) {
    core_->SetModule(module);
  }
  ~ScopedModule() { core_->SetModule(saved_); }

  ScopedModule(const ScopedModule&) = delete;
  ScopedModule& operator=(const ScopedModule&) = delete;

 private:
  CoreSim* core_;
  ModuleId saved_;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_CORE_H_
