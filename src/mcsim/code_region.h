#ifndef IMOLTP_MCSIM_CODE_REGION_H_
#define IMOLTP_MCSIM_CODE_REGION_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "mcsim/counters.h"

namespace imoltp::mcsim {

/// Descriptive metadata for one code module. `inside_engine` marks the
/// storage-manager/OLTP-engine side of the split the paper draws in its
/// Figure 7 breakdown (engine vs everything around it).
struct ModuleInfo {
  std::string name;
  bool inside_engine = false;
};

/// Registry of code modules for one simulated machine/engine pairing.
/// Capacity is bounded by kMaxModules — CoreCounters::per_module is a
/// fixed array of that many slots, so an unbounded registry would
/// mis-index or drop counters. Overflow registrations are clamped to
/// kNoModule (attributed to "<none>") with a one-time warning.
class ModuleRegistry {
 public:
  ModuleRegistry() {
    modules_.push_back({"<none>", false});  // kNoModule
  }

  /// Thread-safe: engines define code regions lazily (e.g. HyPer compiles
  /// a transaction on first dispatch), which in free-running parallel
  /// mode can happen from any worker thread.
  ModuleId Register(std::string name, bool inside_engine) {
    std::lock_guard<std::mutex> guard(mu_);
    if (static_cast<int>(modules_.size()) >= kMaxModules) {
      if (!overflowed_) {
        overflowed_ = true;
        std::fprintf(stderr,
                     "ModuleRegistry: module limit (%d) reached; \"%s\" "
                     "and later registrations fold into <none>\n",
                     kMaxModules, name.c_str());
      }
      return kNoModule;
    }
    modules_.push_back({std::move(name), inside_engine});
    return static_cast<ModuleId>(modules_.size() - 1);
  }

  const ModuleInfo& info(ModuleId id) const { return modules_[id]; }
  int size() const { return static_cast<int>(modules_.size()); }

 private:
  std::mutex mu_;
  std::vector<ModuleInfo> modules_;
  bool overflowed_ = false;
};

/// A synthetic code range standing for one compiled code module. The
/// instruction-footprint model is documented in DESIGN.md:
///
///   - Executing the region fetches `touched_lines` consecutive i-cache
///     lines from it and retires `instructions` instructions.
///   - If `total_lines > touched_lines`, each execution starts at a
///     caller-chosen (typically pseudo-random) window inside the region —
///     the model of branchy legacy code whose dynamic path varies between
///     invocations and therefore exhibits poor temporal i-cache locality.
///   - `mispredicts_per_kinstr` feeds the branch term of the cycle model;
///     legacy, branch-heavy code has a higher rate than compiled
///     straight-line code.
struct CodeRegion {
  ModuleId module = kNoModule;
  uint64_t base_line = 0;
  uint32_t total_lines = 0;
  uint32_t touched_lines = 0;
  uint32_t instructions = 0;
  double mispredicts_per_kinstr = 0.0;
  /// Inherent cycles-per-instruction of this code with warm caches
  /// (0 = the machine default). Compiled straight-line code ~0.45;
  /// branchy legacy engine code ~0.9-1.0.
  double cpi = 0.0;
};

/// Allocates non-overlapping synthetic code address ranges. Code lives at
/// line addresses far above anything a real heap pointer shifts down to,
/// so code and data never alias in the simulated caches.
class CodeSpace {
 public:
  /// Defines a region of `total_bytes` of code, of which `touched_bytes`
  /// are fetched per execution, retiring `instructions` instructions.
  /// Thread-safe (lazy region definition can race in free-running mode).
  CodeRegion Define(ModuleId module, uint32_t total_bytes,
                    uint32_t touched_bytes, uint32_t instructions,
                    double mispredicts_per_kinstr, double cpi = 0.0) {
    std::lock_guard<std::mutex> guard(mu_);
    CodeRegion r;
    r.module = module;
    r.cpi = cpi;
    r.total_lines = LinesFor(total_bytes);
    r.touched_lines = LinesFor(touched_bytes);
    if (r.touched_lines > r.total_lines) r.touched_lines = r.total_lines;
    r.instructions = instructions;
    r.mispredicts_per_kinstr = mispredicts_per_kinstr;
    r.base_line = next_line_;
    // Pad between regions so that distinct modules never share a line.
    next_line_ += r.total_lines + 8;
    return r;
  }

  uint64_t lines_allocated() const { return next_line_ - kCodeBaseLine; }

 private:
  static constexpr uint64_t kCodeBaseLine = 1ULL << 40;
  static uint32_t LinesFor(uint32_t bytes) {
    return (bytes + 63) / 64;
  }

  std::mutex mu_;
  uint64_t next_line_ = kCodeBaseLine;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_CODE_REGION_H_
