#ifndef IMOLTP_MCSIM_CACHE_H_
#define IMOLTP_MCSIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mcsim/config.h"

namespace imoltp::mcsim {

/// A set-associative cache with true-LRU replacement, operating on line
/// addresses (byte address >> log2(line size)). This is the only data
/// structure on the simulation hot path, so lookups are a linear tag scan
/// over one set (associativity is 8–20).
///
/// Threading: private caches (L1I/L1D/L2/TLBs) are thread-confined to one
/// host thread and never need locking. The machine-shared LLC is switched
/// into concurrent mode (`set_concurrent(true)`) for free-running parallel
/// execution; set state is then guarded by sharded per-set-group mutexes.
/// Hit/miss/tick counters are relaxed atomics in every mode — in the
/// serialized modes all accesses are totally ordered, so the counts (and
/// the LRU stamps derived from tick_) stay bit-identical to the historical
/// single-threaded values.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Looks up a line; inserts it (evicting LRU) on miss.
  /// Returns true on hit.
  bool Access(uint64_t line_addr) {
    if (concurrent_) {
      std::lock_guard<std::mutex> guard(ShardFor(line_addr));
      return AccessLocked(line_addr);
    }
    return AccessLocked(line_addr);
  }

  /// Returns true if the line is present (no replacement state change).
  bool Contains(uint64_t line_addr) const {
    if (concurrent_) {
      std::lock_guard<std::mutex> guard(ShardFor(line_addr));
      return ContainsLocked(line_addr);
    }
    return ContainsLocked(line_addr);
  }

  /// Removes a line if present (cross-core write invalidation).
  void Invalidate(uint64_t line_addr);

  /// Drops all lines and zeroes hit/miss counters.
  void Reset();

  /// Guards set state with sharded mutexes so concurrent Access /
  /// Contains / Invalidate calls from different host threads are safe.
  /// Only ever enabled on the shared LLC, and only in free-running
  /// parallel mode; private caches stay lock-free.
  void set_concurrent(bool concurrent) { concurrent_ = concurrent; }
  bool concurrent() const { return concurrent_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t num_sets() const { return num_sets_; }
  uint32_t associativity() const { return assoc_; }
  const CacheConfig& config() const { return config_; }

 private:
  // Tag 0 must not alias an empty way; real line addresses can be 0 after
  // shifting, so every valid tag has this bit set (bit 63 is never used by
  // line addresses derived from 48-bit virtual addresses).
  static constexpr uint64_t kValidBit = 1ULL << 63;
  // Shard count for concurrent mode: enough that 4-16 host threads rarely
  // collide, small enough that the mutex array stays cache-resident.
  static constexpr uint64_t kShards = 64;

  uint64_t SetIndex(uint64_t line_addr) const {
    return line_addr & set_mask_;
  }

  std::mutex& ShardFor(uint64_t line_addr) const {
    return shard_mu_[SetIndex(line_addr) & (kShards - 1)];
  }

  bool AccessLocked(uint64_t line_addr) {
    const uint64_t set = SetIndex(line_addr);
    const uint64_t tag = line_addr | kValidBit;
    uint64_t* tags = &tags_[set * assoc_];
    uint64_t* stamps = &stamps_[set * assoc_];
    const uint64_t now =
        tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint32_t victim = 0;
    uint64_t victim_stamp = UINT64_MAX;
    for (uint32_t way = 0; way < assoc_; ++way) {
      if (tags[way] == tag) {
        stamps[way] = now;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (stamps[way] < victim_stamp) {
        victim_stamp = stamps[way];
        victim = way;
      }
    }
    tags[victim] = tag;
    stamps[victim] = now;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool ContainsLocked(uint64_t line_addr) const {
    const uint64_t set = SetIndex(line_addr);
    const uint64_t tag = line_addr | kValidBit;
    const uint64_t* tags = &tags_[set * assoc_];
    for (uint32_t way = 0; way < assoc_; ++way) {
      if (tags[way] == tag) return true;
    }
    return false;
  }

  void InvalidateLocked(uint64_t line_addr);

  CacheConfig config_;
  uint32_t assoc_;
  uint64_t num_sets_;
  uint64_t set_mask_;
  bool concurrent_ = false;
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> stamps_;
  mutable std::unique_ptr<std::mutex[]> shard_mu_;
};

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_CACHE_H_
