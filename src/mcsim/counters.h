#ifndef IMOLTP_MCSIM_COUNTERS_H_
#define IMOLTP_MCSIM_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mcsim/config.h"

namespace imoltp::mcsim {

/// Identifier of a code module (parser, lock manager, B-tree, ...) used
/// for the per-module breakdowns (paper Figure 7).
using ModuleId = uint16_t;
inline constexpr ModuleId kNoModule = 0;
inline constexpr int kMaxModules = 64;

/// Miss counts per level, split by instruction vs data — the six bars of
/// the paper's stall plots (L1I, L2I, LLC I, L1D, L2D, LLC D).
struct LevelMisses {
  uint64_t l1i = 0;
  uint64_t l2i = 0;
  uint64_t llc_i = 0;
  uint64_t l1d = 0;
  uint64_t l2d = 0;
  uint64_t llc_d = 0;

  LevelMisses& operator+=(const LevelMisses& o) {
    l1i += o.l1i;
    l2i += o.l2i;
    llc_i += o.llc_i;
    l1d += o.l1d;
    l2d += o.l2d;
    llc_d += o.llc_d;
    return *this;
  }
  LevelMisses operator-(const LevelMisses& o) const {
    LevelMisses r;
    r.l1i = l1i - o.l1i;
    r.l2i = l2i - o.l2i;
    r.llc_i = llc_i - o.llc_i;
    r.l1d = l1d - o.l1d;
    r.l2d = l2d - o.l2d;
    r.llc_d = llc_d - o.llc_d;
    return r;
  }
};

/// Raw hardware-event counters attributed to one code module.
struct ModuleCounters {
  uint64_t instructions = 0;
  uint64_t mispredictions = 0;
  uint64_t tlb_misses = 0;
  double base_cycles = 0;  // instructions x their code's inherent CPI
  LevelMisses misses;

  ModuleCounters& operator+=(const ModuleCounters& o) {
    instructions += o.instructions;
    mispredictions += o.mispredictions;
    tlb_misses += o.tlb_misses;
    base_cycles += o.base_cycles;
    misses += o.misses;
    return *this;
  }
  ModuleCounters operator-(const ModuleCounters& o) const {
    ModuleCounters r;
    r.instructions = instructions - o.instructions;
    r.mispredictions = mispredictions - o.mispredictions;
    r.tlb_misses = tlb_misses - o.tlb_misses;
    r.base_cycles = base_cycles - o.base_cycles;
    r.misses = misses - o.misses;
    return r;
  }
};

/// Raw counters for one simulated core. Monotonically increasing; the
/// profiler reports deltas between window boundaries.
struct CoreCounters {
  uint64_t instructions = 0;
  uint64_t mispredictions = 0;
  uint64_t transactions = 0;
  /// Transactions whose final attempt aborted. The machine model knows
  /// nothing about transaction outcomes; the experiment harness marks
  /// aborts via CoreSim::CountAbort so the sampled time-series can
  /// report abort rate per bucket.
  uint64_t aborted_txns = 0;
  uint64_t code_line_fetches = 0;
  uint64_t data_accesses = 0;
  uint64_t tlb_misses = 0;
  double base_cycles = 0;
  LevelMisses misses;
  std::array<ModuleCounters, kMaxModules> per_module{};

  CoreCounters operator-(const CoreCounters& o) const {
    CoreCounters r;
    r.instructions = instructions - o.instructions;
    r.mispredictions = mispredictions - o.mispredictions;
    r.transactions = transactions - o.transactions;
    r.aborted_txns = aborted_txns - o.aborted_txns;
    r.code_line_fetches = code_line_fetches - o.code_line_fetches;
    r.data_accesses = data_accesses - o.data_accesses;
    r.tlb_misses = tlb_misses - o.tlb_misses;
    r.base_cycles = base_cycles - o.base_cycles;
    r.misses = misses - o.misses;
    for (int i = 0; i < kMaxModules; ++i) {
      r.per_module[i] = per_module[i] - o.per_module[i];
    }
    return r;
  }
};

/// Total simulated cycles for a set of counters under the cycle model
/// documented in DESIGN.md.
/// Density-dependent effective LLC-miss multiplier (see
/// CycleModelParams): ramps between the floor (isolated, overlapped
/// misses) and the maximum (dense dependent chains).
inline double EffectiveLlcAmp(uint64_t llc_d_misses,
                              uint64_t instructions,
                              const CycleModelParams& p) {
  if (instructions == 0) return p.llc_amp_floor;
  const double density = static_cast<double>(llc_d_misses) * 1000.0 /
                         static_cast<double>(instructions);
  if (density <= p.llc_density_lo) return p.llc_amp_floor;
  if (density >= p.llc_density_hi) return p.data_amp_llc;
  const double t = (density - p.llc_density_lo) /
                   (p.llc_density_hi - p.llc_density_lo);
  return p.llc_amp_floor + t * (p.data_amp_llc - p.llc_amp_floor);
}

inline double SimulatedCycles(const ModuleCounters& c,
                              const CycleModelParams& p) {
  const LevelMisses& m = c.misses;
  double cycles = c.base_cycles;
  cycles += (static_cast<double>(m.l1i) * p.l1_miss_penalty +
             static_cast<double>(m.l2i) * p.l2_miss_penalty +
             static_cast<double>(m.llc_i) * p.llc_miss_penalty) *
            p.frontend_amplification;
  cycles += static_cast<double>(m.l1d) * p.l1_miss_penalty *
            p.data_amp_l1;
  cycles += static_cast<double>(m.l2d) * p.l2_miss_penalty *
            p.data_amp_l2;
  cycles += static_cast<double>(m.llc_d) * p.llc_miss_penalty *
            EffectiveLlcAmp(m.llc_d, c.instructions, p);
  cycles += static_cast<double>(c.mispredictions) * p.mispredict_penalty;
  cycles += static_cast<double>(c.tlb_misses) * p.tlb_walk_cycles;
  return cycles;
}

/// The core-wide aggregate of a CoreCounters snapshot, without the
/// per-module array — the cheap snapshot used by window-delta cycle
/// math (profiler spans, per-transaction latency).
inline ModuleCounters AggregateCounters(const CoreCounters& c) {
  ModuleCounters total;
  total.instructions = c.instructions;
  total.mispredictions = c.mispredictions;
  total.tlb_misses = c.tlb_misses;
  total.base_cycles = c.base_cycles;
  total.misses = c.misses;
  return total;
}

inline double SimulatedCycles(const CoreCounters& c,
                              const CycleModelParams& p) {
  return SimulatedCycles(AggregateCounters(c), p);
}

/// Reported stall cycles per the paper's convention (misses × Table 1
/// penalty, per level per type, side-by-side). Index order matches the
/// figure legends: L1I, L2I, LLC I, L1D, L2D, LLC D.
struct StallBreakdown {
  std::array<double, 6> stalls{};

  static constexpr std::array<const char*, 6> kNames = {
      "L1I", "L2I", "LLC I", "L1D", "L2D", "LLC D"};

  double total() const {
    double s = 0;
    for (double v : stalls) s += v;
    return s;
  }
  double instruction_total() const {
    return stalls[0] + stalls[1] + stalls[2];
  }
  double data_total() const { return stalls[3] + stalls[4] + stalls[5]; }

  StallBreakdown Scaled(double factor) const {
    StallBreakdown r;
    for (int i = 0; i < 6; ++i) r.stalls[i] = stalls[i] * factor;
    return r;
  }
};

inline StallBreakdown ReportedStalls(const LevelMisses& m,
                                     const CycleModelParams& p) {
  StallBreakdown b;
  b.stalls[0] = static_cast<double>(m.l1i) * p.l1_miss_penalty;
  b.stalls[1] = static_cast<double>(m.l2i) * p.l2_miss_penalty;
  b.stalls[2] = static_cast<double>(m.llc_i) * p.llc_miss_penalty;
  b.stalls[3] = static_cast<double>(m.l1d) * p.l1_miss_penalty;
  b.stalls[4] = static_cast<double>(m.l2d) * p.l2_miss_penalty;
  b.stalls[5] = static_cast<double>(m.llc_d) * p.llc_miss_penalty;
  return b;
}

}  // namespace imoltp::mcsim

#endif  // IMOLTP_MCSIM_COUNTERS_H_
