#include "mcsim/profiler.h"

#include <utility>

#include "common/check.h"

namespace imoltp::mcsim {

void Profiler::BeginWindow(std::vector<int> worker_cores) {
  IMOLTP_CHECK(!window_open_,
               "BeginWindow while a window is already open");
  IMOLTP_CHECK(!worker_cores.empty(),
               "BeginWindow needs at least one worker core");
  for (int c : worker_cores) {
    IMOLTP_CHECK(c >= 0 && c < machine_->num_cores(),
                 "BeginWindow worker core out of range");
  }
  worker_cores_ = std::move(worker_cores);
  window_start_.clear();
  window_start_.reserve(worker_cores_.size());
  for (int c : worker_cores_) {
    window_start_.push_back(machine_->core(c).counters());
    CoreSampler* sampler = machine_->sampler(c);
    if (sampler != nullptr) {
      sampler->Restart(machine_->core(c).counters());
    }
  }
  window_open_ = true;
}

WindowReport Profiler::EndWindow() {
  IMOLTP_CHECK(window_open_, "EndWindow without a matching BeginWindow");
  WindowReport r;
  window_open_ = false;

  const CycleModelParams& params = machine_->config().cycle;
  const ModuleRegistry& modules = machine_->modules();

  r.num_workers = static_cast<int>(worker_cores_.size());
  std::vector<double> module_cycles(modules.size(), 0.0);

  double total_cycles = 0.0;
  for (size_t i = 0; i < worker_cores_.size(); ++i) {
    const CoreCounters delta =
        machine_->core(worker_cores_[i]).counters() - window_start_[i];
    r.instructions += static_cast<double>(delta.instructions);
    r.transactions += static_cast<double>(delta.transactions);
    r.mispredictions += static_cast<double>(delta.mispredictions);
    r.base_cycles += delta.base_cycles;
    r.tlb_misses += static_cast<double>(delta.tlb_misses);
    r.misses += delta.misses;
    total_cycles += SimulatedCycles(delta, params);
    for (int m = 0; m < modules.size() && m < kMaxModules; ++m) {
      module_cycles[m] += SimulatedCycles(delta.per_module[m], params);
    }
  }

  const double workers = static_cast<double>(r.num_workers);
  r.instructions /= workers;
  r.transactions /= workers;
  r.mispredictions /= workers;
  r.base_cycles /= workers;
  r.tlb_misses /= workers;
  r.cycles = total_cycles / workers;

  if (r.cycles > 0) r.ipc = r.instructions / r.cycles;
  if (r.transactions > 0) {
    r.instructions_per_txn = r.instructions / r.transactions;
    r.cycles_per_txn = r.cycles / r.transactions;
  }

  const StallBreakdown total = ReportedStalls(r.misses, params);
  const double kinstr = r.instructions * workers / 1000.0;
  if (kinstr > 0) r.stalls_per_kinstr = total.Scaled(1.0 / kinstr);
  const double txns = r.transactions * workers;
  if (txns > 0) r.stalls_per_txn = total.Scaled(1.0 / txns);

  double attributed = 0.0;
  double engine = 0.0;
  for (int m = 0; m < modules.size(); ++m) {
    if (module_cycles[m] <= 0) continue;
    ModuleShare share;
    share.name = modules.info(m).name;
    share.inside_engine = modules.info(m).inside_engine;
    share.cycles = module_cycles[m];
    attributed += module_cycles[m];
    if (share.inside_engine) engine += module_cycles[m];
    r.module_breakdown.push_back(std::move(share));
  }
  for (auto& share : r.module_breakdown) {
    share.fraction = attributed > 0 ? share.cycles / attributed : 0.0;
  }
  r.engine_cycle_fraction = attributed > 0 ? engine / attributed : 0.0;

  BuildTimeseries(&r);
  return r;
}

namespace {

/// Delta between two cumulative samples, as one series bucket.
/// `module_count` > 0 additionally emits per-module cycle deltas for
/// the first `module_count` module ids (the registered ones — the rest
/// of the kMaxModules array is always zero).
SeriesBucket MakeBucket(const CounterSample& a, const CounterSample& b,
                        double window_origin,
                        const CycleModelParams& params,
                        int module_count) {
  SeriesBucket bucket;
  bucket.t0 = a.retire_cycles - window_origin;
  bucket.t1 = b.retire_cycles - window_origin;
  bucket.instructions = b.instructions - a.instructions;
  bucket.transactions = b.transactions - a.transactions;
  bucket.aborted_txns = b.aborted_txns - a.aborted_txns;
  bucket.mispredictions = b.mispredictions - a.mispredictions;
  bucket.tlb_misses = b.tlb_misses - a.tlb_misses;
  bucket.misses = b.misses - a.misses;
  bucket.model_cycles = b.model_cycles - a.model_cycles;
  if (bucket.model_cycles > 0) {
    bucket.ipc =
        static_cast<double>(bucket.instructions) / bucket.model_cycles;
  }
  const double kinstr = static_cast<double>(bucket.instructions) / 1000.0;
  if (kinstr > 0) {
    bucket.stalls_per_kinstr =
        ReportedStalls(bucket.misses, params).Scaled(1.0 / kinstr);
  }
  if (bucket.transactions > 0) {
    bucket.abort_rate = static_cast<double>(bucket.aborted_txns) /
                        static_cast<double>(bucket.transactions);
  }
  if (module_count > 0 &&
      a.module_cycles.size() >= static_cast<size_t>(module_count) &&
      b.module_cycles.size() >= static_cast<size_t>(module_count)) {
    bucket.module_cycles.resize(module_count);
    for (int m = 0; m < module_count; ++m) {
      bucket.module_cycles[m] = b.module_cycles[m] - a.module_cycles[m];
    }
  }
  return bucket;
}

/// A cumulative pseudo-sample of a core's current counters, so the
/// window start and window end can close the first and last buckets.
/// `per_module` mirrors CoreSampler::TakeSample's snapshot shape.
CounterSample SampleNow(const CoreCounters& c,
                        const CycleModelParams& params, bool per_module) {
  CounterSample s;
  s.retire_cycles = c.base_cycles;
  s.model_cycles = SimulatedCycles(c, params);
  s.instructions = c.instructions;
  s.transactions = c.transactions;
  s.aborted_txns = c.aborted_txns;
  s.mispredictions = c.mispredictions;
  s.tlb_misses = c.tlb_misses;
  s.misses = c.misses;
  if (per_module) {
    s.module_cycles.resize(kMaxModules);
    for (int m = 0; m < kMaxModules; ++m) {
      s.module_cycles[m] = SimulatedCycles(c.per_module[m], params);
    }
  }
  return s;
}

}  // namespace

void Profiler::BuildTimeseries(WindowReport* r) const {
  const CycleModelParams& params = machine_->config().cycle;
  const ModuleRegistry& modules = machine_->modules();
  const int module_count =
      modules.size() < kMaxModules ? modules.size() : kMaxModules;
  for (size_t i = 0; i < worker_cores_.size(); ++i) {
    const int c = worker_cores_[i];
    const CoreSampler* sampler = machine_->sampler(c);
    if (sampler == nullptr) continue;
    r->sample_every = sampler->every_cycles();
    const bool per_module = sampler->per_module();
    const int bucket_modules = per_module ? module_count : 0;
    if (per_module && r->sampled_module_names.empty()) {
      for (int m = 0; m < module_count; ++m) {
        r->sampled_module_names.push_back(modules.info(m).name);
      }
    }

    CoreSeries series;
    series.core = c;
    series.dropped = sampler->dropped();
    const std::vector<CounterSample> samples = sampler->SamplesSince(0);
    const double origin = window_start_[i].base_cycles;

    CounterSample prev = SampleNow(window_start_[i], params, per_module);
    for (const CounterSample& s : samples) {
      series.buckets.push_back(
          MakeBucket(prev, s, origin, params, bucket_modules));
      prev = s;
    }
    // Closing partial bucket: last sample → end-of-window counters
    // (skipped when empty, e.g. the window ended exactly on a sample).
    const CounterSample end =
        SampleNow(machine_->core(c).counters(), params, per_module);
    if (end.retire_cycles > prev.retire_cycles) {
      series.buckets.push_back(
          MakeBucket(prev, end, origin, params, bucket_modules));
    }
    r->timeseries.push_back(std::move(series));
  }
}

}  // namespace imoltp::mcsim
