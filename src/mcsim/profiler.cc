#include "mcsim/profiler.h"

#include <utility>

#include "common/check.h"

namespace imoltp::mcsim {

void Profiler::BeginWindow(std::vector<int> worker_cores) {
  IMOLTP_CHECK(!window_open_,
               "BeginWindow while a window is already open");
  IMOLTP_CHECK(!worker_cores.empty(),
               "BeginWindow needs at least one worker core");
  for (int c : worker_cores) {
    IMOLTP_CHECK(c >= 0 && c < machine_->num_cores(),
                 "BeginWindow worker core out of range");
  }
  worker_cores_ = std::move(worker_cores);
  window_start_.clear();
  window_start_.reserve(worker_cores_.size());
  for (int c : worker_cores_) {
    window_start_.push_back(machine_->core(c).counters());
  }
  window_open_ = true;
}

WindowReport Profiler::EndWindow() {
  IMOLTP_CHECK(window_open_, "EndWindow without a matching BeginWindow");
  WindowReport r;
  window_open_ = false;

  const CycleModelParams& params = machine_->config().cycle;
  const ModuleRegistry& modules = machine_->modules();

  r.num_workers = static_cast<int>(worker_cores_.size());
  std::vector<double> module_cycles(modules.size(), 0.0);

  double total_cycles = 0.0;
  for (size_t i = 0; i < worker_cores_.size(); ++i) {
    const CoreCounters delta =
        machine_->core(worker_cores_[i]).counters() - window_start_[i];
    r.instructions += static_cast<double>(delta.instructions);
    r.transactions += static_cast<double>(delta.transactions);
    r.mispredictions += static_cast<double>(delta.mispredictions);
    r.base_cycles += delta.base_cycles;
    r.tlb_misses += static_cast<double>(delta.tlb_misses);
    r.misses += delta.misses;
    total_cycles += SimulatedCycles(delta, params);
    for (int m = 0; m < modules.size() && m < kMaxModules; ++m) {
      module_cycles[m] += SimulatedCycles(delta.per_module[m], params);
    }
  }

  const double workers = static_cast<double>(r.num_workers);
  r.instructions /= workers;
  r.transactions /= workers;
  r.mispredictions /= workers;
  r.base_cycles /= workers;
  r.tlb_misses /= workers;
  r.cycles = total_cycles / workers;

  if (r.cycles > 0) r.ipc = r.instructions / r.cycles;
  if (r.transactions > 0) {
    r.instructions_per_txn = r.instructions / r.transactions;
    r.cycles_per_txn = r.cycles / r.transactions;
  }

  const StallBreakdown total = ReportedStalls(r.misses, params);
  const double kinstr = r.instructions * workers / 1000.0;
  if (kinstr > 0) r.stalls_per_kinstr = total.Scaled(1.0 / kinstr);
  const double txns = r.transactions * workers;
  if (txns > 0) r.stalls_per_txn = total.Scaled(1.0 / txns);

  double attributed = 0.0;
  double engine = 0.0;
  for (int m = 0; m < modules.size(); ++m) {
    if (module_cycles[m] <= 0) continue;
    ModuleShare share;
    share.name = modules.info(m).name;
    share.inside_engine = modules.info(m).inside_engine;
    share.cycles = module_cycles[m];
    attributed += module_cycles[m];
    if (share.inside_engine) engine += module_cycles[m];
    r.module_breakdown.push_back(std::move(share));
  }
  for (auto& share : r.module_breakdown) {
    share.fraction = attributed > 0 ? share.cycles / attributed : 0.0;
  }
  r.engine_cycle_fraction = attributed > 0 ? engine / attributed : 0.0;
  return r;
}

}  // namespace imoltp::mcsim
