#include "mcsim/core.h"

#include "mcsim/machine.h"

namespace {
constexpr uint64_t kPteBaseLine = 1ULL << 54;
}  // namespace

namespace imoltp::mcsim {

namespace {
int Log2(uint32_t v) {
  int s = 0;
  while ((1u << s) < v) ++s;
  return s;
}
}  // namespace

CoreSim::CoreSim(const MachineConfig& config, MachineSim* machine,
                 int core_id)
    : l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      dtlb_(config.dtlb),
      stlb_(config.stlb),
      machine_(machine),
      core_id_(core_id),
      model_tlb_(config.model_tlb),
      model_prefetcher_(config.model_prefetcher),
      prefetch_degree_(config.prefetch_degree),
      page_line_shift_(Log2(config.page_bytes / config.l1d.line_bytes)),
      default_cpi_(config.cycle.base_cpi),
      cpi_floor_(config.cycle.cpi_floor),
      window_state_(0x9E3779B97F4A7C15ULL ^ (core_id + 1)) {}

void CoreSim::FetchCodeLine(uint64_t line) {
  ++counters_.code_line_fetches;
  if (l1i_.Access(line)) return;
  ++counters_.misses.l1i;
  ++counters_.per_module[module_].misses.l1i;
  if (l2_.Access(line)) return;
  ++counters_.misses.l2i;
  ++counters_.per_module[module_].misses.l2i;
  if (machine_->llc().Access(line)) return;
  ++counters_.misses.llc_i;
  ++counters_.per_module[module_].misses.llc_i;
}

void CoreSim::AccessData(uint64_t addr, uint32_t size, bool is_write) {
  const uint64_t first = addr >> 6;
  const uint64_t last = (addr + (size == 0 ? 0 : size - 1)) >> 6;
  for (uint64_t line = first; line <= last; ++line) {
    AccessDataLine(line, is_write);
  }
}

void CoreSim::AccessDataLine(uint64_t line, bool is_write) {
  ++counters_.data_accesses;
  if (model_tlb_ && !in_page_walk_) {
    const uint64_t page = line >> page_line_shift_;
    if (!dtlb_.Access(page) && !stlb_.Access(page)) {
      // Full dTLB miss: the hardware walker loads the PTE through the
      // data hierarchy. Eight 8-byte PTEs share one line.
      ++counters_.tlb_misses;
      ++counters_.per_module[module_].tlb_misses;
      in_page_walk_ = true;
      AccessDataLine(kPteBaseLine + (page >> 3), /*is_write=*/false);
      in_page_walk_ = false;
    }
  }
  if (is_write && machine_->num_cores() > 1) {
    machine_->InvalidateOthers(line, core_id_);
  }
  if (l1d_.Access(line)) return;
  ++counters_.misses.l1d;
  ++counters_.per_module[module_].misses.l1d;

  // L2 stream prefetcher: an L1D miss extending an ascending sequence
  // pulls the following lines into L2 and the LLC ahead of demand.
  if (model_prefetcher_ && !in_page_walk_) {
    if (line == last_miss_line_ + 1) {
      for (uint32_t k = 1; k <= prefetch_degree_; ++k) {
        l2_.Access(line + k);
        machine_->llc().Access(line + k);
        ++prefetches_issued_;
      }
    }
    last_miss_line_ = line;
  }

  if (l2_.Access(line)) return;
  ++counters_.misses.l2d;
  ++counters_.per_module[module_].misses.l2d;
  if (machine_->llc().Access(line)) return;
  ++counters_.misses.llc_d;
  ++counters_.per_module[module_].misses.llc_d;
}

void CoreSim::ArmSampler(const SamplerConfig& config) {
  if (config.every_cycles == 0) {
    sampler_ = nullptr;
    sampler_owned_.reset();
    return;
  }
  sampler_owned_ = std::make_unique<CoreSampler>(
      config, &machine_->config().cycle);
  sampler_owned_->Restart(counters_);
  sampler_ = sampler_owned_.get();
}

void CoreSim::Reset() {
  l1i_.Reset();
  l1d_.Reset();
  l2_.Reset();
  dtlb_.Reset();
  stlb_.Reset();
  counters_ = CoreCounters();
  mispredict_acc_ = 0.0;
  last_miss_line_ = 0;
  prefetches_issued_ = 0;
  if (sampler_ != nullptr) sampler_->Restart(counters_);
  {
    std::lock_guard<std::mutex> guard(mbox_mu_);
    mbox_.clear();
    mbox_pending_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace imoltp::mcsim
