#include "mcsim/cache.h"

#include <algorithm>
#include <bit>

namespace imoltp::mcsim {

namespace {

uint64_t RoundUpPow2(uint64_t v) { return std::bit_ceil(v); }

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  assoc_ = std::max<uint32_t>(1, config.associativity);
  const uint64_t lines =
      std::max<uint64_t>(assoc_, config.size_bytes / config.line_bytes);
  num_sets_ = RoundUpPow2(std::max<uint64_t>(1, lines / assoc_));
  set_mask_ = num_sets_ - 1;
  tags_.assign(num_sets_ * assoc_, 0);
  stamps_.assign(num_sets_ * assoc_, 0);
  shard_mu_ = std::make_unique<std::mutex[]>(kShards);
}

void Cache::Invalidate(uint64_t line_addr) {
  if (concurrent_) {
    std::lock_guard<std::mutex> guard(ShardFor(line_addr));
    InvalidateLocked(line_addr);
    return;
  }
  InvalidateLocked(line_addr);
}

void Cache::InvalidateLocked(uint64_t line_addr) {
  const uint64_t set = SetIndex(line_addr);
  const uint64_t tag = line_addr | kValidBit;
  uint64_t* tags = &tags_[set * assoc_];
  uint64_t* stamps = &stamps_[set * assoc_];
  for (uint32_t way = 0; way < assoc_; ++way) {
    if (tags[way] == tag) {
      tags[way] = 0;
      stamps[way] = 0;
      return;
    }
  }
}

void Cache::Reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  tick_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace imoltp::mcsim
