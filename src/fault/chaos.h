#ifndef IMOLTP_FAULT_CHAOS_H_
#define IMOLTP_FAULT_CHAOS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "fault/fault_injector.h"
#include "fault/invariants.h"
#include "txn/checkpoint.h"

namespace imoltp::fault {

/// One seeded crash → recover → verify campaign. Each cycle builds a
/// fresh engine, runs the workload with the armed fault points, rebuilds
/// a second engine from whatever log survived the (possible) crash, and
/// audits the workload's consistency invariants on the recovered
/// database — and, when no crash fired, on the live one too.
struct ChaosOptions {
  engine::EngineKind engine = engine::EngineKind::kVoltDb;
  std::string workload = "tpcb";  // "tpcb" or "tpcc"
  int cycles = 3;
  int workers = 2;
  uint64_t warmup_txns = 50;
  uint64_t measure_txns = 300;  // per worker
  uint64_t seed = 1;
  core::ParallelMode mode = core::ParallelMode::kDeterministic;
  core::RetryPolicy retry;

  /// Fault points to arm each cycle (same configs, fresh per-cycle
  /// injector seed derived from `seed` and the cycle index).
  std::vector<std::pair<std::string, FaultPointConfig>> points;

  /// Workload scale — small defaults keep a cycle cheap enough for CI.
  uint64_t tpcb_nominal_bytes = 1ULL << 20;
  int tpcc_warehouses = 4;
  int tpcc_orders_per_district = 30;

  /// Small WAL rings force frequent asynchronous flushes, tightening
  /// the post-commit durability window the crashes land in.
  uint32_t log_buffer_bytes = 1u << 16;

  /// Fuzzy checkpointing during each cycle: the engine captures
  /// checkpoints on this cadence and truncates its WAL to the recovery
  /// anchor, so recovery is checkpoint-restore + tail replay instead of
  /// full-log REDO. The `ckpt.torn_page` fault point (armed via
  /// `points`) tears one page of the newest complete checkpoint after
  /// the crash — recovery must detect it via checksum and fall back to
  /// the previous complete checkpoint.
  txn::CheckpointPolicy checkpoint;

  /// kFree campaigns: free-running interleavings are not
  /// bit-reproducible, so the cross-run fingerprint gate is dropped —
  /// but every conservation invariant is still audited on every cycle.
  /// Recorded in the JSON so checkers know not to compare fingerprints.
  bool invariant_only = false;

  mcsim::MachineConfig machine_config;
};

struct ChaosCycleResult {
  int cycle = 0;
  uint64_t committed = 0;
  uint64_t aborts = 0;
  mcsim::AbortBreakdown breakdown;
  core::RetryStats retry;
  std::string crash_point;  // "" = the run finished without a crash
  uint64_t log_records = 0;     // records fed to recovery
  uint64_t dropped_records = 0;  // seeded tail truncation (log surgery)
  /// Checkpoint + truncation accounting (zero unless checkpointing was
  /// enabled). `appended_records` is the untruncated log length a
  /// full-replay recovery would have processed; the acceptance bar is
  /// recovery.replayed_records strictly below it once a truncation
  /// happened.
  uint64_t appended_records = 0;
  uint64_t truncated_records = 0;
  uint64_t log_truncation_lsn = 0;
  uint64_t checkpoints_completed = 0;
  uint64_t torn_pages_injected = 0;
  txn::RecoveryStats recovery;
  InvariantReport recovered;
  bool live_checked = false;  // live audit runs only without a crash
  InvariantReport live;
  std::vector<FaultPointStats> fault_stats;
  /// FNV-1a digest of the cycle's observable outcome (commit/abort
  /// counts, surviving log contents sans LSNs, invariant checksums).
  /// Two runs with the same options and a serialized mode match bit
  /// for bit — the determinism contract chaos_test enforces.
  uint64_t fingerprint = 0;
};

struct ChaosReport {
  bool ok = true;  // every audited invariant held in every cycle
  uint64_t fingerprint = 0;  // digest over the cycle fingerprints
  std::vector<ChaosCycleResult> cycles;
};

/// Runs the campaign. A non-OK status means the harness itself failed
/// (bad options, population or replay error); invariant violations are
/// reported in the returned ChaosReport instead.
StatusOr<ChaosReport> RunChaos(const ChaosOptions& options);

/// Serializes a campaign report (imoltp_chaos --json).
std::string ChaosReportToJson(const ChaosOptions& options,
                              const ChaosReport& report);

}  // namespace imoltp::fault

#endif  // IMOLTP_FAULT_CHAOS_H_
