#include "fault/invariants.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "storage/table.h"

namespace imoltp::fault {

namespace {

using core::TpcbBenchmark;
using core::TpccBenchmark;
using storage::Schema;

/// Transaction-type id of the read-only consistency audits. Distinct
/// from every benchmark transaction so the compiled engines charge it
/// its own (tiny) code footprint.
constexpr int kTxnAudit = 90;

std::string Sprintf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

/// Regenerates the initial balance (column 1) of row `row` exactly as
/// the bulk load produced it: TPC-B's tables use the default generator.
int64_t InitialBalance(const Schema& schema, uint64_t row, uint64_t seed) {
  uint8_t buf[128];
  storage::DefaultRowGenerator(schema, static_cast<storage::RowId>(row),
                               seed, buf);
  return schema.GetLong(buf, 1);
}

}  // namespace

InvariantReport CheckTpcbInvariants(engine::Engine* engine,
                                    const core::TpcbBenchmark& bench,
                                    int num_workers) {
  InvariantReport rep;
  const std::vector<engine::TableDef> defs = bench.Tables();
  const Schema schema = defs[TpcbBenchmark::kTableBranch].schema;
  const uint64_t branch_seed = defs[TpcbBenchmark::kTableBranch].seed;
  const uint64_t teller_seed = defs[TpcbBenchmark::kTableTeller].seed;
  const uint64_t account_seed = defs[TpcbBenchmark::kTableAccount].seed;
  const uint64_t branches = bench.num_branches();
  const uint64_t accounts_per_branch =
      bench.num_accounts() / branches;

  // The audit measures state, not cycles.
  mcsim::MachineSim* machine = engine->machine();
  machine->SetEnabled(false);

  int64_t branch_total = 0;
  int64_t teller_total = 0;
  int64_t account_total = 0;

  for (int p = 0; p < num_workers; ++p) {
    const uint64_t b_lo =
        branches * static_cast<uint64_t>(p) / num_workers;
    const uint64_t b_hi =
        branches * static_cast<uint64_t>(p + 1) / num_workers;
    if (b_lo == b_hi) continue;

    engine::TxnRequest req;
    req.type = kTxnAudit;
    req.partition_key = b_lo;
    req.key_space = branches;
    req.statements = 1;

    const Status s = engine->Execute(
        p, req, [&](engine::TxnContext& ctx) -> Status {
          uint8_t row[128];
          storage::RowId rid;
          for (uint64_t b = b_lo; b < b_hi; ++b) {
            Status st = ctx.Probe(TpcbBenchmark::kTableBranch,
                                  index::Key::FromUint64(b), &rid);
            if (!st.ok()) return st;
            st = ctx.Read(TpcbBenchmark::kTableBranch, rid, row);
            if (!st.ok()) return st;
            const int64_t branch_delta =
                schema.GetLong(row, 1) -
                InitialBalance(schema, b, branch_seed);

            int64_t teller_delta = 0;
            const uint64_t t_lo = b * TpcbBenchmark::kTellersPerBranch;
            for (uint64_t t = t_lo;
                 t < t_lo + TpcbBenchmark::kTellersPerBranch; ++t) {
              st = ctx.Probe(TpcbBenchmark::kTableTeller,
                             index::Key::FromUint64(t), &rid);
              if (!st.ok()) return st;
              st = ctx.Read(TpcbBenchmark::kTableTeller, rid, row);
              if (!st.ok()) return st;
              teller_delta += schema.GetLong(row, 1) -
                              InitialBalance(schema, t, teller_seed);
            }

            int64_t account_delta = 0;
            const uint64_t a_lo = b * accounts_per_branch;
            for (uint64_t a = a_lo; a < a_lo + accounts_per_branch;
                 ++a) {
              st = ctx.Probe(TpcbBenchmark::kTableAccount,
                             index::Key::FromUint64(a), &rid);
              if (!st.ok()) return st;
              st = ctx.Read(TpcbBenchmark::kTableAccount, rid, row);
              if (!st.ok()) return st;
              account_delta += schema.GetLong(row, 1) -
                               InitialBalance(schema, a, account_seed);
            }

            if (branch_delta != teller_delta ||
                branch_delta != account_delta) {
              rep.Violate(Sprintf(
                  "tpcb branch %llu: balance delta %lld != teller sum "
                  "%lld or account sum %lld",
                  static_cast<unsigned long long>(b),
                  static_cast<long long>(branch_delta),
                  static_cast<long long>(teller_delta),
                  static_cast<long long>(account_delta)));
            }
            branch_total += branch_delta;
            teller_total += teller_delta;
            account_total += account_delta;
          }
          return Status::Ok();
        });
    if (!s.ok()) {
      rep.Violate(Sprintf("tpcb audit on worker %d aborted: %s", p,
                          s.message().c_str()));
    }
  }

  machine->SetEnabled(true);
  rep.checksums = {branch_total, teller_total, account_total,
                   static_cast<int64_t>(branches)};
  return rep;
}

InvariantReport CheckTpccInvariants(engine::Engine* engine,
                                    const core::TpccConfig& config,
                                    int num_workers) {
  InvariantReport rep;
  // Rebuilding the benchmark from the same config reproduces the exact
  // schemas the crashed instance was created with.
  core::TpccBenchmark bench(config);
  const std::vector<engine::TableDef> defs = bench.Tables();
  const Schema wsch = defs[TpccBenchmark::kWarehouse].schema;
  const Schema dsch = defs[TpccBenchmark::kDistrict].schema;
  const Schema osch = defs[TpccBenchmark::kOrder].schema;
  const Schema olsch = defs[TpccBenchmark::kOrderLine].schema;
  const uint64_t warehouses = static_cast<uint64_t>(config.warehouses);
  const int64_t orders0 = config.orders_per_district;

  mcsim::MachineSim* machine = engine->machine();
  machine->SetEnabled(false);

  int64_t ytd_total = 0;
  int64_t next_o_total = 0;
  int64_t lines_total = 0;

  for (uint64_t w = 0; w < warehouses; ++w) {
    const int worker =
        static_cast<int>(w * static_cast<uint64_t>(num_workers) /
                         warehouses);
    engine::TxnRequest req;
    req.type = kTxnAudit;
    req.partition_key = w;
    req.key_space = warehouses;
    req.statements = 1;

    const Status s = engine->Execute(
        worker, req, [&](engine::TxnContext& ctx) -> Status {
          uint8_t row[256];
          uint8_t line[256];
          storage::RowId rid;
          Status st = ctx.Probe(TpccBenchmark::kWarehouse,
                                index::Key::FromUint64(w), &rid);
          if (!st.ok()) return st;
          st = ctx.Read(TpccBenchmark::kWarehouse, rid, row);
          if (!st.ok()) return st;
          const int64_t w_ytd = wsch.GetLong(row, 1);

          int64_t d_ytd_sum = 0;
          for (uint64_t d = 0;
               d < TpccBenchmark::kDistrictsPerWarehouse; ++d) {
            st = ctx.Probe(TpccBenchmark::kDistrict,
                           index::Key::FromUint64(
                               TpccBenchmark::DistrictKey(w, d)),
                           &rid);
            if (!st.ok()) return st;
            st = ctx.Read(TpccBenchmark::kDistrict, rid, row);
            if (!st.ok()) return st;
            d_ytd_sum += dsch.GetLong(row, 1);
            const int64_t next_o = dsch.GetLong(row, 2);
            if (next_o < orders0) {
              rep.Violate(Sprintf(
                  "tpcc w=%llu d=%llu: next_o_id %lld below the "
                  "initial %lld",
                  static_cast<unsigned long long>(w),
                  static_cast<unsigned long long>(d),
                  static_cast<long long>(next_o),
                  static_cast<long long>(orders0)));
              continue;
            }
            next_o_total += next_o;

            // Every order NewOrder committed must exist with all of
            // its lines (they are logged atomically with the commit).
            for (int64_t o = orders0; o < next_o; ++o) {
              const uint64_t okey = TpccBenchmark::OrderKey(
                  w, d, static_cast<uint64_t>(o));
              st = ctx.Probe(TpccBenchmark::kOrder,
                             index::Key::FromUint64(okey), &rid);
              if (!st.ok()) {
                rep.Violate(Sprintf(
                    "tpcc w=%llu d=%llu: committed order %lld missing",
                    static_cast<unsigned long long>(w),
                    static_cast<unsigned long long>(d),
                    static_cast<long long>(o)));
                continue;
              }
              st = ctx.Read(TpccBenchmark::kOrder, rid, row);
              if (!st.ok()) return st;
              const int64_t ol_cnt = osch.GetLong(row, 2);
              if (ol_cnt < 1 || ol_cnt > 15) {
                rep.Violate(Sprintf(
                    "tpcc w=%llu d=%llu o=%lld: implausible ol_cnt "
                    "%lld",
                    static_cast<unsigned long long>(w),
                    static_cast<unsigned long long>(d),
                    static_cast<long long>(o),
                    static_cast<long long>(ol_cnt)));
                continue;
              }
              std::vector<storage::RowId> rows;
              st = ctx.Scan(TpccBenchmark::kOrderLine,
                            index::Key::FromUint64(
                                TpccBenchmark::OrderLineKey(
                                    w, d, static_cast<uint64_t>(o), 0)),
                            static_cast<uint64_t>(ol_cnt) + 1, &rows);
              if (!st.ok()) return st;
              int64_t matched = 0;
              for (storage::RowId lr : rows) {
                st = ctx.Read(TpccBenchmark::kOrderLine, lr, line);
                if (!st.ok()) return st;
                const uint64_t lkey =
                    static_cast<uint64_t>(olsch.GetLong(line, 0));
                if ((lkey >> 8) == okey) ++matched;
              }
              if (matched != ol_cnt) {
                rep.Violate(Sprintf(
                    "tpcc w=%llu d=%llu o=%lld: %lld of %lld order "
                    "lines present",
                    static_cast<unsigned long long>(w),
                    static_cast<unsigned long long>(d),
                    static_cast<long long>(o),
                    static_cast<long long>(matched),
                    static_cast<long long>(ol_cnt)));
              }
              lines_total += matched;
            }
          }

          if (w_ytd != d_ytd_sum) {
            rep.Violate(Sprintf(
                "tpcc w=%llu: W_YTD %lld != district YTD sum %lld",
                static_cast<unsigned long long>(w),
                static_cast<long long>(w_ytd),
                static_cast<long long>(d_ytd_sum)));
          }
          ytd_total += w_ytd;
          return Status::Ok();
        });
    if (!s.ok()) {
      rep.Violate(Sprintf("tpcc audit of warehouse %llu aborted: %s",
                          static_cast<unsigned long long>(w),
                          s.message().c_str()));
    }
  }

  machine->SetEnabled(true);
  rep.checksums = {ytd_total, next_o_total, lines_total,
                   static_cast<int64_t>(warehouses)};
  return rep;
}

}  // namespace imoltp::fault
