#include "fault/chaos.h"

#include <algorithm>
#include <memory>

#include "common/seed.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "fault/fingerprint.h"
#include "obs/json.h"

namespace imoltp::fault {

namespace {

void InvariantsToJson(obs::JsonWriter& w, const InvariantReport& rep) {
  w.BeginObject();
  w.KeyValue("ok", rep.ok);
  w.Key("violations");
  w.BeginArray();
  for (const std::string& v : rep.violations) w.Value(v);
  w.EndArray();
  w.Key("checksums");
  w.BeginArray();
  for (int64_t v : rep.checksums) w.Value(v);
  w.EndArray();
  w.EndObject();
}

}  // namespace

StatusOr<ChaosReport> RunChaos(const ChaosOptions& opt) {
  core::WorkloadKind wkind;
  if (!core::ParseWorkload(opt.workload, &wkind)) {
    return Status::InvalidArgument(
        "unknown chaos workload: " + opt.workload +
        " (choices: " + core::WorkloadChoices() + ")");
  }
  if (wkind != core::WorkloadKind::kTpcb &&
      wkind != core::WorkloadKind::kTpcc) {
    return Status::InvalidArgument(
        "chaos audits invariants only for tpcb and tpcc, not " +
        opt.workload);
  }
  if (opt.cycles < 1) {
    return Status::InvalidArgument("chaos needs at least one cycle");
  }
  if (opt.workers < 1) {
    return Status::InvalidArgument("chaos needs at least one worker");
  }
  if (wkind == core::WorkloadKind::kTpcc &&
      opt.tpcc_warehouses % opt.workers != 0) {
    return Status::InvalidArgument(
        "warehouses must be divisible by workers");
  }

  ChaosReport report;
  uint64_t agg = kFnvOffset;

  for (int c = 0; c < opt.cycles; ++c) {
    ChaosCycleResult cyc;
    cyc.cycle = c;

    // Fresh injector per cycle, seeded from the campaign seed and the
    // cycle index: re-running the campaign replays every schedule.
    FaultInjector inj(DeriveSeed(opt.seed, static_cast<uint64_t>(c),
                                 SeedStream::kChaosInjector));
    for (const auto& [name, point] : opt.points) inj.Arm(name, point);

    // Fresh workload per cycle: its history-id counters restart at
    // zero, which same-seed determinism depends on.
    std::unique_ptr<core::Workload> workload;
    core::TpcbBenchmark* tpcb = nullptr;
    core::TpccConfig tpcc_cfg;
    if (wkind == core::WorkloadKind::kTpcb) {
      core::TpcbConfig cfg;
      cfg.nominal_bytes = opt.tpcb_nominal_bytes;
      cfg.num_partitions = opt.workers;
      auto bench = std::make_unique<core::TpcbBenchmark>(cfg);
      tpcb = bench.get();
      workload = std::move(bench);
    } else {
      tpcc_cfg.warehouses = opt.tpcc_warehouses;
      tpcc_cfg.orders_per_district = opt.tpcc_orders_per_district;
      tpcc_cfg.num_partitions = opt.workers;
      workload = std::make_unique<core::TpccBenchmark>(tpcc_cfg);
    }

    core::ExperimentConfig cfg;
    cfg.engine = opt.engine;
    cfg.num_workers = opt.workers;
    cfg.warmup_txns = opt.warmup_txns;
    cfg.measure_txns = opt.measure_txns;
    cfg.seed = DeriveSeed(opt.seed, static_cast<uint64_t>(c),
                          SeedStream::kChaosRun);
    cfg.parallel_mode = opt.mode;
    cfg.retry = opt.retry;
    cfg.machine_config = opt.machine_config;
    cfg.engine_options.log_buffer_bytes = opt.log_buffer_bytes;
    cfg.engine_options.fault_injector = &inj;
    cfg.engine_options.checkpoint = opt.checkpoint;

    auto runner = core::ExperimentRunner::Create(cfg, workload.get());
    if (!runner.ok()) return runner.status();
    core::ExperimentRunner* r = runner->get();
    auto window = r->Run(workload.get());
    if (!window.ok()) return window.status();

    cyc.committed = r->committed();
    cyc.aborts = r->aborts();
    cyc.breakdown = r->abort_breakdown();
    cyc.retry = r->retry_stats();
    cyc.crash_point = inj.crash_point();

    // What the "disk" still holds. A post-commit crash happens after
    // the commit was acknowledged but possibly before the background
    // writer drained the ring — only the flushed prefix survives. The
    // earlier crash points fire before the commit record exists, so
    // the full stable log is the honest device image for them.
    engine::Engine* live = r->engine();
    std::vector<txn::LogRecord> log =
        cyc.crash_point == kCrashPostCommit ? live->FlushedLog()
                                            : live->StableLog();

    // Seeded log surgery: when log.truncate_tail is armed, the device
    // lost a suffix of whatever it had.
    for (const auto& [name, point] : opt.points) {
      if (name != kLogTruncateTail) continue;
      const uint64_t max_drop =
          std::min<uint64_t>(log.size(), 16);
      cyc.dropped_records = inj.Uniform(max_drop + 1);
      log.resize(log.size() - cyc.dropped_records);
      break;
    }
    cyc.log_records = log.size();

    // The simulated checkpoint device: a copy of the retained complete
    // checkpoints. The `ckpt.torn_page` point models the crash
    // interrupting the checkpoint writer mid-page — one page of the
    // newest complete checkpoint lands half-written on the copy (never
    // in the live manager). Recovery must catch the bad checksum and
    // fall back to the previous complete checkpoint.
    std::vector<txn::CheckpointImage> device;
    const txn::CheckpointManager* cm = live->checkpoints();
    if (cm != nullptr) {
      device = cm->DeviceImage();
      cyc.checkpoints_completed = cm->stats().completed;
      cyc.truncated_records = cm->stats().truncated_records;
    }
    cyc.appended_records = live->AppendedLogRecords();
    cyc.log_truncation_lsn = live->LogTruncationLsn();
    // Tearing requires a predecessor: truncation only runs after a
    // checkpoint's device write is fsync'd, so a torn page in the only
    // complete checkpoint would contradict the write barrier that
    // allowed its truncation. With >= 2 retained, the newest can land
    // torn (its fsync raced the crash) while the older one — whose
    // begin LSN anchors the retained log — stays intact.
    if (device.size() >= 2 && inj.Fires(kCkptTornPage)) {
      txn::CheckpointImage& newest = device.back();
      std::vector<txn::CheckpointPage*> pages;
      for (txn::CheckpointSliceImage& si : newest.slices) {
        for (txn::CheckpointPage& pg : si.pages) pages.push_back(&pg);
      }
      if (!pages.empty()) {
        txn::TearPage(pages[inj.Uniform(pages.size())]);
        ++cyc.torn_pages_injected;
      }
    }

    // Recovery: a brand-new machine and engine, repopulated from the
    // same table definitions. With checkpointing: restore the newest
    // usable checkpoint, REDO the retained tail, UNDO losers. Without:
    // full-log REDO. Recovery itself is not under test, so it runs
    // without the injector.
    mcsim::MachineConfig mc = opt.machine_config;
    mc.num_cores = opt.workers;
    mcsim::MachineSim machine2(mc);
    engine::EngineOptions eopts = cfg.engine_options;
    eopts.num_partitions = opt.workers;
    eopts.fault_injector = nullptr;
    std::unique_ptr<engine::Engine> recovered =
        engine::CreateEngine(opt.engine, &machine2, eopts);
    Status s = recovered->CreateDatabase(workload->Tables());
    if (!s.ok()) return s;
    if (cm != nullptr) {
      s = recovered->Recover(device, log, cyc.log_truncation_lsn,
                             &cyc.recovery);
    } else {
      s = recovered->Replay(log);
      cyc.recovery.replayed_records = log.size();
    }
    if (!s.ok()) return s;

    if (tpcb != nullptr) {
      cyc.recovered =
          CheckTpcbInvariants(recovered.get(), *tpcb, opt.workers);
    } else {
      cyc.recovered =
          CheckTpccInvariants(recovered.get(), tpcc_cfg, opt.workers);
    }

    // Without a crash the live database must also be consistent (a
    // crash leaves it mid-transaction by design — only its log is
    // meaningful then). Disarm first so the audit runs fault-free.
    if (cyc.crash_point.empty()) {
      inj.DisarmAll();
      if (tpcb != nullptr) {
        cyc.live = CheckTpcbInvariants(live, *tpcb, opt.workers);
      } else {
        cyc.live = CheckTpccInvariants(live, tpcc_cfg, opt.workers);
      }
      cyc.live_checked = true;
    }

    cyc.fault_stats = inj.Stats();

    uint64_t fp = kFnvOffset;
    fp = FnvMix(fp, cyc.committed);
    fp = FnvMix(fp, cyc.breakdown.total);
    fp = FnvMix(fp, cyc.breakdown.lock_conflict);
    fp = FnvMix(fp, cyc.breakdown.validation);
    fp = FnvMix(fp, cyc.breakdown.partition);
    fp = FnvMix(fp, cyc.breakdown.injected_fault);
    fp = FnvMix(fp, cyc.breakdown.other);
    fp = FnvMix(fp, cyc.retry.retries);
    fp = FnvMix(fp, cyc.retry.retry_successes);
    fp = FnvMix(fp, cyc.retry.retry_rejections);
    fp = FnvString(fp, cyc.crash_point);
    fp = FnvMix(fp, cyc.dropped_records);
    fp = FnvMix(fp, cyc.appended_records);
    fp = FnvMix(fp, cyc.truncated_records);
    fp = FnvMix(fp, cyc.log_truncation_lsn);
    fp = FnvMix(fp, cyc.checkpoints_completed);
    fp = FnvMix(fp, cyc.torn_pages_injected);
    fp = FnvMix(fp, cyc.recovery.used_checkpoint ? 1u : 0u);
    fp = FnvMix(fp, cyc.recovery.checkpoint_id);
    fp = FnvMix(fp, cyc.recovery.checkpoints_discarded);
    fp = FnvMix(fp, cyc.recovery.torn_pages);
    fp = FnvMix(fp, cyc.recovery.restored_pages);
    fp = FnvMix(fp, cyc.recovery.journal_entries);
    fp = FnvMix(fp, cyc.recovery.replayed_records);
    fp = FnvMix(fp, cyc.recovery.undone_records);
    fp = FnvLog(fp, log);
    fp = FnvInvariants(fp, cyc.recovered);
    if (cyc.live_checked) fp = FnvInvariants(fp, cyc.live);
    cyc.fingerprint = fp;
    agg = FnvMix(agg, fp);

    if (!cyc.recovered.ok || (cyc.live_checked && !cyc.live.ok)) {
      report.ok = false;
    }
    report.cycles.push_back(std::move(cyc));
  }

  report.fingerprint = agg;
  return report;
}

std::string ChaosReportToJson(const ChaosOptions& opt,
                              const ChaosReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema", "imoltp.chaos.v2");
  w.Key("options");
  w.BeginObject();
  w.KeyValue("engine", engine::EngineKindName(opt.engine));
  w.KeyValue("workload", opt.workload);
  w.KeyValue("cycles", opt.cycles);
  w.KeyValue("workers", opt.workers);
  w.KeyValue("warmup_txns", opt.warmup_txns);
  w.KeyValue("measure_txns", opt.measure_txns);
  w.KeyValue("seed", opt.seed);
  w.KeyValue("mode", core::ParallelModeName(opt.mode));
  w.KeyValue("invariant_only", opt.invariant_only);
  w.KeyValue("retry_max_attempts", opt.retry.max_attempts);
  w.KeyValue("retry_backoff_cycles", opt.retry.backoff_cycles);
  w.KeyValue("log_buffer_bytes",
             static_cast<uint64_t>(opt.log_buffer_bytes));
  w.Key("checkpoint");
  w.BeginObject();
  w.KeyValue("enabled", opt.checkpoint.enabled);
  w.KeyValue("every_n_ticks", opt.checkpoint.every_n_ticks);
  w.KeyValue("pages_per_step", opt.checkpoint.pages_per_step);
  w.KeyValue("retain", opt.checkpoint.retain);
  w.EndObject();
  w.Key("points");
  w.BeginObject();
  for (const auto& [name, point] : opt.points) {
    w.Key(name);
    w.BeginObject();
    w.KeyValue("probability", point.probability);
    w.KeyValue("nth_hit", point.nth_hit);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();

  w.KeyValue("ok", report.ok);
  w.KeyValue("fingerprint", report.fingerprint);
  w.Key("cycles");
  w.BeginArray();
  for (const ChaosCycleResult& c : report.cycles) {
    w.BeginObject();
    w.KeyValue("cycle", c.cycle);
    w.KeyValue("committed", c.committed);
    w.KeyValue("aborts", c.aborts);
    w.Key("abort_breakdown");
    w.BeginObject();
    w.KeyValue("total", c.breakdown.total);
    w.KeyValue("lock_conflict", c.breakdown.lock_conflict);
    w.KeyValue("validation", c.breakdown.validation);
    w.KeyValue("partition", c.breakdown.partition);
    w.KeyValue("injected_fault", c.breakdown.injected_fault);
    w.KeyValue("other", c.breakdown.other);
    w.EndObject();
    w.Key("retry");
    w.BeginObject();
    w.KeyValue("retries", c.retry.retries);
    w.KeyValue("successes", c.retry.retry_successes);
    w.KeyValue("rejections", c.retry.retry_rejections);
    w.EndObject();
    w.KeyValue("crash_point", c.crash_point);
    w.KeyValue("log_records", c.log_records);
    w.KeyValue("dropped_records", c.dropped_records);
    w.KeyValue("appended_records", c.appended_records);
    w.KeyValue("truncated_records", c.truncated_records);
    w.KeyValue("log_truncation_lsn", c.log_truncation_lsn);
    w.KeyValue("checkpoints_completed", c.checkpoints_completed);
    w.KeyValue("torn_pages_injected", c.torn_pages_injected);
    w.Key("recovery");
    w.BeginObject();
    w.KeyValue("used_checkpoint", c.recovery.used_checkpoint);
    w.KeyValue("checkpoint_id", c.recovery.checkpoint_id);
    w.KeyValue("checkpoints_available", c.recovery.checkpoints_available);
    w.KeyValue("checkpoints_discarded", c.recovery.checkpoints_discarded);
    w.KeyValue("torn_pages", c.recovery.torn_pages);
    w.KeyValue("restored_pages", c.recovery.restored_pages);
    w.KeyValue("restored_bytes", c.recovery.restored_bytes);
    w.KeyValue("journal_entries", c.recovery.journal_entries);
    w.KeyValue("replayed_records", c.recovery.replayed_records);
    w.KeyValue("undone_records", c.recovery.undone_records);
    w.KeyValue("truncation_lsn", c.recovery.truncation_lsn);
    w.EndObject();
    w.Key("recovered");
    InvariantsToJson(w, c.recovered);
    if (c.live_checked) {
      w.Key("live");
      InvariantsToJson(w, c.live);
    }
    w.Key("fault_points");
    w.BeginObject();
    for (const FaultPointStats& p : c.fault_stats) {
      w.Key(p.point);
      w.BeginObject();
      w.KeyValue("hits", p.hits);
      w.KeyValue("fires", p.fires);
      w.EndObject();
    }
    w.EndObject();
    w.KeyValue("fingerprint", c.fingerprint);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace imoltp::fault
