#ifndef IMOLTP_FAULT_INVARIANTS_H_
#define IMOLTP_FAULT_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tpcb.h"
#include "core/tpcc.h"
#include "engine/engine.h"

namespace imoltp::fault {

/// Result of one workload-level consistency audit. The audit runs as
/// read-only transactions through the engine's own Execute path (so it
/// respects partition routing and concurrency control); `checksums` is a
/// stable numeric digest of what the audit observed, fed into the chaos
/// fingerprint for same-seed determinism checks.
struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;
  std::vector<int64_t> checksums;

  void Violate(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

/// TPC-B money conservation. Every AccountUpdate adds the same delta to
/// one branch, one teller of that branch, and one account of that
/// branch, so for every branch b:
///
///   Δbalance(b) == Σ Δbalance(tellers of b) == Σ Δbalance(accounts of b)
///
/// Initial balances are regenerated from the tables' deterministic row
/// generators, so the check needs no snapshot of the pre-run database.
/// `num_workers` must match the engine's partition count (the audit
/// visits each partition from its home worker).
InvariantReport CheckTpcbInvariants(engine::Engine* engine,
                                    const core::TpcbBenchmark& bench,
                                    int num_workers);

/// TPC-C conservation invariants (TPC-C clause 3.3 consistency
/// conditions, scaled to this implementation):
///
///   1. W_YTD == Σ D_YTD over the warehouse's districts (Payment adds
///      the same amount to both).
///   2. D_NEXT_O_ID >= orders_per_district (it only advances).
///   3. Order-line conservation: for every order id in
///      [orders_per_district, D_NEXT_O_ID) the Order row exists and
///      exactly O_OL_CNT order lines with its key prefix exist
///      (NewOrder inserts them atomically; Delivery never deletes them).
InvariantReport CheckTpccInvariants(engine::Engine* engine,
                                    const core::TpccConfig& config,
                                    int num_workers);

}  // namespace imoltp::fault

#endif  // IMOLTP_FAULT_INVARIANTS_H_
