#ifndef IMOLTP_FAULT_FINGERPRINT_H_
#define IMOLTP_FAULT_FINGERPRINT_H_

// FNV-1a fingerprint helpers shared by the chaos harness and the dist
// cluster. Fingerprints cover only address-independent outcomes
// (commit/abort counts, log content sans LSNs, invariant checksums):
// the cache simulator hashes real heap addresses, so cycle and miss
// counts jitter across processes under ASLR and must never be folded
// into a bit-identity check.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/invariants.h"
#include "txn/log_manager.h"

namespace imoltp::fault {

inline constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvByte(uint64_t h, uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = FnvByte(h, static_cast<uint8_t>(v >> (8 * i)));
  }
  return h;
}

inline uint64_t FnvBytes(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) h = FnvByte(h, p[i]);
  return h;
}

inline uint64_t FnvString(uint64_t h, const std::string& s) {
  h = FnvMix(h, s.size());
  return FnvBytes(h, reinterpret_cast<const uint8_t*>(s.data()),
                  s.size());
}

/// Digest of a log's replayable content. LSNs and txn ids are
/// deliberately excluded: both come from process-wide counters that
/// keep advancing across cycles, so only their order (already implied
/// by record order) is deterministic, not their values.
inline uint64_t FnvLog(uint64_t h,
                       const std::vector<txn::LogRecord>& log) {
  h = FnvMix(h, log.size());
  for (const txn::LogRecord& r : log) {
    h = FnvByte(h, static_cast<uint8_t>(r.op));
    h = FnvMix(h, static_cast<uint16_t>(r.table));
    h = FnvMix(h, static_cast<uint16_t>(r.column));
    h = FnvMix(h, static_cast<uint16_t>(r.slice));
    h = FnvMix(h, r.row);
    h = FnvByte(h, r.torn ? 1 : 0);
    h = FnvMix(h, r.payload.size());
    h = FnvBytes(h, r.payload.data(), r.payload.size());
    h = FnvMix(h, r.key.size());
    h = FnvBytes(h, r.key.data(), r.key.size());
  }
  return h;
}

inline uint64_t FnvInvariants(uint64_t h, const InvariantReport& rep) {
  h = FnvByte(h, rep.ok ? 1 : 0);
  h = FnvMix(h, rep.checksums.size());
  for (int64_t v : rep.checksums) {
    h = FnvMix(h, static_cast<uint64_t>(v));
  }
  return h;
}

}  // namespace imoltp::fault

#endif  // IMOLTP_FAULT_FINGERPRINT_H_
