#ifndef IMOLTP_FAULT_FAULT_INJECTOR_H_
#define IMOLTP_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace imoltp::fault {

/// Canonical fault-point names. Points are plain strings so layers can
/// introduce new ones without touching this header, but the ones the
/// shipped code fires are enumerated here (and in docs/robustness.md).
inline constexpr const char* kCrashPreBody = "crash.pre_body";
inline constexpr const char* kCrashMidCommit = "crash.mid_commit";
inline constexpr const char* kCrashPostCommit = "crash.post_commit";
inline constexpr const char* kLogTornRecord = "log.torn_record";
inline constexpr const char* kLogTruncateTail = "log.truncate_tail";
inline constexpr const char* kLockConflict = "lock.conflict";
inline constexpr const char* kCoreDeath = "core.death";
inline constexpr const char* kTraceReadError = "trace.read_error";
inline constexpr const char* kNodeDeath = "node.death";
/// The crash interrupted the checkpoint writer mid-page: one page of
/// the newest complete checkpoint lands torn (bad checksum).
inline constexpr const char* kCkptTornPage = "ckpt.torn_page";

/// All the fault points the shipped code fires, for CLI validation.
inline constexpr const char* kAllFaultPoints[] = {
    kCrashPreBody,   kCrashMidCommit,  kCrashPostCommit,
    kLogTornRecord,  kLogTruncateTail, kLockConflict,
    kCoreDeath,      kTraceReadError,  kNodeDeath,
    kCkptTornPage,
};

inline bool IsKnownFaultPoint(const std::string& name) {
  for (const char* p : kAllFaultPoints) {
    if (name == p) return true;
  }
  return false;
}

/// Trigger configuration for one armed fault point.
struct FaultPointConfig {
  /// Fires with this probability on each hit (0 disables the
  /// probabilistic trigger).
  double probability = 0.0;
  /// Fires deterministically on exactly the nth hit (1-based; 0
  /// disables the counter trigger). Both triggers may be armed at once.
  uint64_t nth_hit = 0;
};

/// Per-point counters, snapshotted for the obs JSON export.
struct FaultPointStats {
  std::string point;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Seeded, deterministic fault injector. Layers that can fail hold a
/// `FaultInjector*` (null ⇒ zero-overhead pass-through) and call
/// `Fires(point)` at their named fault points; crash-class points go
/// through `FireCrash`, which additionally latches a crash so the
/// experiment loop halts the run (a crashed process executes nothing
/// further).
///
/// Determinism contract: with the same seed, the same arming, and the
/// same serialized execution order (kSerial or kDeterministic parallel
/// mode), every draw happens at the same point in the instruction
/// stream, so the fault schedule — and everything downstream of it —
/// is bit-identical. In kFree mode the injector is thread-safe but the
/// schedule depends on the host interleaving.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms) a fault point. Hit/fire counters are preserved
  /// across re-arming so drivers can re-configure between phases.
  void Arm(const std::string& point, FaultPointConfig config) {
    std::lock_guard<std::mutex> lock(mu_);
    points_[point].config = config;
  }

  /// Disarms every point (counters survive for reporting). Used to run
  /// fault-free audit transactions on a still-wired engine.
  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, p] : points_) p.config = FaultPointConfig{};
  }

  /// Records a hit at `point` and returns true when the point fires.
  /// Unarmed points count hits but never fire (and never draw from the
  /// RNG, so arming one point does not perturb another's schedule).
  bool Fires(const std::string& point) {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[point];
    ++p.hits;
    bool fire = false;
    if (p.config.nth_hit != 0 && p.hits == p.config.nth_hit) fire = true;
    if (!fire && p.config.probability > 0.0) {
      fire = rng_.NextDouble() < p.config.probability;
    }
    if (fire) ++p.fires;
    return fire;
  }

  /// `Fires` for crash-class points: a fire latches `crash_pending` and
  /// records which point crashed first.
  bool FireCrash(const std::string& point) {
    if (!Fires(point)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (!crash_pending_) crash_point_ = point;
    crash_pending_ = true;
    return true;
  }

  bool crash_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crash_pending_;
  }
  std::string crash_point() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crash_point_;
  }
  void ClearCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crash_pending_ = false;
    crash_point_.clear();
  }

  /// Seeded draw for driver-side fault shaping (e.g. how many records
  /// to truncate from a stable-log tail). Deterministic with the seed.
  uint64_t Uniform(uint64_t bound) {
    std::lock_guard<std::mutex> lock(mu_);
    return bound == 0 ? 0 : rng_.Next() % bound;
  }

  /// Counter snapshot, sorted by point name (map order) so the JSON
  /// export is deterministic.
  std::vector<FaultPointStats> Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FaultPointStats> out;
    out.reserve(points_.size());
    for (const auto& [name, p] : points_) {
      out.push_back(FaultPointStats{name, p.hits, p.fires});
    }
    return out;
  }

 private:
  struct Point {
    FaultPointConfig config;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, Point> points_;
  bool crash_pending_ = false;
  std::string crash_point_;
};

}  // namespace imoltp::fault

#endif  // IMOLTP_FAULT_FAULT_INJECTOR_H_
