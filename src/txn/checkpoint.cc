#include "txn/checkpoint.h"

namespace imoltp::txn {

namespace {

inline void FnvMix(uint64_t* h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 0x100000001b3ULL;
  }
}

}  // namespace

uint64_t CheckpointPage::ComputeChecksum() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  FnvMix(&h, &table, sizeof(table));
  FnvMix(&h, &slice, sizeof(slice));
  FnvMix(&h, &page_no, sizeof(page_no));
  FnvMix(&h, &row_bytes, sizeof(row_bytes));
  if (!rids.empty()) {
    FnvMix(&h, rids.data(), rids.size() * sizeof(uint64_t));
  }
  if (!present.empty()) {
    FnvMix(&h, present.data(), present.size());
  }
  if (!images.empty()) {
    FnvMix(&h, images.data(), images.size());
  }
  return h;
}

uint64_t CheckpointImage::pages() const {
  uint64_t n = 0;
  for (const CheckpointSliceImage& s : slices) n += s.pages.size();
  return n;
}

uint64_t CheckpointImage::bytes() const {
  uint64_t n = 0;
  for (const CheckpointSliceImage& s : slices) {
    for (const CheckpointPage& p : s.pages) n += p.bytes();
    n += s.journal.size() * sizeof(CheckpointJournalEntry);
  }
  return n;
}

bool CheckpointImage::AnyTorn() const {
  for (const CheckpointSliceImage& s : slices) {
    for (const CheckpointPage& p : s.pages) {
      if (p.Torn()) return true;
    }
  }
  return false;
}

CheckpointImage& CheckpointManager::Begin(uint64_t begin_lsn) {
  pending_.emplace();
  pending_->id = next_id_++;
  pending_->begin_lsn = begin_lsn;
  ++stats_.begun;
  return *pending_;
}

uint64_t CheckpointManager::Complete(uint64_t end_lsn) {
  pending_->end_lsn = end_lsn;
  pending_->complete = true;
  stats_.captured_pages += pending_->pages();
  stats_.captured_bytes += pending_->bytes();
  ++stats_.completed;
  retained_.push_back(std::move(*pending_));
  pending_.reset();
  const size_t keep =
      policy_.retain > 0 ? static_cast<size_t>(policy_.retain) : 1;
  if (retained_.size() > keep) {
    retained_.erase(retained_.begin(),
                    retained_.end() - static_cast<ptrdiff_t>(keep));
  }
  return retained_.front().begin_lsn;
}

const CheckpointImage* SelectRecoverable(
    const std::vector<CheckpointImage>& device, RecoveryStats* stats) {
  stats->checkpoints_available = device.size();
  for (auto it = device.rbegin(); it != device.rend(); ++it) {
    if (!it->complete) continue;
    uint64_t torn = 0;
    for (const CheckpointSliceImage& s : it->slices) {
      for (const CheckpointPage& p : s.pages) {
        if (p.Torn()) ++torn;
      }
    }
    if (torn == 0) return &*it;
    stats->torn_pages += torn;
    ++stats->checkpoints_discarded;
  }
  return nullptr;
}

void TearPage(CheckpointPage* page) {
  if (page->images.empty()) {
    // Degenerate page with no row data: corrupt the metadata instead.
    page->page_no ^= 0x5a5a5a5a;
    return;
  }
  // First half reached the device; the tail still holds stale bytes.
  const size_t keep = page->images.size() / 2;
  for (size_t i = keep; i < page->images.size(); ++i) {
    page->images[i] ^= 0xa5;
  }
}

}  // namespace imoltp::txn
