#ifndef IMOLTP_TXN_PARTITION_H_
#define IMOLTP_TXN_PARTITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "mcsim/core.h"

namespace imoltp::txn {

/// The partitioned execution model of VoltDB/H-Store and HyPer: one data
/// partition per worker, serial execution within a partition, no locks.
/// A single-partition transaction only checks that it runs on its home
/// partition; a multi-partition transaction must claim every involved
/// partition (the coordination whose cost the paper notes raises
/// VoltDB's instruction stalls by ~60%, Section 7).
class PartitionManager {
 public:
  explicit PartitionManager(int num_partitions)
      : owners_(static_cast<size_t>(num_partitions)) {
    for (auto& o : owners_) o.store(kFree, std::memory_order_relaxed);
  }

  PartitionManager(const PartitionManager&) = delete;
  PartitionManager& operator=(const PartitionManager&) = delete;

  int num_partitions() const { return static_cast<int>(owners_.size()); }

  /// Home partition of a partitioning key (range partitioning).
  int PartitionOf(uint64_t key, uint64_t key_space) const {
    const uint64_t n = owners_.size();
    if (key_space == 0) return 0;
    uint64_t p = key * n / key_space;
    if (p >= n) p = n - 1;
    return static_cast<int>(p);
  }

  /// Single-partition fast path: verifies `worker` owns `partition`.
  /// Worker i permanently owns partition i.
  Status EnterSinglePartition(mcsim::CoreSim* core, int worker,
                              int partition) {
    core->Read(reinterpret_cast<uint64_t>(&owners_[partition]), 8);
    core->Retire(6);
    if (worker != partition) {
      return Status::Aborted("transaction routed to wrong partition");
    }
    return Status::Ok();
  }

  /// Multi-partition path: claims every partition in `partitions` for
  /// `worker` (fails if any is claimed by another multi-partition txn).
  /// Claims are atomic compare-and-swaps so concurrent multi-partition
  /// transactions race safely in free-running mode; the traced event
  /// sequence (all check reads, then all claim writes) is unchanged from
  /// the serial implementation, so serialized modes stay bit-identical.
  Status EnterMultiPartition(mcsim::CoreSim* core, int worker,
                             const std::vector<int>& partitions) {
    for (int p : partitions) {
      core->Read(reinterpret_cast<uint64_t>(&owners_[p]), 8);
      core->Retire(10);
      int expected = kFree;
      if (!owners_[p].compare_exchange_strong(expected, worker) &&
          expected != worker) {
        ReleaseMultiPartition(core, worker);
        return Status::Aborted("partition claimed");
      }
    }
    for (int p : partitions) {
      core->Write(reinterpret_cast<uint64_t>(&owners_[p]), 8);
    }
    return Status::Ok();
  }

  void ReleaseMultiPartition(mcsim::CoreSim* core, int worker) {
    for (auto& o : owners_) {
      if (o.load(std::memory_order_relaxed) == worker) {
        o.store(kFree, std::memory_order_release);
        core->Write(reinterpret_cast<uint64_t>(&o), 8);
      }
    }
  }

  int owner(int partition) const {
    return owners_[partition].load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kFree = -1;
  std::vector<std::atomic<int>> owners_;
};

/// Cluster-level partition ownership: which *node* owns each unit of a
/// contiguously block-partitioned key domain (src/dist shards TPC-C by
/// warehouse: node n owns warehouses [n*per_node, (n+1)*per_node)).
/// The intra-node PartitionManager above routes a key to a worker core;
/// this maps it to a node first — the forwarder's single-home vs
/// multi-home classification is entirely a question over this map.
class OwnershipMap {
 public:
  OwnershipMap(int nodes, uint64_t units_per_node)
      : nodes_(nodes), units_per_node_(units_per_node) {}

  int nodes() const { return nodes_; }
  uint64_t units_per_node() const { return units_per_node_; }
  uint64_t total_units() const {
    return units_per_node_ * static_cast<uint64_t>(nodes_);
  }

  /// Owning node of a global unit (warehouse) id.
  int OwnerOf(uint64_t unit) const {
    const uint64_t n = unit / units_per_node_;
    return n >= static_cast<uint64_t>(nodes_) ? nodes_ - 1
                                              : static_cast<int>(n);
  }

  /// Node-local unit id (the warehouse id a node's own engine sees).
  uint64_t LocalUnit(uint64_t unit) const {
    return unit - static_cast<uint64_t>(OwnerOf(unit)) * units_per_node_;
  }

  /// Global unit id of `local` at `node`.
  uint64_t GlobalUnit(int node, uint64_t local) const {
    return static_cast<uint64_t>(node) * units_per_node_ + local;
  }

 private:
  int nodes_;
  uint64_t units_per_node_;
};

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_PARTITION_H_
