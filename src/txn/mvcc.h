#ifndef IMOLTP_TXN_MVCC_H_
#define IMOLTP_TXN_MVCC_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mcsim/core.h"

namespace imoltp::txn {

/// Optimistic multiversion concurrency control in the style of Hekaton
/// (Larson et al.; the paper's DBMS M "adopts optimistic multiversioned
/// concurrency control", Section 3). No locks are taken:
///
///   - Begin() hands out a read timestamp.
///   - Reads record (row, observed version) in the read set; a reader
///     whose snapshot predates the newest committed version is served an
///     older image from the version chain.
///   - Writes stage full-row images; a pending write by another
///     transaction is a write-write conflict (immediate abort).
///   - Commit validates the read set (observed versions unchanged),
///     assigns a commit timestamp, pushes prior images onto the version
///     chains, and returns the staged writes for the engine to install.
///
/// Version-chain entries are real allocations and every touch is traced,
/// so the MVCC bookkeeping shows up in the simulated data-stall profile.
///
/// Thread safety: one mutex guards the version map, transaction table and
/// clock, so concurrent worker threads (free-running parallel mode) can
/// Begin/Read/StageWrite/Commit/Abort safely. Read copies the visible
/// image out under the mutex — returning an interior pointer would dangle
/// once another thread's commit trims the version chain.
class MvccManager {
 public:
  struct StagedWrite {
    uint64_t table_id;
    uint64_t row;
    std::vector<uint8_t> data;
  };

  MvccManager() = default;
  MvccManager(const MvccManager&) = delete;
  MvccManager& operator=(const MvccManager&) = delete;

  /// Starts a transaction; returns its id (== read timestamp snapshot).
  uint64_t Begin(mcsim::CoreSim* core);

  /// Records a read of (table, row) in the read set. If an older image
  /// from the version chain is visible at the reader's snapshot, copies
  /// it into `*image` and returns true; returns false when the table's
  /// current content is the visible version.
  bool Read(mcsim::CoreSim* core, uint64_t txn_id, uint64_t table_id,
            uint64_t row, std::vector<uint8_t>* image);

  /// Read-your-own-writes: if `txn_id` has already staged a write for
  /// (table, row), copies its newest staged image into `*image` and
  /// returns true. Callers must consult this BEFORE Read/ReadRow — a
  /// transaction's second update of a row must build on its first, not
  /// on the committed image (lost staged updates otherwise; TPC-C's
  /// stock rows take two single-column updates per order line).
  bool ReadOwnWrite(mcsim::CoreSim* core, uint64_t txn_id,
                    uint64_t table_id, uint64_t row,
                    std::vector<uint8_t>* image);

  /// Stages a full-row write. `prior_image` is the committed image being
  /// replaced (kept for older snapshots). kAborted on a pending write by
  /// another transaction.
  Status StageWrite(mcsim::CoreSim* core, uint64_t txn_id,
                    uint64_t table_id, uint64_t row,
                    const uint8_t* new_image, uint32_t length,
                    const uint8_t* prior_image);

  /// Validates and commits. On success fills `installs` with the staged
  /// writes (the engine writes them into its tables) and returns Ok.
  Status Commit(mcsim::CoreSim* core, uint64_t txn_id,
                std::vector<StagedWrite>* installs);

  void Abort(mcsim::CoreSim* core, uint64_t txn_id);

  uint64_t clock() const {
    return clock_.load(std::memory_order_relaxed);
  }

 private:
  struct Version {
    uint64_t commit_ts;
    std::vector<uint8_t> image;  // committed image valid BEFORE commit_ts
  };
  struct RowVersions {
    uint64_t last_commit_ts = 0;
    uint64_t pending_txn = 0;  // 0: none
    std::vector<Version> history;  // old images, newest last
  };
  struct ReadEntry {
    uint64_t row_key;
    uint64_t observed_ts;
  };
  struct TxnState {
    uint64_t read_ts;
    std::vector<ReadEntry> reads;
    std::vector<StagedWrite> writes;
    std::vector<std::vector<uint8_t>> prior_images;
  };

  static uint64_t RowKey(uint64_t table_id, uint64_t row) {
    return (table_id << 48) ^ row;
  }

  void AbortLocked(mcsim::CoreSim* core, uint64_t txn_id);

  static constexpr size_t kMaxHistory = 4;

  std::mutex mu_;
  std::atomic<uint64_t> clock_{1};
  uint64_t next_txn_ = 0;
  std::unordered_map<uint64_t, RowVersions> versions_;
  std::unordered_map<uint64_t, TxnState> txns_;
};

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_MVCC_H_
