#include "txn/mvcc.h"

namespace imoltp::txn {

uint64_t MvccManager::Begin(mcsim::CoreSim* core) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t txn_id = ++next_txn_;
  TxnState& t = txns_[txn_id];
  t.read_ts = clock_.load(std::memory_order_relaxed);
  core->Retire(12);  // timestamp allocation
  return txn_id;
}

bool MvccManager::ReadOwnWrite(mcsim::CoreSim* core, uint64_t txn_id,
                               uint64_t table_id, uint64_t row,
                               std::vector<uint8_t>* image) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return false;
  core->Retire(6);  // write-set probe
  // Newest staged image wins (a row can be staged more than once).
  const auto& writes = it->second.writes;
  for (auto w = writes.rbegin(); w != writes.rend(); ++w) {
    if (w->table_id == table_id && w->row == row) {
      core->Read(reinterpret_cast<uint64_t>(w->data.data()),
                 static_cast<uint32_t>(w->data.size()));
      *image = w->data;
      return true;
    }
  }
  return false;
}

bool MvccManager::Read(mcsim::CoreSim* core, uint64_t txn_id,
                       uint64_t table_id, uint64_t row,
                       std::vector<uint8_t>* image) {
  std::lock_guard<std::mutex> guard(mu_);
  TxnState& t = txns_[txn_id];
  const uint64_t key = RowKey(table_id, row);
  auto it = versions_.find(key);
  core->Retire(10);  // version-map probe
  if (it == versions_.end()) {
    t.reads.push_back(ReadEntry{key, 0});
    return false;  // base table content is the only version
  }
  RowVersions& rv = it->second;
  core->Read(reinterpret_cast<uint64_t>(&rv), sizeof(RowVersions));
  if (t.read_ts >= rv.last_commit_ts) {
    t.reads.push_back(ReadEntry{key, rv.last_commit_ts});
    return false;  // newest committed version == table content
  }
  // Snapshot predates the newest version: the visible image is the one
  // replaced by the earliest commit after read_ts. History is ordered
  // oldest→newest; each entry's image was valid before its commit_ts.
  t.reads.push_back(ReadEntry{key, rv.last_commit_ts});
  for (auto& v : rv.history) {
    core->Read(reinterpret_cast<uint64_t>(v.image.data()),
               static_cast<uint32_t>(v.image.size()));
    core->Retire(8);
    if (v.commit_ts > t.read_ts) {
      image->assign(v.image.begin(), v.image.end());
      return true;
    }
  }
  return false;  // chain trimmed past the snapshot: newest is served
}

Status MvccManager::StageWrite(mcsim::CoreSim* core, uint64_t txn_id,
                               uint64_t table_id, uint64_t row,
                               const uint8_t* new_image, uint32_t length,
                               const uint8_t* prior_image) {
  std::lock_guard<std::mutex> guard(mu_);
  TxnState& t = txns_[txn_id];
  const uint64_t key = RowKey(table_id, row);
  RowVersions& rv = versions_[key];
  core->Read(reinterpret_cast<uint64_t>(&rv), sizeof(RowVersions));
  core->Retire(14);
  if (rv.pending_txn != 0 && rv.pending_txn != txn_id) {
    return Status::Aborted("write-write conflict");
  }
  rv.pending_txn = txn_id;
  core->Write(reinterpret_cast<uint64_t>(&rv), 16);

  StagedWrite w;
  w.table_id = table_id;
  w.row = row;
  w.data.assign(new_image, new_image + length);
  core->Write(reinterpret_cast<uint64_t>(w.data.data()), length);
  t.writes.push_back(std::move(w));
  t.prior_images.emplace_back(prior_image, prior_image + length);
  core->Retire(16);
  return Status::Ok();
}

Status MvccManager::Commit(mcsim::CoreSim* core, uint64_t txn_id,
                           std::vector<StagedWrite>* installs) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return Status::InvalidArgument("unknown txn");
  TxnState& t = it->second;

  // Validation: every read must still observe the same version.
  for (const ReadEntry& r : t.reads) {
    auto vit = versions_.find(r.row_key);
    const uint64_t now_ts =
        vit == versions_.end() ? 0 : vit->second.last_commit_ts;
    core->Retire(8);
    if (vit != versions_.end()) {
      core->Read(reinterpret_cast<uint64_t>(&vit->second), 16);
    }
    if (now_ts != r.observed_ts) {
      AbortLocked(core, txn_id);
      return Status::Aborted("validation failure");
    }
  }

  const uint64_t commit_ts =
      clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (size_t i = 0; i < t.writes.size(); ++i) {
    const StagedWrite& w = t.writes[i];
    RowVersions& rv = versions_[RowKey(w.table_id, w.row)];
    rv.history.push_back(
        Version{commit_ts, std::move(t.prior_images[i])});
    if (rv.history.size() > kMaxHistory) {
      rv.history.erase(rv.history.begin());
    }
    rv.last_commit_ts = commit_ts;
    rv.pending_txn = 0;
    core->Write(reinterpret_cast<uint64_t>(&rv), 24);
    core->Retire(12);
  }
  *installs = std::move(t.writes);
  txns_.erase(it);
  return Status::Ok();
}

void MvccManager::Abort(mcsim::CoreSim* core, uint64_t txn_id) {
  std::lock_guard<std::mutex> guard(mu_);
  AbortLocked(core, txn_id);
}

void MvccManager::AbortLocked(mcsim::CoreSim* core, uint64_t txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  for (const StagedWrite& w : it->second.writes) {
    auto vit = versions_.find(RowKey(w.table_id, w.row));
    if (vit != versions_.end() && vit->second.pending_txn == txn_id) {
      vit->second.pending_txn = 0;
      core->Write(reinterpret_cast<uint64_t>(&vit->second), 16);
    }
  }
  core->Retire(10);
  txns_.erase(it);
}

}  // namespace imoltp::txn
