#ifndef IMOLTP_TXN_CHECKPOINT_H_
#define IMOLTP_TXN_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "index/key.h"

namespace imoltp::txn {

/// Fuzzy checkpointing (docs/robustness.md, "Checkpointing & fuzzy
/// recovery"). A checkpoint captures the dirty pages of every table
/// slice *while transactions run*, bracketed by kCheckpointBegin /
/// kCheckpointEnd WAL records. Recovery restores the newest complete,
/// checksum-clean checkpoint onto a freshly created database and
/// replays the retained log tail from the truncation anchor; a torn
/// page fails its checksum and discards the whole checkpoint in favor
/// of the previous complete one.

/// One post-population index operation. Indexes expose no key
/// iteration, so the pages of a checkpoint cannot reconstruct the keys
/// of rows whose inserts were truncated out of the log — each slice
/// keeps an append-only journal of its index mutations and the
/// checkpoint carries the journal prefix as of capture time.
struct CheckpointJournalEntry {
  int16_t target = -1;  // -1 = primary index, else secondary ordinal
  bool insert = true;   // false = remove
  index::Key key;
  uint64_t rid = 0;
};

/// One captured page: the full row-image contents of a page-aligned
/// RowId range (in-memory tables: 64-row logical pages; disk heap
/// files: slotted-page slots). `images` holds row_bytes per rid;
/// absent rows keep zeroed bytes and present[i] == 0. The checksum
/// covers every field, so a half-written (torn) page is detectable.
struct CheckpointPage {
  int16_t table = 0;
  int16_t slice = 0;
  uint64_t page_no = 0;
  uint32_t row_bytes = 0;
  std::vector<uint64_t> rids;
  std::vector<uint8_t> present;  // parallel to rids
  std::vector<uint8_t> images;   // rids.size() * row_bytes
  uint64_t checksum = 0;

  uint64_t ComputeChecksum() const;
  void Seal() { checksum = ComputeChecksum(); }
  bool Torn() const { return checksum != ComputeChecksum(); }
  uint64_t bytes() const {
    return images.size() + rids.size() * 9 + 24;
  }
};

/// One table slice's share of a checkpoint.
struct CheckpointSliceImage {
  int16_t table = 0;
  int16_t slice = 0;
  uint64_t num_rows = 0;  // rid-space size at capture time
  std::vector<CheckpointJournalEntry> journal;  // prefix at capture
  std::vector<CheckpointPage> pages;
};

/// A whole checkpoint. `begin_lsn` anchors recovery: once this
/// checkpoint is durable, log records below the *oldest retained*
/// checkpoint's begin LSN can be truncated.
struct CheckpointImage {
  uint64_t id = 0;
  uint64_t begin_lsn = 0;
  uint64_t end_lsn = 0;
  bool complete = false;
  std::vector<CheckpointSliceImage> slices;

  uint64_t pages() const;
  uint64_t bytes() const;
  bool AnyTorn() const;
};

/// Checkpoint cadence and retention. Disabled by default: golden
/// profiling runs are unaffected unless a run opts in.
struct CheckpointPolicy {
  bool enabled = false;
  /// A new checkpoint begins every N transaction ticks of worker 0.
  uint64_t every_n_ticks = 64;
  /// Fuzzy capture rate for the non-partitioned engines: pages copied
  /// per transaction tick.
  int pages_per_step = 4;
  /// Complete checkpoints kept on the simulated device. 2 = the
  /// classic "previous complete checkpoint" torn-page fallback.
  int retain = 2;
};

struct CheckpointStats {
  uint64_t begun = 0;
  uint64_t completed = 0;
  uint64_t captured_pages = 0;
  uint64_t captured_bytes = 0;
  uint64_t truncations = 0;
  uint64_t truncated_records = 0;
};

/// Recovery observability (schema v7 `recovery` section).
struct RecoveryStats {
  uint64_t checkpoints_available = 0;
  uint64_t checkpoints_discarded = 0;  // torn → fell back
  uint64_t torn_pages = 0;
  bool used_checkpoint = false;
  uint64_t checkpoint_id = 0;
  uint64_t restored_pages = 0;
  uint64_t restored_bytes = 0;
  uint64_t journal_entries = 0;
  uint64_t replayed_records = 0;  // log records applied after restore
  uint64_t undone_records = 0;    // loser records rolled back
  uint64_t truncation_lsn = 0;
};

/// Owns the pending capture and the retained complete checkpoints (the
/// simulated checkpoint device). The engine drives capture; this class
/// handles lifecycle, retention, and the truncation anchor.
class CheckpointManager {
 public:
  explicit CheckpointManager(const CheckpointPolicy& policy)
      : policy_(policy) {}

  const CheckpointPolicy& policy() const { return policy_; }
  bool enabled() const { return policy_.enabled; }

  /// Starts a new pending checkpoint; one at a time.
  CheckpointImage& Begin(uint64_t begin_lsn);
  CheckpointImage* pending() {
    return pending_.has_value() ? &*pending_ : nullptr;
  }

  /// Seals the pending checkpoint, retains it (dropping beyond
  /// `retain`), and returns the truncation anchor — the oldest retained
  /// checkpoint's begin LSN. Log records below the anchor are no longer
  /// needed for recovery.
  uint64_t Complete(uint64_t end_lsn);

  /// Drops an in-flight capture (crash mid-checkpoint).
  void Abandon() { pending_.reset(); }

  const std::vector<CheckpointImage>& retained() const {
    return retained_;
  }

  /// Copy of the durable checkpoints as a recovery input (chaos tears
  /// pages in the copy, never in the live manager).
  std::vector<CheckpointImage> DeviceImage() const { return retained_; }

  CheckpointStats& stats() { return stats_; }
  const CheckpointStats& stats() const { return stats_; }

 private:
  CheckpointPolicy policy_;
  std::optional<CheckpointImage> pending_;
  std::vector<CheckpointImage> retained_;  // oldest first
  CheckpointStats stats_;
  uint64_t next_id_ = 1;
};

/// Picks the newest complete checkpoint whose pages all pass their
/// checksums, accumulating torn-page / fallback counts into `stats`.
/// Returns nullptr when none is usable.
const CheckpointImage* SelectRecoverable(
    const std::vector<CheckpointImage>& device, RecoveryStats* stats);

/// Torn-page injection: the crash interrupted the checkpoint writer
/// mid-page, so the first bytes on the device are new and the tail is
/// stale. Corrupts the tail of the page's image blob without resealing
/// the checksum — recovery must detect it.
void TearPage(CheckpointPage* page);

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_CHECKPOINT_H_
