#include "txn/log_manager.h"

namespace imoltp::txn {

uint64_t LogManager::Append(mcsim::CoreSim* core, LogOp op,
                            uint64_t txn_id, int16_t table, uint64_t row,
                            int16_t column, const void* payload,
                            uint32_t payload_bytes, const void* key,
                            uint32_t key_bytes, int16_t slice,
                            const void* before, uint32_t before_bytes,
                            bool clr) {
  const uint32_t record_bytes =
      kHeaderBytes + payload_bytes + key_bytes + before_bytes;
  Reserve(record_bytes);

  // Critical-path work: format the record into the sequential buffer.
  uint8_t* dst = buffer_.get() + offset_;
  std::memcpy(dst, &txn_id, 8);
  std::memcpy(dst + 8, &row, 8);
  std::memcpy(dst + 16, &payload_bytes, 4);
  std::memcpy(dst + 20, &key_bytes, 4);
  std::memcpy(dst + 24, &table, 2);
  std::memcpy(dst + 26, &column, 2);
  dst[28] = static_cast<uint8_t>(op);
  if (payload != nullptr && payload_bytes > 0) {
    std::memcpy(dst + kHeaderBytes, payload, payload_bytes);
  }
  if (key != nullptr && key_bytes > 0) {
    std::memcpy(dst + kHeaderBytes + payload_bytes, key, key_bytes);
  }
  if (before != nullptr && before_bytes > 0) {
    std::memcpy(dst + kHeaderBytes + payload_bytes + key_bytes, before,
                before_bytes);
  }
  core->Write(reinterpret_cast<uint64_t>(dst), record_bytes);
  core->Retire(18 + (payload_bytes + key_bytes + before_bytes) / 16);
  offset_ += Align8(record_bytes);
  bytes_logged_ += record_bytes;

  // Durable side (the simulated log device).
  LogRecord rec;
  if (fault_ != nullptr && fault_->Fires(fault::kLogTornRecord)) {
    rec.torn = true;
  }
  rec.lsn = NextLsn();
  rec.txn_id = txn_id;
  rec.op = op;
  rec.table = table;
  rec.column = column;
  rec.slice = slice;
  rec.row = row;
  rec.clr = clr;
  if (payload != nullptr && payload_bytes > 0) {
    rec.payload.assign(static_cast<const uint8_t*>(payload),
                       static_cast<const uint8_t*>(payload) +
                           payload_bytes);
  }
  if (key != nullptr && key_bytes > 0) {
    rec.key.assign(static_cast<const uint8_t*>(key),
                   static_cast<const uint8_t*>(key) + key_bytes);
  }
  if (before != nullptr && before_bytes > 0) {
    rec.before.assign(static_cast<const uint8_t*>(before),
                      static_cast<const uint8_t*>(before) + before_bytes);
  }
  stable_.push_back(std::move(rec));
  if (force_) flushed_records_ = stable_.size();
  return stable_.back().lsn;
}

}  // namespace imoltp::txn
