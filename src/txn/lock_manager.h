#ifndef IMOLTP_TXN_LOCK_MANAGER_H_
#define IMOLTP_TXN_LOCK_MANAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "mcsim/core.h"

namespace imoltp::txn {

enum class LockMode : uint8_t { kShared, kExclusive };

/// The centralized lock table of the disk-based engine archetypes:
/// two-phase locking with a hashed lock-head table and per-transaction
/// lock lists. Every acquisition probes the shared table and touches the
/// lock head — the data- and instruction-side overhead that the paper's
/// in-memory systems design away (Section 2.1).
///
/// Conflict policy is no-wait: a conflicting request returns kAborted and
/// the caller aborts. In the serialized execution modes workers
/// interleave at transaction granularity, so waits could never resolve;
/// in free-running parallel mode no-wait keeps the simulation
/// deadlock-free while 2PL sees real cross-thread contention.
///
/// Thread safety: bucket chains are guarded by striped mutexes (hashed
/// bucket → stripe), the per-transaction lock lists by a separate mutex.
/// The two are never held together, so there is no ordering hazard.
class LockManager {
 public:
  explicit LockManager(uint64_t num_buckets = 1 << 14);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `object_id` (a hashed table/row identifier) for
  /// `txn_id`. Re-acquisition and shared→exclusive upgrade by the sole
  /// holder are supported.
  Status Acquire(mcsim::CoreSim* core, uint64_t txn_id, uint64_t object_id,
                 LockMode mode);

  /// Releases every lock `txn_id` holds (2PL release phase at
  /// commit/abort).
  void ReleaseAll(mcsim::CoreSim* core, uint64_t txn_id);

  /// Number of distinct locked objects (testing hook).
  uint64_t ActiveLocks() const {
    return active_locks_.load(std::memory_order_relaxed);
  }

  /// True if `txn_id` holds a lock on `object_id` (testing hook).
  bool Holds(uint64_t txn_id, uint64_t object_id) const;

  /// Attaches a fault injector; null detaches. When the
  /// `lock.conflict` point is armed, acquisitions spuriously conflict —
  /// a deterministic contention storm for exercising abort/retry paths.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  static constexpr uint64_t kStripes = 64;

  struct LockHead {
    uint64_t object_id;
    LockMode mode;
    std::vector<uint64_t> holders;  // sharers, or the one exclusive owner
  };
  struct TxnLocks {
    uint64_t txn_id;
    std::vector<uint64_t> objects;
  };

  uint64_t BucketOf(uint64_t object_id) const;
  std::mutex& StripeOf(uint64_t bucket) const {
    return stripe_mu_[bucket & (kStripes - 1)];
  }
  TxnLocks& LocksOf(uint64_t txn_id);
  void Release(mcsim::CoreSim* core, uint64_t txn_id, uint64_t object_id);

  std::vector<std::vector<LockHead>> buckets_;
  uint64_t mask_;
  fault::FaultInjector* fault_ = nullptr;
  std::atomic<uint64_t> active_locks_{0};
  mutable std::array<std::mutex, kStripes> stripe_mu_;
  std::mutex txn_mu_;
  std::vector<TxnLocks> txn_locks_;  // small: one entry per live txn
};

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_LOCK_MANAGER_H_
