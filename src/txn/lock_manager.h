#ifndef IMOLTP_TXN_LOCK_MANAGER_H_
#define IMOLTP_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "mcsim/core.h"

namespace imoltp::txn {

enum class LockMode : uint8_t { kShared, kExclusive };

/// The centralized lock table of the disk-based engine archetypes:
/// two-phase locking with a hashed lock-head table and per-transaction
/// lock lists. Every acquisition probes the shared table and touches the
/// lock head — the data- and instruction-side overhead that the paper's
/// in-memory systems design away (Section 2.1).
///
/// Conflict policy is no-wait: a conflicting request returns kAborted and
/// the caller aborts (single-worker runs never conflict; multi-worker
/// runs interleave at transaction granularity, so waits cannot resolve).
class LockManager {
 public:
  explicit LockManager(uint64_t num_buckets = 1 << 14);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `object_id` (a hashed table/row identifier) for
  /// `txn_id`. Re-acquisition and shared→exclusive upgrade by the sole
  /// holder are supported.
  Status Acquire(mcsim::CoreSim* core, uint64_t txn_id, uint64_t object_id,
                 LockMode mode);

  /// Releases every lock `txn_id` holds (2PL release phase at
  /// commit/abort).
  void ReleaseAll(mcsim::CoreSim* core, uint64_t txn_id);

  /// Number of distinct locked objects (testing hook).
  uint64_t ActiveLocks() const { return active_locks_; }

  /// True if `txn_id` holds a lock on `object_id` (testing hook).
  bool Holds(uint64_t txn_id, uint64_t object_id) const;

 private:
  struct LockHead {
    uint64_t object_id;
    LockMode mode;
    std::vector<uint64_t> holders;  // sharers, or the one exclusive owner
  };
  struct TxnLocks {
    uint64_t txn_id;
    std::vector<uint64_t> objects;
  };

  uint64_t BucketOf(uint64_t object_id) const;
  TxnLocks& LocksOf(uint64_t txn_id);
  void Release(mcsim::CoreSim* core, uint64_t txn_id, uint64_t object_id);

  std::vector<std::vector<LockHead>> buckets_;
  uint64_t mask_;
  uint64_t active_locks_ = 0;
  std::vector<TxnLocks> txn_locks_;  // small: one entry per live txn
};

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_LOCK_MANAGER_H_
