#ifndef IMOLTP_TXN_LOG_MANAGER_H_
#define IMOLTP_TXN_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "mcsim/core.h"

namespace imoltp::txn {

/// Write-ahead log record kinds.
enum class LogOp : uint8_t {
  kUpdate,   // column (or full-row when column < 0) after-image
  kInsert,   // full-row image + primary key
  kDelete,   // primary key
  kCommit,
  kAbort,
  kCommand,  // logical command record (VoltDB-style command logging)
  kCheckpointBegin,  // fuzzy checkpoint capture started (row = ckpt id)
  kCheckpointEnd,    // checkpoint complete (row = ckpt id,
                     // payload = 8-byte begin LSN of the same ckpt)
};

/// One recovery-grade WAL record. `lsn` is globally ordered across all
/// workers' logs so multi-partition logs merge deterministically.
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogOp op = LogOp::kCommit;
  int16_t table = -1;
  int16_t column = -1;  // -1: full-row payload
  int16_t slice = 0;    // partition that produced the record
  uint64_t row = 0;
  bool torn = false;  // injected torn write: record reached the device
                      // with a bad checksum; recovery must stop here
  /// Compensation log record: a redo-only record written while rolling
  /// a transaction back (ARIES-style). CLRs repeat the undo writes
  /// during recovery REDO and are never themselves undone.
  bool clr = false;
  std::vector<uint8_t> payload;  // after-image bytes
  std::vector<uint8_t> key;      // primary key bytes (insert/delete)
  /// Before-image (column or full row, per `column`). Logged only when
  /// fuzzy checkpointing is enabled: a checkpoint page can capture an
  /// in-flight transaction's writes, and recovery needs before-images
  /// to roll such losers back.
  std::vector<uint8_t> before;
};

/// Asynchronous write-ahead logging. The paper configures every system
/// with asynchronous logging "so there is no delay due to I/O in the
/// critical path" (Section 3). What remains on the critical path — and
/// what this class models for the simulator — is formatting records into
/// a sequential in-memory buffer: the one OLTP data stream with perfect
/// spatial locality.
///
/// Records are also retained in a "stable log" (the simulated durable
/// medium) so Engine::Replay can REDO committed work onto a fresh
/// database (see engine/engine.h).
class LogManager {
 public:
  explicit LogManager(uint32_t buffer_bytes = 1 << 20)
      : capacity_(buffer_bytes),
        buffer_(std::make_unique<uint8_t[]>(buffer_bytes)) {}

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends a record. The in-memory ring write (header + payload + key)
  /// is traced through `core`; the record is retained durably.
  /// Returns the record's LSN.
  uint64_t Append(mcsim::CoreSim* core, LogOp op, uint64_t txn_id,
                  int16_t table, uint64_t row, int16_t column,
                  const void* payload, uint32_t payload_bytes,
                  const void* key = nullptr, uint32_t key_bytes = 0,
                  int16_t slice = 0, const void* before = nullptr,
                  uint32_t before_bytes = 0, bool clr = false);

  /// Convenience wrappers.
  uint64_t LogUpdate(mcsim::CoreSim* core, uint64_t txn_id, int16_t table,
                     uint64_t row, int16_t column, const void* payload,
                     uint32_t payload_bytes, int16_t slice = 0,
                     const void* before = nullptr,
                     uint32_t before_bytes = 0, bool clr = false) {
    return Append(core, LogOp::kUpdate, txn_id, table, row, column,
                  payload, payload_bytes, nullptr, 0, slice, before,
                  before_bytes, clr);
  }
  uint64_t LogCommit(mcsim::CoreSim* core, uint64_t txn_id) {
    return Append(core, LogOp::kCommit, txn_id, -1, 0, -1, nullptr, 0);
  }
  uint64_t LogAbort(mcsim::CoreSim* core, uint64_t txn_id) {
    return Append(core, LogOp::kAbort, txn_id, -1, 0, -1, nullptr, 0);
  }

  const std::vector<LogRecord>& stable_log() const { return stable_; }

  uint64_t bytes_logged() const { return bytes_logged_; }
  uint64_t records() const { return stable_.size(); }
  uint64_t flushes() const { return flushes_; }
  uint32_t capacity() const { return capacity_; }

  /// Number of leading stable-log records the asynchronous background
  /// writer has pushed to the durable device. Records past this prefix
  /// still sit in the in-memory ring and are lost by a crash before the
  /// next flush (the paper's async-logging durability window).
  uint64_t flushed_records() const { return flushed_records_; }

  /// Forces the asynchronous writer: everything appended so far becomes
  /// durable. Called on every checkpoint capture tick — the WAL rule:
  /// a captured page may hold effects of records still in the ring, and
  /// those records must reach the device before the page does.
  void FlushAll() {
    if (flushed_records_ == stable_.size()) return;
    flushed_records_ = stable_.size();
    ++flushes_;
  }

  /// Force-at-append mode: every record is durable as soon as it is
  /// written. The non-partitioned engines enable this under fuzzy
  /// checkpointing — their capture thread can snapshot any worker's
  /// in-place effects at any instant, and only the worker's own thread
  /// may touch its log, so the WAL rule degenerates to a synchronous
  /// log device. (Partitioned engines keep the asynchronous window:
  /// capture is partition-local behind the worker's own FlushAll.)
  void set_force(bool on) { force_ = on; }

  /// Attaches a fault injector; null detaches. When armed, the
  /// `log.torn_record` point marks appended records as torn.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Drops retained records with `lsn < upto_lsn` (post-checkpoint
  /// truncation to the recovery anchor). The truncation LSN is recorded
  /// so recovery can distinguish a truncated log from an empty one —
  /// both have zero records, but only one is allowed to start replay at
  /// an LSN other than 0. Per-worker logs append in LSN order, so this
  /// is a prefix erase.
  void Truncate(uint64_t upto_lsn) {
    size_t drop = 0;
    while (drop < stable_.size() && stable_[drop].lsn < upto_lsn) {
      ++drop;
    }
    if (drop > 0) {
      stable_.erase(stable_.begin(),
                    stable_.begin() + static_cast<ptrdiff_t>(drop));
      truncated_records_ += drop;
      flushed_records_ = flushed_records_ > drop
                             ? flushed_records_ - drop
                             : 0;
    }
    if (upto_lsn > truncation_lsn_) truncation_lsn_ = upto_lsn;
  }

  /// First LSN recovery may see: records below this were truncated away
  /// behind a durable checkpoint. 0 = never truncated.
  uint64_t truncation_lsn() const { return truncation_lsn_; }

  /// Cumulative records dropped by Truncate().
  uint64_t truncated_records() const { return truncated_records_; }

  /// Records appended over the log's lifetime, including truncated
  /// ones — the "untruncated log length" a full-replay recovery would
  /// have had to process.
  uint64_t appended_records() const {
    return stable_.size() + truncated_records_;
  }

 private:
  static constexpr uint32_t kHeaderBytes = 32;
  static uint32_t Align8(uint32_t n) { return (n + 7) & ~7u; }

  void Reserve(uint32_t bytes) {
    // A single record larger than the whole ring can never fit: wrapping
    // the cursor alone would run the memcpy past the end of `buffer_`.
    // Grow the ring (doubling) — real WALs size the buffer to the
    // largest record the schema can produce.
    while (Align8(bytes) + 8 > capacity_) {
      uint32_t grown = capacity_ * 2;
      auto bigger = std::make_unique<uint8_t[]>(grown);
      std::memcpy(bigger.get(), buffer_.get(), capacity_);
      buffer_ = std::move(bigger);
      capacity_ = grown;
    }
    if (offset_ + Align8(bytes) + 8 > capacity_) {
      // Simulated asynchronous flush: the background writer drained the
      // buffer; the worker only wraps its cursor. Everything appended so
      // far is now on the durable device.
      offset_ = 0;
      ++flushes_;
      flushed_records_ = stable_.size();
    }
  }

  /// Globally ordered LSNs. Atomic so per-worker logs can append from
  /// concurrent host threads in free-running parallel mode; every other
  /// LogManager member is confined to its owning worker.
  static uint64_t NextLsn() {
    static std::atomic<uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  uint32_t capacity_;
  uint32_t offset_ = 0;
  uint64_t bytes_logged_ = 0;
  uint64_t flushes_ = 0;
  uint64_t flushed_records_ = 0;
  uint64_t truncated_records_ = 0;
  uint64_t truncation_lsn_ = 0;
  bool force_ = false;
  fault::FaultInjector* fault_ = nullptr;
  std::unique_ptr<uint8_t[]> buffer_;
  std::vector<LogRecord> stable_;
};

}  // namespace imoltp::txn

#endif  // IMOLTP_TXN_LOG_MANAGER_H_
