#include "txn/lock_manager.h"

#include <algorithm>
#include <cstddef>
#include <bit>

namespace imoltp::txn {

LockManager::LockManager(uint64_t num_buckets) {
  buckets_.resize(std::bit_ceil(num_buckets));
  mask_ = buckets_.size() - 1;
}

uint64_t LockManager::BucketOf(uint64_t object_id) const {
  uint64_t x = object_id;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x & mask_;
}

LockManager::TxnLocks& LockManager::LocksOf(uint64_t txn_id) {
  for (auto& t : txn_locks_) {
    if (t.txn_id == txn_id) return t;
  }
  txn_locks_.push_back(TxnLocks{txn_id, {}});
  return txn_locks_.back();
}

Status LockManager::Acquire(mcsim::CoreSim* core, uint64_t txn_id,
                            uint64_t object_id, LockMode mode) {
  if (fault_ != nullptr && fault_->Fires(fault::kLockConflict)) {
    return Status::Aborted("injected lock conflict");
  }
  const uint64_t bucket = BucketOf(object_id);
  bool acquired = false;
  {
    std::lock_guard<std::mutex> stripe(StripeOf(bucket));
    auto& chain = buckets_[bucket];
    core->Read(reinterpret_cast<uint64_t>(&chain), 16);  // bucket head
    core->Retire(14);                                    // hash + latch

    LockHead* head = nullptr;
    for (auto& l : chain) {
      core->Read(reinterpret_cast<uint64_t>(&l), 24);
      core->Retire(5);
      if (l.object_id == object_id) {
        head = &l;
        break;
      }
    }

    if (head == nullptr) {
      chain.push_back(LockHead{object_id, mode, {txn_id}});
      core->Write(reinterpret_cast<uint64_t>(&chain.back()), 32);
      core->Retire(12);
      active_locks_.fetch_add(1, std::memory_order_relaxed);
      acquired = true;
    } else {
      const bool already_holder =
          std::find(head->holders.begin(), head->holders.end(), txn_id) !=
          head->holders.end();

      if (already_holder) {
        if (mode == LockMode::kExclusive &&
            head->mode == LockMode::kShared) {
          if (head->holders.size() > 1) return Status::Aborted("upgrade");
          head->mode = LockMode::kExclusive;
          core->Write(reinterpret_cast<uint64_t>(head), 16);
          core->Retire(6);
        }
        return Status::Ok();
      }

      if (head->mode == LockMode::kExclusive ||
          mode == LockMode::kExclusive) {
        return Status::Aborted("lock conflict");
      }

      head->holders.push_back(txn_id);
      core->Write(reinterpret_cast<uint64_t>(head), 24);
      core->Retire(8);
      acquired = true;
    }
  }
  // Record the acquisition outside the stripe lock; the txn-list mutex
  // and the stripe mutexes are never held together.
  if (acquired) {
    std::lock_guard<std::mutex> guard(txn_mu_);
    LocksOf(txn_id).objects.push_back(object_id);
  }
  return Status::Ok();
}

void LockManager::Release(mcsim::CoreSim* core, uint64_t txn_id,
                          uint64_t object_id) {
  const uint64_t bucket = BucketOf(object_id);
  std::lock_guard<std::mutex> stripe(StripeOf(bucket));
  auto& chain = buckets_[bucket];
  core->Read(reinterpret_cast<uint64_t>(&chain), 16);
  core->Retire(10);
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].object_id != object_id) continue;
    auto& holders = chain[i].holders;
    holders.erase(std::remove(holders.begin(), holders.end(), txn_id),
                  holders.end());
    core->Write(reinterpret_cast<uint64_t>(&chain[i]), 24);
    core->Retire(8);
    if (holders.empty()) {
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
      active_locks_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
}

void LockManager::ReleaseAll(mcsim::CoreSim* core, uint64_t txn_id) {
  std::vector<uint64_t> objects;
  {
    std::lock_guard<std::mutex> guard(txn_mu_);
    for (size_t t = 0; t < txn_locks_.size(); ++t) {
      if (txn_locks_[t].txn_id != txn_id) continue;
      objects = std::move(txn_locks_[t].objects);
      txn_locks_.erase(txn_locks_.begin() +
                       static_cast<std::ptrdiff_t>(t));
      break;
    }
  }
  for (uint64_t obj : objects) {
    Release(core, txn_id, obj);
  }
}

bool LockManager::Holds(uint64_t txn_id, uint64_t object_id) const {
  const uint64_t bucket = BucketOf(object_id);
  std::lock_guard<std::mutex> stripe(StripeOf(bucket));
  const auto& chain = buckets_[bucket];
  for (const auto& l : chain) {
    if (l.object_id == object_id) {
      return std::find(l.holders.begin(), l.holders.end(), txn_id) !=
             l.holders.end();
    }
  }
  return false;
}

}  // namespace imoltp::txn
