// imoltp_timeline — inspects, validates, and renders the Perfetto
// (Chrome trace-event) timelines written by `imoltp_run
// --timeline-out=FILE` (docs/OBSERVABILITY.md).
//
//   imoltp_timeline validate run.timeline.json
//   imoltp_timeline info run.timeline.json
//   imoltp_timeline render run.timeline.json
//
// Subcommands:
//   validate FILE   structural check of the trace-event contract
//                   (traceEvents array, ph/name on every event, numeric
//                   ts/dur where required); prints the event census and
//                   exits non-zero on any violation — CI runs this on
//                   every freshly-emitted timeline
//   info FILE       one-line metadata summary plus per-core event
//                   counts and the covered time range
//   render FILE     terminal rendering: per core, an IPC sparkline over
//                   the sampled buckets and the span census with total
//                   duration per kind
//
// Exit codes: 0 = ok, 1 = validation failure, 2 = usage/parse error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/timeline.h"

using imoltp::Status;
using imoltp::obs::JsonValue;
using imoltp::obs::ParseJson;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s validate|info|render FILE\n"
               "FILE is a timeline written by imoltp_run "
               "--timeline-out=FILE\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->string : fallback;
}

/// Per-core census of one parsed timeline.
struct CoreSummary {
  uint64_t spans = 0;
  uint64_t counters = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  std::map<std::string, double> span_dur;   // kind -> total µs
  std::vector<double> ipc;                  // sampled ipc track, in order

  void Cover(double t) {
    if (!any) {
      t_min = t_max = t;
      any = true;
      return;
    }
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
};

std::map<int, CoreSummary> Summarize(const JsonValue& root) {
  std::map<int, CoreSummary> cores;
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return cores;
  for (const JsonValue& e : events->array) {
    if (!e.is_object()) continue;
    const std::string ph = StringOr(e.Find("ph"), "");
    if (ph != "X" && ph != "C") continue;
    const int pid = static_cast<int>(NumberOr(e.Find("pid"), 0));
    const double ts = NumberOr(e.Find("ts"), 0.0);
    CoreSummary& core = cores[pid];
    core.Cover(ts);
    if (ph == "X") {
      ++core.spans;
      const double dur = NumberOr(e.Find("dur"), 0.0);
      core.Cover(ts + dur);
      core.span_dur[StringOr(e.Find("name"), "?")] += dur;
    } else {
      ++core.counters;
      if (StringOr(e.Find("name"), "") == "ipc") {
        const JsonValue* args = e.Find("args");
        core.ipc.push_back(
            args != nullptr ? NumberOr(args->Find("ipc"), 0.0) : 0.0);
      }
    }
  }
  return cores;
}

void PrintMeta(const JsonValue& root) {
  const JsonValue* meta = root.Find("metadata");
  if (meta == nullptr || !meta->is_object()) return;
  std::printf("engine=%s workload=%s clock_ghz=%g sample_every=%.0f\n",
              StringOr(meta->Find("engine"), "?").c_str(),
              StringOr(meta->Find("workload"), "?").c_str(),
              NumberOr(meta->Find("clock_ghz"), 0.0),
              NumberOr(meta->Find("sample_every"), 0.0));
}

int RunValidate(const char* argv0, const std::string& path,
                const std::string& text) {
  uint64_t spans = 0;
  uint64_t counters = 0;
  const Status s =
      imoltp::obs::ValidateTimelineJson(text, &spans, &counters);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("OK: %s (%llu span events, %llu counter events)\n",
              path.c_str(), static_cast<unsigned long long>(spans),
              static_cast<unsigned long long>(counters));
  return 0;
}

int RunInfo(const JsonValue& root) {
  PrintMeta(root);
  const std::map<int, CoreSummary> cores = Summarize(root);
  for (const auto& [pid, core] : cores) {
    std::printf(
        "core %d: %llu spans, %llu counter events, %.1f..%.1f us\n", pid,
        static_cast<unsigned long long>(core.spans),
        static_cast<unsigned long long>(core.counters), core.t_min,
        core.t_max);
  }
  if (cores.empty()) std::printf("no span or counter events\n");
  return 0;
}

int RunRender(const JsonValue& root) {
  PrintMeta(root);
  // Eight-level unicode sparkline, min..max scaled per core.
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const std::map<int, CoreSummary> cores = Summarize(root);
  for (const auto& [pid, core] : cores) {
    std::printf("core %d (%.1f..%.1f us)\n", pid, core.t_min, core.t_max);
    if (!core.ipc.empty()) {
      double lo = core.ipc[0];
      double hi = core.ipc[0];
      for (double v : core.ipc) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      std::string line;
      // Cap the sparkline at 64 cells by averaging adjacent buckets.
      const size_t cells = std::min<size_t>(core.ipc.size(), 64);
      for (size_t i = 0; i < cells; ++i) {
        const size_t a = i * core.ipc.size() / cells;
        const size_t b =
            std::max(a + 1, (i + 1) * core.ipc.size() / cells);
        double sum = 0.0;
        for (size_t j = a; j < b; ++j) sum += core.ipc[j];
        const double v = sum / static_cast<double>(b - a);
        const int level =
            hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 7.0) : 0;
        line += kBlocks[std::clamp(level, 0, 7)];
      }
      std::printf("  ipc [%0.3f..%0.3f] %s\n", lo, hi, line.c_str());
    }
    for (const auto& [kind, dur] : core.span_dur) {
      std::printf("  span %-16s %10.1f us\n", kind.c_str(), dur);
    }
  }
  if (cores.empty()) std::printf("no span or counter events\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage(argv[0]);
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd != "validate" && cmd != "info" && cmd != "render") {
    return Usage(argv[0]);
  }

  std::string text, error;
  if (!ReadFile(path, &text, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }
  if (cmd == "validate") return RunValidate(argv[0], path, text);

  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  if (cmd == "info") return RunInfo(parsed.value());
  return RunRender(parsed.value());
}
