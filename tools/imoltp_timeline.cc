// imoltp_timeline — inspects, validates, and renders the Perfetto
// (Chrome trace-event) timelines written by `imoltp_run
// --timeline-out=FILE` (docs/OBSERVABILITY.md) and the whole-cluster
// ones written by `imoltp_cluster run --timeline-out=FILE`
// (docs/distributed.md, "Distributed tracing"). Cluster timelines
// (metadata kind="cluster") carry one lane per NODE instead of per
// core: info/render label them accordingly, render shows each node's
// critical-path sparkline (the critical_kcycles counter track), and
// both report the cross-node message census (the "s"/"f" flow arrows
// that link a multi-home transaction's home dispatch to its remote
// deliveries).
//
//   imoltp_timeline validate run.timeline.json
//   imoltp_timeline info run.timeline.json
//   imoltp_timeline render run.timeline.json
//
// Subcommands:
//   validate FILE   structural check of the trace-event contract
//                   (traceEvents array, ph/name on every event, numeric
//                   ts/dur where required); prints the event census and
//                   exits non-zero on any violation — CI runs this on
//                   every freshly-emitted timeline
//   info FILE       one-line metadata summary plus per-core event
//                   counts and the covered time range
//   render FILE     terminal rendering: per core, an IPC sparkline over
//                   the sampled buckets, per-module cycle sparklines
//                   (mod:* counter tracks, when the run sampled
//                   per-module), the span census with total duration
//                   per kind, and the retry-flow census (attempt
//                   slices linked by flow id)
//
// Exit codes: 0 = ok, 1 = validation failure, 2 = usage/parse error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/timeline.h"

using imoltp::Status;
using imoltp::obs::JsonValue;
using imoltp::obs::ParseJson;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s validate|info|render FILE\n"
               "FILE is a timeline written by imoltp_run or "
               "imoltp_cluster run, --timeline-out=FILE\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string StringOr(const JsonValue* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->string : fallback;
}

/// Per-core census of one parsed timeline.
struct CoreSummary {
  uint64_t spans = 0;
  uint64_t counters = 0;
  uint64_t attempts = 0;                    // retry-attempt slices
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  std::map<std::string, double> span_dur;   // kind -> total µs
  std::vector<double> ipc;                  // sampled ipc track, in order
  std::map<std::string, std::vector<double>> modules;  // mod:* tracks
  std::vector<double> critical;  // critical_kcycles track (cluster)

  void Cover(double t) {
    if (!any) {
      t_min = t_max = t;
      any = true;
      return;
    }
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
};

/// Whole-timeline retry-flow census.
struct FlowSummary {
  uint64_t flows = 0;          // distinct flow ids
  uint64_t attempts = 0;       // attempt slices across all cores
  uint64_t committed = 0;      // attempts that committed
  int max_chain = 0;           // longest attempt chain
  uint64_t net_arrows = 0;     // cluster cross-node message arrows
};

/// Whether a parsed timeline is a whole-cluster export (pid lanes are
/// nodes, not cores).
bool IsClusterTimeline(const JsonValue& root) {
  const JsonValue* meta = root.Find("metadata");
  if (meta == nullptr || !meta->is_object()) return false;
  return StringOr(meta->Find("kind"), "") == "cluster";
}

std::map<int, CoreSummary> Summarize(const JsonValue& root,
                                     FlowSummary* flows = nullptr) {
  std::map<int, CoreSummary> cores;
  std::map<double, int> chain;  // flow id -> attempt slices
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return cores;
  for (const JsonValue& e : events->array) {
    if (!e.is_object()) continue;
    const std::string ph = StringOr(e.Find("ph"), "");
    if (ph == "s" && flows != nullptr &&
        StringOr(e.Find("cat"), "") == "net") {
      ++flows->net_arrows;  // one "s" per cross-node message
    }
    if (ph != "X" && ph != "C") continue;
    const int pid = static_cast<int>(NumberOr(e.Find("pid"), 0));
    const double ts = NumberOr(e.Find("ts"), 0.0);
    CoreSummary& core = cores[pid];
    core.Cover(ts);
    if (ph == "X") {
      const double dur = NumberOr(e.Find("dur"), 0.0);
      core.Cover(ts + dur);
      if (StringOr(e.Find("cat"), "") == "retry") {
        ++core.attempts;
        if (flows != nullptr) {
          const JsonValue* args = e.Find("args");
          if (args != nullptr) {
            ++flows->attempts;
            ++chain[NumberOr(args->Find("flow"), 0.0)];
            const JsonValue* committed = args->Find("committed");
            if (committed != nullptr &&
                committed->type == JsonValue::Type::kBool &&
                committed->boolean) {
              ++flows->committed;
            }
          }
        }
      } else {
        ++core.spans;
        core.span_dur[StringOr(e.Find("name"), "?")] += dur;
      }
    } else {
      ++core.counters;
      const std::string name = StringOr(e.Find("name"), "");
      const JsonValue* args = e.Find("args");
      if (name == "ipc") {
        core.ipc.push_back(
            args != nullptr ? NumberOr(args->Find("ipc"), 0.0) : 0.0);
      } else if (name == "critical_kcycles") {
        core.critical.push_back(
            args != nullptr ? NumberOr(args->Find("kcycles"), 0.0)
                            : 0.0);
      } else if (name.rfind("mod:", 0) == 0) {
        core.modules[name.substr(4)].push_back(
            args != nullptr ? NumberOr(args->Find("cycles"), 0.0) : 0.0);
      }
    }
  }
  if (flows != nullptr) {
    flows->flows = chain.size();
    for (const auto& [id, n] : chain) {
      flows->max_chain = std::max(flows->max_chain, n);
    }
  }
  return cores;
}

void PrintMeta(const JsonValue& root) {
  const JsonValue* meta = root.Find("metadata");
  if (meta == nullptr || !meta->is_object()) return;
  if (IsClusterTimeline(root)) {
    std::printf(
        "kind=cluster nodes=%.0f clock_ghz=%g trace_sample=%.0f "
        "traced=%.0f orphaned=%.0f dropped_ring=%.0f\n",
        NumberOr(meta->Find("nodes"), 0.0),
        NumberOr(meta->Find("clock_ghz"), 0.0),
        NumberOr(meta->Find("trace_sample"), 0.0),
        NumberOr(meta->Find("traced"), 0.0),
        NumberOr(meta->Find("orphaned"), 0.0),
        NumberOr(meta->Find("dropped_ring"), 0.0));
    return;
  }
  std::printf("engine=%s workload=%s clock_ghz=%g sample_every=%.0f\n",
              StringOr(meta->Find("engine"), "?").c_str(),
              StringOr(meta->Find("workload"), "?").c_str(),
              NumberOr(meta->Find("clock_ghz"), 0.0),
              NumberOr(meta->Find("sample_every"), 0.0));
}

int RunValidate(const char* argv0, const std::string& path,
                const std::string& text) {
  uint64_t spans = 0;
  uint64_t counters = 0;
  uint64_t flows = 0;
  const Status s =
      imoltp::obs::ValidateTimelineJson(text, &spans, &counters, &flows);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf(
      "OK: %s (%llu span events, %llu counter events, %llu flow "
      "events)\n",
      path.c_str(), static_cast<unsigned long long>(spans),
      static_cast<unsigned long long>(counters),
      static_cast<unsigned long long>(flows));
  return 0;
}

int RunInfo(const JsonValue& root) {
  PrintMeta(root);
  const bool cluster = IsClusterTimeline(root);
  const char* lane = cluster ? "node" : "core";
  FlowSummary flows;
  const std::map<int, CoreSummary> cores = Summarize(root, &flows);
  for (const auto& [pid, core] : cores) {
    std::printf(
        "%s %d: %llu spans, %llu counter events, %llu retry "
        "attempts, %.1f..%.1f us\n",
        lane, pid, static_cast<unsigned long long>(core.spans),
        static_cast<unsigned long long>(core.counters),
        static_cast<unsigned long long>(core.attempts), core.t_min,
        core.t_max);
  }
  if (flows.net_arrows > 0) {
    std::printf("cross-node messages: %llu flow arrows\n",
                static_cast<unsigned long long>(flows.net_arrows));
  }
  if (flows.flows > 0) {
    std::printf("retry flows: %llu (%llu attempt slices, longest "
                "chain %d)\n",
                static_cast<unsigned long long>(flows.flows),
                static_cast<unsigned long long>(flows.attempts),
                flows.max_chain);
  }
  if (cores.empty()) std::printf("no span or counter events\n");
  return 0;
}

/// Eight-level unicode sparkline, min..max scaled, capped at 64 cells
/// by averaging adjacent buckets. Fills lo/hi with the scale.
std::string Sparkline(const std::vector<double>& series, double* lo,
                      double* hi) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  *lo = series[0];
  *hi = series[0];
  for (double v : series) {
    *lo = std::min(*lo, v);
    *hi = std::max(*hi, v);
  }
  std::string line;
  const size_t cells = std::min<size_t>(series.size(), 64);
  for (size_t i = 0; i < cells; ++i) {
    const size_t a = i * series.size() / cells;
    const size_t b = std::max(a + 1, (i + 1) * series.size() / cells);
    double sum = 0.0;
    for (size_t j = a; j < b; ++j) sum += series[j];
    const double v = sum / static_cast<double>(b - a);
    const int level =
        *hi > *lo ? static_cast<int>((v - *lo) / (*hi - *lo) * 7.0) : 0;
    line += kBlocks[std::clamp(level, 0, 7)];
  }
  return line;
}

int RunRender(const JsonValue& root) {
  PrintMeta(root);
  const bool cluster = IsClusterTimeline(root);
  FlowSummary flows;
  const std::map<int, CoreSummary> cores = Summarize(root, &flows);
  for (const auto& [pid, core] : cores) {
    std::printf("%s %d (%.1f..%.1f us)\n", cluster ? "node" : "core",
                pid, core.t_min, core.t_max);
    double lo, hi;
    if (!core.ipc.empty()) {
      const std::string line = Sparkline(core.ipc, &lo, &hi);
      std::printf("  ipc [%0.3f..%0.3f] %s\n", lo, hi, line.c_str());
    }
    // Cluster lanes: the node's per-trace critical-path pulse, in
    // close order — tail spikes read as peaks.
    if (!core.critical.empty()) {
      const std::string line = Sparkline(core.critical, &lo, &hi);
      std::printf("  critical path [%9.3g..%9.3g kcyc] %s\n", lo, hi,
                  line.c_str());
    }
    for (const auto& [name, cycles] : core.modules) {
      if (cycles.empty()) continue;
      const std::string line = Sparkline(cycles, &lo, &hi);
      std::printf("  mod %-16s [%9.3g..%9.3g cyc] %s\n", name.c_str(),
                  lo, hi, line.c_str());
    }
    for (const auto& [kind, dur] : core.span_dur) {
      std::printf("  span %-16s %10.1f us\n", kind.c_str(), dur);
    }
    if (core.attempts > 0) {
      std::printf("  retry attempts %llu\n",
                  static_cast<unsigned long long>(core.attempts));
    }
  }
  if (flows.net_arrows > 0) {
    std::printf("cross-node messages: %llu flow arrows\n",
                static_cast<unsigned long long>(flows.net_arrows));
  }
  if (flows.flows > 0) {
    std::printf(
        "retries: %llu flows, %llu attempt slices, %llu committed, "
        "longest chain %d\n",
        static_cast<unsigned long long>(flows.flows),
        static_cast<unsigned long long>(flows.attempts),
        static_cast<unsigned long long>(flows.committed),
        flows.max_chain);
  }
  if (cores.empty()) std::printf("no span or counter events\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage(argv[0]);
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd != "validate" && cmd != "info" && cmd != "render") {
    return Usage(argv[0]);
  }

  std::string text, error;
  if (!ReadFile(path, &text, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }
  if (cmd == "validate") return RunValidate(argv[0], path, text);

  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  if (cmd == "info") return RunInfo(parsed.value());
  return RunRender(parsed.value());
}
