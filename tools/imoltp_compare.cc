// imoltp_compare — diffs benchmark-trajectory points. Takes two or
// more JSON documents — BENCH_*.json matrices from imoltp_bench,
// timing-only matrices from scripts/run_all_bench.sh, or single-run
// reports from `imoltp_run --json` — renders cross-engine throughput
// and stall-breakdown tables, and exits non-zero when any later
// document regresses beyond tolerance against the FIRST (the
// baseline).
//
//   imoltp_compare BENCH_baseline.json BENCH_pr42.json
//   imoltp_compare --max-regress=0.5 BENCH_baseline.json bench_times.json
//   imoltp_compare baseline_report.json candidate_report.json
//
// Tolerance rules (see obs/bench_json.h):
//   * simulated metrics (ipc, instructions/txn) — symmetric relative
//     drift check; a change in either direction means the modeled
//     behavior changed (--ipc-rtol, default 0.05)
//   * host speed — one-sided: candidate refs/sec below
//     baseline*(1-max_regress) fails; wall-clock is the fallback for
//     timing-only cells (--max-regress, default 0.15, so a >15%
//     slowdown fails and a >20% slowdown certainly does)
//   * cells present in the baseline but absent from a candidate fail
//     unless --allow-missing (reduced CI sweeps vs a full baseline)
//
// Exit codes: 0 = within tolerance, 1 = regression/drift, 2 = usage or
// parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "mcsim/counters.h"
#include "obs/bench_json.h"
#include "obs/json.h"

using namespace imoltp;
using obs::BenchCell;
using obs::BenchMatrix;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  }
  std::fprintf(stderr,
               "usage: %s [--ipc-rtol=X] [--max-regress=X] "
               "[--allow-missing]\n"
               "          baseline.json candidate.json...\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

double NumberAt(const obs::JsonValue& root,
                std::initializer_list<const char*> path) {
  const obs::JsonValue* v = &root;
  for (const char* key : path) {
    if (!v->is_object()) return 0.0;
    v = v->Find(key);
    if (v == nullptr) return 0.0;
  }
  return v->is_number() ? v->number : 0.0;
}

std::string StringAt(const obs::JsonValue& root,
                     std::initializer_list<const char*> path) {
  const obs::JsonValue* v = &root;
  for (const char* key : path) {
    if (!v->is_object()) return "";
    v = v->Find(key);
    if (v == nullptr) return "";
  }
  return v->is_string() ? v->string : "";
}

/// Lifts a single `imoltp_run --json` report into a one-cell matrix so
/// run reports and bench matrices compare through the same machinery.
BenchMatrix MatrixFromRunReport(const obs::JsonValue& root,
                                const std::string& path) {
  BenchMatrix m;
  m.label = path;
  BenchCell c;
  c.engine = StringAt(root, {"meta", "engine"});
  c.workload = StringAt(root, {"meta", "workload"});
  c.workers = static_cast<int>(NumberAt(root, {"meta", "workers"}));
  c.mode = StringAt(root, {"host", "parallel_mode"});
  if (c.mode.empty()) c.mode = "run";
  c.id = c.engine + "/" + c.workload + "/" + c.mode + "/w" +
         std::to_string(c.workers);
  c.warmup_txns =
      static_cast<uint64_t>(NumberAt(root, {"meta", "warmup_txns"}));
  c.measure_txns =
      static_cast<uint64_t>(NumberAt(root, {"meta", "measure_txns"}));
  c.seed = static_cast<uint64_t>(NumberAt(root, {"meta", "seed"}));
  c.ipc = NumberAt(root, {"window", "ipc"});
  c.instructions_per_txn =
      NumberAt(root, {"window", "instructions_per_txn"});
  c.cycles_per_txn = NumberAt(root, {"window", "cycles_per_txn"});
  if (const obs::JsonValue* window = root.Find("window")) {
    if (const obs::JsonValue* stalls =
            window->Find("stalls_per_kinstr")) {
      for (int i = 0; i < 6; ++i) {
        const obs::JsonValue* v =
            stalls->Find(mcsim::StallBreakdown::kNames[i]);
        c.stalls_per_kinstr[i] =
            v != nullptr && v->is_number() ? v->number : 0.0;
      }
    }
  }
  c.wall_seconds = NumberAt(root, {"host", "phase_seconds", "measure"});
  c.total_wall_seconds = NumberAt(root, {"host", "phase_seconds", "total"});
  c.simulated_refs = static_cast<uint64_t>(
      NumberAt(root, {"host", "measure", "simulated_refs"}));
  c.refs_per_sec = NumberAt(root, {"host", "measure", "refs_per_sec"});
  c.instructions_per_sec =
      NumberAt(root, {"host", "measure", "instructions_per_sec"});
  c.peak_rss_bytes =
      static_cast<uint64_t>(NumberAt(root, {"host", "peak_rss_bytes"}));
  m.cells.push_back(std::move(c));
  return m;
}

bool LoadMatrix(const std::string& path, BenchMatrix* out,
                std::string* error) {
  std::string text;
  if (!ReadFile(path, &text, error)) return false;
  auto parsed = obs::ParseJson(text);
  if (!parsed.ok()) {
    *error = path + ": " + parsed.status().ToString();
    return false;
  }
  const obs::JsonValue& root = *parsed;
  if (root.is_object() && root.Find("bench_schema_version") != nullptr) {
    auto matrix = obs::ParseBenchMatrix(text);
    if (!matrix.ok()) {
      *error = path + ": " + matrix.status().ToString();
      return false;
    }
    *out = std::move(*matrix);
    if (out->label.empty()) out->label = path;
    return true;
  }
  if (root.is_object() && root.Find("schema_version") != nullptr &&
      root.Find("window") != nullptr) {
    *out = MatrixFromRunReport(root, path);
    return true;
  }
  *error = path + ": neither a bench matrix nor a run report";
  return false;
}

/// Short column label: the matrix label, clipped.
std::string ColumnLabel(const BenchMatrix& m, size_t index) {
  std::string label = m.label.empty()
                          ? ("#" + std::to_string(index))
                          : m.label;
  if (label.size() > 12) label = label.substr(0, 12);
  return label;
}

void PrintThroughputTable(const std::vector<BenchMatrix>& matrices) {
  std::printf("\n== Throughput (simulated IPC | host refs/sec) ==\n");
  std::printf("%-34s", "cell");
  for (size_t i = 0; i < matrices.size(); ++i) {
    std::printf(" %8s.ipc %11s.r/s", ColumnLabel(matrices[i], i).c_str(),
                ColumnLabel(matrices[i], i).c_str());
  }
  std::printf("\n");
  for (const BenchCell& base : matrices[0].cells) {
    std::printf("%-34s", base.id.c_str());
    for (const BenchMatrix& m : matrices) {
      const BenchCell* c = nullptr;
      for (const BenchCell& x : m.cells) {
        if (x.id == base.id) {
          c = &x;
          break;
        }
      }
      if (c == nullptr) {
        std::printf(" %12s %15s", "-", "-");
      } else if (c->refs_per_sec > 0) {
        std::printf(" %12.4f %15.4g", c->ipc, c->refs_per_sec);
      } else {
        // Timing-only cell (run_all_bench.sh): wall-clock stands in.
        std::printf(" %12.4f %13.3fs", c->ipc, c->wall_seconds);
      }
    }
    std::printf("\n");
  }
}

void PrintStallTable(const std::vector<BenchMatrix>& matrices) {
  std::printf("\n== Stall cycles per 1000 instructions ==\n");
  std::printf("%-34s %-12s", "cell", "matrix");
  for (int i = 0; i < 6; ++i) {
    std::printf(" %8s", mcsim::StallBreakdown::kNames[i]);
  }
  std::printf("\n");
  for (const BenchCell& base : matrices[0].cells) {
    bool any = false;
    for (double s : base.stalls_per_kinstr) any = any || s > 0;
    if (!any) continue;  // timing-only cells carry no stall profile
    for (size_t i = 0; i < matrices.size(); ++i) {
      const BenchCell* c = nullptr;
      for (const BenchCell& x : matrices[i].cells) {
        if (x.id == base.id) {
          c = &x;
          break;
        }
      }
      if (c == nullptr) continue;
      std::printf("%-34s %-12s", i == 0 ? base.id.c_str() : "",
                  ColumnLabel(matrices[i], i).c_str());
      for (double s : c->stalls_per_kinstr) std::printf(" %8.2f", s);
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCompareOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--ipc-rtol=")) {
      options.ipc_rtol = std::atof(v);
      if (options.ipc_rtol <= 0) {
        return Usage(argv[0], std::string("bad --ipc-rtol: ") + v);
      }
    } else if (const char* v = value("--max-regress=")) {
      options.max_regress = std::atof(v);
      if (options.max_regress <= 0) {
        return Usage(argv[0], std::string("bad --max-regress: ") + v);
      }
    } else if (arg == "--allow-missing") {
      options.allow_missing = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0], "unknown flag: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() < 2) {
    return Usage(argv[0], "need a baseline and at least one candidate");
  }

  std::vector<BenchMatrix> matrices;
  std::string error;
  for (const std::string& path : paths) {
    BenchMatrix m;
    if (!LoadMatrix(path, &m, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 2;
    }
    matrices.push_back(std::move(m));
  }

  PrintThroughputTable(matrices);
  PrintStallTable(matrices);

  int total_failures = 0;
  for (size_t i = 1; i < matrices.size(); ++i) {
    const auto failures =
        obs::CompareBenchMatrices(matrices[0], matrices[i], options);
    if (failures.empty()) continue;
    total_failures += static_cast<int>(failures.size());
    std::printf("\n== %s vs %s: %zu failure(s) ==\n",
                paths[0].c_str(), paths[i].c_str(), failures.size());
    for (const auto& f : failures) {
      std::printf("  %-34s %-20s %s\n", f.cell.c_str(),
                  f.metric.c_str(), f.detail.c_str());
    }
  }
  if (total_failures == 0) {
    std::printf("\nOK: %zu candidate(s) within tolerance of %s\n",
                matrices.size() - 1, paths[0].c_str());
    return 0;
  }
  return 1;
}
