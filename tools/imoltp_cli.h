#ifndef IMOLTP_TOOLS_IMOLTP_CLI_H_
#define IMOLTP_TOOLS_IMOLTP_CLI_H_

// Command-line surface of imoltp_run, extracted into a header so the
// unit tests can drive flag parsing and CSV emission directly instead
// of exec'ing the binary and scraping stdout.

#include <strings.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "engine/engine.h"
#include "mcsim/profiler.h"
#include "obs/report_json.h"

namespace imoltp::tools {

struct Flags {
  std::string engine = "voltdb";
  std::string workload = "micro";
  uint64_t db_bytes = 10ULL << 20;
  int rows = 1;
  int warehouses = 4;
  int workers = 1;
  uint64_t txns = 6000;
  uint64_t warmup = 2000;
  std::string index = "hash";
  bool compilation = true;
  uint64_t seed = 42;
  std::string mode = "deterministic";  // serial|deterministic|free
  bool csv = false;
  bool csv_header = false;
  bool list = false;
  std::string json_path;   // --json=FILE; "-" = stdout; empty = off
  std::string trace_out;   // --trace-out=FILE; empty = no capture
};

/// Parses a byte-size flag value like "10MB", "1GB", "512KB", or a bare
/// number (interpreted as MB). Returns 0 on any malformed input: empty,
/// non-numeric, zero, negative, unknown suffix, or trailing garbage.
inline uint64_t ParseSize(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v <= 0) return 0;
  if (strcasecmp(end, "GB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 30));
  }
  if (strcasecmp(end, "KB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 10));
  }
  if (strcasecmp(end, "MB") == 0 || *end == '\0') {
    return static_cast<uint64_t>(v * (1ULL << 20));
  }
  return 0;
}

inline bool ParseEngine(const std::string& s, engine::EngineKind* out) {
  using engine::EngineKind;
  if (s == "shore-mt") return *out = EngineKind::kShoreMt, true;
  if (s == "dbms-d") return *out = EngineKind::kDbmsD, true;
  if (s == "voltdb") return *out = EngineKind::kVoltDb, true;
  if (s == "hyper") return *out = EngineKind::kHyPer, true;
  if (s == "dbms-m") return *out = EngineKind::kDbmsM, true;
  return false;
}

/// Parses argv into `flags`. On failure returns false and sets `error`
/// to a one-line description (unknown flag, malformed value). `--list`
/// sets flags->list and parsing continues.
inline bool ParseCommandLine(int argc, char* const* argv, Flags* flags,
                             std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    auto parse_positive_int = [&](const char* v, const char* flag,
                                  int* out) {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0 || n > 1 << 20) {
        *error = std::string("bad value for ") + flag + ": " + v;
        return false;
      }
      *out = static_cast<int>(n);
      return true;
    };
    if (const char* v = value("--engine=")) {
      flags->engine = v;
    } else if (const char* v = value("--workload=")) {
      flags->workload = v;
    } else if (const char* v = value("--db=")) {
      flags->db_bytes = ParseSize(v);
      if (flags->db_bytes == 0) {
        *error = std::string("bad value for --db: ") + v;
        return false;
      }
    } else if (const char* v = value("--rows=")) {
      if (!parse_positive_int(v, "--rows", &flags->rows)) return false;
    } else if (const char* v = value("--warehouses=")) {
      if (!parse_positive_int(v, "--warehouses", &flags->warehouses)) {
        return false;
      }
    } else if (const char* v = value("--workers=")) {
      if (!parse_positive_int(v, "--workers", &flags->workers)) {
        return false;
      }
    } else if (const char* v = value("--txns=")) {
      flags->txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      flags->warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--index=")) {
      flags->index = v;
    } else if (const char* v = value("--mode=")) {
      flags->mode = v;
    } else if (const char* v = value("--seed=")) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      if (*v == '\0') {
        *error = "--json= needs a file path (or - for stdout)";
        return false;
      }
      flags->json_path = v;
    } else if (const char* v = value("--trace-out=")) {
      if (*v == '\0') {
        *error = "--trace-out= needs a file path";
        return false;
      }
      flags->trace_out = v;
    } else if (arg == "--no-compilation") {
      flags->compilation = false;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else if (arg == "--csv-header") {
      flags->csv = true;
      flags->csv_header = true;
    } else if (arg == "--list") {
      flags->list = true;
    } else {
      *error = "unknown flag: " + arg;
      return false;
    }
  }
  return true;
}

/// Builds the ExperimentConfig and Workload one flag set describes —
/// the construction logic shared by imoltp_run and imoltp_trace.
/// Returns false with `error` set for an unknown engine or workload.
inline bool BuildExperiment(const Flags& flags,
                            core::ExperimentConfig* cfg,
                            std::unique_ptr<core::Workload>* workload,
                            std::string* error) {
  engine::EngineKind kind;
  if (!ParseEngine(flags.engine, &kind)) {
    *error = "unknown engine: " + flags.engine;
    return false;
  }
  cfg->engine = kind;
  cfg->num_workers = flags.workers;
  cfg->measure_txns = flags.txns;
  cfg->warmup_txns = flags.warmup;
  cfg->seed = flags.seed;
  if (flags.mode == "serial") {
    cfg->parallel_mode = core::ParallelMode::kSerial;
  } else if (flags.mode == "deterministic") {
    cfg->parallel_mode = core::ParallelMode::kDeterministic;
  } else if (flags.mode == "free") {
    cfg->parallel_mode = core::ParallelMode::kFree;
  } else {
    *error = "unknown mode: " + flags.mode;
    return false;
  }
  cfg->engine_options.compilation = flags.compilation;
  cfg->engine_options.dbms_m_index = flags.index == "btree"
                                         ? index::IndexKind::kBTreeCc
                                         : index::IndexKind::kHash;

  if (flags.workload.rfind("micro", 0) == 0) {
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = flags.db_bytes;
    mcfg.rows_per_txn = flags.rows;
    mcfg.read_write = flags.workload == "micro-rw";
    mcfg.string_columns = flags.workload == "micro-string";
    mcfg.num_partitions = flags.workers;
    *workload = std::make_unique<core::MicroBenchmark>(mcfg);
  } else if (flags.workload == "tpcb") {
    core::TpcbConfig tcfg;
    tcfg.nominal_bytes = flags.db_bytes;
    tcfg.num_partitions = flags.workers;
    *workload = std::make_unique<core::TpcbBenchmark>(tcfg);
  } else if (flags.workload == "tpcc") {
    core::TpccConfig tcfg;
    tcfg.warehouses = flags.warehouses;
    tcfg.num_partitions = flags.workers;
    // TPC-C range-scans; DBMS M uses its B-tree unless hash was forced.
    cfg->engine_options.dbms_m_index = flags.index == "hash"
                                           ? index::IndexKind::kHash
                                           : index::IndexKind::kBTreeCc;
    *workload = std::make_unique<core::TpccBenchmark>(tcfg);
  } else {
    *error = "unknown workload: " + flags.workload;
    return false;
  }
  return true;
}

/// The meta half of a JSON report's RunInfo, filled from flags (the
/// live-run half — aborts, trace provenance — is the caller's).
inline void FillRunInfo(const Flags& flags, obs::RunInfo* info) {
  info->engine = flags.engine;
  info->workload = flags.workload;
  info->db_bytes = flags.db_bytes;
  info->rows = flags.rows;
  info->warehouses = flags.warehouses;
  info->workers = flags.workers;
  info->warmup_txns = flags.warmup;
  info->measure_txns = flags.txns;
  info->seed = flags.seed;
}

/// One CSV column and the dotted path of the same value in the JSON
/// report — the field-parity test walks this table to prove the two
/// output formats never drift apart.
struct CsvField {
  const char* name;
  const char* json_path;
};

inline constexpr CsvField kCsvFields[] = {
    {"engine", "meta.engine"},
    {"workload", "meta.workload"},
    {"db_bytes", "meta.db_bytes"},
    {"rows", "meta.rows"},
    {"workers", "meta.workers"},
    {"ipc", "window.ipc"},
    {"instr_per_txn", "window.instructions_per_txn"},
    {"cycles_per_txn", "window.cycles_per_txn"},
    {"l1i_kI", "window.stalls_per_kinstr.L1I"},
    {"l2i_kI", "window.stalls_per_kinstr.L2I"},
    {"llci_kI", "window.stalls_per_kinstr.LLC I"},
    {"l1d_kI", "window.stalls_per_kinstr.L1D"},
    {"l2d_kI", "window.stalls_per_kinstr.L2D"},
    {"llcd_kI", "window.stalls_per_kinstr.LLC D"},
};

inline constexpr int kNumCsvFields =
    static_cast<int>(sizeof(kCsvFields) / sizeof(kCsvFields[0]));

inline std::string CsvHeader() {
  std::string out;
  for (int i = 0; i < kNumCsvFields; ++i) {
    if (i > 0) out += ',';
    out += kCsvFields[i].name;
  }
  return out;
}

/// One CSV row matching CsvHeader() column for column.
inline std::string CsvRow(const Flags& flags,
                          const mcsim::WindowReport& r) {
  const auto& k = r.stalls_per_kinstr.stalls;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s,%s,%llu,%d,%d,%.4f,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f,"
                "%.2f,%.2f",
                flags.engine.c_str(), flags.workload.c_str(),
                static_cast<unsigned long long>(flags.db_bytes),
                flags.rows, flags.workers, r.ipc, r.instructions_per_txn,
                r.cycles_per_txn, k[0], k[1], k[2], k[3], k[4], k[5]);
  return buf;
}

}  // namespace imoltp::tools

#endif  // IMOLTP_TOOLS_IMOLTP_CLI_H_
