#ifndef IMOLTP_TOOLS_IMOLTP_CLI_H_
#define IMOLTP_TOOLS_IMOLTP_CLI_H_

// Command-line surface of imoltp_run, extracted into a header so the
// unit tests can drive flag parsing and CSV emission directly instead
// of exec'ing the binary and scraping stdout.

#include <strings.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "engine/engine.h"
#include "fault/fault_injector.h"
#include "mcsim/profiler.h"
#include "obs/report_json.h"

namespace imoltp::tools {

struct Flags {
  std::string engine = "voltdb";
  std::string workload = "micro";
  uint64_t db_bytes = 10ULL << 20;
  int rows = 1;
  int warehouses = 4;
  int workers = 1;
  uint64_t txns = 6000;
  uint64_t warmup = 2000;
  std::string index = "hash";
  bool compilation = true;
  uint64_t seed = 42;
  std::string mode = "deterministic";  // serial|deterministic|free
  bool csv = false;
  bool csv_header = false;
  bool list = false;
  std::string json_path;   // --json=FILE; "-" = stdout; empty = off
  std::string trace_out;   // --trace-out=FILE; empty = no capture

  // Time-resolved profiling (docs/OBSERVABILITY.md): sample the worker
  // cores' counters every N retire cycles (0 = off) and/or write a
  // Perfetto-loadable timeline. --timeline-out with no --sample-every
  // picks a default period so the timeline has counter tracks, and
  // turns per-module sampling on so those tracks include one per code
  // module; --sample-modules forces it for plain --json runs too.
  uint64_t sample_every = 0;   // --sample-every=N retire cycles
  std::string timeline_out;    // --timeline-out=FILE; empty = off
  bool sample_modules = false; // --sample-modules

  // Abort retry policy (docs/robustness.md). 1 attempt = no retry.
  int retry_attempts = 1;
  uint64_t retry_backoff = 0;  // simulated cycles before first retry
  int retry_cap = 4;           // in-flight-retry admission cap

  // Fault injection: a non-zero --chaos-seed (or any --chaos-points)
  // arms the injector. Points format: NAME=PROB, NAME=PROB@NTH, or
  // NAME=@NTH, comma-separated (e.g.
  // "lock.conflict=0.05,crash.mid_commit=@200").
  uint64_t chaos_seed = 0;
  std::string chaos_points;

  // Fuzzy checkpointing (docs/robustness.md): a non-zero
  // --checkpoint-every enables it; the other two tune the capture rate
  // and the retention depth of the simulated checkpoint device.
  uint64_t checkpoint_every = 0;  // worker-0 transaction ticks; 0 = off
  int checkpoint_pages = 0;       // pages captured per tick (0 = default)
  int checkpoint_retain = 0;      // complete checkpoints kept (0 = default)
};

/// Parses a --chaos-points spec into (point, config) pairs. Returns
/// false with `error` set on a malformed entry or unknown point name.
inline bool ParseChaosPoints(
    const std::string& spec,
    std::vector<std::pair<std::string, fault::FaultPointConfig>>* out,
    std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "bad fault point entry (want NAME=PROB[@NTH]): " + entry;
      return false;
    }
    const std::string name = entry.substr(0, eq);
    if (!fault::IsKnownFaultPoint(name)) {
      *error = "unknown fault point: " + name;
      return false;
    }
    std::string rest = entry.substr(eq + 1);
    fault::FaultPointConfig cfg;
    const size_t at = rest.find('@');
    if (at != std::string::npos) {
      char* end = nullptr;
      cfg.nth_hit = std::strtoull(rest.c_str() + at + 1, &end, 10);
      if (end == rest.c_str() + at + 1 || *end != '\0' ||
          cfg.nth_hit == 0) {
        *error = "bad @NTH in fault point entry: " + entry;
        return false;
      }
      rest = rest.substr(0, at);
    }
    if (!rest.empty()) {
      char* end = nullptr;
      cfg.probability = std::strtod(rest.c_str(), &end);
      if (end == rest.c_str() || *end != '\0' || cfg.probability < 0 ||
          cfg.probability > 1) {
        *error = "bad probability in fault point entry: " + entry;
        return false;
      }
    }
    if (cfg.probability == 0 && cfg.nth_hit == 0) {
      *error = "fault point entry arms nothing: " + entry;
      return false;
    }
    out->push_back({name, cfg});
  }
  return true;
}

/// Parses a byte-size flag value like "10MB", "1GB", "512KB", or a bare
/// number (interpreted as MB). Returns 0 on any malformed input: empty,
/// non-numeric, zero, negative, unknown suffix, or trailing garbage.
inline uint64_t ParseSize(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v <= 0) return 0;
  if (strcasecmp(end, "GB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 30));
  }
  if (strcasecmp(end, "KB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 10));
  }
  if (strcasecmp(end, "MB") == 0 || *end == '\0') {
    return static_cast<uint64_t>(v * (1ULL << 20));
  }
  return 0;
}

inline bool ParseEngine(const std::string& s, engine::EngineKind* out) {
  return engine::ParseEngineKind(s, out);
}

/// Parses argv into `flags`. On failure returns false and sets `error`
/// to a one-line description (unknown flag, malformed value). `--list`
/// sets flags->list and parsing continues.
inline bool ParseCommandLine(int argc, char* const* argv, Flags* flags,
                             std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    auto parse_positive_int = [&](const char* v, const char* flag,
                                  int* out) {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0 || n > 1 << 20) {
        *error = std::string("bad value for ") + flag + ": " + v;
        return false;
      }
      *out = static_cast<int>(n);
      return true;
    };
    if (const char* v = value("--engine=")) {
      flags->engine = v;
    } else if (const char* v = value("--workload=")) {
      flags->workload = v;
    } else if (const char* v = value("--db=")) {
      flags->db_bytes = ParseSize(v);
      if (flags->db_bytes == 0) {
        *error = std::string("bad value for --db: ") + v;
        return false;
      }
    } else if (const char* v = value("--rows=")) {
      if (!parse_positive_int(v, "--rows", &flags->rows)) return false;
    } else if (const char* v = value("--warehouses=")) {
      if (!parse_positive_int(v, "--warehouses", &flags->warehouses)) {
        return false;
      }
    } else if (const char* v = value("--workers=")) {
      if (!parse_positive_int(v, "--workers", &flags->workers)) {
        return false;
      }
    } else if (const char* v = value("--txns=")) {
      flags->txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      flags->warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--index=")) {
      flags->index = v;
    } else if (const char* v = value("--mode=")) {
      flags->mode = v;
    } else if (const char* v = value("--seed=")) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--retry=")) {
      if (!parse_positive_int(v, "--retry", &flags->retry_attempts)) {
        return false;
      }
    } else if (const char* v = value("--retry-backoff=")) {
      flags->retry_backoff = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--retry-cap=")) {
      if (!parse_positive_int(v, "--retry-cap", &flags->retry_cap)) {
        return false;
      }
    } else if (const char* v = value("--chaos-seed=")) {
      flags->chaos_seed = std::strtoull(v, nullptr, 10);
      if (flags->chaos_seed == 0) {
        *error = "--chaos-seed= needs a non-zero seed";
        return false;
      }
    } else if (const char* v = value("--chaos-points=")) {
      std::vector<std::pair<std::string, fault::FaultPointConfig>> parsed;
      if (!ParseChaosPoints(v, &parsed, error)) return false;
      flags->chaos_points = v;
    } else if (const char* v = value("--checkpoint-every=")) {
      int every = 0;
      if (!parse_positive_int(v, "--checkpoint-every", &every)) {
        return false;
      }
      flags->checkpoint_every = static_cast<uint64_t>(every);
    } else if (const char* v = value("--checkpoint-pages=")) {
      if (!parse_positive_int(v, "--checkpoint-pages",
                              &flags->checkpoint_pages)) {
        return false;
      }
    } else if (const char* v = value("--checkpoint-retain=")) {
      if (!parse_positive_int(v, "--checkpoint-retain",
                              &flags->checkpoint_retain)) {
        return false;
      }
    } else if (const char* v = value("--json=")) {
      if (*v == '\0') {
        *error = "--json= needs a file path (or - for stdout)";
        return false;
      }
      flags->json_path = v;
    } else if (const char* v = value("--trace-out=")) {
      if (*v == '\0') {
        *error = "--trace-out= needs a file path";
        return false;
      }
      flags->trace_out = v;
    } else if (const char* v = value("--sample-every=")) {
      char* end = nullptr;
      flags->sample_every = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || flags->sample_every == 0) {
        *error = std::string("bad value for --sample-every: ") + v;
        return false;
      }
    } else if (const char* v = value("--timeline-out=")) {
      if (*v == '\0') {
        *error = "--timeline-out= needs a file path";
        return false;
      }
      flags->timeline_out = v;
    } else if (arg == "--sample-modules") {
      flags->sample_modules = true;
    } else if (arg == "--no-compilation") {
      flags->compilation = false;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else if (arg == "--csv-header") {
      flags->csv = true;
      flags->csv_header = true;
    } else if (arg == "--list") {
      flags->list = true;
    } else {
      *error = "unknown flag: " + arg;
      return false;
    }
  }
  return true;
}

/// Builds the ExperimentConfig and Workload one flag set describes —
/// the construction logic shared by imoltp_run and imoltp_trace.
/// Returns false with `error` set for an unknown engine or workload.
inline bool BuildExperiment(const Flags& flags,
                            core::ExperimentConfig* cfg,
                            std::unique_ptr<core::Workload>* workload,
                            std::string* error) {
  engine::EngineKind kind;
  if (!ParseEngine(flags.engine, &kind)) {
    *error = "unknown engine: " + flags.engine +
             " (choices: " + engine::EngineKindChoices() + ")";
    return false;
  }
  cfg->engine = kind;
  cfg->num_workers = flags.workers;
  cfg->measure_txns = flags.txns;
  cfg->warmup_txns = flags.warmup;
  cfg->seed = flags.seed;
  if (!core::ParseParallelMode(flags.mode, &cfg->parallel_mode)) {
    *error = "unknown mode: " + flags.mode +
             " (choices: " + core::ParallelModeChoices() + ")";
    return false;
  }
  cfg->retry.max_attempts = flags.retry_attempts;
  cfg->retry.backoff_cycles = flags.retry_backoff;
  cfg->retry.max_inflight_retries = flags.retry_cap;
  cfg->sampler.every_cycles = flags.sample_every;
  // A timeline without counter samples is only half a timeline, and
  // --sample-modules without a sample period would sample nothing:
  // both default to a period that yields a few hundred buckets for
  // typical runs. Timelines include the per-module tracks render wants.
  if ((!flags.timeline_out.empty() || flags.sample_modules) &&
      flags.sample_every == 0) {
    cfg->sampler.every_cycles = 20000;
  }
  cfg->sampler.per_module =
      flags.sample_modules || !flags.timeline_out.empty();
  if (flags.checkpoint_every > 0) {
    cfg->engine_options.checkpoint.enabled = true;
    cfg->engine_options.checkpoint.every_n_ticks = flags.checkpoint_every;
    if (flags.checkpoint_pages > 0) {
      cfg->engine_options.checkpoint.pages_per_step =
          flags.checkpoint_pages;
    }
    if (flags.checkpoint_retain > 0) {
      cfg->engine_options.checkpoint.retain = flags.checkpoint_retain;
    }
  }
  cfg->engine_options.compilation = flags.compilation;
  cfg->engine_options.dbms_m_index = flags.index == "btree"
                                         ? index::IndexKind::kBTreeCc
                                         : index::IndexKind::kHash;

  core::WorkloadKind wkind;
  if (!core::ParseWorkload(flags.workload, &wkind)) {
    *error = "unknown workload: " + flags.workload +
             " (choices: " + core::WorkloadChoices() + ")";
    return false;
  }
  switch (wkind) {
    case core::WorkloadKind::kMicro:
    case core::WorkloadKind::kMicroRw:
    case core::WorkloadKind::kMicroString: {
      core::MicroConfig mcfg;
      mcfg.nominal_bytes = flags.db_bytes;
      mcfg.rows_per_txn = flags.rows;
      mcfg.read_write = wkind == core::WorkloadKind::kMicroRw;
      mcfg.string_columns = wkind == core::WorkloadKind::kMicroString;
      mcfg.num_partitions = flags.workers;
      *workload = std::make_unique<core::MicroBenchmark>(mcfg);
      break;
    }
    case core::WorkloadKind::kTpcb: {
      core::TpcbConfig tcfg;
      tcfg.nominal_bytes = flags.db_bytes;
      tcfg.num_partitions = flags.workers;
      *workload = std::make_unique<core::TpcbBenchmark>(tcfg);
      break;
    }
    case core::WorkloadKind::kTpcc: {
      core::TpccConfig tcfg;
      tcfg.warehouses = flags.warehouses;
      tcfg.num_partitions = flags.workers;
      // TPC-C range-scans; DBMS M uses its B-tree unless hash was
      // forced.
      cfg->engine_options.dbms_m_index = flags.index == "hash"
                                             ? index::IndexKind::kHash
                                             : index::IndexKind::kBTreeCc;
      *workload = std::make_unique<core::TpccBenchmark>(tcfg);
      break;
    }
  }
  return true;
}

/// The meta half of a JSON report's RunInfo, filled from flags (the
/// live-run half — aborts, trace provenance — is the caller's).
inline void FillRunInfo(const Flags& flags, obs::RunInfo* info) {
  info->engine = flags.engine;
  info->workload = flags.workload;
  info->db_bytes = flags.db_bytes;
  info->rows = flags.rows;
  info->warehouses = flags.warehouses;
  info->workers = flags.workers;
  info->warmup_txns = flags.warmup;
  info->measure_txns = flags.txns;
  info->seed = flags.seed;
}

/// One CSV column and the dotted path of the same value in the JSON
/// report — the field-parity test walks this table to prove the two
/// output formats never drift apart.
struct CsvField {
  const char* name;
  const char* json_path;
};

inline constexpr CsvField kCsvFields[] = {
    {"engine", "meta.engine"},
    {"workload", "meta.workload"},
    {"db_bytes", "meta.db_bytes"},
    {"rows", "meta.rows"},
    {"workers", "meta.workers"},
    {"ipc", "window.ipc"},
    {"instr_per_txn", "window.instructions_per_txn"},
    {"cycles_per_txn", "window.cycles_per_txn"},
    {"l1i_kI", "window.stalls_per_kinstr.L1I"},
    {"l2i_kI", "window.stalls_per_kinstr.L2I"},
    {"llci_kI", "window.stalls_per_kinstr.LLC I"},
    {"l1d_kI", "window.stalls_per_kinstr.L1D"},
    {"l2d_kI", "window.stalls_per_kinstr.L2D"},
    {"llcd_kI", "window.stalls_per_kinstr.LLC D"},
};

inline constexpr int kNumCsvFields =
    static_cast<int>(sizeof(kCsvFields) / sizeof(kCsvFields[0]));

inline std::string CsvHeader() {
  std::string out;
  for (int i = 0; i < kNumCsvFields; ++i) {
    if (i > 0) out += ',';
    out += kCsvFields[i].name;
  }
  return out;
}

/// One CSV row matching CsvHeader() column for column.
inline std::string CsvRow(const Flags& flags,
                          const mcsim::WindowReport& r) {
  const auto& k = r.stalls_per_kinstr.stalls;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s,%s,%llu,%d,%d,%.4f,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f,"
                "%.2f,%.2f",
                flags.engine.c_str(), flags.workload.c_str(),
                static_cast<unsigned long long>(flags.db_bytes),
                flags.rows, flags.workers, r.ipc, r.instructions_per_txn,
                r.cycles_per_txn, k[0], k[1], k[2], k[3], k[4], k[5]);
  return buf;
}

}  // namespace imoltp::tools

#endif  // IMOLTP_TOOLS_IMOLTP_CLI_H_
