// imoltp_cluster — drives the sharded scale-out layer (src/dist): N
// nodes, each a full engine + simulated machine owning a block of
// TPC-C warehouses, joined by an in-process message fabric with
// SLOG-style deterministic ordering (per-node sequencers, a global
// orderer for multi-home transactions).
//
//   imoltp_cluster run   [flags]          one cluster run -> JSON
//   imoltp_cluster sweep [flags]          throughput vs %-multi-home
//                                         (0/10/50/100 by default)
//
// Flags (both subcommands):
//   --nodes=N               cluster size (default 3)
//   --warehouses-per-node=W (default 2; divisible by workers)
//   --workers-per-node=C    worker cores == partitions (default 2)
//   --orders-per-district=K initial orders (default 200)
//   --engine=NAME           default hyper. NOTE: node-death recovery
//                           REDOes the dead node's physical log;
//                           voltdb's command log is not physically
//                           replayable, so chaos runs should keep a
//                           physical-logging engine (see
//                           docs/distributed.md).
//   --txns=N                measured txns generated per node (2000)
//   --warmup=N              warm-up txns per node (400)
//   --multi-home-pct=P      % of NewOrder/Payment that cross nodes
//                           (run only; sweep uses its own series)
//   --batch=N               txns per node per scheduling round (32)
//   --net-latency=CYCLES    one-way message latency (26000)
//   --seed=S                cluster seed (1)
//   --json=FILE             write the report (- = stdout, the default)
//   --fingerprint           also print "fingerprint: <hex>" on stderr
//                           (scripts grep it for bit-identity checks)
//   --chaos-node-death=SPEC arm node.death: PROB, PROB@NTH or @NTH
//                           (e.g. @5 = the 5th (node,round) check)
//   --no-recover            leave dead nodes dead (skips the
//                           cross-node audit layers)
//   --sweep-pcts=A,B,...    sweep series (default 0,10,50,100)
//   --trace-sample=SPEC     distributed tracing: N or 1/N traces one in
//                           N transactions (1 = all, 0 = off). Zero
//                           observer effect: fingerprints are
//                           bit-identical with tracing off/on/sampled.
//   --trace-ring=N          full trace records kept for the timeline
//                           export / p99 composition (default 65536)
//   --timeline-out=FILE     write the whole-cluster Perfetto timeline
//                           (run only; implies --trace-sample=1 unless
//                           tracing was configured explicitly)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "dist/cluster.h"
#include "dist/cluster_json.h"
#include "dist/cluster_timeline.h"
#include "tools/imoltp_cli.h"

namespace {

using imoltp::Status;
using imoltp::dist::Cluster;
using imoltp::dist::ClusterConfig;
using imoltp::dist::ClusterSweepToJson;
using imoltp::dist::SweepPoint;

int Usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s run|sweep [--nodes=N] [--warehouses-per-node=W]\n"
      "       [--workers-per-node=C] [--orders-per-district=K]\n"
      "       [--engine=NAME] [--txns=N] [--warmup=N]\n"
      "       [--multi-home-pct=P] [--batch=N] [--net-latency=CYC]\n"
      "       [--seed=S] [--json=FILE] [--fingerprint]\n"
      "       [--chaos-node-death=PROB[@NTH]] [--no-recover]\n"
      "       [--sweep-pcts=A,B,...] [--trace-sample=N|1/N]\n"
      "       [--trace-ring=N] [--timeline-out=FILE]\n",
      argv0);
  // Same choice inventories every other tool's --help prints, so the
  // valid spellings have one authority each.
  std::fprintf(stderr, "engines: %s\n",
               imoltp::engine::EngineKindChoices());
  std::fprintf(stderr,
               "per-node execution mode: deterministic (of: %s)\n",
               imoltp::core::ParallelModeChoices());
  std::fprintf(stderr, "fault points:");
  for (const char* p : imoltp::fault::kAllFaultPoints) {
    std::fprintf(stderr, " %s", p);
  }
  std::fprintf(stderr, " (this tool arms %s via --chaos-node-death)\n",
               imoltp::fault::kNodeDeath);
  return 2;
}

// --trace-sample grammar: "N" or "1/N" (both mean: trace one in N
// transactions); 0 disables tracing.
bool ParseTraceSample(const char* v, uint64_t* out, std::string* error) {
  const char* num = v;
  if (num[0] == '1' && num[1] == '/') num += 2;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(num, &end, 10);
  if (end == num || *end != '\0') {
    *error = std::string("bad --trace-sample value: ") + v +
             " (choices: N or 1/N, e.g. 1, 4, 1/16; 0 = off)";
    return false;
  }
  *out = n;
  return true;
}

bool ParsePcts(const std::string& spec, std::vector<int>* out,
               std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    char* end = nullptr;
    const long v = std::strtol(entry.c_str(), &end, 10);
    if (end == entry.c_str() || *end != '\0' || v < 0 || v > 100) {
      *error = "bad --sweep-pcts entry: " + entry;
      return false;
    }
    out->push_back(static_cast<int>(v));
  }
  if (out->empty()) {
    *error = "--sweep-pcts= names no percentages";
    return false;
  }
  return true;
}

int WriteOut(const std::string& path, const std::string& doc) {
  if (path == "-" || path.empty()) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage(argv[0]);
    return 0;
  }
  if (cmd != "run" && cmd != "sweep") {
    return Usage(argv[0], "unknown subcommand: " + cmd +
                              " (choices: run sweep)");
  }

  ClusterConfig cfg;
  std::string engine_name = "hyper";
  std::string json_path = "-";
  std::string sweep_spec = "0,10,50,100";
  std::string timeline_path;
  bool print_fingerprint = false;
  bool trace_flag_set = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    auto parse_int = [&](const char* v, const char* flag, int lo, int hi,
                         int* out) {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < lo || n > hi) {
        std::fprintf(stderr, "%s: bad value for %s: %s\n", argv[0], flag,
                     v);
        return false;
      }
      *out = static_cast<int>(n);
      return true;
    };
    if (const char* v = value("--nodes=")) {
      if (!parse_int(v, "--nodes", 1, 64, &cfg.nodes)) return 2;
    } else if (const char* v = value("--warehouses-per-node=")) {
      if (!parse_int(v, "--warehouses-per-node", 1, 1 << 12,
                     &cfg.warehouses_per_node)) {
        return 2;
      }
    } else if (const char* v = value("--workers-per-node=")) {
      if (!parse_int(v, "--workers-per-node", 1, 64,
                     &cfg.workers_per_node)) {
        return 2;
      }
    } else if (const char* v = value("--orders-per-district=")) {
      if (!parse_int(v, "--orders-per-district", 1, 1 << 20,
                     &cfg.orders_per_district)) {
        return 2;
      }
    } else if (const char* v = value("--engine=")) {
      engine_name = v;
    } else if (const char* v = value("--txns=")) {
      cfg.txns_per_node = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      cfg.warmup_per_node = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--multi-home-pct=")) {
      if (!parse_int(v, "--multi-home-pct", 0, 100,
                     &cfg.multi_home_pct)) {
        return 2;
      }
    } else if (const char* v = value("--batch=")) {
      if (!parse_int(v, "--batch", 1, 1 << 16, &cfg.batch_per_round)) {
        return 2;
      }
    } else if (const char* v = value("--net-latency=")) {
      cfg.net.latency_cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      if (*v == '\0') {
        return Usage(argv[0], "--json= needs a file path (or -)");
      }
      json_path = v;
    } else if (arg == "--fingerprint") {
      print_fingerprint = true;
    } else if (const char* v = value("--chaos-node-death=")) {
      // Same PROB[@NTH] grammar as imoltp_run's --chaos-points values.
      std::vector<std::pair<std::string, imoltp::fault::FaultPointConfig>>
          parsed;
      std::string error;
      if (!imoltp::tools::ParseChaosPoints(
              std::string(imoltp::fault::kNodeDeath) + "=" + v, &parsed,
              &error)) {
        return Usage(argv[0], error);
      }
      cfg.chaos.enabled = true;
      cfg.chaos.probability = parsed[0].second.probability;
      cfg.chaos.nth_hit = parsed[0].second.nth_hit;
    } else if (arg == "--no-recover") {
      cfg.chaos.recover = false;
    } else if (const char* v = value("--sweep-pcts=")) {
      sweep_spec = v;
    } else if (const char* v = value("--trace-sample=")) {
      uint64_t sample = 0;
      std::string error;
      if (!ParseTraceSample(v, &sample, &error)) {
        return Usage(argv[0], error);
      }
      cfg.trace.enabled = sample > 0;
      cfg.trace.sample = sample;
      trace_flag_set = true;
    } else if (const char* v = value("--trace-ring=")) {
      int ring = 0;
      if (!parse_int(v, "--trace-ring", 1, 1 << 24, &ring)) return 2;
      cfg.trace.ring_capacity = static_cast<size_t>(ring);
    } else if (const char* v = value("--timeline-out=")) {
      if (*v == '\0') {
        return Usage(argv[0], "--timeline-out= needs a file path");
      }
      timeline_path = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      return Usage(argv[0], "unknown flag: " + arg);
    }
  }

  // A requested timeline needs traces to draw; default to tracing
  // everything unless the user dialed the sample themselves.
  if (!timeline_path.empty() && !trace_flag_set) {
    cfg.trace.enabled = true;
    cfg.trace.sample = 1;
  }

  if (!imoltp::engine::ParseEngineKind(engine_name, &cfg.engine_kind)) {
    return Usage(argv[0],
                 "unknown engine: " + engine_name + " (choices: " +
                     imoltp::engine::EngineKindChoices() + ")");
  }
  if (cfg.warehouses_per_node % cfg.workers_per_node != 0) {
    return Usage(argv[0],
                 "--warehouses-per-node must be divisible by "
                 "--workers-per-node");
  }

  if (cmd == "run") {
    Cluster cluster(cfg);
    Status s = cluster.Create();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: create: %s\n", argv[0],
                   s.message().c_str());
      return 1;
    }
    s = cluster.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: run: %s\n", argv[0],
                   s.message().c_str());
      return 1;
    }
    if (print_fingerprint) {
      std::fprintf(stderr, "fingerprint: %016llx\n",
                   static_cast<unsigned long long>(
                       cluster.result().fingerprint));
    }
    if (!cluster.result().invariants.ok) {
      for (const std::string& v :
           cluster.result().invariants.violations) {
        std::fprintf(stderr, "invariant violation: %s\n", v.c_str());
      }
    }
    if (!timeline_path.empty()) {
      const int rc = WriteOut(
          timeline_path, imoltp::dist::ClusterTimelineToJson(cluster));
      if (rc != 0) return rc;
    }
    const int rc =
        WriteOut(json_path, imoltp::dist::ClusterReportToJson(&cluster));
    if (rc != 0) return rc;
    return cluster.result().invariants.ok ? 0 : 1;
  }

  // sweep: one full cluster per percentage, everything else fixed.
  if (!timeline_path.empty()) {
    return Usage(argv[0], "--timeline-out only applies to `run`");
  }
  std::vector<int> pcts;
  std::string error;
  if (!ParsePcts(sweep_spec, &pcts, &error)) return Usage(argv[0], error);

  std::vector<SweepPoint> points;
  bool all_ok = true;
  for (int pct : pcts) {
    ClusterConfig point_cfg = cfg;
    point_cfg.multi_home_pct = pct;
    Cluster cluster(point_cfg);
    Status s = cluster.Create();
    if (s.ok()) s = cluster.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: sweep pct=%d: %s\n", argv[0], pct,
                   s.message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "pct=%3d committed=%llu multi_home=%llu msgs=%llu "
                 "thpt=%.2f/Mcyc\n",
                 pct,
                 static_cast<unsigned long long>(
                     cluster.result().committed),
                 static_cast<unsigned long long>(
                     cluster.result().multi_home),
                 static_cast<unsigned long long>(
                     cluster.result().net.messages),
                 cluster.result().throughput_per_mcycle);
    all_ok = all_ok && cluster.result().invariants.ok;
    SweepPoint point;
    point.multi_home_pct = pct;
    point.result = cluster.result();
    if (cluster.tracer().enabled()) {
      point.traced = cluster.tracer().traced();
      point.orphaned = cluster.tracer().orphaned();
      point.p99_critical_cycles =
          cluster.tracer().critical_multi_home().p99();
      point.p99_net_order_share =
          cluster.tracer().TailComposition().net_order_share;
    }
    points.push_back(std::move(point));
  }
  const int rc = WriteOut(json_path, ClusterSweepToJson(cfg, points));
  if (rc != 0) return rc;
  return all_ok ? 0 : 1;
}
