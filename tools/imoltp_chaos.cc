// imoltp_chaos — seeded crash → recover → verify campaigns. Each cycle
// runs a workload with armed fault points, rebuilds a fresh engine from
// whatever stable log survived, and audits the workload's consistency
// invariants (TPC-B balance conservation, TPC-C YTD and order-line
// conservation) on the recovered database. See docs/robustness.md.
//
//   imoltp_chaos --engine=hyper --workload=tpcb \
//       --chaos-points=crash.mid_commit=@120 --cycles=3
//   imoltp_chaos --engine=dbms-m --workload=tpcc \
//       --chaos-points=crash.post_commit=@400,log.torn_record=0.01 \
//       --json=-
//
// Flags:
//   --engine=shore-mt|dbms-d|voltdb|hyper|dbms-m      (default voltdb)
//   --workload=tpcb|tpcc     (default tpcb)
//   --cycles=N               crash→recover→verify cycles (default 3)
//   --workers=N              worker threads == partitions (default 2)
//   --txns=N                 measured transactions per worker
//   --warmup=N               warm-up transactions per worker
//   --seed=N                 campaign seed (injector + workload)
//   --mode=serial|deterministic|free
//   --chaos-points=SPEC      NAME=PROB[@NTH],... points to arm
//   --retry=N --retry-backoff=N --retry-cap=N     abort retry policy
//   --db=SIZE                tpcb nominal size (default 1MB)
//   --warehouses=N           tpcc scale (default 4)
//   --orders=N               tpcc initial orders per district
//   --log-buffer=SIZE        per-worker WAL ring (default 64KB)
//   --checkpoint-every=N     enable fuzzy checkpointing, one every N
//                            worker-0 transaction ticks
//   --checkpoint-pages=N     fuzzy capture rate (pages per tick)
//   --checkpoint-retain=N    complete checkpoints kept on the device
//   --invariant-only         drop the fingerprint gate (kFree runs are
//                            not bit-reproducible); invariants still
//                            audited every cycle
//   --json=FILE              campaign report ("-" = stdout)
//
// Exit codes: 0 = all invariants held in every cycle, 1 = a violation
// (details on stderr), 2 = usage or harness error.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "fault/chaos.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"

using namespace imoltp;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  }
  // The fault-point list comes from the canonical table, so a point
  // added in fault_injector.h shows up here without a second edit.
  std::string points;
  for (const char* p : fault::kAllFaultPoints) {
    if (!points.empty()) {
      points += points.size() % 64 < 48 ? " " : "\n              ";
    }
    points += p;
  }
  std::fprintf(stderr,
               "usage: %s [--engine=E] [--workload=tpcb|tpcc] "
               "[--cycles=N]\n"
               "          [--workers=N] [--txns=N] [--warmup=N] "
               "[--seed=N]\n"
               "          [--mode=serial|deterministic|free]\n"
               "          [--chaos-points=NAME=PROB[@NTH],...]\n"
               "          [--retry=N] [--retry-backoff=N] "
               "[--retry-cap=N]\n"
               "          [--db=SIZE] [--warehouses=N] [--orders=N]\n"
               "          [--log-buffer=SIZE] [--checkpoint-every=N]\n"
               "          [--checkpoint-pages=N] "
               "[--checkpoint-retain=N]\n"
               "          [--invariant-only] [--json=FILE]\n"
               "engines: %s\n"
               "fault points: %s\n",
               argv0, engine::EngineKindChoices(), points.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fault::ChaosOptions opt;
  opt.workload = "tpcb";
  std::string engine_name = "voltdb";
  std::string mode = "deterministic";
  std::string json_path;
  std::string error;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    auto positive_int = [&](const char* v, const char* flag, int* out) {
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0 || n > 1 << 20) {
        error = std::string("bad value for ") + flag + ": " + v;
        return false;
      }
      *out = static_cast<int>(n);
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0], "");
      return 0;
    } else if (const char* v = value("--engine=")) {
      engine_name = v;
    } else if (const char* v = value("--workload=")) {
      opt.workload = v;
    } else if (const char* v = value("--cycles=")) {
      if (!positive_int(v, "--cycles", &opt.cycles)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--workers=")) {
      if (!positive_int(v, "--workers", &opt.workers)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--txns=")) {
      opt.measure_txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      opt.warmup_txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--mode=")) {
      mode = v;
    } else if (const char* v = value("--chaos-points=")) {
      if (!tools::ParseChaosPoints(v, &opt.points, &error)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--retry=")) {
      if (!positive_int(v, "--retry", &opt.retry.max_attempts)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--retry-backoff=")) {
      opt.retry.backoff_cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--retry-cap=")) {
      if (!positive_int(v, "--retry-cap",
                        &opt.retry.max_inflight_retries)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--db=")) {
      opt.tpcb_nominal_bytes = tools::ParseSize(v);
      if (opt.tpcb_nominal_bytes == 0) {
        return Usage(argv[0], std::string("bad value for --db: ") + v);
      }
    } else if (const char* v = value("--warehouses=")) {
      if (!positive_int(v, "--warehouses", &opt.tpcc_warehouses)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--orders=")) {
      if (!positive_int(v, "--orders", &opt.tpcc_orders_per_district)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--checkpoint-every=")) {
      int every = 0;
      if (!positive_int(v, "--checkpoint-every", &every)) {
        return Usage(argv[0], error);
      }
      opt.checkpoint.enabled = true;
      opt.checkpoint.every_n_ticks = static_cast<uint64_t>(every);
    } else if (const char* v = value("--checkpoint-pages=")) {
      if (!positive_int(v, "--checkpoint-pages",
                        &opt.checkpoint.pages_per_step)) {
        return Usage(argv[0], error);
      }
    } else if (const char* v = value("--checkpoint-retain=")) {
      if (!positive_int(v, "--checkpoint-retain",
                        &opt.checkpoint.retain)) {
        return Usage(argv[0], error);
      }
    } else if (arg == "--invariant-only") {
      opt.invariant_only = true;
    } else if (const char* v = value("--log-buffer=")) {
      const uint64_t bytes = tools::ParseSize(v);
      if (bytes == 0 || bytes > (1u << 30)) {
        return Usage(argv[0],
                     std::string("bad value for --log-buffer: ") + v);
      }
      opt.log_buffer_bytes = static_cast<uint32_t>(bytes);
    } else if (const char* v = value("--json=")) {
      if (*v == '\0') {
        return Usage(argv[0], "--json= needs a file path (or -)");
      }
      json_path = v;
    } else {
      return Usage(argv[0], "unknown flag: " + arg);
    }
  }

  if (!tools::ParseEngine(engine_name, &opt.engine)) {
    return Usage(argv[0], "unknown engine: " + engine_name +
                              " (choices: " +
                              engine::EngineKindChoices() + ")");
  }
  if (!core::ParseParallelMode(mode, &opt.mode)) {
    return Usage(argv[0], "unknown mode: " + mode + " (choices: " +
                              core::ParallelModeChoices() + ")");
  }

  std::fprintf(stderr, "chaos: %s / %s, %d cycle(s), seed %llu\n",
               engine_name.c_str(), opt.workload.c_str(), opt.cycles,
               static_cast<unsigned long long>(opt.seed));

  const auto result = fault::RunChaos(opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 result.status().ToString().c_str());
    return 2;
  }
  const fault::ChaosReport& report = *result;

  for (const fault::ChaosCycleResult& c : report.cycles) {
    std::fprintf(
        stderr,
        "cycle %d: committed %llu, aborts %llu%s%s, log %llu records"
        "%s, recovered %s%s\n",
        c.cycle, static_cast<unsigned long long>(c.committed),
        static_cast<unsigned long long>(c.breakdown.total),
        c.crash_point.empty() ? "" : ", crash at ",
        c.crash_point.c_str(),
        static_cast<unsigned long long>(c.log_records),
        c.dropped_records != 0 ? " (tail truncated)" : "",
        c.recovered.ok ? "consistent" : "INCONSISTENT",
        c.live_checked ? (c.live.ok ? ", live consistent"
                                    : ", live INCONSISTENT")
                       : "");
    if (c.checkpoints_completed > 0 || c.recovery.used_checkpoint) {
      std::fprintf(
          stderr,
          "  checkpoints %llu (torn pages injected %llu), truncated "
          "%llu of %llu appended records\n"
          "  recovery: %s, restored %llu page(s), journal %llu, "
          "replayed %llu, undone %llu\n",
          static_cast<unsigned long long>(c.checkpoints_completed),
          static_cast<unsigned long long>(c.torn_pages_injected),
          static_cast<unsigned long long>(c.truncated_records),
          static_cast<unsigned long long>(c.appended_records),
          c.recovery.used_checkpoint ? "from checkpoint" : "full replay",
          static_cast<unsigned long long>(c.recovery.restored_pages),
          static_cast<unsigned long long>(c.recovery.journal_entries),
          static_cast<unsigned long long>(c.recovery.replayed_records),
          static_cast<unsigned long long>(c.recovery.undone_records));
    }
    for (const std::string& v : c.recovered.violations) {
      std::fprintf(stderr, "  recovered: %s\n", v.c_str());
    }
    if (c.live_checked) {
      for (const std::string& v : c.live.violations) {
        std::fprintf(stderr, "  live: %s\n", v.c_str());
      }
    }
  }

  if (!json_path.empty()) {
    const std::string json = fault::ChaosReportToJson(opt, report);
    const Status s = obs::WriteJsonFile(json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 2;
    }
    if (json_path != "-") {
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
  }

  if (!report.ok) {
    std::fprintf(stderr, "chaos: invariant violations detected\n");
    return 1;
  }
  if (opt.invariant_only) {
    // Free-running interleavings are not bit-reproducible; the
    // fingerprint is reported but carries no cross-run contract.
    std::fprintf(stderr, "chaos: all invariants held (invariant-only)\n");
  } else {
    std::fprintf(stderr,
                 "chaos: all invariants held (fingerprint %016llx)\n",
                 static_cast<unsigned long long>(report.fingerprint));
  }
  return 0;
}
