// imoltp_trace — record / replay / sweep driver for the binary trace
// subsystem (docs/tracing.md). A recorded trace captures one live run's
// simulated reference stream; replays re-simulate it through arbitrary
// machine configurations without re-running the engine.
//
//   imoltp_trace record --engine=voltdb --trace-out=run.trace
//   imoltp_trace info run.trace
//   imoltp_trace replay run.trace --config=llc=2MB,pf=off --json=-
//   imoltp_trace sweep run.trace --cell=no-pf:pf=off --threads=8
//
// Subcommands:
//   record   run one live experiment (same flags as imoltp_run) and
//            write its reference stream to --trace-out=FILE
//   info     print the trace header and validate the whole stream
//   replay   re-simulate one trace; --config=SPEC overrides the
//            recorded machine (see below), --json=FILE emits a report
//   sweep    fan one trace across N configs on N threads; each
//            --cell=LABEL:SPEC adds a cell (default: an 8-cell
//            cache/prefetcher ablation grid)
//
// Config spec: comma-separated key=value overrides applied to the
// recorded configuration. Keys: l1i l1d l2 llc (sizes), l2_assoc
// llc_assoc, line, pf=on|off, pfdeg=N, tlb=on|off, base_cpi,
// cpi_floor, clock. Empty or "recorded" replays the header config.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"
#include "trace/reader.h"
#include "trace/record.h"
#include "trace/replay.h"

using namespace imoltp;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s record <imoltp_run flags> --trace-out=FILE\n"
      "       %s info FILE\n"
      "       %s replay FILE [--config=SPEC] [--json=FILE]\n"
      "       %s sweep FILE [--cell=LABEL:SPEC]... [--threads=N]\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

obs::RunInfo ReplayRunInfo(const trace::ReplayResult& result) {
  const trace::TraceMeta& meta = result.meta;
  obs::RunInfo info;
  info.engine = meta.engine;
  info.workload = meta.workload;
  info.db_bytes = meta.db_bytes;
  info.rows = meta.rows;
  info.warehouses = meta.warehouses;
  info.workers = meta.num_workers;
  info.warmup_txns = meta.warmup_txns;
  info.measure_txns = meta.measure_txns;
  info.seed = meta.seed;
  info.trace_file_id = meta.trace_id;
  info.replayed = true;
  return info;
}

int CmdRecord(const char* argv0, int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!tools::ParseCommandLine(argc, argv, &flags, &error)) {
    return Usage(argv0, error);
  }
  if (flags.trace_out.empty()) {
    return Usage(argv0, "record needs --trace-out=FILE");
  }
  core::ExperimentConfig cfg;
  std::unique_ptr<core::Workload> workload;
  if (!tools::BuildExperiment(flags, &cfg, &workload, &error)) {
    return Usage(argv0, error);
  }

  std::fprintf(stderr, "recording %s / %s ...\n", flags.engine.c_str(),
               flags.workload.c_str());
  trace::RecordResult result;
  const Status s = trace::RecordExperiment(
      cfg, workload.get(), flags.trace_out, flags.db_bytes, flags.rows,
      flags.warehouses, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "recorded trace %s (%llu events) to %s\n",
               result.trace_id.c_str(),
               static_cast<unsigned long long>(result.events),
               flags.trace_out.c_str());

  if (!flags.json_path.empty()) {
    obs::RunInfo info;
    tools::FillRunInfo(flags, &info);
    info.aborts = result.aborts;
    info.trace_file_id = result.trace_id;
    info.replayed = false;
    const std::string json = obs::RunReportToJson(
        info, result.window, cfg.machine_config.cycle, nullptr, nullptr);
    const Status js = obs::WriteJsonFile(flags.json_path, json);
    if (!js.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv0, js.ToString().c_str());
      return 1;
    }
  }

  const std::string label = flags.engine + " / " + flags.workload;
  core::ReportRow row{label, result.window};
  core::PrintIpc("Recorded run", {row});
  return 0;
}

int CmdInfo(const char* argv0, int argc, char** argv) {
  if (argc != 1) return Usage(argv0, "info takes exactly one FILE");
  trace::TraceReader reader;
  Status s = reader.Open(argv[0]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 1;
  }
  const trace::TraceMeta& meta = reader.meta();
  const mcsim::MachineConfig& mc = meta.recorded_config;
  std::printf("trace_id:      %s\n", meta.trace_id.c_str());
  std::printf("engine:        %s\n", meta.engine.c_str());
  std::printf("workload:      %s\n", meta.workload.c_str());
  std::printf("workers:       %d\n", meta.num_workers);
  std::printf("seed:          %llu\n",
              static_cast<unsigned long long>(meta.seed));
  std::printf("warmup_txns:   %llu  (per worker)\n",
              static_cast<unsigned long long>(meta.warmup_txns));
  std::printf("measure_txns:  %llu  (per worker)\n",
              static_cast<unsigned long long>(meta.measure_txns));
  std::printf("db_bytes:      %llu\n",
              static_cast<unsigned long long>(meta.db_bytes));
  std::printf("modules:       %zu\n", meta.modules.size());
  std::printf("machine:       L1I %lluKB  L1D %lluKB  L2 %lluKB  "
              "LLC %lluMB  pf=%s(%u)  tlb=%s\n",
              static_cast<unsigned long long>(mc.l1i.size_bytes >> 10),
              static_cast<unsigned long long>(mc.l1d.size_bytes >> 10),
              static_cast<unsigned long long>(mc.l2.size_bytes >> 10),
              static_cast<unsigned long long>(mc.llc.size_bytes >> 20),
              mc.model_prefetcher ? "on" : "off", mc.prefetch_degree,
              mc.model_tlb ? "on" : "off");

  // Decode the whole stream: validates every block CRC and record, and
  // yields the event/region counts the header does not store.
  trace::TraceEvent ev;
  bool done = false;
  while (true) {
    s = reader.Next(&ev, &done);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
      return 1;
    }
    if (done) break;
  }
  std::printf("events:        %llu\n",
              static_cast<unsigned long long>(reader.events_decoded()));
  std::printf("code regions:  %zu\n", reader.regions().size());
  std::printf("stream:        OK (all blocks CRC-verified)\n");
  return 0;
}

int CmdReplay(const char* argv0, int argc, char** argv) {
  std::string path, spec, json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--config=", 0) == 0) {
      spec = arg.substr(9);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0 || !path.empty()) {
      return Usage(argv0, "unknown replay argument: " + arg);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage(argv0, "replay needs a FILE");

  trace::TraceReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 1;
  }
  mcsim::MachineConfig config = reader.meta().recorded_config;
  s = trace::ApplyConfigSpec(spec, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 2;
  }

  trace::ReplayResult result;
  s = trace::ReplayTrace(path, config, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 1;
  }
  if (!result.has_window) {
    std::fprintf(stderr, "%s: trace has no measurement window\n", argv0);
    return 1;
  }

  if (!json_path.empty()) {
    const std::string json = obs::RunReportToJson(
        ReplayRunInfo(result), result.window, config.cycle, nullptr,
        nullptr);
    s = obs::WriteJsonFile(json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
      return 1;
    }
    return 0;
  }

  const std::string label = result.meta.engine + " / " +
                            result.meta.workload + " (replay" +
                            (spec.empty() ? "" : ", " + spec) + ")";
  core::ReportRow row{label, result.window};
  core::PrintIpc("Replay", {row});
  core::PrintStallsPerKInstr("Replay", {row});
  core::PrintStallsPerTxn("Replay", {row});
  core::PrintCycleAccounting("Replay", {row});
  return 0;
}

int CmdSweep(const char* argv0, int argc, char** argv) {
  std::string path;
  std::vector<std::pair<std::string, std::string>> specs;  // label, spec
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cell=", 0) == 0) {
      const std::string cell = arg.substr(7);
      const size_t colon = cell.find(':');
      if (colon == std::string::npos || colon == 0) {
        return Usage(argv0, "--cell needs LABEL:SPEC, got '" + cell + "'");
      }
      specs.emplace_back(cell.substr(0, colon), cell.substr(colon + 1));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
      if (threads < 1) return Usage(argv0, "bad --threads value");
    } else if (arg.rfind("--", 0) == 0 || !path.empty()) {
      return Usage(argv0, "unknown sweep argument: " + arg);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage(argv0, "sweep needs a FILE");
  if (specs.empty()) {
    specs = {{"recorded", ""},        {"no-pf", "pf=off"},
             {"no-tlb", "tlb=off"},   {"llc-2MB", "llc=2MB"},
             {"llc-8MB", "llc=8MB"},  {"llc-32MB", "llc=32MB"},
             {"l1d-16KB", "l1d=16KB"}, {"l1i-16KB", "l1i=16KB"}};
  }

  trace::TraceReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv0, s.ToString().c_str());
    return 1;
  }
  std::vector<trace::SweepCell> cells;
  for (const auto& [label, spec] : specs) {
    trace::SweepCell cell;
    cell.label = label;
    cell.config = reader.meta().recorded_config;
    s = trace::ApplyConfigSpec(spec, &cell.config);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: cell %s: %s\n", argv0, label.c_str(),
                   s.ToString().c_str());
      return 2;
    }
    cells.push_back(std::move(cell));
  }

  std::fprintf(stderr, "sweeping %zu configs over %s on %d threads ...\n",
               cells.size(), path.c_str(), threads);
  trace::RunSweep(path, &cells, threads);

  std::printf("%-12s %8s %12s %12s %10s %10s\n", "cell", "ipc",
              "instr/txn", "cycles/txn", "i-stall/kI", "d-stall/kI");
  int failures = 0;
  for (const trace::SweepCell& cell : cells) {
    if (!cell.status.ok()) {
      std::printf("%-12s FAILED: %s\n", cell.label.c_str(),
                  cell.status.ToString().c_str());
      ++failures;
      continue;
    }
    const mcsim::WindowReport& r = cell.result.window;
    std::printf("%-12s %8.4f %12.1f %12.1f %10.2f %10.2f\n",
                cell.label.c_str(), r.ipc, r.instructions_per_txn,
                r.cycles_per_txn,
                r.stalls_per_kinstr.instruction_total(),
                r.stalls_per_kinstr.data_total());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0], "missing subcommand");
  const std::string cmd = argv[1];
  if (cmd == "record") return CmdRecord(argv[0], argc - 1, argv + 1);
  if (cmd == "info") return CmdInfo(argv[0], argc - 2, argv + 2);
  if (cmd == "replay") return CmdReplay(argv[0], argc - 2, argv + 2);
  if (cmd == "sweep") return CmdSweep(argv[0], argc - 2, argv + 2);
  return Usage(argv[0], "unknown subcommand: " + cmd);
}
