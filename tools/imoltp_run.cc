// imoltp_run — command-line experiment driver. Runs any (engine,
// workload, configuration) cell of the paper's design space and prints
// the human-readable tables, one machine-readable CSV row, or a full
// schema-versioned JSON report (see docs/OBSERVABILITY.md).
//
//   imoltp_run --engine=hyper --workload=micro --db=100GB --rows=10
//   imoltp_run --engine=dbms-m --workload=tpcc --warehouses=8 --csv
//   imoltp_run --engine=voltdb --workload=tpcc --json=report.json
//
// Flags:
//   --engine=shore-mt|dbms-d|voltdb|hyper|dbms-m      (default voltdb)
//   --workload=micro|micro-rw|micro-string|tpcb|tpcc  (default micro)
//   --db=SIZE            nominal size, e.g. 10MB, 10GB, 100GB
//   --rows=N             micro: rows per transaction
//   --warehouses=N       tpcc only
//   --workers=N          worker threads == partitions
//   --txns=N             measured transactions per worker
//   --warmup=N           warm-up transactions per worker
//   --index=hash|btree   DBMS M index choice
//   --no-compilation     disable DBMS M transaction compilation
//   --seed=N
//   --csv                one CSV row (+ header with --csv-header)
//   --json=FILE          full JSON report ("-" = stdout)

#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/report.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"

using namespace imoltp;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--engine=E] [--workload=W] [--db=SIZE] "
               "[--rows=N]\n"
               "          [--warehouses=N] [--workers=N] [--txns=N] "
               "[--warmup=N]\n"
               "          [--index=hash|btree] [--no-compilation] "
               "[--seed=N] [--csv]\n"
               "          [--json=FILE]\n"
               "engines: shore-mt dbms-d voltdb hyper dbms-m\n"
               "workloads: micro micro-rw micro-string tpcb tpcc\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!tools::ParseCommandLine(argc, argv, &flags, &error)) {
    return Usage(argv[0], error);
  }
  if (flags.list) return Usage(argv[0], "");

  engine::EngineKind kind;
  if (!tools::ParseEngine(flags.engine, &kind)) {
    return Usage(argv[0], "unknown engine: " + flags.engine);
  }

  core::ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.num_workers = flags.workers;
  cfg.measure_txns = flags.txns;
  cfg.warmup_txns = flags.warmup;
  cfg.seed = flags.seed;
  cfg.engine_options.compilation = flags.compilation;
  cfg.engine_options.dbms_m_index = flags.index == "btree"
                                        ? index::IndexKind::kBTreeCc
                                        : index::IndexKind::kHash;

  std::unique_ptr<core::Workload> workload;
  if (flags.workload.rfind("micro", 0) == 0) {
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = flags.db_bytes;
    mcfg.rows_per_txn = flags.rows;
    mcfg.read_write = flags.workload == "micro-rw";
    mcfg.string_columns = flags.workload == "micro-string";
    mcfg.num_partitions = flags.workers;
    workload = std::make_unique<core::MicroBenchmark>(mcfg);
  } else if (flags.workload == "tpcb") {
    core::TpcbConfig tcfg;
    tcfg.nominal_bytes = flags.db_bytes;
    tcfg.num_partitions = flags.workers;
    workload = std::make_unique<core::TpcbBenchmark>(tcfg);
  } else if (flags.workload == "tpcc") {
    core::TpccConfig tcfg;
    tcfg.warehouses = flags.warehouses;
    tcfg.num_partitions = flags.workers;
    cfg.engine_options.dbms_m_index = flags.index == "hash"
                                          ? index::IndexKind::kHash
                                          : index::IndexKind::kBTreeCc;
    workload = std::make_unique<core::TpccBenchmark>(tcfg);
  } else {
    return Usage(argv[0], "unknown workload: " + flags.workload);
  }

  std::fprintf(stderr, "running %s / %s ...\n", flags.engine.c_str(),
               flags.workload.c_str());
  core::ExperimentRunner runner(cfg, workload.get());
  const mcsim::WindowReport r = runner.Run(workload.get());

  if (!flags.json_path.empty()) {
    obs::RunInfo info;
    info.engine = flags.engine;
    info.workload = flags.workload;
    info.db_bytes = flags.db_bytes;
    info.rows = flags.rows;
    info.warehouses = flags.warehouses;
    info.workers = flags.workers;
    info.warmup_txns = flags.warmup;
    info.measure_txns = flags.txns;
    info.seed = flags.seed;
    info.aborts = runner.aborts();
    const std::string json = obs::RunReportToJson(
        info, r, runner.machine()->config().cycle,
        &runner.latency_histogram(), &runner.spans());
    const Status s = obs::WriteJsonFile(flags.json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    if (flags.json_path != "-") {
      std::fprintf(stderr, "wrote %s\n", flags.json_path.c_str());
    }
  }

  if (flags.csv) {
    if (flags.csv_header) {
      std::printf("%s\n", tools::CsvHeader().c_str());
    }
    std::printf("%s\n", tools::CsvRow(flags, r).c_str());
    return 0;
  }

  if (flags.json_path.empty()) {
    const std::string label = flags.engine + " / " + flags.workload;
    core::ReportRow row{label, r};
    core::PrintIpc("Result", {row});
    core::PrintStallsPerKInstr("Result", {row});
    core::PrintStallsPerTxn("Result", {row});
    core::PrintCycleAccounting("Result", {row});
  }
  return 0;
}
