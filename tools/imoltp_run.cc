// imoltp_run — command-line experiment driver. Runs any (engine,
// workload, configuration) cell of the paper's design space and prints
// either the human-readable tables or one machine-readable CSV row.
//
//   imoltp_run --engine=hyper --workload=micro --db=100GB --rows=10
//   imoltp_run --engine=dbms-m --workload=tpcc --warehouses=8 --csv
//   imoltp_run --list
//
// Flags:
//   --engine=shore-mt|dbms-d|voltdb|hyper|dbms-m      (default voltdb)
//   --workload=micro|micro-rw|micro-string|tpcb|tpcc  (default micro)
//   --db=SIZE            nominal size, e.g. 10MB, 10GB, 100GB
//   --rows=N             micro: rows per transaction
//   --warehouses=N       tpcc only
//   --workers=N          worker threads == partitions
//   --txns=N             measured transactions per worker
//   --warmup=N           warm-up transactions per worker
//   --index=hash|btree   DBMS M index choice
//   --no-compilation     disable DBMS M transaction compilation
//   --seed=N
//   --csv                one CSV row (+ header with --csv-header)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <strings.h>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/report.h"
#include "core/tpcb.h"
#include "core/tpcc.h"

using namespace imoltp;

namespace {

struct Flags {
  std::string engine = "voltdb";
  std::string workload = "micro";
  uint64_t db_bytes = 10ULL << 20;
  int rows = 1;
  int warehouses = 4;
  int workers = 1;
  uint64_t txns = 6000;
  uint64_t warmup = 2000;
  std::string index = "hash";
  bool compilation = true;
  uint64_t seed = 42;
  bool csv = false;
  bool csv_header = false;
};

uint64_t ParseSize(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == nullptr || v <= 0) return 0;
  if (strcasecmp(end, "GB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 30));
  }
  if (strcasecmp(end, "KB") == 0) {
    return static_cast<uint64_t>(v * (1ULL << 10));
  }
  if (strcasecmp(end, "MB") == 0 || *end == '\0') {
    return static_cast<uint64_t>(v * (1ULL << 20));
  }
  return 0;
}

bool ParseEngine(const std::string& s, engine::EngineKind* out) {
  using engine::EngineKind;
  if (s == "shore-mt") return *out = EngineKind::kShoreMt, true;
  if (s == "dbms-d") return *out = EngineKind::kDbmsD, true;
  if (s == "voltdb") return *out = EngineKind::kVoltDb, true;
  if (s == "hyper") return *out = EngineKind::kHyPer, true;
  if (s == "dbms-m") return *out = EngineKind::kDbmsM, true;
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine=E] [--workload=W] [--db=SIZE] "
               "[--rows=N]\n"
               "          [--warehouses=N] [--workers=N] [--txns=N] "
               "[--warmup=N]\n"
               "          [--index=hash|btree] [--no-compilation] "
               "[--seed=N] [--csv]\n"
               "engines: shore-mt dbms-d voltdb hyper dbms-m\n"
               "workloads: micro micro-rw micro-string tpcb tpcc\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--engine=")) {
      flags.engine = v;
    } else if (const char* v = value("--workload=")) {
      flags.workload = v;
    } else if (const char* v = value("--db=")) {
      flags.db_bytes = ParseSize(v);
      if (flags.db_bytes == 0) return Usage(argv[0]);
    } else if (const char* v = value("--rows=")) {
      flags.rows = std::atoi(v);
    } else if (const char* v = value("--warehouses=")) {
      flags.warehouses = std::atoi(v);
    } else if (const char* v = value("--workers=")) {
      flags.workers = std::atoi(v);
    } else if (const char* v = value("--txns=")) {
      flags.txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      flags.warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--index=")) {
      flags.index = v;
    } else if (const char* v = value("--seed=")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-compilation") {
      flags.compilation = false;
    } else if (arg == "--csv") {
      flags.csv = true;
    } else if (arg == "--csv-header") {
      flags.csv = true;
      flags.csv_header = true;
    } else if (arg == "--list") {
      return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }

  engine::EngineKind kind;
  if (!ParseEngine(flags.engine, &kind)) return Usage(argv[0]);

  core::ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.num_workers = flags.workers;
  cfg.measure_txns = flags.txns;
  cfg.warmup_txns = flags.warmup;
  cfg.seed = flags.seed;
  cfg.engine_options.compilation = flags.compilation;
  cfg.engine_options.dbms_m_index = flags.index == "btree"
                                        ? index::IndexKind::kBTreeCc
                                        : index::IndexKind::kHash;

  std::unique_ptr<core::Workload> workload;
  if (flags.workload.rfind("micro", 0) == 0) {
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = flags.db_bytes;
    mcfg.rows_per_txn = flags.rows;
    mcfg.read_write = flags.workload == "micro-rw";
    mcfg.string_columns = flags.workload == "micro-string";
    mcfg.num_partitions = flags.workers;
    workload = std::make_unique<core::MicroBenchmark>(mcfg);
  } else if (flags.workload == "tpcb") {
    core::TpcbConfig tcfg;
    tcfg.nominal_bytes = flags.db_bytes;
    tcfg.num_partitions = flags.workers;
    workload = std::make_unique<core::TpcbBenchmark>(tcfg);
  } else if (flags.workload == "tpcc") {
    core::TpccConfig tcfg;
    tcfg.warehouses = flags.warehouses;
    tcfg.num_partitions = flags.workers;
    cfg.engine_options.dbms_m_index = flags.index == "hash"
                                          ? index::IndexKind::kHash
                                          : index::IndexKind::kBTreeCc;
    workload = std::make_unique<core::TpccBenchmark>(tcfg);
  } else {
    return Usage(argv[0]);
  }

  std::fprintf(stderr, "running %s / %s ...\n", flags.engine.c_str(),
               flags.workload.c_str());
  const mcsim::WindowReport r = core::RunExperiment(cfg, workload.get());

  if (flags.csv) {
    if (flags.csv_header) {
      std::printf(
          "engine,workload,db_bytes,rows,workers,ipc,instr_per_txn,"
          "cycles_per_txn,l1i_kI,l2i_kI,llci_kI,l1d_kI,l2d_kI,llcd_kI\n");
    }
    const auto& k = r.stalls_per_kinstr.stalls;
    std::printf(
        "%s,%s,%llu,%d,%d,%.4f,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f,%.2f,"
        "%.2f\n",
        flags.engine.c_str(), flags.workload.c_str(),
        static_cast<unsigned long long>(flags.db_bytes), flags.rows,
        flags.workers, r.ipc, r.instructions_per_txn, r.cycles_per_txn,
        k[0], k[1], k[2], k[3], k[4], k[5]);
    return 0;
  }

  const std::string label = flags.engine + " / " + flags.workload;
  core::ReportRow row{label, r};
  core::PrintIpc("Result", {row});
  core::PrintStallsPerKInstr("Result", {row});
  core::PrintStallsPerTxn("Result", {row});
  core::PrintCycleAccounting("Result", {row});
  return 0;
}
