// imoltp_run — command-line experiment driver. Runs any (engine,
// workload, configuration) cell of the paper's design space and prints
// the human-readable tables, one machine-readable CSV row, or a full
// schema-versioned JSON report (see docs/OBSERVABILITY.md).
//
//   imoltp_run --engine=hyper --workload=micro --db=100GB --rows=10
//   imoltp_run --engine=dbms-m --workload=tpcc --warehouses=8 --csv
//   imoltp_run --engine=voltdb --workload=tpcc --json=report.json
//   imoltp_run --engine=voltdb --trace-out=run.trace
//
// Flags:
//   --engine=shore-mt|dbms-d|voltdb|hyper|dbms-m      (default voltdb)
//   --workload=micro|micro-rw|micro-string|tpcb|tpcc  (default micro)
//   --db=SIZE            nominal size, e.g. 10MB, 10GB, 100GB
//   --rows=N             micro: rows per transaction
//   --warehouses=N       tpcc only
//   --workers=N          worker threads == partitions
//   --txns=N             measured transactions per worker
//   --warmup=N           warm-up transactions per worker
//   --index=hash|btree   DBMS M index choice
//   --no-compilation     disable DBMS M transaction compilation
//   --mode=M             serial|deterministic|free host threading
//                        (see docs/parallel_execution.md)
//   --seed=N
//   --csv                one CSV row (+ header with --csv-header)
//   --json=FILE          full JSON report ("-" = stdout)
//   --trace-out=FILE     record the simulated reference stream for
//                        later `imoltp_trace replay` (docs/tracing.md)

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"
#include "trace/writer.h"

using namespace imoltp;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--engine=E] [--workload=W] [--db=SIZE] "
               "[--rows=N]\n"
               "          [--warehouses=N] [--workers=N] [--txns=N] "
               "[--warmup=N]\n"
               "          [--index=hash|btree] [--no-compilation] "
               "[--seed=N] [--csv]\n"
               "          [--mode=serial|deterministic|free]\n"
               "          [--json=FILE] [--trace-out=FILE]\n"
               "engines: shore-mt dbms-d voltdb hyper dbms-m\n"
               "workloads: micro micro-rw micro-string tpcb tpcc\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!tools::ParseCommandLine(argc, argv, &flags, &error)) {
    return Usage(argv[0], error);
  }
  if (flags.list) return Usage(argv[0], "");

  core::ExperimentConfig cfg;
  std::unique_ptr<core::Workload> workload;
  if (!tools::BuildExperiment(flags, &cfg, &workload, &error)) {
    return Usage(argv[0], error);
  }

  std::fprintf(stderr, "running %s / %s ...\n", flags.engine.c_str(),
               flags.workload.c_str());

  // When recording, the writer must attach before the database is
  // populated: cache warm-up runs with simulation on, and a replay only
  // reproduces the live counters if those events are in the trace.
  trace::TraceWriter writer;
  if (!flags.trace_out.empty()) {
    trace::TraceWriter::Options topts;
    topts.engine = flags.engine;
    topts.workload = flags.workload;
    topts.seed = flags.seed;
    topts.warmup_txns = flags.warmup;
    topts.measure_txns = flags.txns;
    topts.db_bytes = flags.db_bytes;
    topts.rows = flags.rows;
    topts.warehouses = flags.warehouses;
    cfg.hooks.pre_populate = [&writer, &flags,
                              topts](mcsim::MachineSim* machine) {
      const Status s = writer.Open(flags.trace_out, *machine, topts);
      if (!s.ok()) return s;
      machine->SetTraceSink(&writer);
      return Status::Ok();
    };
  }
  auto created = core::ExperimentRunner::Create(cfg, workload.get());
  if (!created.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 created.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **created;
  if (!flags.trace_out.empty()) runner.set_trace_sink(&writer);

  const auto run = runner.Run(workload.get());
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 run.status().ToString().c_str());
    return 1;
  }
  const mcsim::WindowReport r = *run;

  if (!flags.trace_out.empty()) {
    runner.set_trace_sink(nullptr);
    const Status s = writer.Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recorded trace %s (%llu events) to %s\n",
                 writer.trace_id().c_str(),
                 static_cast<unsigned long long>(writer.events_written()),
                 flags.trace_out.c_str());
  }

  if (!flags.json_path.empty()) {
    obs::RunInfo info;
    tools::FillRunInfo(flags, &info);
    info.aborts = runner.aborts();
    info.trace_file_id = writer.trace_id();
    info.replayed = false;
    const std::string json = obs::RunReportToJson(
        info, r, runner.machine()->config().cycle,
        &runner.latency_histogram(), &runner.spans());
    const Status s = obs::WriteJsonFile(flags.json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    if (flags.json_path != "-") {
      std::fprintf(stderr, "wrote %s\n", flags.json_path.c_str());
    }
  }

  if (flags.csv) {
    if (flags.csv_header) {
      std::printf("%s\n", tools::CsvHeader().c_str());
    }
    std::printf("%s\n", tools::CsvRow(flags, r).c_str());
    return 0;
  }

  if (flags.json_path.empty()) {
    const std::string label = flags.engine + " / " + flags.workload;
    core::ReportRow row{label, r};
    core::PrintIpc("Result", {row});
    core::PrintStallsPerKInstr("Result", {row});
    core::PrintStallsPerTxn("Result", {row});
    core::PrintCycleAccounting("Result", {row});
  }
  return 0;
}
