// imoltp_run — command-line experiment driver. Runs any (engine,
// workload, configuration) cell of the paper's design space and prints
// the human-readable tables, one machine-readable CSV row, or a full
// schema-versioned JSON report (see docs/OBSERVABILITY.md).
//
//   imoltp_run --engine=hyper --workload=micro --db=100GB --rows=10
//   imoltp_run --engine=dbms-m --workload=tpcc --warehouses=8 --csv
//   imoltp_run --engine=voltdb --workload=tpcc --json=report.json
//   imoltp_run --engine=voltdb --trace-out=run.trace
//   imoltp_run --sample-every=20000 --timeline-out=run.trace.json
//
// Flags:
//   --engine=shore-mt|dbms-d|voltdb|hyper|dbms-m      (default voltdb)
//   --workload=micro|micro-rw|micro-string|tpcb|tpcc  (default micro)
//   --db=SIZE            nominal size, e.g. 10MB, 10GB, 100GB
//   --rows=N             micro: rows per transaction
//   --warehouses=N       tpcc only
//   --workers=N          worker threads == partitions
//   --txns=N             measured transactions per worker
//   --warmup=N           warm-up transactions per worker
//   --index=hash|btree   DBMS M index choice
//   --no-compilation     disable DBMS M transaction compilation
//   --mode=M             serial|deterministic|free host threading
//                        (see docs/parallel_execution.md)
//   --seed=N
//   --csv                one CSV row (+ header with --csv-header)
//   --json=FILE          full JSON report ("-" = stdout)
//   --trace-out=FILE     record the simulated reference stream for
//                        later `imoltp_trace replay` (docs/tracing.md)
//   --sample-every=N     sample worker-core counters every N retire
//                        cycles during the measurement window (adds a
//                        timeseries section to the JSON report)
//   --timeline-out=FILE  write a Perfetto-loadable trace-event timeline
//                        (spans, retry-attempt flows + sampled counter
//                        tracks per core; see imoltp_timeline)
//   --sample-modules     also sample per-module cycles (one counter
//                        track per code module; implied by
//                        --timeline-out)
//   --retry=N            attempts per transaction (1 = no retry)
//   --retry-backoff=N    cycles before the first retry (doubles per
//                        attempt; see docs/robustness.md)
//   --retry-cap=N        in-flight-retry admission cap
//   --chaos-seed=N       arm the fault injector with this seed
//   --chaos-points=SPEC  NAME=PROB[@NTH],... fault points to arm
//                        (e.g. lock.conflict=0.05,crash.mid_commit=@90)
//   --checkpoint-every=N enable fuzzy checkpointing, one every N
//                        worker-0 transaction ticks (adds a `recovery`
//                        section to the JSON report)
//   --checkpoint-pages=N fuzzy capture rate (pages per tick)
//   --checkpoint-retain=N  complete checkpoints kept on the device

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "fault/fault_injector.h"
#include "obs/report_json.h"
#include "obs/timeline.h"
#include "tools/imoltp_cli.h"
#include "trace/writer.h"

using namespace imoltp;

namespace {

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  std::fprintf(stderr,
               "usage: %s [--engine=E] [--workload=W] [--db=SIZE] "
               "[--rows=N]\n"
               "          [--warehouses=N] [--workers=N] [--txns=N] "
               "[--warmup=N]\n"
               "          [--index=hash|btree] [--no-compilation] "
               "[--seed=N] [--csv]\n"
               "          [--mode=serial|deterministic|free]\n"
               "          [--json=FILE] [--trace-out=FILE]\n"
               "          [--sample-every=N] [--timeline-out=FILE] "
               "[--sample-modules]\n"
               "          [--retry=N] [--retry-backoff=N] "
               "[--retry-cap=N]\n"
               "          [--chaos-seed=N] [--chaos-points=SPEC]\n"
               "          [--checkpoint-every=N] [--checkpoint-pages=N]\n"
               "          [--checkpoint-retain=N]\n"
               "engines: %s\n"
               "workloads: %s\n",
               argv0, engine::EngineKindChoices(),
               core::WorkloadChoices());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!tools::ParseCommandLine(argc, argv, &flags, &error)) {
    return Usage(argv[0], error);
  }
  if (flags.list) return Usage(argv[0], "");

  core::ExperimentConfig cfg;
  std::unique_ptr<core::Workload> workload;
  if (!tools::BuildExperiment(flags, &cfg, &workload, &error)) {
    return Usage(argv[0], error);
  }

  // Fault injection: arm the seeded injector before the engine exists
  // so every LogManager and lock table picks it up at construction.
  const bool chaos_on =
      flags.chaos_seed != 0 || !flags.chaos_points.empty();
  const uint64_t fault_seed =
      flags.chaos_seed != 0 ? flags.chaos_seed : flags.seed;
  fault::FaultInjector injector(fault_seed);
  if (chaos_on) {
    std::vector<std::pair<std::string, fault::FaultPointConfig>> points;
    if (!tools::ParseChaosPoints(flags.chaos_points, &points, &error)) {
      return Usage(argv[0], error);
    }
    for (const auto& [name, point] : points) injector.Arm(name, point);
    cfg.engine_options.fault_injector = &injector;
  }

  std::fprintf(stderr, "running %s / %s ...\n", flags.engine.c_str(),
               flags.workload.c_str());

  // When recording, the writer must attach before the database is
  // populated: cache warm-up runs with simulation on, and a replay only
  // reproduces the live counters if those events are in the trace.
  trace::TraceWriter writer;
  if (!flags.trace_out.empty()) {
    trace::TraceWriter::Options topts;
    topts.engine = flags.engine;
    topts.workload = flags.workload;
    topts.seed = flags.seed;
    topts.warmup_txns = flags.warmup;
    topts.measure_txns = flags.txns;
    topts.db_bytes = flags.db_bytes;
    topts.rows = flags.rows;
    topts.warehouses = flags.warehouses;
    cfg.hooks.pre_populate = [&writer, &flags,
                              topts](mcsim::MachineSim* machine) {
      const Status s = writer.Open(flags.trace_out, *machine, topts);
      if (!s.ok()) return s;
      machine->SetTraceSink(&writer);
      return Status::Ok();
    };
  }
  auto created = core::ExperimentRunner::Create(cfg, workload.get());
  if (!created.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 created.status().ToString().c_str());
    return 1;
  }
  core::ExperimentRunner& runner = **created;
  if (!flags.trace_out.empty()) runner.set_trace_sink(&writer);

  // Timeline capture: every effective lifecycle span also logs its
  // interval, one lane per worker core.
  obs::TimelineRecorder recorder(flags.workers);
  if (!flags.timeline_out.empty()) {
    runner.engine()->span_collector()->set_recorder(&recorder);
  }

  const auto run = runner.Run(workload.get());
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 run.status().ToString().c_str());
    return 1;
  }
  const mcsim::WindowReport r = *run;

  if (!flags.trace_out.empty()) {
    runner.set_trace_sink(nullptr);
    const Status s = writer.Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recorded trace %s (%llu events) to %s\n",
                 writer.trace_id().c_str(),
                 static_cast<unsigned long long>(writer.events_written()),
                 flags.trace_out.c_str());
  }

  if (chaos_on && injector.crash_pending()) {
    std::fprintf(stderr, "injected crash at %s halted the run\n",
                 injector.crash_point().c_str());
  }

  {
    const obs::HostPerf& hp = runner.host_perf();
    std::fprintf(stderr,
                 "host: measure %.2fs, %.3g simulated refs/sec, "
                 "%.3g instr/sec, peak RSS %.1f MB\n",
                 hp.measure_seconds, hp.refs_per_second,
                 hp.instructions_per_second,
                 static_cast<double>(hp.peak_rss_bytes) / (1024.0 * 1024.0));
  }

  if (!flags.timeline_out.empty()) {
    runner.engine()->span_collector()->set_recorder(nullptr);
    obs::TimelineOptions topts;
    topts.engine = flags.engine;
    topts.workload = flags.workload;
    const std::string timeline = obs::TimelineToJson(topts, r, &recorder);
    const Status s = obs::WriteJsonFile(flags.timeline_out, timeline);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    if (flags.timeline_out != "-") {
      std::fprintf(stderr, "wrote timeline %s\n",
                   flags.timeline_out.c_str());
    }
  }

  if (!flags.json_path.empty()) {
    obs::RunInfo info;
    tools::FillRunInfo(flags, &info);
    info.aborts = runner.aborts();
    info.trace_file_id = writer.trace_id();
    info.replayed = false;
    obs::RobustnessInfo robustness;
    robustness.aborts = runner.abort_breakdown();
    robustness.committed = runner.committed();
    robustness.retry_max_attempts = cfg.retry.max_attempts;
    robustness.retries = runner.retry_stats().retries;
    robustness.retry_successes = runner.retry_stats().retry_successes;
    robustness.retry_rejections = runner.retry_stats().retry_rejections;
    robustness.faults_enabled = chaos_on;
    robustness.fault_seed = chaos_on ? fault_seed : 0;
    robustness.crash_point = injector.crash_point();
    robustness.fault_points = injector.Stats();
    obs::RecoveryInfo recovery;
    const txn::CheckpointManager* cm = runner.engine()->checkpoints();
    if (cm != nullptr) {
      recovery.checkpoint_enabled = true;
      recovery.checkpoint_every_n_ticks = cm->policy().every_n_ticks;
      recovery.checkpoint_pages_per_step = cm->policy().pages_per_step;
      recovery.checkpoint_retain = cm->policy().retain;
      recovery.checkpoint = cm->stats();
      recovery.log_truncation_lsn = runner.engine()->LogTruncationLsn();
      recovery.appended_log_records =
          runner.engine()->AppendedLogRecords();
    }
    const std::string json = obs::RunReportToJson(
        info, r, runner.machine()->config().cycle,
        &runner.latency_histogram(), &runner.spans(), &robustness,
        &runner.host_perf(), cm != nullptr ? &recovery : nullptr);
    const Status s = obs::WriteJsonFile(flags.json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
      return 1;
    }
    if (flags.json_path != "-") {
      std::fprintf(stderr, "wrote %s\n", flags.json_path.c_str());
    }
  }

  if (flags.csv) {
    if (flags.csv_header) {
      std::printf("%s\n", tools::CsvHeader().c_str());
    }
    std::printf("%s\n", tools::CsvRow(flags, r).c_str());
    return 0;
  }

  if (flags.json_path.empty()) {
    const std::string label = flags.engine + " / " + flags.workload;
    core::ReportRow row{label, r};
    core::PrintIpc("Result", {row});
    core::PrintStallsPerKInstr("Result", {row});
    core::PrintStallsPerTxn("Result", {row});
    core::PrintCycleAccounting("Result", {row});
  }
  return 0;
}
