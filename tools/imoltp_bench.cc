// imoltp_bench — canonical benchmark-campaign runner. Sweeps engines ×
// workloads × parallel modes and writes ONE BENCH_<label>.json matrix:
// per cell the simulated quality metrics (IPC, instructions/txn, stall
// breakdown — the paper's axes) AND the host-side speed metrics
// (wall-clock, simulated references per host second, peak RSS — the
// simulator's own performance trajectory). Matrices are the unit
// imoltp_compare diffs, so "did this commit make the simulator slower
// or change what it simulates?" is one command against a committed
// baseline (see docs/OBSERVABILITY.md, "Benchmark trajectories").
//
//   imoltp_bench --label=pr42 --out=BENCH_pr42.json
//   imoltp_bench --engines=voltdb,hyper --workloads=tpcb --txns=500
//   imoltp_compare BENCH_baseline.json BENCH_pr42.json
//
// Flags:
//   --label=NAME         matrix label (default "local")
//   --out=FILE           output path (default BENCH_<label>.json,
//                        "-" = stdout)
//   --engines=A,B,...    subset of shore-mt,dbms-d,voltdb,hyper,dbms-m
//                        (default all five)
//   --workloads=A,B,...  subset of micro,micro-rw,micro-string,tpcb,
//                        tpcc,tpcc-cluster (default tpcb,tpcc,
//                        tpcc-cluster). tpcc-cluster runs the 3-node
//                        src/dist cluster (deterministic mode only;
//                        other modes skip the cell) and reports
//                        cluster-wide averages; its host axis is
//                        wall-clock-only.
//   --modes=A,B,...      subset of serial,deterministic,free
//                        (default deterministic)
//   --workers=N          worker threads == partitions (default 2)
//   --txns=N             measured transactions per worker (default 2000)
//   --warmup=N           warm-up transactions per worker (default 500)
//   --db=SIZE            nominal database size (default 1MB)
//   --warehouses=N       TPC-C scale (default 2)
//   --seed=N             (default 42)
//   --commit=REV         provenance string recorded in the matrix
//                        (default $IMOLTP_COMMIT or "unknown")
//
// Exit codes: 0 = all cells ran, 1 = any cell failed, 2 = usage error.

#include <ctime>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "dist/cluster.h"
#include "obs/bench_json.h"
#include "obs/host_metrics.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"

using namespace imoltp;

namespace {

struct BenchFlags {
  std::string label = "local";
  std::string out;  // default derived from label
  std::vector<std::string> engines = {"shore-mt", "dbms-d", "voltdb",
                                      "hyper", "dbms-m"};
  std::vector<std::string> workloads = {"tpcb", "tpcc", "tpcc-cluster"};
  std::vector<std::string> modes = {"deterministic"};
  int workers = 2;
  uint64_t txns = 2000;
  uint64_t warmup = 500;
  uint64_t db_bytes = 1ULL << 20;
  int warehouses = 2;
  uint64_t seed = 42;
  std::string commit;
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

int Usage(const char* argv0, const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv0, error.c_str());
  }
  std::fprintf(stderr,
               "usage: %s [--label=NAME] [--out=FILE] [--engines=A,B]\n"
               "          [--workloads=A,B] [--modes=A,B] [--workers=N]\n"
               "          [--txns=N] [--warmup=N] [--db=SIZE]\n"
               "          [--warehouses=N] [--seed=N] [--commit=REV]\n",
               argv0);
  return 2;
}

bool ParseBenchFlags(int argc, char* const* argv, BenchFlags* flags,
                     std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--label=")) {
      if (*v == '\0') {
        *error = "--label= needs a name";
        return false;
      }
      flags->label = v;
    } else if (const char* v = value("--out=")) {
      flags->out = v;
    } else if (const char* v = value("--engines=")) {
      flags->engines = SplitCsv(v);
    } else if (const char* v = value("--workloads=")) {
      flags->workloads = SplitCsv(v);
    } else if (const char* v = value("--modes=")) {
      flags->modes = SplitCsv(v);
    } else if (const char* v = value("--workers=")) {
      flags->workers = std::atoi(v);
      if (flags->workers <= 0) {
        *error = std::string("bad value for --workers: ") + v;
        return false;
      }
    } else if (const char* v = value("--txns=")) {
      flags->txns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--warmup=")) {
      flags->warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--db=")) {
      flags->db_bytes = tools::ParseSize(v);
      if (flags->db_bytes == 0) {
        *error = std::string("bad value for --db: ") + v;
        return false;
      }
    } else if (const char* v = value("--warehouses=")) {
      flags->warehouses = std::atoi(v);
      if (flags->warehouses <= 0) {
        *error = std::string("bad value for --warehouses: ") + v;
        return false;
      }
    } else if (const char* v = value("--seed=")) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--commit=")) {
      flags->commit = v;
    } else {
      *error = "unknown flag: " + arg;
      return false;
    }
  }
  if (flags->engines.empty() || flags->workloads.empty() ||
      flags->modes.empty()) {
    *error = "--engines/--workloads/--modes must not be empty";
    return false;
  }
  if (flags->commit.empty()) {
    const char* env = std::getenv("IMOLTP_COMMIT");
    flags->commit = env != nullptr && *env != '\0' ? env : "unknown";
  }
  if (flags->out.empty()) {
    flags->out = "BENCH_" + flags->label + ".json";
  }
  return true;
}

/// Runs one campaign cell. Returns false (with `error` set) when the
/// configuration is invalid or the run fails.
bool RunCell(const BenchFlags& bench, const std::string& engine,
             const std::string& workload, const std::string& mode,
             obs::BenchCell* cell, std::string* error) {
  tools::Flags flags;
  flags.engine = engine;
  flags.workload = workload;
  flags.mode = mode;
  flags.workers = bench.workers;
  flags.txns = bench.txns;
  flags.warmup = bench.warmup;
  flags.db_bytes = bench.db_bytes;
  flags.warehouses = bench.warehouses;
  flags.seed = bench.seed;

  core::ExperimentConfig cfg;
  std::unique_ptr<core::Workload> wl;
  if (!tools::BuildExperiment(flags, &cfg, &wl, error)) return false;

  const double cell_start = obs::MonotonicSeconds();
  auto created = core::ExperimentRunner::Create(cfg, wl.get());
  if (!created.ok()) {
    *error = created.status().ToString();
    return false;
  }
  core::ExperimentRunner& runner = **created;
  const auto run = runner.Run(wl.get());
  if (!run.ok()) {
    *error = run.status().ToString();
    return false;
  }
  const mcsim::WindowReport& r = *run;
  const obs::HostPerf& host = runner.host_perf();

  cell->id = engine + "/" + workload + "/" + mode + "/w" +
             std::to_string(bench.workers);
  cell->engine = engine;
  cell->workload = workload;
  cell->mode = mode;
  cell->workers = bench.workers;
  cell->warmup_txns = bench.warmup;
  cell->measure_txns = bench.txns;
  cell->seed = bench.seed;
  cell->ipc = r.ipc;
  cell->instructions_per_txn = r.instructions_per_txn;
  cell->cycles_per_txn = r.cycles_per_txn;
  for (int i = 0; i < 6; ++i) {
    cell->stalls_per_kinstr[i] = r.stalls_per_kinstr.stalls[i];
  }
  cell->committed = runner.committed();
  cell->aborts = runner.aborts();
  cell->wall_seconds = host.measure_seconds;
  cell->total_wall_seconds = obs::MonotonicSeconds() - cell_start;
  cell->simulated_refs = host.simulated_refs;
  cell->refs_per_sec = host.refs_per_second;
  cell->instructions_per_sec = host.instructions_per_second;
  cell->peak_rss_bytes = host.peak_rss_bytes;
  return true;
}

/// Runs one distributed cell: a 3-node src/dist cluster at the bench's
/// scale, reporting cluster-wide averages of the simulated metrics. The
/// host axis is wall-clock-only (refs/sec stays 0 → imoltp_compare's
/// timing fallback), because per-node machines count their references
/// behind the cluster driver, not through the single-run host profiler.
bool RunClusterCell(const BenchFlags& bench, const std::string& engine,
                    obs::BenchCell* cell, std::string* error) {
  dist::ClusterConfig cfg;
  if (!engine::ParseEngineKind(engine, &cfg.engine_kind)) {
    *error = "unknown engine: " + engine +
             " (choices: " + engine::EngineKindChoices() + ")";
    return false;
  }
  cfg.nodes = 3;
  cfg.warehouses_per_node = bench.warehouses;
  cfg.workers_per_node = bench.workers;
  if (cfg.warehouses_per_node % cfg.workers_per_node != 0) {
    *error = "--warehouses must be divisible by --workers for the "
             "cluster cell";
    return false;
  }
  cfg.warmup_per_node = bench.warmup;
  cfg.txns_per_node = bench.txns;
  cfg.multi_home_pct = 10;
  cfg.seed = bench.seed;
  // Trace every transaction: tracing is observer-free (same fingerprint
  // on or off), and it supplies the cell's critical-path column.
  cfg.trace.enabled = true;
  cfg.trace.sample = 1;

  const double cell_start = obs::MonotonicSeconds();
  dist::Cluster cluster(cfg);
  Status s = cluster.Create();
  if (s.ok()) s = cluster.Run();
  if (!s.ok()) {
    *error = s.ToString();
    return false;
  }
  if (!cluster.result().invariants.ok) {
    *error = "cluster invariants violated: " +
             (cluster.result().invariants.violations.empty()
                  ? std::string("(no detail)")
                  : cluster.result().invariants.violations[0]);
    return false;
  }

  cell->id = engine + "/tpcc-cluster/n" + std::to_string(cfg.nodes) +
             "/w" + std::to_string(bench.workers);
  cell->engine = engine;
  cell->workload = "tpcc-cluster";
  cell->mode = "deterministic";
  cell->workers = bench.workers;
  cell->warmup_txns = bench.warmup;
  cell->measure_txns = bench.txns;
  cell->seed = bench.seed;

  double ipc = 0.0, instr = 0.0, cycles = 0.0;
  double stalls[6] = {};
  int windows = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const dist::Node* node = cluster.node(n);
    if (!node->has_window()) continue;
    const mcsim::WindowReport& r = node->window();
    ipc += r.ipc;
    instr += r.instructions_per_txn;
    cycles += r.cycles_per_txn;
    for (int i = 0; i < 6; ++i) stalls[i] += r.stalls_per_kinstr.stalls[i];
    ++windows;
  }
  if (windows > 0) {
    cell->ipc = ipc / windows;
    cell->instructions_per_txn = instr / windows;
    cell->cycles_per_txn = cycles / windows;
    for (int i = 0; i < 6; ++i) {
      cell->stalls_per_kinstr[i] = stalls[i] / windows;
    }
  }
  cell->committed = cluster.result().committed;
  cell->aborts = cluster.result().aborted;
  cell->p99_net_order_share =
      cluster.tracer().TailComposition().net_order_share;
  cell->wall_seconds = obs::MonotonicSeconds() - cell_start;
  cell->total_wall_seconds = cell->wall_seconds;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags bench;
  std::string error;
  if (!ParseBenchFlags(argc, argv, &bench, &error)) {
    return Usage(argv[0], error);
  }

  obs::BenchMatrix matrix;
  matrix.label = bench.label;
  matrix.commit = bench.commit;
  {
    std::string config;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) config += ' ';
      config += argv[i];
    }
    matrix.config = config;
  }
  matrix.created_unix = static_cast<uint64_t>(std::time(nullptr));

  const size_t total = bench.engines.size() * bench.workloads.size() *
                       bench.modes.size();
  size_t done = 0;
  int failures = 0;
  for (const std::string& engine : bench.engines) {
    for (const std::string& workload : bench.workloads) {
      for (const std::string& mode : bench.modes) {
        ++done;
        std::fprintf(stderr, "[%zu/%zu] %s / %s / %s ...\n", done, total,
                     engine.c_str(), workload.c_str(), mode.c_str());
        if (workload == "tpcc-cluster") {
          // The cluster driver is deterministic by construction; the
          // mode axis does not apply. Run the cell once, under the
          // deterministic label, and skip the other modes quietly.
          if (mode != "deterministic") continue;
          obs::BenchCell cell;
          if (!RunClusterCell(bench, engine, &cell, &error)) {
            std::fprintf(stderr, "%s: %s/%s failed: %s\n", argv[0],
                         engine.c_str(), workload.c_str(), error.c_str());
            ++failures;
            continue;
          }
          matrix.cells.push_back(cell);
          continue;
        }
        obs::BenchCell cell;
        if (!RunCell(bench, engine, workload, mode, &cell, &error)) {
          std::fprintf(stderr, "%s: %s/%s/%s failed: %s\n", argv[0],
                       engine.c_str(), workload.c_str(), mode.c_str(),
                       error.c_str());
          ++failures;
          continue;
        }
        matrix.cells.push_back(cell);
      }
    }
  }

  // Summary table: the simulated axis next to the host axis, per cell.
  std::printf("\n== Bench matrix %s (%zu cells) ==\n",
              bench.label.c_str(), matrix.cells.size());
  std::printf("%-34s %7s %10s %9s %12s %9s\n", "cell", "ipc",
              "instr/txn", "wall(s)", "refs/sec", "rss(MB)");
  for (const obs::BenchCell& c : matrix.cells) {
    std::printf("%-34s %7.4f %10.1f %9.3f %12.4g %9.1f\n",
                c.id.c_str(), c.ipc, c.instructions_per_txn,
                c.wall_seconds, c.refs_per_sec,
                static_cast<double>(c.peak_rss_bytes) / (1024.0 * 1024.0));
  }

  const Status s =
      obs::WriteJsonFile(bench.out, obs::BenchMatrixToJson(matrix));
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], s.ToString().c_str());
    return 1;
  }
  if (bench.out != "-") {
    std::fprintf(stderr, "wrote %s\n", bench.out.c_str());
  }
  return failures == 0 ? 0 : 1;
}
