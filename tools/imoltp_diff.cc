// imoltp_diff — compares two JSON reports produced by
// `imoltp_run --json` (or the bench exporters) and exits non-zero when
// any metric drifts beyond its tolerance. The regression harness runs
// a fixed-seed experiment and diffs it against a checked-in golden
// report (scripts/check_regression.sh).
//
//   imoltp_diff baseline.json candidate.json
//   imoltp_diff --rtol=0.05 --metric-rtol=spans=0.2 a.json b.json
//   imoltp_diff --json a.json b.json   # machine-readable verdict
//
// Flags:
//   --rtol=X                default relative tolerance (default 0.02)
//   --metric-rtol=PREFIX=X  override for metrics whose dotted path
//                           starts with PREFIX (repeatable)
//   --ignore=PREFIX         skip metrics under PREFIX (repeatable)
//   --json                  emit the verdict as one JSON object on
//                           stdout ({verdict, baseline, candidate,
//                           failures:[{path, detail}]}) instead of the
//                           human-readable lines
//
// Exit codes: 0 = within tolerance, 1 = drift (offending metrics are
// printed), 2 = usage or parse error.
//
// Built-in per-metric rules (longest matching prefix wins; explicit
// --metric-rtol/--ignore flags take precedence over all of them):
//   meta, schema_version          exact — different run configurations
//                                 are incomparable, not "drifted"
//   meta.trace                    ignored — trace provenance names the
//                                 file, not the run configuration
//   window.misses                 rtol 0.05, atol 128 (ASLR perturbs
//                                 cold-miss counts)
//   window.stalls                 rtol 0.10, atol 0.5
//   window.cycle_accounting       rtol 0.05, atol 1000 (derives from
//                                 the jittery miss counts)
//   latency_cycles                rtol 0.10
//   spans                         rtol 0.10, atol 500
//   latency_cycles.bins           ignored — counts hop between adjacent
//                                 log-spaced bins on tiny shifts
//   robustness                    exact — commit/abort/retry/fault
//                                 counters are deterministic under the
//                                 serialized modes; free-mode runs need
//                                 an explicit --metric-rtol=robustness=X
//   timeseries.sample_every       exact — different sampling periods
//                                 produce incomparable bucket grids
//   timeseries.convergence        ignored — an advisory warm-up verdict,
//                                 not a metric (its boolean flips on
//                                 noise exactly at the tolerance edge)
//   timeseries                    rtol 0.10, atol 2.0 — bucket-wise;
//                                 per-bucket miss-derived values are
//                                 noisier than whole-window averages
//   window.txn_module_breakdown   rtol 0.05, atol 1000 (per-type module
//                                 cycles inherit the miss-count jitter)
//   host                          ignored — host-side wall-clock /
//                                 throughput / RSS measure the simulator
//                                 process, never deterministic (use
//                                 imoltp_compare for trajectories)
//   cluster                       exact — cluster outcome counts, net
//                                 accounting, fingerprint, invariants
//                                 are bit-identical per seed
//   cluster.windows,
//   cluster.*throughput/cycles    tolerant — per-node window reports
//                                 and throughput carry cycle-model
//                                 (ASLR-jittered) values
//   cluster.tracing.*.cycles,
//   cluster.tracing.p99_*         tolerant — trace stage/critical-path
//                                 percentiles and the p99 composition
//                                 shares are cycle-model values; trace
//                                 counts stay exact under `cluster`
//   sweep / sweep.perf            exact series, tolerant perf (same
//                                 split for sweep documents)
//   everything else               default rtol (0.02)
//
// When either report has meta.trace.replayed == true, latency_cycles,
// spans, robustness, timeseries, and window.txn_module_breakdown are
// ignored entirely: a replay re-simulates the recorded reference stream
// without the engine, so it has no per-transaction latency histogram,
// lifecycle spans, abort/retry accounting, sampled series, or per-type
// attribution, and their absence is not drift.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report_json.h"

using imoltp::obs::JsonValue;
using imoltp::obs::ParseJson;

namespace {

struct ToleranceRule {
  std::string prefix;  // dotted-path prefix; "" matches everything
  double rtol;         // negative = ignore subtree
  double atol = 0.0;   // absolute floor for small-magnitude metrics
};

struct Options {
  double default_rtol = 0.02;
  std::vector<ToleranceRule> user_rules;  // from flags, highest priority
  std::string baseline_path;
  std::string candidate_path;
  bool json_output = false;
};

/// One metric beyond tolerance: the dotted path and what differed.
struct Failure {
  std::string path;
  std::string detail;
};

// The cache simulator hashes real heap addresses, so ASLR perturbs
// cold-miss counts slightly between otherwise identical runs; the
// absolute floors keep near-zero counters (a handful of L2I misses)
// from tripping a purely relative check.
const ToleranceRule kBuiltinRules[] = {
    {"schema_version", 0.0, 0.0},
    {"meta", 0.0, 0.0},
    // Trace provenance (schema v2) identifies the file, not the run:
    // a recorded baseline and its replay must still compare clean.
    {"meta.trace", -1.0, 0.0},
    {"window.misses", 0.05, 128.0},
    {"window.stalls", 0.10, 0.5},
    {"window.cycle_accounting", 0.05, 1000.0},
    {"latency_cycles.bins", -1.0, 0.0},
    {"latency_cycles", 0.10, 0.0},
    {"spans", 0.10, 500.0},
    // Schema v3: deterministic-mode runs must match these exactly; any
    // change in commit counts, abort causes, retry traffic, or the
    // fault schedule is a real behavioral regression, not jitter.
    {"robustness", 0.0, 0.0},
    // Schema v4: the sampled time-series compares bucket-wise. Bucket
    // boundaries and retired-work counts are deterministic, but the
    // per-bucket miss-derived values (model_cycles, ipc, stalls) are
    // noisier than whole-window averages — fewer events average the
    // placement jitter out. The convergence verdict is advisory.
    {"timeseries.sample_every", 0.0, 0.0},
    {"timeseries.convergence", -1.0, 0.0},
    {"timeseries", 0.10, 2.0},
    {"window.txn_module_breakdown", 0.05, 1000.0},
    // Schema v5: host-side metrics (wall-clock, refs/sec, RSS) measure
    // the simulator process, not the simulated machine — never
    // deterministic, never comparable. Use imoltp_compare for host
    // throughput trajectories.
    {"host", -1.0, 0.0},
    // Schema v7: checkpoint / recovery accounting. Capture cadence,
    // truncation counts, and replay/undo totals are deterministic in
    // serialized modes — any drift is a real behavioral change.
    {"recovery", 0.0, 0.0},
    // Schema v6: cluster documents. Outcome counts, fingerprints,
    // network accounting, and invariants are deterministic (same-seed
    // cluster runs are bit-identical) — exact. The per-node window
    // reports and throughput derive from the cycle model's
    // address-hashed miss counts, so they inherit the usual ASLR
    // jitter; they live under distinct key prefixes precisely so these
    // rules can hold everything else exact.
    {"cluster", 0.0, 0.0},
    {"cluster.windows", 0.10, 1000.0},
    {"cluster.max_window_cycles", 0.10, 0.0},
    {"cluster.throughput_per_mcycle", 0.10, 0.0},
    // Schema v8: distributed tracing. Trace COUNTS (traced, committed,
    // orphaned, stage counts, ring drops) stay under the exact
    // `cluster` rule above — they are part of the same-seed determinism
    // contract. Only the cycle-valued subtrees are tolerant: stage and
    // critical-path percentiles inherit the cycle model's ASLR jitter,
    // and the p99 composition shares are ratios of them (atol 0.05 on
    // a 0..1 share ≈ the windows rule's 1000-cycle floor).
    {"cluster.tracing.stages.cycles", 0.10, 2000.0},
    {"cluster.tracing.critical_path.cycles", 0.10, 2000.0},
    {"cluster.tracing.p99_composition", 0.10, 0.05},
    {"cluster.tracing.p99_net_order_share", 0.10, 0.05},
    {"sweep", 0.0, 0.0},
    {"sweep.perf", 0.10, 100.0},
};

bool PrefixMatches(const std::string& path, const std::string& prefix) {
  return prefix.empty() || path.compare(0, prefix.size(), prefix) == 0;
}

/// Longest matching user rule wins; then longest built-in; then the
/// default. Returns {rtol, atol}; negative rtol = ignore.
ToleranceRule RuleFor(const std::string& path, const Options& opts) {
  const ToleranceRule* best = nullptr;
  for (const ToleranceRule& r : opts.user_rules) {
    if (PrefixMatches(path, r.prefix) &&
        (best == nullptr || r.prefix.size() > best->prefix.size())) {
      best = &r;
    }
  }
  if (best != nullptr) return *best;
  for (const ToleranceRule& r : kBuiltinRules) {
    if (PrefixMatches(path, r.prefix) &&
        (best == nullptr || r.prefix.size() > best->prefix.size())) {
      best = &r;
    }
  }
  return best != nullptr ? *best
                         : ToleranceRule{"", opts.default_rtol, 0.0};
}

const char* TypeName(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

void Fail(std::vector<Failure>* failures, const std::string& path,
          const std::string& what) {
  failures->push_back(
      Failure{path.empty() ? std::string("<root>") : path, what});
}

std::string Join(const std::string& path, const std::string& key) {
  return path.empty() ? key : path + "." + key;
}

void Compare(const JsonValue& a, const JsonValue& b,
             const std::string& path, const Options& opts,
             std::vector<Failure>* failures) {
  const ToleranceRule rule = RuleFor(path, opts);
  const double rtol = rule.rtol;
  if (rtol < 0) return;  // ignored subtree

  if (a.type != b.type) {
    Fail(failures, path,
         std::string("type mismatch (") + TypeName(a.type) + " vs " +
             TypeName(b.type) + ")");
    return;
  }
  switch (a.type) {
    case JsonValue::Type::kNull:
      return;
    case JsonValue::Type::kBool:
      if (a.boolean != b.boolean) {
        Fail(failures, path,
             std::string("bool mismatch (") +
                 (a.boolean ? "true" : "false") + " vs " +
                 (b.boolean ? "true" : "false") + ")");
      }
      return;
    case JsonValue::Type::kString:
      if (a.string != b.string) {
        Fail(failures, path,
             "\"" + a.string + "\" vs \"" + b.string + "\"");
      }
      return;
    case JsonValue::Type::kNumber: {
      const double diff = std::fabs(a.number - b.number);
      const double scale =
          std::fmax(std::fabs(a.number), std::fabs(b.number));
      const bool ok =
          rtol == 0.0 && rule.atol == 0.0
              ? a.number == b.number
              : diff <= rtol * scale + rule.atol + 1e-12;
      if (!ok) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%.6g vs %.6g (rel %.4f > rtol %.4f, atol %g)",
                      a.number, b.number,
                      scale > 0 ? diff / scale : 0.0, rtol, rule.atol);
        Fail(failures, path, buf);
      }
      return;
    }
    case JsonValue::Type::kArray: {
      if (a.array.size() != b.array.size()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "array size %zu vs %zu",
                      a.array.size(), b.array.size());
        Fail(failures, path, buf);
        return;
      }
      for (size_t i = 0; i < a.array.size(); ++i) {
        char idx[24];
        std::snprintf(idx, sizeof(idx), "[%zu]", i);
        Compare(a.array[i], b.array[i], path + idx, opts, failures);
      }
      return;
    }
    case JsonValue::Type::kObject: {
      for (const auto& [key, av] : a.object) {
        const JsonValue* bv = b.Find(key);
        if (bv == nullptr) {
          if (RuleFor(Join(path, key), opts).rtol >= 0) {
            Fail(failures, Join(path, key), "missing in candidate");
          }
          continue;
        }
        Compare(av, *bv, Join(path, key), opts, failures);
      }
      for (const auto& [key, bv] : b.object) {
        (void)bv;
        if (a.Find(key) == nullptr &&
            RuleFor(Join(path, key), opts).rtol >= 0) {
          Fail(failures, Join(path, key), "missing in baseline");
        }
      }
      return;
    }
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rtol=X] [--metric-rtol=PREFIX=X]... "
               "[--ignore=PREFIX]... [--json] "
               "baseline.json candidate.json\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = "read error on " + path;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rtol=", 0) == 0) {
      char* end = nullptr;
      opts.default_rtol = std::strtod(arg.c_str() + 7, &end);
      if (end == nullptr || *end != '\0' || opts.default_rtol < 0) {
        std::fprintf(stderr, "%s: bad --rtol value\n", argv[0]);
        return 2;
      }
    } else if (arg.rfind("--metric-rtol=", 0) == 0) {
      const std::string spec = arg.substr(14);
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "%s: --metric-rtol needs PREFIX=X, got '%s'\n",
                     argv[0], spec.c_str());
        return 2;
      }
      char* end = nullptr;
      const double rtol = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == nullptr || *end != '\0' || rtol < 0) {
        std::fprintf(stderr, "%s: bad --metric-rtol value in '%s'\n",
                     argv[0], spec.c_str());
        return 2;
      }
      opts.user_rules.push_back({spec.substr(0, eq), rtol});
    } else if (arg.rfind("--ignore=", 0) == 0) {
      opts.user_rules.push_back({arg.substr(9), -1.0});
    } else if (arg == "--json") {
      opts.json_output = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage(argv[0]);
  opts.baseline_path = positional[0];
  opts.candidate_path = positional[1];

  std::string base_text, cand_text, error;
  if (!ReadFile(opts.baseline_path, &base_text, &error) ||
      !ReadFile(opts.candidate_path, &cand_text, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 2;
  }
  auto base = ParseJson(base_text);
  if (!base.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                 opts.baseline_path.c_str(),
                 base.status().ToString().c_str());
    return 2;
  }
  auto cand = ParseJson(cand_text);
  if (!cand.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                 opts.candidate_path.c_str(),
                 cand.status().ToString().c_str());
    return 2;
  }

  // Incomparable schemas are a usage error, not a metric drift.
  const JsonValue* bv = base.value().Find("schema_version");
  const JsonValue* cv = cand.value().Find("schema_version");
  if (bv != nullptr && cv != nullptr && bv->is_number() &&
      cv->is_number() && bv->number != cv->number) {
    std::fprintf(stderr,
                 "%s: schema_version mismatch (%.0f vs %.0f); reports "
                 "are not comparable\n",
                 argv[0], bv->number, cv->number);
    return 2;
  }

  // Replayed reports (imoltp_trace replay --json) carry the window
  // metrics but no engine-side sections; don't flag those as missing.
  // Appended after the flag rules so an explicit --metric-rtol/--ignore
  // of the same prefix still wins.
  const auto is_replayed = [](const JsonValue& doc) {
    const JsonValue* meta = doc.Find("meta");
    const JsonValue* trace = meta != nullptr ? meta->Find("trace") : nullptr;
    const JsonValue* rep =
        trace != nullptr ? trace->Find("replayed") : nullptr;
    return rep != nullptr && rep->type == JsonValue::Type::kBool &&
           rep->boolean;
  };
  if (is_replayed(base.value()) || is_replayed(cand.value())) {
    opts.user_rules.push_back({"latency_cycles", -1.0, 0.0});
    opts.user_rules.push_back({"spans", -1.0, 0.0});
    opts.user_rules.push_back({"robustness", -1.0, 0.0});
    opts.user_rules.push_back({"timeseries", -1.0, 0.0});
    opts.user_rules.push_back({"window.txn_module_breakdown", -1.0, 0.0});
  }

  std::vector<Failure> failures;
  Compare(base.value(), cand.value(), "", opts, &failures);

  if (opts.json_output) {
    imoltp::obs::JsonWriter w;
    w.BeginObject();
    w.KeyValue("verdict", failures.empty() ? "ok" : "drift");
    w.KeyValue("baseline", opts.baseline_path);
    w.KeyValue("candidate", opts.candidate_path);
    w.KeyValue("default_rtol", opts.default_rtol);
    w.KeyValue("failure_count",
               static_cast<uint64_t>(failures.size()));
    w.Key("failures");
    w.BeginArray();
    for (const Failure& f : failures) {
      w.BeginObject();
      w.KeyValue("path", f.path);
      w.KeyValue("detail", f.detail);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return failures.empty() ? 0 : 1;
  }

  if (failures.empty()) {
    std::printf("OK: %s and %s match within tolerance\n",
                opts.baseline_path.c_str(), opts.candidate_path.c_str());
    return 0;
  }
  for (const Failure& f : failures) {
    std::fprintf(stderr, "DRIFT %s: %s\n", f.path.c_str(),
                 f.detail.c_str());
  }
  std::fprintf(stderr, "%zu metric(s) drifted beyond tolerance\n",
               failures.size());
  return 1;
}
