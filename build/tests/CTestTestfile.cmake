# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/core_sim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/energy_report_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/secondary_index_test[1]_include.cmake")
include("/root/repo/build/tests/prefetcher_test[1]_include.cmake")
