file(REMOVE_RECURSE
  "CMakeFiles/machine_profiler_test.dir/machine_profiler_test.cc.o"
  "CMakeFiles/machine_profiler_test.dir/machine_profiler_test.cc.o.d"
  "machine_profiler_test"
  "machine_profiler_test.pdb"
  "machine_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
