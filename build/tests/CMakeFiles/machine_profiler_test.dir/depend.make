# Empty dependencies file for machine_profiler_test.
# This may be replaced when dependencies are built.
