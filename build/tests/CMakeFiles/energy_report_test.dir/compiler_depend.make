# Empty compiler generated dependencies file for energy_report_test.
# This may be replaced when dependencies are built.
