file(REMOVE_RECURSE
  "CMakeFiles/energy_report_test.dir/energy_report_test.cc.o"
  "CMakeFiles/energy_report_test.dir/energy_report_test.cc.o.d"
  "energy_report_test"
  "energy_report_test.pdb"
  "energy_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
