
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/cache_test.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/cache_test.dir/cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/imoltp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/imoltp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imoltp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/imoltp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/imoltp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
