# Empty compiler generated dependencies file for core_sim_test.
# This may be replaced when dependencies are built.
