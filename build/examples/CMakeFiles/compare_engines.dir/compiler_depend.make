# Empty compiler generated dependencies file for compare_engines.
# This may be replaced when dependencies are built.
