file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_tpcb.dir/fig08_09_tpcb.cc.o"
  "CMakeFiles/fig08_09_tpcb.dir/fig08_09_tpcb.cc.o.d"
  "fig08_09_tpcb"
  "fig08_09_tpcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_tpcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
