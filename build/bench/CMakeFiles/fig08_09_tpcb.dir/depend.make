# Empty dependencies file for fig08_09_tpcb.
# This may be replaced when dependencies are built.
