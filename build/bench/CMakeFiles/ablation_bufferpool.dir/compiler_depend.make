# Empty compiler generated dependencies file for ablation_bufferpool.
# This may be replaced when dependencies are built.
