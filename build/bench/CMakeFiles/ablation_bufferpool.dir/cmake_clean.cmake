file(REMOVE_RECURSE
  "CMakeFiles/ablation_bufferpool.dir/ablation_bufferpool.cc.o"
  "CMakeFiles/ablation_bufferpool.dir/ablation_bufferpool.cc.o.d"
  "ablation_bufferpool"
  "ablation_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
