file(REMOVE_RECURSE
  "CMakeFiles/ablation_voltdb_singlesite.dir/ablation_voltdb_singlesite.cc.o"
  "CMakeFiles/ablation_voltdb_singlesite.dir/ablation_voltdb_singlesite.cc.o.d"
  "ablation_voltdb_singlesite"
  "ablation_voltdb_singlesite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_voltdb_singlesite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
