# Empty compiler generated dependencies file for ablation_voltdb_singlesite.
# This may be replaced when dependencies are built.
