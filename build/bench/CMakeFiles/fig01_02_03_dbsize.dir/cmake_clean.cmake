file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_03_dbsize.dir/fig01_02_03_dbsize.cc.o"
  "CMakeFiles/fig01_02_03_dbsize.dir/fig01_02_03_dbsize.cc.o.d"
  "fig01_02_03_dbsize"
  "fig01_02_03_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_03_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
