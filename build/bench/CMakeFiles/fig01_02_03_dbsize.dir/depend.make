# Empty dependencies file for fig01_02_03_dbsize.
# This may be replaced when dependencies are built.
