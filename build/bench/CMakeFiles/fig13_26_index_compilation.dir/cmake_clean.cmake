file(REMOVE_RECURSE
  "CMakeFiles/fig13_26_index_compilation.dir/fig13_26_index_compilation.cc.o"
  "CMakeFiles/fig13_26_index_compilation.dir/fig13_26_index_compilation.cc.o.d"
  "fig13_26_index_compilation"
  "fig13_26_index_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_26_index_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
