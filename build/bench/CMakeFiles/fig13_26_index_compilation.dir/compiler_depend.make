# Empty compiler generated dependencies file for fig13_26_index_compilation.
# This may be replaced when dependencies are built.
