# Empty compiler generated dependencies file for ablation_cycle_model.
# This may be replaced when dependencies are built.
