file(REMOVE_RECURSE
  "CMakeFiles/ablation_cycle_model.dir/ablation_cycle_model.cc.o"
  "CMakeFiles/ablation_cycle_model.dir/ablation_cycle_model.cc.o.d"
  "ablation_cycle_model"
  "ablation_cycle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cycle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
