# Empty dependencies file for ablation_btree_nodesize.
# This may be replaced when dependencies are built.
