file(REMOVE_RECURSE
  "CMakeFiles/ablation_btree_nodesize.dir/ablation_btree_nodesize.cc.o"
  "CMakeFiles/ablation_btree_nodesize.dir/ablation_btree_nodesize.cc.o.d"
  "ablation_btree_nodesize"
  "ablation_btree_nodesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btree_nodesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
