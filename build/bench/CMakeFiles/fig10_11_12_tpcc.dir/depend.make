# Empty dependencies file for fig10_11_12_tpcc.
# This may be replaced when dependencies are built.
