file(REMOVE_RECURSE
  "CMakeFiles/fig10_11_12_tpcc.dir/fig10_11_12_tpcc.cc.o"
  "CMakeFiles/fig10_11_12_tpcc.dir/fig10_11_12_tpcc.cc.o.d"
  "fig10_11_12_tpcc"
  "fig10_11_12_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_11_12_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
