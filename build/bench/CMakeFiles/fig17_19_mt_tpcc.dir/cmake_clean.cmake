file(REMOVE_RECURSE
  "CMakeFiles/fig17_19_mt_tpcc.dir/fig17_19_mt_tpcc.cc.o"
  "CMakeFiles/fig17_19_mt_tpcc.dir/fig17_19_mt_tpcc.cc.o.d"
  "fig17_19_mt_tpcc"
  "fig17_19_mt_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_19_mt_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
