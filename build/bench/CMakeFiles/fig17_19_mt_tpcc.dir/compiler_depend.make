# Empty compiler generated dependencies file for fig17_19_mt_tpcc.
# This may be replaced when dependencies are built.
