# Empty compiler generated dependencies file for fig14_index_compilation_tpcc.
# This may be replaced when dependencies are built.
