file(REMOVE_RECURSE
  "CMakeFiles/fig14_index_compilation_tpcc.dir/fig14_index_compilation_tpcc.cc.o"
  "CMakeFiles/fig14_index_compilation_tpcc.dir/fig14_index_compilation_tpcc.cc.o.d"
  "fig14_index_compilation_tpcc"
  "fig14_index_compilation_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_index_compilation_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
