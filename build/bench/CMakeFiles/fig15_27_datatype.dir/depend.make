# Empty dependencies file for fig15_27_datatype.
# This may be replaced when dependencies are built.
