file(REMOVE_RECURSE
  "CMakeFiles/fig15_27_datatype.dir/fig15_27_datatype.cc.o"
  "CMakeFiles/fig15_27_datatype.dir/fig15_27_datatype.cc.o.d"
  "fig15_27_datatype"
  "fig15_27_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_27_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
