file(REMOVE_RECURSE
  "CMakeFiles/perf_cache_sim.dir/perf_cache_sim.cc.o"
  "CMakeFiles/perf_cache_sim.dir/perf_cache_sim.cc.o.d"
  "perf_cache_sim"
  "perf_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
