# Empty dependencies file for perf_cache_sim.
# This may be replaced when dependencies are built.
