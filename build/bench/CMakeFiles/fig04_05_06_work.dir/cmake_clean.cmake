file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_06_work.dir/fig04_05_06_work.cc.o"
  "CMakeFiles/fig04_05_06_work.dir/fig04_05_06_work.cc.o.d"
  "fig04_05_06_work"
  "fig04_05_06_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_06_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
