# Empty dependencies file for fig04_05_06_work.
# This may be replaced when dependencies are built.
