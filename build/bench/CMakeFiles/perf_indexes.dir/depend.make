# Empty dependencies file for perf_indexes.
# This may be replaced when dependencies are built.
