file(REMOVE_RECURSE
  "CMakeFiles/perf_indexes.dir/perf_indexes.cc.o"
  "CMakeFiles/perf_indexes.dir/perf_indexes.cc.o.d"
  "perf_indexes"
  "perf_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
