file(REMOVE_RECURSE
  "CMakeFiles/fig16_18_mt_micro.dir/fig16_18_mt_micro.cc.o"
  "CMakeFiles/fig16_18_mt_micro.dir/fig16_18_mt_micro.cc.o.d"
  "fig16_18_mt_micro"
  "fig16_18_mt_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_18_mt_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
