# Empty dependencies file for fig16_18_mt_micro.
# This may be replaced when dependencies are built.
