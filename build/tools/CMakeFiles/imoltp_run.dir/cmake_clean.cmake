file(REMOVE_RECURSE
  "CMakeFiles/imoltp_run.dir/imoltp_run.cc.o"
  "CMakeFiles/imoltp_run.dir/imoltp_run.cc.o.d"
  "imoltp_run"
  "imoltp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
