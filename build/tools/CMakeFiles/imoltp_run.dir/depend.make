# Empty dependencies file for imoltp_run.
# This may be replaced when dependencies are built.
