file(REMOVE_RECURSE
  "libimoltp_index.a"
)
