file(REMOVE_RECURSE
  "CMakeFiles/imoltp_index.dir/art.cc.o"
  "CMakeFiles/imoltp_index.dir/art.cc.o.d"
  "CMakeFiles/imoltp_index.dir/btree.cc.o"
  "CMakeFiles/imoltp_index.dir/btree.cc.o.d"
  "CMakeFiles/imoltp_index.dir/hash_index.cc.o"
  "CMakeFiles/imoltp_index.dir/hash_index.cc.o.d"
  "CMakeFiles/imoltp_index.dir/index_factory.cc.o"
  "CMakeFiles/imoltp_index.dir/index_factory.cc.o.d"
  "libimoltp_index.a"
  "libimoltp_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
