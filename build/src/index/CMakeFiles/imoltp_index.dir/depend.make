# Empty dependencies file for imoltp_index.
# This may be replaced when dependencies are built.
