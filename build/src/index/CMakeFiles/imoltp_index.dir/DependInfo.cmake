
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/art.cc" "src/index/CMakeFiles/imoltp_index.dir/art.cc.o" "gcc" "src/index/CMakeFiles/imoltp_index.dir/art.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/index/CMakeFiles/imoltp_index.dir/btree.cc.o" "gcc" "src/index/CMakeFiles/imoltp_index.dir/btree.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "src/index/CMakeFiles/imoltp_index.dir/hash_index.cc.o" "gcc" "src/index/CMakeFiles/imoltp_index.dir/hash_index.cc.o.d"
  "/root/repo/src/index/index_factory.cc" "src/index/CMakeFiles/imoltp_index.dir/index_factory.cc.o" "gcc" "src/index/CMakeFiles/imoltp_index.dir/index_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
