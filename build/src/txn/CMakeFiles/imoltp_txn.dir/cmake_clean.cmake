file(REMOVE_RECURSE
  "CMakeFiles/imoltp_txn.dir/lock_manager.cc.o"
  "CMakeFiles/imoltp_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/imoltp_txn.dir/log_manager.cc.o"
  "CMakeFiles/imoltp_txn.dir/log_manager.cc.o.d"
  "CMakeFiles/imoltp_txn.dir/mvcc.cc.o"
  "CMakeFiles/imoltp_txn.dir/mvcc.cc.o.d"
  "libimoltp_txn.a"
  "libimoltp_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
