# Empty dependencies file for imoltp_txn.
# This may be replaced when dependencies are built.
