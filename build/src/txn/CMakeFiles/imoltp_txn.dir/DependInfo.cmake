
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/imoltp_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/imoltp_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/log_manager.cc" "src/txn/CMakeFiles/imoltp_txn.dir/log_manager.cc.o" "gcc" "src/txn/CMakeFiles/imoltp_txn.dir/log_manager.cc.o.d"
  "/root/repo/src/txn/mvcc.cc" "src/txn/CMakeFiles/imoltp_txn.dir/mvcc.cc.o" "gcc" "src/txn/CMakeFiles/imoltp_txn.dir/mvcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
