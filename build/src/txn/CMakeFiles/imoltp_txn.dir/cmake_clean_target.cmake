file(REMOVE_RECURSE
  "libimoltp_txn.a"
)
