# Empty compiler generated dependencies file for imoltp_core.
# This may be replaced when dependencies are built.
