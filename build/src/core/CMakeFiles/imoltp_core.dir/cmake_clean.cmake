file(REMOVE_RECURSE
  "CMakeFiles/imoltp_core.dir/experiment.cc.o"
  "CMakeFiles/imoltp_core.dir/experiment.cc.o.d"
  "CMakeFiles/imoltp_core.dir/microbench.cc.o"
  "CMakeFiles/imoltp_core.dir/microbench.cc.o.d"
  "CMakeFiles/imoltp_core.dir/report.cc.o"
  "CMakeFiles/imoltp_core.dir/report.cc.o.d"
  "CMakeFiles/imoltp_core.dir/tpcb.cc.o"
  "CMakeFiles/imoltp_core.dir/tpcb.cc.o.d"
  "CMakeFiles/imoltp_core.dir/tpcc.cc.o"
  "CMakeFiles/imoltp_core.dir/tpcc.cc.o.d"
  "libimoltp_core.a"
  "libimoltp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
