
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/imoltp_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/imoltp_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/microbench.cc" "src/core/CMakeFiles/imoltp_core.dir/microbench.cc.o" "gcc" "src/core/CMakeFiles/imoltp_core.dir/microbench.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/imoltp_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/imoltp_core.dir/report.cc.o.d"
  "/root/repo/src/core/tpcb.cc" "src/core/CMakeFiles/imoltp_core.dir/tpcb.cc.o" "gcc" "src/core/CMakeFiles/imoltp_core.dir/tpcb.cc.o.d"
  "/root/repo/src/core/tpcc.cc" "src/core/CMakeFiles/imoltp_core.dir/tpcc.cc.o" "gcc" "src/core/CMakeFiles/imoltp_core.dir/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/imoltp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imoltp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/imoltp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/imoltp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
