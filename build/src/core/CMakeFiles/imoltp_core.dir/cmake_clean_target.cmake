file(REMOVE_RECURSE
  "libimoltp_core.a"
)
