file(REMOVE_RECURSE
  "CMakeFiles/imoltp_engine.dir/disk_engine.cc.o"
  "CMakeFiles/imoltp_engine.dir/disk_engine.cc.o.d"
  "CMakeFiles/imoltp_engine.dir/engine_base.cc.o"
  "CMakeFiles/imoltp_engine.dir/engine_base.cc.o.d"
  "CMakeFiles/imoltp_engine.dir/engine_factory.cc.o"
  "CMakeFiles/imoltp_engine.dir/engine_factory.cc.o.d"
  "CMakeFiles/imoltp_engine.dir/mvcc_engine.cc.o"
  "CMakeFiles/imoltp_engine.dir/mvcc_engine.cc.o.d"
  "CMakeFiles/imoltp_engine.dir/partitioned_engine.cc.o"
  "CMakeFiles/imoltp_engine.dir/partitioned_engine.cc.o.d"
  "libimoltp_engine.a"
  "libimoltp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
