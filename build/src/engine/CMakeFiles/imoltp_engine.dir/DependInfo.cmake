
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/disk_engine.cc" "src/engine/CMakeFiles/imoltp_engine.dir/disk_engine.cc.o" "gcc" "src/engine/CMakeFiles/imoltp_engine.dir/disk_engine.cc.o.d"
  "/root/repo/src/engine/engine_base.cc" "src/engine/CMakeFiles/imoltp_engine.dir/engine_base.cc.o" "gcc" "src/engine/CMakeFiles/imoltp_engine.dir/engine_base.cc.o.d"
  "/root/repo/src/engine/engine_factory.cc" "src/engine/CMakeFiles/imoltp_engine.dir/engine_factory.cc.o" "gcc" "src/engine/CMakeFiles/imoltp_engine.dir/engine_factory.cc.o.d"
  "/root/repo/src/engine/mvcc_engine.cc" "src/engine/CMakeFiles/imoltp_engine.dir/mvcc_engine.cc.o" "gcc" "src/engine/CMakeFiles/imoltp_engine.dir/mvcc_engine.cc.o.d"
  "/root/repo/src/engine/partitioned_engine.cc" "src/engine/CMakeFiles/imoltp_engine.dir/partitioned_engine.cc.o" "gcc" "src/engine/CMakeFiles/imoltp_engine.dir/partitioned_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imoltp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/imoltp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/imoltp_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
