file(REMOVE_RECURSE
  "libimoltp_engine.a"
)
