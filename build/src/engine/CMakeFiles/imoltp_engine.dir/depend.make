# Empty dependencies file for imoltp_engine.
# This may be replaced when dependencies are built.
