
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcsim/cache.cc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/cache.cc.o" "gcc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/cache.cc.o.d"
  "/root/repo/src/mcsim/core.cc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/core.cc.o" "gcc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/core.cc.o.d"
  "/root/repo/src/mcsim/machine.cc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/machine.cc.o" "gcc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/machine.cc.o.d"
  "/root/repo/src/mcsim/profiler.cc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/profiler.cc.o" "gcc" "src/mcsim/CMakeFiles/imoltp_mcsim.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
