file(REMOVE_RECURSE
  "libimoltp_mcsim.a"
)
