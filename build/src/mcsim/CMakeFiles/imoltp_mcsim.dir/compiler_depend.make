# Empty compiler generated dependencies file for imoltp_mcsim.
# This may be replaced when dependencies are built.
