file(REMOVE_RECURSE
  "CMakeFiles/imoltp_mcsim.dir/cache.cc.o"
  "CMakeFiles/imoltp_mcsim.dir/cache.cc.o.d"
  "CMakeFiles/imoltp_mcsim.dir/core.cc.o"
  "CMakeFiles/imoltp_mcsim.dir/core.cc.o.d"
  "CMakeFiles/imoltp_mcsim.dir/machine.cc.o"
  "CMakeFiles/imoltp_mcsim.dir/machine.cc.o.d"
  "CMakeFiles/imoltp_mcsim.dir/profiler.cc.o"
  "CMakeFiles/imoltp_mcsim.dir/profiler.cc.o.d"
  "libimoltp_mcsim.a"
  "libimoltp_mcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_mcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
