
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/imoltp_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/imoltp_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_heap_file.cc" "src/storage/CMakeFiles/imoltp_storage.dir/disk_heap_file.cc.o" "gcc" "src/storage/CMakeFiles/imoltp_storage.dir/disk_heap_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/storage/CMakeFiles/imoltp_storage.dir/slotted_page.cc.o" "gcc" "src/storage/CMakeFiles/imoltp_storage.dir/slotted_page.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/imoltp_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/imoltp_storage.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcsim/CMakeFiles/imoltp_mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
