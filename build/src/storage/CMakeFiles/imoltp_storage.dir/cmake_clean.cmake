file(REMOVE_RECURSE
  "CMakeFiles/imoltp_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/imoltp_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/imoltp_storage.dir/disk_heap_file.cc.o"
  "CMakeFiles/imoltp_storage.dir/disk_heap_file.cc.o.d"
  "CMakeFiles/imoltp_storage.dir/slotted_page.cc.o"
  "CMakeFiles/imoltp_storage.dir/slotted_page.cc.o.d"
  "CMakeFiles/imoltp_storage.dir/table.cc.o"
  "CMakeFiles/imoltp_storage.dir/table.cc.o.d"
  "libimoltp_storage.a"
  "libimoltp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imoltp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
