file(REMOVE_RECURSE
  "libimoltp_storage.a"
)
