# Empty dependencies file for imoltp_storage.
# This may be replaced when dependencies are built.
