// The paper's headline experiment as a short program: run the same
// micro-benchmark on all five engine archetypes at two database sizes
// and watch the crossover — the compiled in-memory engine is ~2x faster
// per instruction when data fits in the LLC and the slowest when it
// doesn't, while no engine comes close to the 4-wide issue width.
//
//   ./compare_engines [small-mb] [huge-gb]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/microbench.h"
#include "common/format.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace imoltp;

  const uint64_t small_mb =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const uint64_t huge_gb =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;

  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kShoreMt, engine::EngineKind::kDbmsD,
      engine::EngineKind::kVoltDb, engine::EngineKind::kHyPer,
      engine::EngineKind::kDbmsM};

  for (uint64_t nominal :
       {small_mb << 20, huge_gb << 30}) {
    std::vector<core::ReportRow> rows;
    for (engine::EngineKind kind : kEngines) {
      core::MicroConfig mcfg;
      mcfg.nominal_bytes = nominal;
      core::MicroBenchmark workload(mcfg);

      core::ExperimentConfig cfg;
      cfg.engine = kind;
      const auto report = core::RunExperiment(cfg, &workload);
      if (!report.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      rows.push_back({engine::EngineKindName(kind), *report});
    }
    std::printf("\n########## database size: %s ##########\n",
                imoltp::FormatBytes(nominal).c_str());
    core::PrintIpc("All engines, micro-benchmark (read-only, 1 row)",
                   rows);
    core::PrintStallsPerKInstr("Where the cycles go", rows);
  }

  std::printf(
      "\nThe paper's conclusion, reproduced: despite lighter storage\n"
      "managers, in-memory OLTP under-utilizes the core just like\n"
      "disk-based OLTP — the stalls only move from the L1I to the LLC.\n");
  return 0;
}
