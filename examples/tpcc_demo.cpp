// TPC-C end to end: populate a wholesale-supplier database, run the
// standard five-transaction mix on a disk-based and an in-memory engine,
// verify the TPC-C consistency conditions, and compare the profiles.
//
//   ./tpcc_demo [warehouses]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/report.h"
#include "core/tpcc.h"

using namespace imoltp;

namespace {

// TPC-C consistency condition (clause 3.3.2.1): for every warehouse,
// W_YTD equals the sum of its districts' D_YTD.
bool CheckConsistency(engine::Engine* engine,
                      const core::TpccConfig& cfg) {
  using core::TpccBenchmark;
  engine::TxnRequest req;
  req.key_space = cfg.warehouses;
  bool ok = true;
  const Status s = engine->Execute(0, req, [&](engine::TxnContext& ctx) {
    const storage::Schema wsch({storage::ColumnType::kLong,
                                storage::ColumnType::kLong,
                                storage::ColumnType::kString});
    const storage::Schema dsch(
        {storage::ColumnType::kLong, storage::ColumnType::kLong,
         storage::ColumnType::kLong, storage::ColumnType::kString});
    uint8_t row[160];
    for (int w = 0; w < cfg.warehouses; ++w) {
      storage::RowId rid;
      Status st = ctx.Probe(TpccBenchmark::kWarehouse,
                            index::Key::FromUint64(w), &rid);
      if (!st.ok()) return st;
      st = ctx.Read(TpccBenchmark::kWarehouse, rid, row);
      if (!st.ok()) return st;
      const int64_t w_ytd = wsch.GetLong(row, 1);
      int64_t d_sum = 0;
      for (uint64_t d = 0; d < TpccBenchmark::kDistrictsPerWarehouse;
           ++d) {
        st = ctx.Probe(
            TpccBenchmark::kDistrict,
            index::Key::FromUint64(TpccBenchmark::DistrictKey(w, d)),
            &rid);
        if (!st.ok()) return st;
        st = ctx.Read(TpccBenchmark::kDistrict, rid, row);
        if (!st.ok()) return st;
        d_sum += dsch.GetLong(row, 1);
      }
      if (w_ytd != d_sum) ok = false;
    }
    return Status::Ok();
  });
  return s.ok() && ok;
}

}  // namespace

int main(int argc, char** argv) {
  core::TpccConfig tcfg;
  tcfg.warehouses = argc > 1 ? std::atoi(argv[1]) : 4;
  tcfg.orders_per_district = 300;

  std::vector<core::ReportRow> rows;
  for (engine::EngineKind kind :
       {engine::EngineKind::kShoreMt, engine::EngineKind::kHyPer}) {
    core::TpccBenchmark workload(tcfg);
    core::ExperimentConfig cfg;
    cfg.engine = kind;
    cfg.warmup_txns = 300;
    cfg.measure_txns = 1500;
    cfg.engine_options.dbms_m_index = index::IndexKind::kBTreeCc;

    std::printf("populating %d warehouses on %s...\n", tcfg.warehouses,
                engine::EngineKindName(kind));
    auto created = core::ExperimentRunner::Create(cfg, &workload);
    if (!created.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    core::ExperimentRunner& runner = **created;
    const auto run = runner.Run(&workload);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    const mcsim::WindowReport report = *run;
    rows.push_back({engine::EngineKindName(kind), report});

    const auto mix = workload.mix_counts();
    std::printf(
        "  mix: %llu new-order, %llu payment, %llu order-status, "
        "%llu delivery, %llu stock-level\n",
        static_cast<unsigned long long>(mix.new_order),
        static_cast<unsigned long long>(mix.payment),
        static_cast<unsigned long long>(mix.order_status),
        static_cast<unsigned long long>(mix.delivery),
        static_cast<unsigned long long>(mix.stock_level));
    std::printf("  consistency (W_YTD == sum D_YTD): %s\n",
                CheckConsistency(runner.engine(), tcfg) ? "PASS"
                                                        : "FAIL");
  }

  core::PrintIpc("TPC-C standard mix", rows);
  core::PrintStallsPerKInstr("TPC-C standard mix", rows);
  return 0;
}
