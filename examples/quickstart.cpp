// Quickstart: profile one OLTP engine archetype on the paper's
// micro-benchmark and print the metrics the paper reports — IPC and the
// memory-stall breakdown per level of the cache hierarchy.
//
//   ./quickstart [engine] [db-size-mb] [rows-per-txn]
//
// engine: shore-mt | dbms-d | voltdb | hyper | dbms-m   (default hyper)

#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/report.h"

namespace {

imoltp::engine::EngineKind ParseEngine(const char* s) {
  using imoltp::engine::EngineKind;
  if (std::strcmp(s, "shore-mt") == 0) return EngineKind::kShoreMt;
  if (std::strcmp(s, "dbms-d") == 0) return EngineKind::kDbmsD;
  if (std::strcmp(s, "voltdb") == 0) return EngineKind::kVoltDb;
  if (std::strcmp(s, "dbms-m") == 0) return EngineKind::kDbmsM;
  return EngineKind::kHyPer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imoltp;

  const engine::EngineKind kind =
      ParseEngine(argc > 1 ? argv[1] : "hyper");
  const uint64_t mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const int rows = argc > 3 ? std::atoi(argv[3]) : 1;

  // 1. Describe the workload: the paper's two-column micro-benchmark.
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = mb << 20;
  mcfg.rows_per_txn = rows;
  core::MicroBenchmark workload(mcfg);

  // 2. Pick the engine archetype and run: populate, warm up, measure.
  core::ExperimentConfig cfg;
  cfg.engine = kind;
  auto runner = core::ExperimentRunner::Create(cfg, &workload);
  if (!runner.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 runner.status().ToString().c_str());
    return 1;
  }
  const auto run = (*runner)->Run(&workload);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const mcsim::WindowReport report = *run;

  // 3. Read the counters like a VTune session.
  std::printf("engine           : %s\n", (*runner)->engine()->name());
  std::printf("database         : %lluMB (%llu rows)\n",
              static_cast<unsigned long long>(mb),
              static_cast<unsigned long long>(workload.num_rows()));
  std::printf("transactions     : %.0f\n", report.transactions);
  std::printf("IPC              : %.2f  (4-wide core)\n", report.ipc);
  std::printf("instructions/txn : %.0f\n", report.instructions_per_txn);
  std::printf("cycles/txn       : %.0f\n", report.cycles_per_txn);

  core::ReportRow row{"micro-benchmark", report};
  core::PrintStallsPerKInstr("Stalls", {row});
  core::PrintStallsPerTxn("Stalls", {row});
  core::PrintCycleAccounting("Top-down view", {row});
  core::PrintModuleBreakdown("Where cycles go", row);
  return 0;
}
