// Extending the framework: define your own workload against the public
// API and profile it on any engine archetype. This one is a small
// YCSB-flavored session-store mix — 80% point reads, 15% updates,
// 5% short range scans over a secondary "session" table — something the
// paper never measured, running on apparatus the paper describes.
//
//   ./custom_workload [engine] [db-size-mb]

#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "core/report.h"
#include "core/workload.h"

using namespace imoltp;

namespace {

class SessionStoreWorkload final : public core::Workload {
 public:
  SessionStoreWorkload(uint64_t nominal_bytes, uint64_t max_rows)
      : nominal_bytes_(nominal_bytes) {
    num_rows_ = nominal_bytes / 96;
    if (num_rows_ > max_rows) num_rows_ = max_rows;
  }

  const char* name() const override { return "session-store"; }

  std::vector<engine::TableDef> Tables() const override {
    engine::TableDef sessions;
    sessions.name = "sessions";
    sessions.schema = storage::Schema({storage::ColumnType::kLong,
                                       storage::ColumnType::kLong,
                                       storage::ColumnType::kString});
    sessions.initial_rows = num_rows_;
    sessions.nominal_bytes = nominal_bytes_;
    sessions.seed = 21;
    sessions.needs_ordered_index = true;  // scans below
    return {sessions};
  }

  Status RunTransaction(engine::Engine* engine, int worker,
                        Rng* rng) override {
    const uint64_t key = rng->Uniform(num_rows_);
    const uint64_t roll = rng->Uniform(100);
    engine::TxnRequest req;
    req.type = roll < 80 ? 1 : (roll < 95 ? 2 : 3);
    req.partition_key = key;
    req.key_space = num_rows_;
    req.statements = 1;

    return engine->Execute(worker, req, [&](engine::TxnContext& ctx) {
      uint8_t row[128];
      if (roll < 80) {  // point read
        storage::RowId rid;
        Status s = ctx.Probe(0, index::Key::FromUint64(key), &rid);
        if (!s.ok()) return s;
        return ctx.Read(0, rid, row);
      }
      if (roll < 95) {  // heartbeat update
        storage::RowId rid;
        Status s = ctx.Probe(0, index::Key::FromUint64(key), &rid);
        if (!s.ok()) return s;
        s = ctx.Read(0, rid, row);
        if (!s.ok()) return s;
        const int64_t now = static_cast<int64_t>(rng->Next());
        return ctx.Update(0, rid, 1, &now);
      }
      // Short scan: the next 16 sessions by key.
      std::vector<storage::RowId> rids;
      Status s = ctx.Scan(0, index::Key::FromUint64(key), 16, &rids);
      if (!s.ok()) return s;
      for (storage::RowId r : rids) {
        s = ctx.Read(0, r, row);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    });
  }

 private:
  uint64_t nominal_bytes_;
  uint64_t num_rows_;
};

engine::EngineKind ParseEngine(const char* s) {
  using engine::EngineKind;
  if (std::strcmp(s, "shore-mt") == 0) return EngineKind::kShoreMt;
  if (std::strcmp(s, "dbms-d") == 0) return EngineKind::kDbmsD;
  if (std::strcmp(s, "hyper") == 0) return EngineKind::kHyPer;
  if (std::strcmp(s, "dbms-m") == 0) return EngineKind::kDbmsM;
  return EngineKind::kVoltDb;
}

}  // namespace

int main(int argc, char** argv) {
  const engine::EngineKind kind =
      ParseEngine(argc > 1 ? argv[1] : "voltdb");
  const uint64_t mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  SessionStoreWorkload workload(mb << 20, 2'000'000);
  core::ExperimentConfig cfg;
  cfg.engine = kind;
  const auto run = core::RunExperiment(cfg, &workload);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const mcsim::WindowReport report = *run;

  core::ReportRow row{std::string(engine::EngineKindName(kind)) + " " +
                          std::to_string(mb) + "MB",
                      report};
  core::PrintIpc("Custom session-store workload (80r/15u/5scan)", {row});
  core::PrintStallsPerKInstr("Custom session-store workload", {row});
  core::PrintModuleBreakdown("Cycle attribution", row);
  return 0;
}
