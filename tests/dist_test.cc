// Tests for the src/dist cluster layer: ownership mapping, seed
// derivation, forwarder classification, global ordering, whole-cluster
// determinism (same-seed runs fingerprint bit-identical), the
// throughput-vs-multi-home relationship, and node-death chaos with
// recovery + cross-node invariants.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/seed.h"
#include "dist/cluster.h"
#include "dist/cluster_invariants.h"
#include "dist/forwarder.h"
#include "dist/global_order.h"
#include "dist/message.h"
#include "txn/partition.h"

namespace imoltp::dist {
namespace {

using core::TpccBenchmark;

TEST(OwnershipMapTest, GlobalLocalRoundTrip) {
  txn::OwnershipMap map(3, 4);
  EXPECT_EQ(map.total_units(), 12u);
  for (uint64_t w = 0; w < map.total_units(); ++w) {
    const int owner = map.OwnerOf(w);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 3);
    EXPECT_EQ(map.GlobalUnit(owner, map.LocalUnit(w)), w);
    EXPECT_LT(map.LocalUnit(w), 4u);
  }
  EXPECT_EQ(map.OwnerOf(0), 0);
  EXPECT_EQ(map.OwnerOf(4), 1);
  EXPECT_EQ(map.OwnerOf(11), 2);
}

TEST(DeriveSeedTest, StreamsAndEntitiesDecorrelate) {
  std::set<uint64_t> seeds;
  for (uint64_t node = 0; node < 16; ++node) {
    seeds.insert(DeriveSeed(7, node, SeedStream::kNodeClient));
    seeds.insert(DeriveSeed(7, node, SeedStream::kNodeEngine));
    seeds.insert(DeriveSeed(7, node, SeedStream::kClusterFault));
  }
  EXPECT_EQ(seeds.size(), 48u) << "collision across (entity, stream)";
  // Deterministic: same inputs, same seed.
  EXPECT_EQ(DeriveSeed(7, 3, SeedStream::kNodeClient),
            DeriveSeed(7, 3, SeedStream::kNodeClient));
  // Different base seeds diverge.
  EXPECT_NE(DeriveSeed(7, 3, SeedStream::kNodeClient),
            DeriveSeed(8, 3, SeedStream::kNodeClient));
}

TEST(ForwarderTest, LocalTxnIsSingleHome) {
  txn::OwnershipMap map(3, 2);
  Forwarder fwd(&map);
  DistTxn t;
  t.type = TpccBenchmark::kTxnOrderStatus;
  t.home_w = 3;  // node 1
  fwd.Classify(&t);
  EXPECT_FALSE(t.multi_home);
  ASSERT_EQ(t.involved.size(), 1u);
  EXPECT_EQ(t.involved[0], 1);
}

TEST(ForwarderTest, RemoteNewOrderIsMultiHome) {
  txn::OwnershipMap map(3, 2);
  Forwarder fwd(&map);
  DistTxn t;
  t.type = TpccBenchmark::kTxnNewOrder;
  t.home_w = 0;    // node 0
  t.remote_w = 4;  // node 2
  t.no.remote_mask = 1;
  fwd.Classify(&t);
  EXPECT_TRUE(t.multi_home);
  ASSERT_EQ(t.involved.size(), 2u);
  EXPECT_EQ(t.involved[0], 0);
  EXPECT_EQ(t.involved[1], 2);
}

TEST(ForwarderTest, RemoteWarehouseOnHomeNodeStaysSingleHome) {
  // SLOG's distinction: a two-warehouse transaction whose "remote"
  // warehouse lives on the same node is still single-home.
  txn::OwnershipMap map(3, 2);
  Forwarder fwd(&map);
  DistTxn t;
  t.type = TpccBenchmark::kTxnPayment;
  t.home_w = 2;    // node 1
  t.remote_w = 3;  // also node 1
  t.pay.customer_remote = true;
  fwd.Classify(&t);
  EXPECT_FALSE(t.multi_home);
  ASSERT_EQ(t.involved.size(), 1u);
  EXPECT_EQ(t.involved[0], 1);
}

TEST(GlobalOrdererTest, OrderIsArrivalIndependent) {
  auto make = [](int origin, uint64_t seq) {
    DistTxn t;
    t.origin = origin;
    t.seq = seq;
    return t;
  };
  // Same multiset of (origin, seq), two arrival orders.
  std::vector<DistTxn> a = {make(2, 0), make(0, 1), make(1, 0),
                            make(0, 0), make(1, 1)};
  std::vector<DistTxn> b = {make(0, 0), make(1, 1), make(0, 1),
                            make(1, 0), make(2, 0)};
  GlobalOrderer oa, ob;
  oa.OrderBatch(&a);
  ob.OrderBatch(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].origin, b[i].origin) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(a[i].global_seq, b[i].global_seq) << i;
    EXPECT_EQ(a[i].global_seq, static_cast<uint64_t>(i)) << i;
  }
}

TEST(NetworkTest, LocalDeliveryIsFree) {
  Network net({1000, 0.5});
  Mailbox<DistTxn> box;
  DistTxn t;
  net.Send(&box, 3, 3, 200, t);  // node 3 -> itself
  net.Send(&box, 0, 1, 200, t);  // cross-node
  ASSERT_EQ(box.size(), 2u);
  Envelope<DistTxn> local, remote;
  ASSERT_TRUE(box.Pop(&local));
  ASSERT_TRUE(box.Pop(&remote));
  EXPECT_EQ(net.ChargeReceive(local), 0u);
  EXPECT_EQ(net.ChargeReceive(remote), 1100u);  // 1000 + 0.5 * 200
  EXPECT_EQ(net.stats().messages, 1u);  // only the cross-node hop
  EXPECT_EQ(net.stats().bytes, 200u);
}

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.warehouses_per_node = 2;
  cfg.workers_per_node = 2;
  cfg.orders_per_district = 50;
  cfg.warmup_per_node = 50;
  cfg.txns_per_node = 250;
  cfg.multi_home_pct = 20;
  cfg.seed = 42;
  return cfg;
}

TEST(ClusterTest, SameSeedRunsAreBitIdentical) {
  ClusterConfig cfg = SmallConfig();
  Cluster a(cfg), b(cfg);
  ASSERT_TRUE(a.Create().ok());
  ASSERT_TRUE(a.Run().ok());
  ASSERT_TRUE(b.Create().ok());
  ASSERT_TRUE(b.Run().ok());
  EXPECT_EQ(a.result().fingerprint, b.result().fingerprint);
  EXPECT_EQ(a.result().committed, b.result().committed);
  EXPECT_EQ(a.result().multi_home, b.result().multi_home);
  EXPECT_EQ(a.result().net.messages, b.result().net.messages);
  EXPECT_EQ(a.result().net.bytes, b.result().net.bytes);
  EXPECT_GT(a.result().committed, 0u);
  EXPECT_GT(a.result().multi_home, 0u);
  EXPECT_TRUE(a.result().invariants.ok)
      << (a.result().invariants.violations.empty()
              ? ""
              : a.result().invariants.violations[0]);
}

TEST(ClusterTest, DifferentSeedsDiverge) {
  ClusterConfig cfg = SmallConfig();
  Cluster a(cfg);
  cfg.seed = 43;
  Cluster b(cfg);
  ASSERT_TRUE(a.Create().ok());
  ASSERT_TRUE(a.Run().ok());
  ASSERT_TRUE(b.Create().ok());
  ASSERT_TRUE(b.Run().ok());
  EXPECT_NE(a.result().fingerprint, b.result().fingerprint);
}

TEST(ClusterTest, ZeroMultiHomePctSendsNoMessages) {
  ClusterConfig cfg = SmallConfig();
  cfg.multi_home_pct = 0;
  Cluster c(cfg);
  ASSERT_TRUE(c.Create().ok());
  ASSERT_TRUE(c.Run().ok());
  EXPECT_EQ(c.result().multi_home, 0u);
  EXPECT_EQ(c.result().net.messages, 0u);
  EXPECT_EQ(c.result().net.bytes, 0u);
  EXPECT_TRUE(c.result().invariants.ok);
}

TEST(ClusterTest, MoreMultiHomeMeansMoreStallAndMessages) {
  ClusterConfig cfg = SmallConfig();
  cfg.multi_home_pct = 10;
  Cluster low(cfg);
  cfg.multi_home_pct = 80;
  Cluster high(cfg);
  ASSERT_TRUE(low.Create().ok());
  ASSERT_TRUE(low.Run().ok());
  ASSERT_TRUE(high.Create().ok());
  ASSERT_TRUE(high.Run().ok());
  EXPECT_GT(high.result().multi_home, low.result().multi_home);
  EXPECT_GT(high.result().net.messages, low.result().net.messages);
  EXPECT_GT(high.result().net.latency_charged,
            low.result().net.latency_charged);
}

TEST(ClusterTest, SingleNodeClusterHasNoMultiHome) {
  ClusterConfig cfg = SmallConfig();
  cfg.nodes = 1;
  cfg.multi_home_pct = 50;  // no peer exists; the dial is inert
  Cluster c(cfg);
  ASSERT_TRUE(c.Create().ok());
  ASSERT_TRUE(c.Run().ok());
  EXPECT_EQ(c.result().multi_home, 0u);
  EXPECT_EQ(c.result().net.messages, 0u);
  EXPECT_GT(c.result().committed, 0u);
  EXPECT_TRUE(c.result().invariants.ok);
}

TEST(ClusterChaosTest, NodeDeathRecoveryPreservesInvariants) {
  ClusterConfig cfg = SmallConfig();
  cfg.engine_kind = engine::EngineKind::kHyPer;  // physical REDO log
  cfg.chaos.enabled = true;
  cfg.chaos.nth_hit = 10;  // deterministic death, early in the window
  Cluster c(cfg);
  ASSERT_TRUE(c.Create().ok());
  ASSERT_TRUE(c.Run().ok());
  EXPECT_GE(c.result().died_node, 0);
  EXPECT_TRUE(c.result().recovered);
  EXPECT_GT(c.result().rejected_dead, 0u);
  EXPECT_TRUE(c.node(c.result().died_node)->ever_died());
  EXPECT_TRUE(c.node(c.result().died_node)->alive());
  EXPECT_TRUE(c.result().invariants.ok)
      << (c.result().invariants.violations.empty()
              ? ""
              : c.result().invariants.violations[0]);
}

TEST(ClusterChaosTest, ChaosRunsAreDeterministicToo) {
  ClusterConfig cfg = SmallConfig();
  cfg.chaos.enabled = true;
  cfg.chaos.nth_hit = 10;
  Cluster a(cfg), b(cfg);
  ASSERT_TRUE(a.Create().ok());
  ASSERT_TRUE(a.Run().ok());
  ASSERT_TRUE(b.Create().ok());
  ASSERT_TRUE(b.Run().ok());
  EXPECT_EQ(a.result().fingerprint, b.result().fingerprint);
  EXPECT_EQ(a.result().died_node, b.result().died_node);
  EXPECT_EQ(a.result().death_round, b.result().death_round);
  EXPECT_EQ(a.result().rejected_dead, b.result().rejected_dead);
}

TEST(ClusterChaosTest, UnrecoveredDeadNodeSkipsCrossNodeAudit) {
  ClusterConfig cfg = SmallConfig();
  cfg.chaos.enabled = true;
  cfg.chaos.nth_hit = 10;
  cfg.chaos.recover = false;
  Cluster c(cfg);
  ASSERT_TRUE(c.Create().ok());
  ASSERT_TRUE(c.Run().ok());
  EXPECT_GE(c.result().died_node, 0);
  EXPECT_FALSE(c.result().recovered);
  EXPECT_FALSE(c.node(c.result().died_node)->alive());
  // Per-node invariants on the survivors must still hold; the
  // cross-node conservation sums are unauditable and skipped.
  EXPECT_TRUE(c.result().invariants.ok);
}

}  // namespace
}  // namespace imoltp::dist
