// Parallel experiment execution: the determinism contract of
// ParallelMode (docs/parallel_execution.md) and the accounting
// invariants of free-running mode.
//
// kDeterministic runs one host thread per simulated core but
// turnstile-steps them so the global transaction order is exactly
// kSerial's. On the same machine instance that makes every simulated
// event identical; across instances the only residue is physical
// placement (real allocations land at different addresses per run,
// which perturbs cache-set and page mappings — see
// ExperimentTest.ReproducibleAcrossRuns). Retired work is therefore
// compared bit-identically and memory-system metrics within the same
// tolerance the repo uses for any cross-run comparison.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/microbench.h"

namespace imoltp::core {
namespace {

using engine::EngineKind;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

ExperimentConfig ParallelConfig(EngineKind kind, ParallelMode mode) {
  ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.num_workers = 4;
  cfg.warmup_txns = 100;
  cfg.measure_txns = 300;
  cfg.seed = 11;
  cfg.parallel_mode = mode;
  return cfg;
}

MicroConfig SmallMicro() {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 4ULL << 20;
  mcfg.num_partitions = 4;
  return mcfg;
}

TEST(ParallelModeTest, DeterministicMatchesSerialOnAllEngines) {
  for (EngineKind kind : kAllEngines) {
    SCOPED_TRACE(engine::EngineKindName(kind));
    MicroConfig mcfg = SmallMicro();
    MicroBenchmark wl_serial(mcfg), wl_det(mcfg);

    auto serial = RunExperiment(
        ParallelConfig(kind, ParallelMode::kSerial), &wl_serial);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto det = RunExperiment(
        ParallelConfig(kind, ParallelMode::kDeterministic), &wl_det);
    ASSERT_TRUE(det.ok()) << det.status().ToString();

    // Retired work is placement-independent: bit-identical or the
    // turnstile is not reproducing the serial interleaving.
    EXPECT_EQ(det->num_workers, serial->num_workers);
    EXPECT_DOUBLE_EQ(det->instructions, serial->instructions);
    EXPECT_DOUBLE_EQ(det->transactions, serial->transactions);
    EXPECT_DOUBLE_EQ(det->mispredictions, serial->mispredictions);
    EXPECT_DOUBLE_EQ(det->base_cycles, serial->base_cycles);
    EXPECT_DOUBLE_EQ(det->instructions_per_txn,
                     serial->instructions_per_txn);

    // Memory-system metrics carry only address-placement noise, never
    // interleaving noise: the cross-run tolerance must hold.
    EXPECT_NEAR(det->ipc, serial->ipc, 0.02 * serial->ipc);
    EXPECT_NEAR(det->cycles, serial->cycles, 0.02 * serial->cycles);
  }
}

TEST(ParallelModeTest, DeterministicDistributesWorkLikeSerial) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg =
      ParallelConfig(EngineKind::kVoltDb, ParallelMode::kDeterministic);
  auto runner = ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ASSERT_TRUE((*runner)->Run(&wl).ok());

  // Every simulated core ran exactly its per-worker share.
  mcsim::MachineSim* machine = (*runner)->machine();
  ASSERT_EQ(machine->num_cores(), 4);
  for (int c = 0; c < machine->num_cores(); ++c) {
    EXPECT_EQ(machine->core(c).counters().transactions,
              cfg.warmup_txns + cfg.measure_txns)
        << "core " << c;
  }
  EXPECT_EQ((*runner)->latency_histogram().count(),
            cfg.measure_txns * static_cast<uint64_t>(cfg.num_workers));
}

TEST(ParallelModeTest, SingleWorkerIgnoresMode) {
  // One worker has nothing to parallelize: all modes take the serial
  // path and must agree bit-for-bit on retired work.
  MicroConfig mcfg;
  mcfg.nominal_bytes = 1ULL << 20;
  MicroBenchmark wl1(mcfg), wl2(mcfg);
  ExperimentConfig cfg =
      ParallelConfig(EngineKind::kHyPer, ParallelMode::kFree);
  cfg.num_workers = 1;
  const auto free_run = RunExperiment(cfg, &wl1);
  ASSERT_TRUE(free_run.ok());
  cfg.parallel_mode = ParallelMode::kSerial;
  const auto serial = RunExperiment(cfg, &wl2);
  ASSERT_TRUE(serial.ok());
  EXPECT_DOUBLE_EQ(free_run->instructions, serial->instructions);
  EXPECT_DOUBLE_EQ(free_run->transactions, serial->transactions);
}

// Free-running mode gives up the deterministic interleaving but not the
// accounting: every transaction issued must land somewhere. These also
// serve as the TSan stress targets (scripts/tsan.sh).
class FreeModeStressTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FreeModeStressTest, ConservesTransactionAccounting) {
  const EngineKind kind = GetParam();
  MicroConfig mcfg = SmallMicro();
  mcfg.read_write = true;  // exercise locks / version chains
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg = ParallelConfig(kind, ParallelMode::kFree);
  auto runner = ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  const auto report = (*runner)->Run(&wl);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const uint64_t workers = static_cast<uint64_t>(cfg.num_workers);
  // One latency sample per measured transaction, commit or abort.
  EXPECT_EQ((*runner)->latency_histogram().count(),
            cfg.measure_txns * workers);
  // Every issued transaction retired on some core.
  EXPECT_EQ((*runner)->machine()->TotalCounters().transactions,
            (cfg.warmup_txns + cfg.measure_txns) * workers);
  // Aborts were counted, not lost: commits + aborts == issued.
  EXPECT_LE((*runner)->aborts(),
            (cfg.warmup_txns + cfg.measure_txns) * workers);
  EXPECT_DOUBLE_EQ(report->transactions,
                   static_cast<double>(cfg.measure_txns));
  EXPECT_GT(report->ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, FreeModeStressTest,
    ::testing::Values(EngineKind::kShoreMt, EngineKind::kDbmsD,
                      EngineKind::kVoltDb, EngineKind::kHyPer,
                      EngineKind::kDbmsM),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kShoreMt: return "ShoreMt";
        case EngineKind::kDbmsD: return "DbmsD";
        case EngineKind::kVoltDb: return "VoltDb";
        case EngineKind::kHyPer: return "HyPer";
        case EngineKind::kDbmsM: return "DbmsM";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace imoltp::core
