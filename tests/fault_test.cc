// Fault-injection unit tests: the seeded FaultInjector's determinism
// contract (same seed + same arming + same hit order ⇒ same fault
// schedule), point isolation (unarmed points never draw from the RNG),
// the crash latch, and the injector's hooks in LogManager (torn
// records) and LockManager (spurious conflicts). Also covers the
// LogManager::Reserve growth path for records larger than the ring.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "mcsim/machine.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"

namespace imoltp::fault {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

std::vector<bool> FireSchedule(FaultInjector* inj, const char* point,
                               int hits) {
  std::vector<bool> fires;
  fires.reserve(hits);
  for (int i = 0; i < hits; ++i) fires.push_back(inj->Fires(point));
  return fires;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(99), b(99);
  a.Arm(kLockConflict, {0.25, 0});
  b.Arm(kLockConflict, {0.25, 0});
  const auto sa = FireSchedule(&a, kLockConflict, 500);
  const auto sb = FireSchedule(&b, kLockConflict, 500);
  EXPECT_EQ(sa, sb);
  // A 0.25 trigger over 500 hits fires somewhere strictly between
  // never and always (astronomically unlikely otherwise).
  int fires = 0;
  for (bool f : sa) fires += f;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 500);
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultInjector a(1), b(2);
  a.Arm(kLockConflict, {0.5, 0});
  b.Arm(kLockConflict, {0.5, 0});
  EXPECT_NE(FireSchedule(&a, kLockConflict, 500),
            FireSchedule(&b, kLockConflict, 500));
}

TEST(FaultInjectorTest, NthHitFiresExactlyOnce) {
  FaultInjector inj(7);
  inj.Arm(kCrashMidCommit, {0.0, 5});
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(inj.Fires(kCrashMidCommit), i == 5) << "hit " << i;
  }
}

TEST(FaultInjectorTest, UnarmedPointNeverFiresAndNeverDrawsRng) {
  // Hitting an unarmed point between armed hits must not perturb the
  // armed point's schedule — unarmed points are counted, not drawn.
  FaultInjector plain(31337), noisy(31337);
  plain.Arm(kLockConflict, {0.3, 0});
  noisy.Arm(kLockConflict, {0.3, 0});
  std::vector<bool> sp, sn;
  for (int i = 0; i < 200; ++i) {
    sp.push_back(plain.Fires(kLockConflict));
    EXPECT_FALSE(noisy.Fires(kCoreDeath));  // unarmed
    sn.push_back(noisy.Fires(kLockConflict));
  }
  EXPECT_EQ(sp, sn);
  // The unarmed point's hits were still counted for reporting.
  for (const FaultPointStats& s : noisy.Stats()) {
    if (s.point == kCoreDeath) {
      EXPECT_EQ(s.hits, 200u);
      EXPECT_EQ(s.fires, 0u);
    }
  }
}

TEST(FaultInjectorTest, CrashLatchRecordsFirstPoint) {
  FaultInjector inj(5);
  inj.Arm(kCrashMidCommit, {0.0, 1});
  inj.Arm(kCrashPostCommit, {0.0, 1});
  EXPECT_FALSE(inj.crash_pending());
  EXPECT_TRUE(inj.FireCrash(kCrashMidCommit));
  EXPECT_TRUE(inj.crash_pending());
  EXPECT_EQ(inj.crash_point(), kCrashMidCommit);
  // A later crash fire does not overwrite the first point.
  EXPECT_TRUE(inj.FireCrash(kCrashPostCommit));
  EXPECT_EQ(inj.crash_point(), kCrashMidCommit);
  inj.ClearCrash();
  EXPECT_FALSE(inj.crash_pending());
  EXPECT_EQ(inj.crash_point(), "");
}

TEST(FaultInjectorTest, DisarmAllStopsFiringButKeepsCounters) {
  FaultInjector inj(11);
  inj.Arm(kLogTornRecord, {1.0, 0});
  EXPECT_TRUE(inj.Fires(kLogTornRecord));
  inj.DisarmAll();
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(inj.Fires(kLogTornRecord));
  const auto stats = inj.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].point, kLogTornRecord);
  EXPECT_EQ(stats[0].hits, 11u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST(FaultInjectorTest, UniformIsSeededAndBounded) {
  FaultInjector a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Uniform(17);
    EXPECT_EQ(va, b.Uniform(17));
    EXPECT_LT(va, 17u);
  }
  EXPECT_EQ(a.Uniform(0), 0u);
}

TEST(FaultInjectorTest, KnownFaultPointRegistry) {
  for (const char* p : kAllFaultPoints) {
    EXPECT_TRUE(IsKnownFaultPoint(p)) << p;
  }
  EXPECT_FALSE(IsKnownFaultPoint("no.such.point"));
  EXPECT_FALSE(IsKnownFaultPoint(""));
}

// ---------------------------------------------------------------------------
// Injector hooks in the transaction layer
// ---------------------------------------------------------------------------

class FaultHookTest : public ::testing::Test {
 protected:
  FaultHookTest() : machine_(NoTlb()), core_(&machine_.core(0)) {}
  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
};

TEST_F(FaultHookTest, TornRecordMarksExactlyTheFiredAppend) {
  FaultInjector inj(3);
  inj.Arm(kLogTornRecord, {0.0, 2});
  txn::LogManager log;
  log.set_fault_injector(&inj);
  const uint8_t payload[16] = {0};
  for (int i = 0; i < 4; ++i) {
    log.LogUpdate(core_, 1, 0, i, 1, payload, 16);
  }
  const auto& records = log.stable_log();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].torn);
  EXPECT_TRUE(records[1].torn);  // the second append fired
  EXPECT_FALSE(records[2].torn);
  EXPECT_FALSE(records[3].torn);
}

TEST_F(FaultHookTest, InjectedLockConflictAborts) {
  FaultInjector inj(9);
  inj.Arm(kLockConflict, {0.0, 1});
  txn::LockManager lm;
  lm.set_fault_injector(&inj);
  // No real conflict exists — the injected one fires on the first
  // acquisition and aborts with a recognizable message so the abort
  // classifier can bucket it as injected_fault, not lock_conflict.
  const Status s = lm.Acquire(core_, 1, 100, txn::LockMode::kExclusive);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  EXPECT_FALSE(lm.Holds(1, 100));
  // The next acquisition (point no longer firing) succeeds.
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, txn::LockMode::kExclusive).ok());
}

// ---------------------------------------------------------------------------
// LogManager::Reserve growth (a record larger than the whole ring)
// ---------------------------------------------------------------------------

TEST_F(FaultHookTest, OversizedRecordGrowsRingInsteadOfOverflowing) {
  txn::LogManager log(64);  // smaller than one 256-byte payload
  ASSERT_EQ(log.capacity(), 64u);
  std::vector<uint8_t> payload(256, 0xAB);
  log.LogUpdate(core_, 1, 0, 7, -1, payload.data(),
                static_cast<uint32_t>(payload.size()));
  EXPECT_GE(log.capacity(), 256u + 32u);  // payload + header fit now
  const auto& records = log.stable_log();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload.size(), 256u);
  EXPECT_EQ(records[0].payload[0], 0xAB);
  EXPECT_EQ(records[0].payload[255], 0xAB);
  // The grown ring keeps working: wrap it a few times.
  for (int i = 0; i < 20; ++i) {
    log.LogUpdate(core_, 2, 0, i, -1, payload.data(),
                  static_cast<uint32_t>(payload.size()));
  }
  EXPECT_EQ(log.records(), 21u);
  EXPECT_GT(log.flushes(), 0u);
}

TEST_F(FaultHookTest, OversizedKeyAlsoGrowsRing) {
  txn::LogManager log(64);
  std::vector<uint8_t> key(300, 0x11);
  log.Append(core_, txn::LogOp::kInsert, 1, 0, 7, -1, nullptr, 0,
             key.data(), static_cast<uint32_t>(key.size()));
  const auto& records = log.stable_log();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key.size(), 300u);
}

}  // namespace
}  // namespace imoltp::fault
