#include <gtest/gtest.h>

#include "core/report.h"
#include "mcsim/energy.h"

namespace imoltp {
namespace {

// ---------------------------------------------------------------------------
// Energy model (Section 8 extension)
// ---------------------------------------------------------------------------

TEST(EnergyModelTest, ZeroCountersZeroDynamicEnergy) {
  mcsim::CoreCounters c;
  const auto r = mcsim::ComputeEnergy(c, 0.0, mcsim::EnergyParams());
  EXPECT_DOUBLE_EQ(r.dynamic_nj, 0.0);
  EXPECT_DOUBLE_EQ(r.static_nj, 0.0);
}

TEST(EnergyModelTest, ComposesDynamicAndStatic) {
  mcsim::EnergyParams p;
  mcsim::CoreCounters c;
  c.instructions = 1000;
  c.data_accesses = 100;
  c.misses.l1d = 10;
  c.misses.l2d = 5;
  c.misses.llc_d = 2;
  c.mispredictions = 3;
  const auto r = mcsim::ComputeEnergy(c, 500.0, p);
  const double expected_dynamic =
      (1000 * p.instruction_pj + 100 * p.l1_access_pj +
       10 * p.l2_access_pj + 5 * p.llc_access_pj + 2 * p.dram_access_pj +
       3 * p.mispredict_pj) /
      1000.0;
  EXPECT_NEAR(r.dynamic_nj, expected_dynamic, 1e-9);
  EXPECT_NEAR(r.static_nj, 500.0 * p.static_pj_per_cycle / 1000.0, 1e-9);
  EXPECT_NEAR(r.total_nj, r.dynamic_nj + r.static_nj, 1e-12);
}

TEST(EnergyModelTest, LittleCoreSpendsLessPerInstruction) {
  const mcsim::EnergyParams big;
  const mcsim::EnergyParams little = mcsim::LittleCoreEnergy();
  EXPECT_LT(little.instruction_pj, big.instruction_pj / 2);
  EXPECT_LT(little.static_pj_per_cycle, big.static_pj_per_cycle / 2);
  // Memory events cost the same: DRAM is DRAM on either core.
  EXPECT_DOUBLE_EQ(little.dram_access_pj, big.dram_access_pj);
}

TEST(EnergyModelTest, DramDominatesMissHeavyProfiles) {
  mcsim::EnergyParams p;
  mcsim::CoreCounters lean, missy;
  lean.instructions = missy.instructions = 10000;
  lean.data_accesses = missy.data_accesses = 1000;
  missy.misses.llc_d = 200;
  const auto e_lean = mcsim::ComputeEnergy(lean, 4000, p);
  const auto e_missy = mcsim::ComputeEnergy(missy, 4000, p);
  EXPECT_GT(e_missy.dynamic_nj, 2 * e_lean.dynamic_nj);
}

// ---------------------------------------------------------------------------
// Report printers: smoke (they render to stdout; the test asserts they
// survive empty, single-row, and module-heavy inputs).
// ---------------------------------------------------------------------------

TEST(ReportTest, PrintersHandleEmptyAndPopulatedRows) {
  core::PrintIpc("empty", {});
  core::PrintStallsPerKInstr("empty", {});

  mcsim::WindowReport r;
  r.num_workers = 1;
  r.ipc = 0.5;
  r.instructions_per_txn = 1000;
  r.cycles_per_txn = 2000;
  r.stalls_per_kinstr.stalls = {100, 10, 0, 5, 8, 120};
  r.stalls_per_txn.stalls = {200, 20, 0, 10, 16, 240};
  r.engine_cycle_fraction = 0.42;
  r.module_breakdown.push_back({"parser", false, 1000.0, 0.6});
  r.module_breakdown.push_back({"btree", true, 700.0, 0.4});

  core::ReportRow row{"test-engine", r};
  core::PrintIpc("one row", {row});
  core::PrintStallsPerKInstr("one row", {row});
  core::PrintStallsPerTxn("one row", {row});
  core::PrintEngineShare("one row", {row});
  core::PrintModuleBreakdown("one row", row);
  SUCCEED();
}

TEST(StallBreakdownTest, TotalsAndScaling) {
  mcsim::StallBreakdown b;
  b.stalls = {10, 20, 30, 1, 2, 3};
  EXPECT_DOUBLE_EQ(b.total(), 66.0);
  EXPECT_DOUBLE_EQ(b.instruction_total(), 60.0);
  EXPECT_DOUBLE_EQ(b.data_total(), 6.0);
  const auto scaled = b.Scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.total(), 33.0);
}

}  // namespace
}  // namespace imoltp
